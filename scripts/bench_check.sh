#!/usr/bin/env sh
# Validate the runtime microbench JSON emitted by `bench_micro --json`.
#
# Usage: bench_check.sh <bench_micro binary> [output.json]
#        bench_check.sh --planner <bench_table2_opttime> [output.json]
#        bench_check.sh --serve <primepar_serve> [output.json]
#
# Default mode runs the microbench in --quick mode, then checks that
# the output is valid JSON with the primepar-bench-runtime-v1 schema,
# that no timing is NaN/absent, that every kernel matched its naive
# reference exactly, and that results were bit-identical across thread
# counts.
#
# --planner (the `planner_opttime` gate) runs the planner A/B sweep at
# the largest cell where the exhaustive baseline is still tractable on
# a CI host (32 devices, OPT 6.7B, one thread), and fails unless
# dominance pruning is at least 5x faster than the exhaustive planner
# while producing a bit-identical plan.
#
# --serve (the warm-path gate) runs `primepar_serve --bench`: a cold
# DP plan for OPT 6.7B on 32 devices is persisted to a fresh store, a
# brand-new service instance answers the same request from the mmap'd
# store, and the gate fails unless the warm answer came from the
# store, is bit-identical, and is >= 100x faster than the cold run.
# All are wired as optional ctests with the `bench` label
# (ctest -L bench).

set -eu

MODE=micro
if [ "${1:-}" = "--planner" ]; then
    MODE=planner
    shift
elif [ "${1:-}" = "--serve" ]; then
    MODE=serve
    shift
fi

if [ "$#" -lt 1 ]; then
    echo "usage: $0 [--planner] <bench binary> [output.json]" >&2
    exit 2
fi

BENCH="$1"
OUT="${2:-$(mktemp /tmp/bench_runtime.XXXXXX.json)}"

if ! command -v python3 > /dev/null 2>&1; then
    echo "bench_check: python3 not available, skipping validation" >&2
    exit 0
fi

if [ "$MODE" = "serve" ]; then
    STORE="$(mktemp /tmp/serve_bench.XXXXXX.pps)"
    rm -f "$STORE" # the bench wants a cold (absent) store
    "$BENCH" --bench --store "$STORE" \
        --model "${SERVE_MODEL:-OPT 6.7B}" \
        --devices "${SERVE_DEVICES:-32}" --bench-out "$OUT"
    rm -f "$STORE"

    python3 - "$OUT" <<'EOF'
import json
import math
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def fail(msg):
    sys.exit(f"bench_check: {msg}")

if doc.get("schema") != "primepar-serve-bench-v1":
    fail(f"unexpected schema {doc.get('schema')!r}")
for field in ("cold_ms", "warm_ms", "speedup", "layer_cost_us",
              "total_cost_us"):
    v = doc.get(field)
    if not isinstance(v, (int, float)) or isinstance(v, bool) \
            or math.isnan(v) or math.isinf(v):
        fail(f"{field} is not finite: {v!r}")
if doc.get("warm_source") != "store":
    fail(f"warm request was served from {doc.get('warm_source')!r}, "
         f"not the persistent store")
if doc.get("bit_identical") is not True:
    fail("warm plan is not bit-identical to the cold DP plan")
if doc["cold_ms"] <= 0 or doc["warm_ms"] <= 0:
    fail("bench timings not positive")
if doc["speedup"] < 100.0:
    fail(f"warm-path speedup {doc['speedup']:.1f}x is below the 100x "
         f"budget (cold {doc['cold_ms']:.0f} ms, warm "
         f"{doc['warm_ms']:.2f} ms)")
print(f"bench_check: OK (serve warm path {doc['speedup']:.0f}x: cold "
      f"DP {doc['cold_ms']:.0f} ms -> mmap'd store "
      f"{doc['warm_ms']:.2f} ms at {doc['devices']} devices, "
      f"bit-identical)")
EOF
    exit 0
fi

if [ "$MODE" = "planner" ]; then
    "$BENCH" --sweep --devices "${PLANNER_DEVICES:-32}" --threads 1 \
        --models "OPT 6.7B" --prune both --json "$OUT"

    python3 - "$OUT" <<'EOF'
import json
import math
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def fail(msg):
    sys.exit(f"bench_check: {msg}")

if doc.get("deterministic") is not True:
    fail("planner results diverged across prune modes / thread counts")
results = doc.get("results")
if not isinstance(results, list) or not results:
    fail("planner results missing or empty")
for r in results:
    for field in ("search_ms", "catalog_ms", "pilot_ms", "table_ms",
                  "dp_ms", "layer_cost_us", "total_cost_us", "gap_pct"):
        v = r.get(field)
        if not isinstance(v, (int, float)) or isinstance(v, bool) \
                or math.isnan(v) or math.isinf(v):
            fail(f"results[].{field} is not finite: {v!r}")
    if r["search_ms"] <= 0:
        fail("results[].search_ms not positive")
    if not r.get("truncated") and r["gap_pct"] != 0:
        fail("untruncated run reported a nonzero optimality gap")

devices = max(r["devices"] for r in results)
off = [r for r in results if r["devices"] == devices and not r["prune"]]
on = [r for r in results if r["devices"] == devices and r["prune"]]
if not off or not on:
    fail(f"missing prune on/off pair at {devices} devices")
speedup = off[0]["search_ms"] / on[0]["search_ms"]
if speedup < 5.0:
    fail(f"pruning speedup {speedup:.2f}x at {devices} devices is "
         f"below the 5x budget (exhaustive {off[0]['search_ms']:.0f} "
         f"ms, pruned {on[0]['search_ms']:.0f} ms)")
if on[0]["candidates_kept"] >= on[0]["candidates_total"]:
    fail("pruning kept the whole space — the fast path did nothing")
print(f"bench_check: OK (planner {speedup:.1f}x at {devices} devices: "
      f"exhaustive {off[0]['search_ms']:.0f} ms -> pruned "
      f"{on[0]['search_ms']:.0f} ms, kept "
      f"{on[0]['candidates_kept']}/{on[0]['candidates_total']} "
      f"candidates, plans bit-identical)")
EOF
    exit 0
fi

"$BENCH" --json "$OUT" --quick

python3 - "$OUT" <<'EOF'
import json
import math
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def fail(msg):
    sys.exit(f"bench_check: {msg}")

def finite(x, where):
    if not isinstance(x, (int, float)) or isinstance(x, bool):
        fail(f"{where} is not a number: {x!r}")
    if math.isnan(x) or math.isinf(x):
        fail(f"{where} is not finite: {x}")

if doc.get("schema") != "primepar-bench-runtime-v1":
    fail(f"unexpected schema {doc.get('schema')!r}")
finite(doc.get("hardware_threads"), "hardware_threads")

kernels = doc.get("kernels")
if not isinstance(kernels, list) or not kernels:
    fail("kernels missing or empty")
for k in kernels:
    name = k.get("name", "<unnamed>")
    for field in ("blocked_ms", "naive_ms", "speedup", "gflops"):
        finite(k.get(field), f"kernels[{name}].{field}")
    if k["blocked_ms"] <= 0:
        fail(f"kernels[{name}].blocked_ms not positive")
    if k.get("max_abs_diff") != 0:
        fail(f"kernels[{name}] diverged from the naive reference: "
             f"max_abs_diff={k.get('max_abs_diff')}")

step = doc.get("training_step")
if not isinstance(step, dict):
    fail("training_step missing")
threads = step.get("threads")
if not isinstance(threads, list) or not threads:
    fail("training_step.threads missing or empty")
for t in threads:
    for field in ("ms_per_step", "tokens_per_s", "speedup_vs_1t"):
        finite(t.get(field), f"threads[{t.get('num_threads')}].{field}")
if step.get("bit_identical_across_threads") is not True:
    fail("training step results were not bit-identical across threads")
for field in ("ring_bytes_per_step", "allreduce_bytes_per_step"):
    finite(step.get(field), f"training_step.{field}")

fo = doc.get("fault_overhead")
if not isinstance(fo, dict):
    fail("fault_overhead missing")
for field in ("base_ms_per_step", "transport_ms_per_step",
              "overhead_pct", "transfers_per_step",
              "bytes_moved_per_step"):
    finite(fo.get(field), f"fault_overhead.{field}")
if fo.get("bit_identical") is not True:
    fail("transport-routed step diverged from the direct path")
if fo.get("all_clear") is not True:
    fail("fault-free transport run reported faults")
if fo["transfers_per_step"] <= 0:
    fail("fault_overhead.transfers_per_step not positive")
# Budget is < 3% at full size; quick-mode steps are sub-millisecond
# so per-transfer fixed costs and timer noise dominate — only a loose
# sanity bound applies there.
bound = 50.0 if doc.get("quick") else 3.0
if fo["overhead_pct"] > bound:
    fail(f"transport overhead {fo['overhead_pct']:.2f}% exceeds "
         f"{bound}% budget")

oo = doc.get("observer_overhead")
if not isinstance(oo, dict):
    fail("observer_overhead missing")
for field in ("base_ms_per_step", "traced_ms_per_step",
              "overhead_pct", "spans_per_step", "transfers_per_step"):
    finite(oo.get(field), f"observer_overhead.{field}")
if oo.get("bit_identical") is not True:
    fail("observed step diverged from the unobserved one")
if oo["spans_per_step"] <= 0:
    fail("observer_overhead.spans_per_step not positive")
# Same shape as the transport budget: 3% at full size, loose sanity
# bound in quick mode where steps are sub-millisecond.
if oo["overhead_pct"] > bound:
    fail(f"observer overhead {oo['overhead_pct']:.2f}% exceeds "
         f"{bound}% budget")

ov = doc.get("overlap_efficiency")
if not isinstance(ov, dict):
    fail("overlap_efficiency missing")
for field in ("sync_ms_per_step", "async_ms_per_step", "speedup",
              "transfer_us_per_step", "hidden_us_per_step",
              "efficiency"):
    finite(ov.get(field), f"overlap_efficiency.{field}")
if ov.get("bit_identical") is not True:
    fail("async overlap diverged from the synchronous path")
# Budgets at full size: the async pipeline wins >= 1.15x on the
# communication-heavy config and hides >= 60% of the posted transfer
# time. Quick-mode steps are sub-millisecond, so scheduling noise
# drowns both — only loose sanity bounds apply there.
min_speedup = 0.3 if doc.get("quick") else 1.15
min_eff = 0.0 if doc.get("quick") else 0.60
if ov["speedup"] < min_speedup:
    fail(f"overlap speedup {ov['speedup']:.3f}x below the "
         f"{min_speedup}x budget")
if ov["efficiency"] < min_eff:
    fail(f"overlap efficiency {ov['efficiency']:.2%} below the "
         f"{min_eff:.0%} budget")

bw = doc.get("bytes_on_wire")
if not isinstance(bw, dict):
    fail("bytes_on_wire missing")
for field in ("elements", "raw_bytes", "pack_ratio"):
    finite(bw.get(field), f"bytes_on_wire.{field}")
if bw.get("pack_exact_round_trip") is not True:
    fail("pack codec did not round-trip the gradient payload exactly")
# The lossless pack stream must cost <= 0.7x raw bytes on the
# bit-packable (bf16-rounded) gradient workload, in both modes — the
# ratio is a property of the data, not of timing.
if bw["pack_ratio"] > 0.7:
    fail(f"pack ratio {bw['pack_ratio']:.3f} exceeds the 0.7 budget")
codecs = bw.get("codecs")
if not isinstance(codecs, list) or not codecs:
    fail("bytes_on_wire.codecs missing or empty")
for c in codecs:
    for field in ("wire_bytes", "ratio", "ms_per_transfer"):
        finite(c.get(field), f"codecs[{c.get('codec')}].{field}")

rss = doc.get("worker_rss")
if not isinstance(rss, dict):
    fail("worker_rss missing")
for field in ("workers", "devices", "sharded_peak_kb",
              "replicated_peak_kb", "ratio", "budget"):
    finite(rss.get(field), f"worker_rss.{field}")
if rss["sharded_peak_kb"] <= 0 or rss["replicated_peak_kb"] <= 0:
    fail("worker_rss peaks not positive — did the forked jobs run?")
# Sharded workers materialize tensor data only for owned device
# ranks: at full size each one's peak RSS must be <= 0.5x a fully
# replicated worker's. The quick-mode model is tiny, so the fixed
# process baseline dominates and only a loose sanity bound applies.
if rss["ratio"] > rss["budget"]:
    fail(f"sharded/replicated peak-RSS ratio {rss['ratio']:.3f} "
         f"exceeds the {rss['budget']} budget (sharded "
         f"{rss['sharded_peak_kb']} KiB, replicated "
         f"{rss['replicated_peak_kb']} KiB)")

pool = doc.get("buffer_pool")
if not isinstance(pool, dict):
    fail("buffer_pool missing")
for field in ("acquires", "pool_hits", "fresh_allocs"):
    finite(pool.get(field), f"buffer_pool.{field}")

names = ", ".join(k["name"] for k in kernels)
print(f"bench_check: OK ({len(kernels)} kernels: {names}; "
      f"{len(threads)} thread settings; transport overhead "
      f"{fo['overhead_pct']:.2f}%; observer overhead "
      f"{oo['overhead_pct']:.2f}%; overlap {ov['speedup']:.2f}x at "
      f"{ov['efficiency']:.0%} hidden; pack {bw['pack_ratio']:.2f}x; "
      f"sharded RSS {rss['ratio']:.2f}x replicated)")
EOF
