#!/usr/bin/env sh
# Repo verification gate: tier-1 tests plus the fault-tolerance suite
# under AddressSanitizer/UBSan.
#
# Usage: verify.sh [--quick]
#
#   1. Configure + build the default tree (build/) and run the full
#      ctest suite.
#   2. Configure + build a sanitizer tree (build-asan/) with
#      -DPRIMEPAR_SANITIZE=ON (address+undefined) and run the
#      fault-labelled tests there (ctest -L fault) — the transport's
#      retry/rollback paths move buffers across emulated device
#      boundaries, exactly where lifetime bugs would hide.
#
# --quick skips the sanitizer rebuild when build-asan/ is already
# configured. Exits non-zero on the first failure.

set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "== tier-1: configure + build =="
cmake -B "$ROOT/build" -S "$ROOT" > /dev/null
cmake --build "$ROOT/build" -j"$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir "$ROOT/build" --output-on-failure -j"$(nproc)"

echo "== sanitizer (ASan+UBSan): configure + build =="
if [ "$QUICK" -eq 0 ] || [ ! -f "$ROOT/build-asan/CMakeCache.txt" ]; then
    cmake -B "$ROOT/build-asan" -S "$ROOT" \
        -DPRIMEPAR_SANITIZE=ON > /dev/null
fi
cmake --build "$ROOT/build-asan" -j"$(nproc)" --target test_fault

echo "== sanitizer: fault-path tests (ctest -L fault) =="
ctest --test-dir "$ROOT/build-asan" --output-on-failure \
    -L fault -j"$(nproc)"

echo "verify.sh: all gates passed"
