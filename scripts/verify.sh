#!/usr/bin/env sh
# Repo verification gate: tier-1 tests plus the fault-tolerance suite
# under AddressSanitizer/UBSan.
#
# Usage: verify.sh [--quick]
#
#   1. Configure + build the default tree (build/) and run the full
#      ctest suite.
#   2. Calibration smoke: run primepar_calibrate --quick against the
#      real runtime, gating on R^2 > 0.9 for every fitted pattern, and
#      check the written ProfiledModels JSON round-trips; then a traced
#      primepar_train run must produce a valid Chrome-trace JSON and a
#      parseable metrics snapshot.
#   3. Distributed smoke: run the dist-labelled scenarios
#      (ctest -L dist), then launch a real coordinator + 2 worker
#      processes on localhost (sharded execution is the default),
#      SIGKILL one mid-step and require the job to finish degraded
#      onto the survivor via replanForSurvivors + checkpoint restore.
#      Then the re-join smoke: a 3-worker job loses one to SIGKILL, a
#      fresh worker --connects into the degraded generation, and the
#      job must grow back to the full 2^n grid and finish every step.
#   4. Serve smoke: run the serve-labelled tests, then start a real
#      primepar_serve daemon with a fresh persistent store, plan the
#      same spec twice through primepar_plan_client, and require the
#      second answer to be a store hit with the same strategies and a
#      populated serve.request_us latency histogram (p50/p99).
#   5. Configure + build a sanitizer tree (build-asan/) with
#      -DPRIMEPAR_SANITIZE=ON (address+undefined) and run the fault-,
#      codec-, planner-, dist- and serve-labelled tests there
#      (ctest -L 'fault|codec|planner|dist|serve') — the transport's
#      retry/rollback paths move buffers across emulated device
#      boundaries, the async executor posts transfers into recycled
#      pool buffers while compute runs, the codecs do raw byte-level
#      bit packing, the pruned planner indexes dense edge tables
#      through candidate-position indirection, and the plan store
#      decodes raw mmap'd bytes: exactly where lifetime and
#      out-of-bounds bugs would hide.
#
# --quick skips the sanitizer rebuild when build-asan/ is already
# configured. Exits non-zero on the first failure.

set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "== tier-1: configure + build =="
cmake -B "$ROOT/build" -S "$ROOT" > /dev/null
cmake --build "$ROOT/build" -j"$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir "$ROOT/build" --output-on-failure -j"$(nproc)"

echo "== calibration smoke: fit models on the real runtime =="
CAL_OUT="$(mktemp /tmp/calibration.XXXXXX.json)"
"$ROOT/build/examples/primepar_calibrate" --quick --min-r2 0.9 \
    --out "$CAL_OUT"
if command -v python3 > /dev/null 2>&1; then
    python3 - "$CAL_OUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
if doc.get("schema") != "primepar-profiled-models-v1":
    sys.exit(f"verify: unexpected calibration schema "
             f"{doc.get('schema')!r}")
for name in ("all_reduce", "ring_hop", "matmul_kernel",
             "memory_kernel", "redistribution"):
    if name not in doc:
        sys.exit(f"verify: calibration JSON lacks {name!r}")
if not doc["all_reduce"]:
    sys.exit("verify: no all-reduce pattern was fitted")
for name, r2 in doc.get("r2", {}).items():
    if r2 < 0.9:
        sys.exit(f"verify: fit {name} has R^2 {r2:.3f} < 0.9")
print(f"verify: calibration OK "
      f"({len(doc['all_reduce'])} all-reduce patterns, "
      f"min R^2 {min(doc.get('r2', {1: 1.0}).values()):.4f})")
EOF
fi
rm -f "$CAL_OUT"

echo "== traced training run: chrome trace + metrics snapshot =="
TRACE_OUT="$(mktemp /tmp/train_trace.XXXXXX.json)"
METRICS_OUT="$(mktemp /tmp/train_metrics.XXXXXX.json)"
"$ROOT/build/examples/primepar_train" --steps 2 --devices 4 \
    --trace-out "$TRACE_OUT" --metrics-out "$METRICS_OUT" > /dev/null
if command -v python3 > /dev/null 2>&1; then
    python3 - "$TRACE_OUT" "$METRICS_OUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    spans = json.load(f)
if not isinstance(spans, list) or not spans:
    sys.exit("verify: trace output is not a non-empty span array")
for s in spans[:3]:
    for field in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
        if field not in s:
            sys.exit(f"verify: trace span lacks {field!r}")
with open(sys.argv[2]) as f:
    metrics = json.load(f)
if metrics.get("schema") != "primepar-metrics-v1":
    sys.exit(f"verify: unexpected metrics schema "
             f"{metrics.get('schema')!r}")
if metrics.get("counters", {}).get("steps") != 2:
    sys.exit("verify: metrics snapshot did not count 2 steps")
print(f"verify: traced run OK ({len(spans)} spans, "
      f"{len(metrics['counters'])} counters)")
EOF
fi
rm -f "$TRACE_OUT" "$METRICS_OUT"

echo "== distributed smoke: coordinator + 2 workers, SIGKILL one =="
# The ctest-level dist scenarios (test_dist, -L dist, hard TIMEOUT so a
# protocol hang fails instead of wedging CI) cover bit-identity and the
# injected kill fault; on top of that, kill a worker from *outside*
# with a real SIGKILL mid-step and require the job to finish degraded
# via replanForSurvivors + checkpoint restore.
ctest --test-dir "$ROOT/build" --output-on-failure -L dist \
    -j"$(nproc)"
DIST_DIR="$(mktemp -d /tmp/dist_smoke.XXXXXX)"
"$ROOT/build/examples/primepar_worker" --serve --workers 2 \
    --devices 4 --steps 60 --batch 2 --hidden 16 --heads 2 --ffn 32 \
    --seq 8 --plan dp --checkpoint-every 1 \
    --checkpoint-dir "$DIST_DIR" > "$DIST_DIR/coord.log" 2>&1 &
COORD_PID=$!
PORT=""
for _ in $(seq 1 50); do
    PORT="$(sed -n 's/^PRIMEPAR_COORD_PORT=//p' \
        "$DIST_DIR/coord.log" 2> /dev/null || true)"
    [ -n "$PORT" ] && break
    sleep 0.1
done
[ -n "$PORT" ] || { echo "verify: coordinator printed no port"; \
    cat "$DIST_DIR/coord.log"; exit 1; }
"$ROOT/build/examples/primepar_worker" --connect "127.0.0.1:$PORT" \
    > "$DIST_DIR/w0.log" 2>&1 &
W0_PID=$!
"$ROOT/build/examples/primepar_worker" --connect "127.0.0.1:$PORT" \
    > "$DIST_DIR/w1.log" 2>&1 &
W1_PID=$!
# Let it reach mid-run (checkpoints land every step), then kill one
# worker the hard way.
while ! grep -q "step 1 " "$DIST_DIR/w1.log" 2> /dev/null; do
    kill -0 "$W1_PID" 2> /dev/null || break
    sleep 0.1
done
kill -9 "$W1_PID" 2> /dev/null || true
if ! wait "$COORD_PID"; then
    echo "verify: distributed job failed after SIGKILL"
    cat "$DIST_DIR/coord.log" "$DIST_DIR/w0.log"
    exit 1
fi
wait "$W0_PID" || { echo "verify: surviving worker failed"; \
    cat "$DIST_DIR/w0.log"; exit 1; }
grep -q "1 worker(s) lost" "$DIST_DIR/coord.log" || {
    echo "verify: coordinator did not record the killed worker";
    cat "$DIST_DIR/coord.log"; exit 1; }
FINAL_STEPS="$(grep -c '^final step' "$DIST_DIR/coord.log" || true)"
[ "$FINAL_STEPS" -eq 60 ] || { echo "verify: expected 60 final \
losses, got $FINAL_STEPS"; cat "$DIST_DIR/coord.log"; exit 1; }
echo "verify: distributed smoke OK (degraded to survivors, \
$FINAL_STEPS losses)"
rm -rf "$DIST_DIR"

echo "== re-join smoke: SIGKILL one of 3 workers, grow back =="
# Elastic re-join, end to end with real signals: a sharded 3-worker
# job loses one to SIGKILL, a brand-new worker --connects into the
# degraded generation, the coordinator fences a barrier step and
# re-places the restored 2^n grid, and the job must finish every step
# at full size.
RJ_DIR="$(mktemp -d /tmp/rejoin_smoke.XXXXXX)"
"$ROOT/build/examples/primepar_worker" --serve --workers 3 \
    --devices 4 --steps 40 --batch 2 --hidden 16 --heads 2 --ffn 32 \
    --seq 8 --heartbeat-ms 50 --checkpoint-every 1 \
    --checkpoint-dir "$RJ_DIR" > "$RJ_DIR/coord.log" 2>&1 &
RJ_COORD=$!
RJ_PORT=""
for _ in $(seq 1 50); do
    RJ_PORT="$(sed -n 's/^PRIMEPAR_COORD_PORT=//p' \
        "$RJ_DIR/coord.log" 2> /dev/null || true)"
    [ -n "$RJ_PORT" ] && break
    sleep 0.1
done
[ -n "$RJ_PORT" ] || { echo "verify: re-join coordinator printed no \
port"; cat "$RJ_DIR/coord.log"; exit 1; }
"$ROOT/build/examples/primepar_worker" \
    --connect "127.0.0.1:$RJ_PORT" > "$RJ_DIR/w0.log" 2>&1 &
RJ_W0=$!
"$ROOT/build/examples/primepar_worker" \
    --connect "127.0.0.1:$RJ_PORT" > "$RJ_DIR/w1.log" 2>&1 &
RJ_W1=$!
"$ROOT/build/examples/primepar_worker" \
    --connect "127.0.0.1:$RJ_PORT" > "$RJ_DIR/w2.log" 2>&1 &
RJ_W2=$!
# Let training reach mid-run, then SIGKILL the third worker.
while ! grep -q "step 1 " "$RJ_DIR/w2.log" 2> /dev/null; do
    kill -0 "$RJ_W2" 2> /dev/null || break
    sleep 0.1
done
kill -9 "$RJ_W2" 2> /dev/null || true
# The moment the coordinator records the loss, connect a fresh worker
# into the degraded generation.
while ! grep -q " lost (" "$RJ_DIR/coord.log" 2> /dev/null; do
    kill -0 "$RJ_COORD" 2> /dev/null || break
    sleep 0.1
done
"$ROOT/build/examples/primepar_worker" \
    --connect "127.0.0.1:$RJ_PORT" > "$RJ_DIR/w3.log" 2>&1 &
RJ_W3=$!
if ! wait "$RJ_COORD"; then
    echo "verify: re-join job failed"
    cat "$RJ_DIR/coord.log" "$RJ_DIR"/w*.log
    exit 1
fi
wait "$RJ_W0" || { echo "verify: survivor 0 failed"; \
    cat "$RJ_DIR/w0.log"; exit 1; }
wait "$RJ_W1" || { echo "verify: survivor 1 failed"; \
    cat "$RJ_DIR/w1.log"; exit 1; }
wait "$RJ_W3" || { echo "verify: re-joined worker failed"; \
    cat "$RJ_DIR/w3.log"; exit 1; }
grep -q "re-joined; generation now" "$RJ_DIR/coord.log" || {
    echo "verify: coordinator never re-admitted the new worker";
    cat "$RJ_DIR/coord.log"; exit 1; }
grep -q "re-joining at step" "$RJ_DIR/w3.log" || {
    echo "verify: new worker did not restore a donor checkpoint";
    cat "$RJ_DIR/w3.log"; exit 1; }
RJ_STEPS="$(grep -c '^final step' "$RJ_DIR/coord.log" || true)"
[ "$RJ_STEPS" -eq 40 ] || { echo "verify: expected 40 final losses \
after re-join, got $RJ_STEPS"; cat "$RJ_DIR/coord.log"; exit 1; }
echo "verify: re-join smoke OK (grew back to the full grid, \
$RJ_STEPS losses)"
rm -rf "$RJ_DIR"

echo "== serve smoke: daemon, store-hit repeat plan, stats =="
# The serve-labelled tests cover the store format, single-flight and
# crash safety; on top of that, run the real daemon + client binaries
# over loopback: the second identical plan request must be answered
# from the persistent store, and the stats verb must report the
# request latency histogram.
ctest --test-dir "$ROOT/build" --output-on-failure -L serve \
    -j"$(nproc)"
SERVE_DIR="$(mktemp -d /tmp/serve_smoke.XXXXXX)"
"$ROOT/build/examples/primepar_serve" --store "$SERVE_DIR/plans.pps" \
    > "$SERVE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
SPORT=""
for _ in $(seq 1 50); do
    SPORT="$(sed -n 's/^PRIMEPAR_SERVE_PORT=//p' \
        "$SERVE_DIR/serve.log" 2> /dev/null || true)"
    [ -n "$SPORT" ] && break
    sleep 0.1
done
[ -n "$SPORT" ] || { echo "verify: plan server printed no port"; \
    cat "$SERVE_DIR/serve.log"; exit 1; }
CLIENT="$ROOT/build/examples/primepar_plan_client"
"$CLIENT" --connect "127.0.0.1:$SPORT" --model "Llama2 7B" \
    --devices 8 --json > "$SERVE_DIR/first.json"
"$CLIENT" --connect "127.0.0.1:$SPORT" --model "Llama2 7B" \
    --devices 8 --json > "$SERVE_DIR/second.json"
"$CLIENT" --connect "127.0.0.1:$SPORT" --stats \
    > "$SERVE_DIR/stats.json"
"$CLIENT" --connect "127.0.0.1:$SPORT" --shutdown > /dev/null
wait "$SERVE_PID" || { echo "verify: plan server exited non-zero"; \
    cat "$SERVE_DIR/serve.log"; exit 1; }
if command -v python3 > /dev/null 2>&1; then
    python3 - "$SERVE_DIR/first.json" "$SERVE_DIR/second.json" \
        "$SERVE_DIR/stats.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    first = json.load(f)
with open(sys.argv[2]) as f:
    second = json.load(f)
with open(sys.argv[3]) as f:
    stats = json.load(f)
if not (first.get("ok") and second.get("ok")):
    sys.exit("verify: serve smoke plan request failed")
if first.get("source") != "dp":
    sys.exit(f"verify: first request expected a DP run, got "
             f"{first.get('source')!r}")
if second.get("source") != "store":
    sys.exit(f"verify: repeat request expected a store hit, got "
             f"{second.get('source')!r}")
if second["strategies"] != first["strategies"]:
    sys.exit("verify: store-served plan differs from the DP plan")
hist = stats.get("histograms", {}).get("serve.request_us")
if not hist or hist.get("count", 0) < 2:
    sys.exit("verify: stats lack the serve.request_us histogram")
print(f"verify: serve smoke OK (dp -> store hit, p50 "
      f"{hist['p50']:.0f} us / p99 {hist['p99']:.0f} us over "
      f"{hist['count']} requests)")
EOF
fi
rm -rf "$SERVE_DIR"

echo "== sanitizer (ASan+UBSan): configure + build =="
if [ "$QUICK" -eq 0 ] || [ ! -f "$ROOT/build-asan/CMakeCache.txt" ]; then
    cmake -B "$ROOT/build-asan" -S "$ROOT" \
        -DPRIMEPAR_SANITIZE=ON > /dev/null
fi
cmake --build "$ROOT/build-asan" -j"$(nproc)" \
    --target test_fault test_codec test_optimizer test_dist \
    test_serve primepar_worker

echo "== sanitizer: fault + codec + planner + dist + serve tests =="
ctest --test-dir "$ROOT/build-asan" --output-on-failure \
    -L 'fault|codec|planner|dist|serve' -j"$(nproc)"

echo "verify.sh: all gates passed"
