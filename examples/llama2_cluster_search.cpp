/**
 * @file
 * Scenario: choosing a tensor-parallel training strategy for a full
 * Llama2 7B transformer layer on a 16-GPU cluster (4 nodes x 4 V100).
 *
 * Runs the complete PrimePar pipeline: profile the cluster, build the
 * layer graph, search the spatial-temporal space with the segmented
 * DP, and report strategy, throughput and memory against the
 * Megatron-LM baseline — including the effect of the memory weight
 * alpha of Eq. 7.
 */

#include <cstdio>

#include "baselines/megatron.hh"
#include "graph/transformer.hh"
#include "optimizer/segmented_dp.hh"
#include "sim/model_sim.hh"
#include "support/table.hh"

using namespace primepar;

int
main()
{
    const ModelConfig model = llama2_7b();
    const int devices = 16;
    const std::int64_t batch = 8;

    const ClusterTopology topo = ClusterTopology::paperCluster(devices);
    std::printf("cluster: %d nodes x %d GPUs, NVLink %.0f GB/s, "
                "inter-node %.1f GB/s\n",
                topo.numNodes(), topo.gpusPerNode(),
                topo.intraBandwidth() / 1e3,
                topo.interBandwidth() / 1e3);

    std::printf("profiling communication patterns...\n");
    const ProfiledModels models = profileModels(topo);
    const CompGraph graph = buildTransformerBlock(model, batch);

    TextTable table;
    table.header({"plan", "tok/s", "iteration ms", "collective ms",
                  "peak mem GiB", "search ms"});

    auto add_row = [&](const char *name,
                       const std::vector<PartitionSeq> &strategies,
                       double search_ms) {
        const ModelSimulator sim(topo, graph, strategies);
        const ModelSimResult r = sim.simulate(model.numLayers);
        table.row({name,
                   fmtDouble(batch * model.seqLength /
                                 (r.latencyUs * 1e-6),
                             0),
                   fmtDouble(r.latencyUs / 1e3, 1),
                   fmtDouble(r.allReduceUs / 1e3, 1),
                   fmtDouble(r.peakMemoryBytes / (1 << 30), 2),
                   fmtDouble(search_ms, 1)});
    };

    {
        const CostModel cost(topo, models);
        const MegatronPlan plan = bestMegatronPlan(graph, cost);
        std::printf("Megatron best config: d=%d, m=%d\n",
                    plan.config.dataParallel, plan.config.modelParallel);
        add_row("Megatron", plan.strategies, 0.0);
    }
    // One catalog cache across the alpha sweep: alpha is part of the
    // cost fingerprint, so entries never alias, and repeated searches
    // under one alpha (or alpha = 0 rebuilds) reuse their catalogs.
    const auto cache = std::make_shared<CatalogCache>();
    for (double alpha : {0.0, 20.0}) {
        const CostModel cost(topo, models, alpha);
        DpOptions opts;
        opts.numLayers = model.numLayers;
        opts.numThreads = 0; // all hardware threads; plan unchanged
        opts.catalogCache = cache;
        const DpResult pp =
            SegmentedDpOptimizer(graph, cost, opts).optimize();
        const std::string name =
            "PrimePar alpha=" + fmtDouble(alpha, 0);
        add_row(name.c_str(), pp.strategies, pp.optimizationMs);
        if (alpha == 0.0) {
            std::printf("\nPrimePar strategies (alpha=0):\n");
            for (int n = 0; n < graph.numNodes(); ++n) {
                std::printf("  %-10s %s\n", graph.node(n).name.c_str(),
                            pp.strategies[n]
                                .toString(graph.node(n))
                                .c_str());
            }
            std::printf("\n");
        }
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
