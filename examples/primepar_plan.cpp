/**
 * @file
 * `primepar_plan` — command-line strategy planner.
 *
 * Plans a tensor-parallel training strategy for one of the evaluation
 * models on a chosen cluster size, prints the per-operator partition
 * sequences and the predicted iteration latency / memory, and can
 * optionally emit a chrome://tracing timeline of the simulated step.
 *
 * Usage:
 *   primepar_plan [--model "<name>"] [--devices N] [--batch B]
 *                 [--alpha A] [--layers L] [--threads T] [--no-psquare]
 *                 [--no-batch-dim] [--trace FILE.json] [--compare]
 *                 [--no-prune] [--beam-width N] [--metrics-out F.json]
 *
 * Model names: "OPT 6.7B", "OPT 175B", "Llama2 7B", "Llama2 70B",
 * "BLOOM 7B1", "BLOOM 176B".
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "primepar.hh"
#include "support/table.hh"

using namespace primepar;

namespace {

struct Options
{
    std::string model = "Llama2 7B";
    int devices = 8;
    std::int64_t batch = 8;
    double alpha = 0.0;
    int layers = 0;  // 0 = model default
    int threads = 0; // planner threads, 0 = hardware concurrency
    bool psquare = true;
    bool batchDim = true;
    bool compare = false;
    bool prune = true;  // exact dominance pruning (A/B: --no-prune)
    int beamWidth = 0;  // 0 = exact; > 0 = certified-gap beam
    int maxTemporalSteps = 0; // 0 = unbounded per-operator space
    std::string traceFile;
    std::string metricsFile;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--model") {
            opts.model = next();
        } else if (arg == "--devices") {
            opts.devices = std::atoi(next());
        } else if (arg == "--batch") {
            opts.batch = std::atoll(next());
        } else if (arg == "--alpha") {
            opts.alpha = std::atof(next());
        } else if (arg == "--layers") {
            opts.layers = std::atoi(next());
        } else if (arg == "--threads") {
            opts.threads = std::atoi(next());
        } else if (arg == "--no-psquare") {
            opts.psquare = false;
        } else if (arg == "--no-batch-dim") {
            opts.batchDim = false;
        } else if (arg == "--compare") {
            opts.compare = true;
        } else if (arg == "--trace") {
            opts.traceFile = next();
        } else if (arg == "--no-prune") {
            opts.prune = false;
        } else if (arg == "--beam-width") {
            opts.beamWidth = std::atoi(next());
        } else if (arg == "--max-temporal-steps") {
            opts.maxTemporalSteps = std::atoi(next());
        } else if (arg == "--metrics-out") {
            opts.metricsFile = next();
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: primepar_plan [--model NAME] [--devices N] "
                "[--batch B]\n"
                "                     [--alpha US_PER_MIB] [--layers L]"
                " [--threads T]\n"
                "                     [--no-psquare] [--no-batch-dim]"
                " [--trace F.json]\n"
                "                     [--compare] [--no-prune]"
                " [--beam-width N]\n"
                "                     [--max-temporal-steps K]"
                " [--metrics-out F.json]\n");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument %s (try --help)\n",
                         arg.c_str());
            std::exit(2);
        }
    }
    if (opts.devices < 1 || !isPowerOfTwo(opts.devices)) {
        throw InputError("--devices must be a positive power of two "
                         "(got " +
                         std::to_string(opts.devices) +
                         "); the paper cluster tiles 2^k devices");
    }
    if (opts.beamWidth < 0) {
        throw InputError("--beam-width must be >= 0 (got " +
                         std::to_string(opts.beamWidth) + ")");
    }
    if (opts.maxTemporalSteps < 0 ||
        (opts.maxTemporalSteps != 0 &&
         !isPowerOfTwo(opts.maxTemporalSteps))) {
        throw InputError(
            "--max-temporal-steps must be 0 (unbounded) or a power of "
            "two (got " +
            std::to_string(opts.maxTemporalSteps) + ")");
    }
    return opts;
}

} // namespace

int
run(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    ModelConfig model = modelByName(opts.model);
    if (opts.layers > 0)
        model.numLayers = opts.layers;

    const ClusterTopology topo =
        ClusterTopology::paperCluster(opts.devices);
    std::printf("model %s (%.1fB params, %d layers), %d devices "
                "(%d nodes x %d), batch %lld\n\n",
                model.name.c_str(), model.totalParams() / 1e9,
                model.numLayers, opts.devices, topo.numNodes(),
                topo.gpusPerNode(),
                static_cast<long long>(opts.batch));

    const CostModel cost(topo, profileModels(topo), opts.alpha);
    const CompGraph graph = buildTransformerBlock(model, opts.batch);

    MetricsRegistry metrics;
    DpOptions dp;
    dp.numLayers = model.numLayers;
    dp.numThreads = opts.threads;
    dp.space.allowPSquare = opts.psquare;
    if (!opts.batchDim)
        dp.space.excludedDims = {0};
    dp.pruneDominated = opts.prune;
    dp.beamWidth = opts.beamWidth;
    if (opts.maxTemporalSteps > 0)
        dp.space.maxTemporalSteps = opts.maxTemporalSteps;
    dp.metrics = &metrics;
    const DpResult plan = SegmentedDpOptimizer(graph, cost, dp).optimize();

    std::printf("strategy (search took %.1f ms: catalogs %.1f, "
                "pilot %.1f, edge tables %.1f, DP %.1f):\n",
                plan.optimizationMs, plan.catalogMs, plan.pilotMs,
                plan.edgeTableMs, plan.dpMs);
    if (plan.truncated) {
        std::printf("  beam width %d truncated the space: cost is "
                    "within %.2f%% of optimal (certified)\n",
                    opts.beamWidth, plan.gapPct);
    }
    for (int n = 0; n < graph.numNodes(); ++n) {
        std::printf("  %-10s %s\n", graph.node(n).name.c_str(),
                    plan.strategies[n].toString(graph.node(n)).c_str());
    }

    const ModelSimulator sim(topo, graph, plan.strategies);
    Trace trace;
    const ModelSimResult r = sim.simulate(
        model.numLayers, opts.traceFile.empty() ? nullptr : &trace);
    const double gib = 1024.0 * 1024.0 * 1024.0;
    std::printf("\npredicted iteration: %.1f ms (compute %.1f, "
                "collective %.1f, ring %.1f, redist %.1f)\n",
                r.latencyUs / 1e3, r.computeUs / 1e3,
                r.allReduceUs / 1e3, r.ringUs / 1e3, r.redistUs / 1e3);
    std::printf("throughput: %.0f tokens/s; peak memory %.2f GiB "
                "per device\n",
                opts.batch * model.seqLength / (r.latencyUs * 1e-6),
                r.peakMemoryBytes / gib);

    if (!opts.traceFile.empty()) {
        std::ofstream out(opts.traceFile);
        out << trace.toChromeJson();
        std::printf("timeline written to %s (open in a Chrome trace "
                    "viewer)\n",
                    opts.traceFile.c_str());
    }

    if (opts.compare) {
        std::printf("\nbaselines:\n");
        TextTable table;
        table.header(
            {"system", "iteration ms", "tok/s", "peak mem GiB"});
        auto add = [&](const char *name,
                       const std::vector<PartitionSeq> &strategies) {
            const ModelSimulator s(topo, graph, strategies);
            const ModelSimResult m = s.simulate(model.numLayers);
            table.row({name, fmtDouble(m.latencyUs / 1e3, 1),
                       fmtDouble(opts.batch * model.seqLength /
                                     (m.latencyUs * 1e-6),
                                 0),
                       fmtDouble(m.peakMemoryBytes / gib, 2)});
        };
        add("PrimePar", plan.strategies);
        const MegatronPlan mg = bestMegatronPlan(graph, cost);
        add("Megatron", mg.strategies);
        const DpResult alpa = alpaOptimize(graph, cost, model.numLayers);
        add("Alpa-like", alpa.strategies);
        std::printf("%s", table.render().c_str());
    }

    if (!opts.metricsFile.empty()) {
        saveJsonFile(opts.metricsFile, metrics.snapshotJson());
        std::printf("planner metrics written to %s\n",
                    opts.metricsFile.c_str());
    }
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const InputError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
