/**
 * @file
 * `primepar_calibrate` — cost-model calibration against the real
 * SPMD runtime (paper Sec. 4.1 methodology, Table 1 patterns).
 *
 * The paper fits its linear latency models by profiling the target
 * system once per cluster. This tool is that profiling run for the
 * repo's real (emulated-device) runtime: it measures
 *
 *  - matmul-class kernels (GEMM wall time vs flops),
 *  - memory-bound kernels (elementwise activation vs bytes touched),
 *  - ring shift sets (one transfer per device through the framed
 *    InProcessTransport, vs bytes per transfer),
 *  - grouped all-reduces, one fit per communication group pattern
 *    (reduce-to-leader + broadcast over every group, vs payload
 *    bytes per device),
 *  - redistribution traffic (slice/assign copies vs bytes moved),
 *
 * fits a LinearModel per series (fitLinear), reports R^2, writes the
 * versioned `primepar-profiled-models-v1` JSON (cost/calibration.hh),
 * re-loads it to prove the round-trip is exact, and finishes with a
 * predicted-vs-measured report: CostModel::intraCost() on the fitted
 * models against wall-clock SpmdOpExecutor runs of the same plans.
 *
 * Usage:
 *   primepar_calibrate [--devices D] [--out FILE] [--quick]
 *                      [--min-r2 X]
 *
 * --min-r2 X exits non-zero when any fit's R^2 falls below X (the CI
 * smoke gate uses 0.9).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cost/calibration.hh"
#include "cost/cost_model.hh"
#include "runtime/observer.hh"
#include "runtime/spmd_executor.hh"
#include "runtime/transport.hh"
#include "support/bits.hh"
#include "support/rng.hh"
#include "tensor/ops.hh"

using namespace primepar;

namespace {

struct Options
{
    int devices = 4;
    std::string out = "calibration.json";
    bool quick = false;
    double minR2 = 0.0;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--devices") {
            opts.devices = std::atoi(next());
        } else if (arg == "--out") {
            opts.out = next();
        } else if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--min-r2") {
            opts.minR2 = std::atof(next());
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: primepar_calibrate [--devices D]"
                        " [--out FILE] [--quick] [--min-r2 X]\n");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument %s (try --help)\n",
                         arg.c_str());
            std::exit(2);
        }
    }
    if (!isPowerOfTwo(opts.devices) || opts.devices < 2) {
        std::fprintf(stderr,
                     "--devices must be a power of two (>= 2)\n");
        std::exit(2);
    }
    return opts;
}

int
log2i(int v)
{
    int bits = 0;
    while ((1 << bits) < v)
        ++bits;
    return bits;
}

/** Median wall time of @p reps timed runs of @p body (after one
 *  warm-up run), in microseconds. */
template <typename Fn>
double
timeUs(int reps, Fn &&body)
{
    body(); // warm-up: page in buffers, settle the allocator
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        const double t0 = observerNowUs();
        body();
        samples.push_back(observerNowUs() - t0);
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

struct FitSeries
{
    std::vector<double> xs;
    std::vector<double> ys;

    LinearModel
    fit(double *r2_out) const
    {
        const LinearModel m = fitLinear(xs, ys);
        if (r2_out)
            *r2_out = rSquared(m, xs, ys);
        return m;
    }
};

/** All grad-free tensors (plus "dO") an executor run() needs. */
std::map<std::string, Tensor>
makeInputs(const OpSpec &op, Rng &rng)
{
    std::map<std::string, Tensor> inputs;
    for (std::size_t t = 0; t < op.tensors.size(); ++t) {
        Shape shape;
        for (int d : op.tensors[t].dims)
            shape.push_back(op.dims[d].size);
        if (static_cast<int>(t) == op.outputTensor)
            inputs["d" + op.tensors[t].name] =
                Tensor::random(shape, rng);
        else
            inputs[op.tensors[t].name] = Tensor::random(shape, rng);
    }
    return inputs;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    const int bits = log2i(opts.devices);
    const int reps = opts.quick ? 3 : 7;
    const auto topo = ClusterTopology::paperCluster(opts.devices);
    Rng rng(4242);

    std::printf("calibrating against the SPMD runtime: 2^%d devices,"
                " %d reps per sample%s\n\n",
                bits, reps, opts.quick ? " (quick)" : "");

    ProfiledModels models;
    CalibrationInfo info;
    info.source =
        "spmd-runtime/" + std::to_string(opts.devices) + "dev";
    bool r2_ok = true;

    auto report = [&](const std::string &name, const LinearModel &m,
                      double r2) {
        std::printf("  %-22s intercept %10.3f us  slope %.3e  "
                    "R^2 %.4f\n",
                    name.c_str(), m.intercept, m.slope, r2);
        info.r2[name] = r2;
        if (r2 < opts.minR2)
            r2_ok = false;
    };

    // ---- Matmul-class kernel: GEMM wall time vs flops. ----
    std::printf("[1/5] matmul kernel\n");
    {
        FitSeries series;
        const std::vector<std::int64_t> sizes =
            opts.quick ? std::vector<std::int64_t>{32, 48, 64, 96}
                       : std::vector<std::int64_t>{48, 64, 96, 128,
                                                   160, 192};
        for (const std::int64_t n : sizes) {
            const Tensor a = Tensor::random({n, n}, rng);
            const Tensor b = Tensor::random({n, n}, rng);
            const double us =
                timeUs(reps, [&] { (void)linearGradient(a, b); });
            series.xs.push_back(2.0 * static_cast<double>(n) *
                                static_cast<double>(n) *
                                static_cast<double>(n));
            series.ys.push_back(us);
        }
        double r2 = 0.0;
        models.matmulKernel = series.fit(&r2);
        report("matmul_kernel", models.matmulKernel, r2);
    }

    // ---- Memory-bound kernel: activation wall time vs bytes. ----
    std::printf("[2/5] memory kernel\n");
    {
        FitSeries series;
        const int lo = opts.quick ? 13 : 14;
        const int hi = opts.quick ? 17 : 19;
        for (int p = lo; p <= hi; ++p) {
            const std::int64_t numel = std::int64_t{1} << p;
            const Tensor x = Tensor::random({numel}, rng);
            const double us = timeUs(reps, [&] { (void)gelu(x); });
            // Feature: bytes touched (input read + output written),
            // matching CostModel's per-pass operand+output slice sum.
            series.xs.push_back(2.0 * static_cast<double>(numel) *
                                sizeof(float));
            series.ys.push_back(us);
        }
        double r2 = 0.0;
        models.memoryKernel = series.fit(&r2);
        report("memory_kernel", models.memoryKernel, r2);
    }

    // ---- Ring shift set: one framed transfer per device. ----
    // CostModel::ringSetLatency charges one model evaluation per
    // ShiftSet, so the fit measures a whole set (numDevices
    // transfers through InProcessTransport) vs bytes per transfer.
    std::printf("[3/5] ring shift set (%d transfers/set)\n",
                opts.devices);
    {
        InProcessTransport transport;
        FitSeries series;
        const int lo = opts.quick ? 10 : 12;
        const int hi = opts.quick ? 14 : 17;
        for (int p = lo; p <= hi; ++p) {
            const std::int64_t numel = std::int64_t{1} << p;
            std::vector<Tensor> slots;
            for (int d = 0; d < opts.devices; ++d)
                slots.push_back(Tensor::random({numel}, rng));
            std::vector<Tensor> dst(slots);
            const double us = timeUs(reps, [&] {
                for (int d = 0; d < opts.devices; ++d) {
                    TransferTag tag;
                    tag.tensor = "ringcal";
                    tag.channel = "ring";
                    tag.sender = d;
                    tag.receiver = (d + 1) % opts.devices;
                    transport.transferInto(tag, slots[d],
                                           dst[tag.receiver]);
                }
            });
            series.xs.push_back(static_cast<double>(numel) *
                                sizeof(float));
            series.ys.push_back(us);
        }
        double r2 = 0.0;
        const LinearModel m = series.fit(&r2);
        // In-process there is no separate link class; both entries
        // get the measured fit so any topology classification works.
        models.ringHop[0] = m;
        models.ringHop[1] = m;
        report("ring_hop", m, r2);
    }

    // ---- Grouped all-reduce, one fit per group pattern key. ----
    // Mirrors the executor's collective: per group, reduce to the
    // leader then broadcast, every hop a framed transfer. Feature is
    // payload bytes per device (AllReduceSpec::elementsPerDevice).
    std::printf("[4/5] grouped all-reduce patterns\n");
    {
        // One representative indicator per distinct pattern key.
        std::map<GroupPatternKey, GroupIndicator> patterns;
        for (unsigned mask = 1; mask < (1u << bits); ++mask) {
            GroupIndicator ind;
            for (int b = 0; b < bits; ++b) {
                if (mask & (1u << b))
                    ind.push_back(b);
            }
            patterns.emplace(groupPatternKey(topo, ind), ind);
        }
        InProcessTransport transport;
        for (const auto &[key, indicator] : patterns) {
            const auto groups = enumerateGroups(bits, indicator);
            FitSeries series;
            const int lo = opts.quick ? 10 : 12;
            const int hi = opts.quick ? 14 : 16;
            for (int p = lo; p <= hi; ++p) {
                const std::int64_t numel = std::int64_t{1} << p;
                std::vector<Tensor> slots;
                for (int d = 0; d < opts.devices; ++d)
                    slots.push_back(Tensor::random({numel}, rng));
                const double us = timeUs(reps, [&] {
                    for (const DeviceGroup &group : groups) {
                        if (group.size() < 2)
                            continue;
                        Tensor sum = slots[group[0]];
                        TransferTag tag;
                        tag.tensor = "arcal";
                        tag.channel = "allreduce";
                        for (std::size_t i = 1; i < group.size();
                             ++i) {
                            tag.sender = group[i];
                            tag.receiver = group[0];
                            sum.add(transport.transfer(
                                tag, slots[group[i]]));
                        }
                        for (std::size_t i = 1; i < group.size();
                             ++i) {
                            tag.sender = group[0];
                            tag.receiver = group[i];
                            transport.transferInto(tag, sum,
                                                   slots[group[i]]);
                        }
                    }
                });
                series.xs.push_back(static_cast<double>(numel) *
                                    sizeof(float));
                series.ys.push_back(us);
            }
            double r2 = 0.0;
            models.allReduce[key] = series.fit(&r2);
            report("all_reduce.i" +
                       std::to_string(key.interNodeBits) + ".n" +
                       std::to_string(key.intraNodeBits),
                   models.allReduce[key], r2);
        }
    }

    // ---- Redistribution: slice + reassemble copies vs bytes. ----
    std::printf("[5/5] redistribution\n");
    {
        FitSeries series;
        const int lo = opts.quick ? 12 : 14;
        const int hi = opts.quick ? 16 : 18;
        for (int p = lo; p <= hi; ++p) {
            const std::int64_t rows = std::int64_t{1} << (p - 6);
            Tensor full = Tensor::random({rows, 64}, rng);
            Tensor target(full.shape());
            const std::int64_t half = rows / 2;
            const double us = timeUs(reps, [&] {
                // Move both halves through slice/assign — exactly
                // the executor's scatter/gather primitive.
                target.assignSlice({0, 0},
                                   full.slice({0, 0}, {half, 64}));
                target.assignSlice(
                    {half, 0}, full.slice({half, 0}, {half, 64}));
            });
            series.xs.push_back(static_cast<double>(rows) * 64 *
                                sizeof(float));
            series.ys.push_back(us);
        }
        double r2 = 0.0;
        const LinearModel m = series.fit(&r2);
        models.redistribution[0] = m;
        models.redistribution[1] = m;
        report("redistribution", m, r2);
    }

    // ---- Persist + exact round-trip. ----
    saveProfiledModels(opts.out, models, &info);
    CalibrationInfo reloaded_info;
    const ProfiledModels reloaded =
        loadProfiledModels(opts.out, &reloaded_info);
    auto same = [](const LinearModel &a, const LinearModel &b) {
        return a.intercept == b.intercept && a.slope == b.slope;
    };
    bool roundtrip = same(reloaded.matmulKernel, models.matmulKernel) &&
                     same(reloaded.memoryKernel, models.memoryKernel) &&
                     same(reloaded.ringHop[0], models.ringHop[0]) &&
                     same(reloaded.ringHop[1], models.ringHop[1]) &&
                     same(reloaded.redistribution[0],
                          models.redistribution[0]) &&
                     same(reloaded.redistribution[1],
                          models.redistribution[1]) &&
                     reloaded.allReduce.size() ==
                         models.allReduce.size() &&
                     reloaded_info.source == info.source;
    for (const auto &[key, model] : models.allReduce) {
        const auto it = reloaded.allReduce.find(key);
        roundtrip = roundtrip && it != reloaded.allReduce.end() &&
                    same(it->second, model);
    }
    std::printf("\nmodels written to %s (round-trip %s)\n",
                opts.out.c_str(), roundtrip ? "exact" : "MISMATCH");

    // ---- Predicted vs measured on real executor runs. ----
    std::printf("\npredicted vs measured (CostModel::intraCost vs"
                " SpmdOpExecutor wall time):\n");
    const CostModel cost(topo, models);
    ThreadPool pool(opts.devices);
    InProcessTransport transport;

    struct Case
    {
        const char *label;
        OpSpec op;
        PartitionSeq seq;
    };
    std::vector<Case> cases;
    {
        OpSpec fc = makeLinearOp("fc", 4, 128, 128, 128);
        fc.bytesPerElement = 4.0;
        if (bits >= 2)
            cases.push_back({"linear PSquare",
                             fc,
                             PartitionSeq({PartitionStep::pSquare(1)})});
        OpSpec col = makeLinearOp("fc_col", 4, 128, 128, 128);
        col.bytesPerElement = 4.0;
        PartitionSeq colseq;
        for (int b = 0; b < bits; ++b)
            colseq.push(PartitionStep::byDim(2)); // contracted dim
        cases.push_back({"linear contracted-split (all-reduce)",
                         col, colseq});
        OpSpec act =
            makeElementwiseOp("gelu_act", {"B", "M", "H"},
                              {4, 128, 256});
        act.bytesPerElement = 4.0;
        PartitionSeq actseq;
        for (int b = 0; b < bits; ++b)
            actseq.push(PartitionStep::byDim(1));
        cases.push_back({"elementwise gelu", act, actseq});
    }

    double worst_rel = 0.0;
    for (const Case &c : cases) {
        const OpPlan plan(c.op, c.seq, bits);
        const double predicted = cost.intraCost(plan).latencyUs;
        SpmdOpExecutor exec(c.op, c.seq, bits);
        exec.setThreadPool(&pool);
        exec.setTransport(&transport);
        const auto inputs = makeInputs(c.op, rng);
        const double measured =
            timeUs(reps, [&] { (void)exec.run(inputs); });
        const double rel = measured > 0.0
                               ? (predicted - measured) / measured
                               : 0.0;
        worst_rel = std::max(worst_rel, std::abs(rel));
        std::printf("  %-36s predicted %9.1f us  measured %9.1f us"
                    "  rel err %+6.1f%%\n",
                    c.label, predicted, measured, rel * 100.0);
    }
    std::printf("  worst |relative error|: %.1f%% (measured includes"
                " scatter/gather, predictions do not)\n",
                worst_rel * 100.0);

    if (!roundtrip) {
        std::fprintf(stderr, "error: JSON round-trip mismatch\n");
        return 1;
    }
    if (!r2_ok) {
        std::fprintf(stderr,
                     "error: a fit fell below --min-r2 %.2f\n",
                     opts.minR2);
        return 1;
    }
    return 0;
}
