/**
 * @file
 * `primepar_train` — fault-tolerant training loop demo.
 *
 * Trains a transformer block on emulated devices through the
 * fault-injecting transport: per-step losses, periodic checkpoints,
 * resume, and graceful degradation when a device permanently fails
 * (re-plan on the surviving grid + restore of the last checkpoint).
 *
 * Usage:
 *   primepar_train [--steps N] [--devices D] [--threads T] [--batch B]
 *                  [--hidden H] [--heads A] [--ffn F] [--seq S]
 *                  [--lr LR] [--momentum M] [--seed SEED]
 *                  [--checkpoint FILE] [--checkpoint-every N]
 *                  [--resume] [--fault-spec SPEC] [--plan dp|heuristic]
 *                  [--codec SPEC] [--no-overlap]
 *                  [--trace-out FILE] [--metrics-out FILE]
 *
 * Observability: --trace-out records every runtime span through a
 * TracingObserver and writes Chrome-trace JSON (open in a trace
 * viewer) plus an ASCII per-kind summary on stdout; --metrics-out
 * snapshots the MetricsRegistry (counters, histograms, buffer-pool
 * hit rate) to a primepar-metrics-v1 JSON file.
 *
 * Communication: ring shifts overlap with compute by default
 * (--no-overlap forces the serial barrier pipeline — useful for A/B
 * timing; both produce bit-identical results). --codec compresses
 * wire traffic per channel (see CodecConfig::parse), e.g.:
 *   --codec pack                  # lossless bit-packing, everywhere
 *   --codec "ring=pack,allreduce=bf16"
 * After training the demo prints raw vs on-wire bytes so the codec's
 * effect is visible.
 *
 * Fault specs (see FaultSpec::parse), e.g.:
 *   --fault-spec "drop=0.01,corrupt=0.005,seed=7"
 *   --fault-spec "fail@step=5:dev=2"
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fstream>

#include "optimizer/segmented_dp.hh"
#include "runtime/metrics.hh"
#include "runtime/observer.hh"
#include "runtime/trainer.hh"
#include "support/bits.hh"
#include "support/json.hh"

using namespace primepar;

namespace {

struct Options
{
    int steps = 10;
    int devices = 4;
    int threads = 1;
    std::int64_t batch = 4;
    std::int64_t hidden = 32;
    std::int64_t heads = 4;
    std::int64_t ffn = 64;
    std::int64_t seq = 16;
    double lr = 0.01;
    double momentum = 0.9;
    std::uint64_t seed = 1234;
    std::string checkpoint;
    int checkpointEvery = 0;
    bool resume = false;
    std::string faultSpec;
    std::string plan = "heuristic";
    std::string codec;
    bool overlap = true;
    std::string traceOut;
    std::string metricsOut;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--steps") {
            opts.steps = std::atoi(next());
        } else if (arg == "--devices") {
            opts.devices = std::atoi(next());
        } else if (arg == "--threads") {
            opts.threads = std::atoi(next());
        } else if (arg == "--batch") {
            opts.batch = std::atoll(next());
        } else if (arg == "--hidden") {
            opts.hidden = std::atoll(next());
        } else if (arg == "--heads") {
            opts.heads = std::atoll(next());
        } else if (arg == "--ffn") {
            opts.ffn = std::atoll(next());
        } else if (arg == "--seq") {
            opts.seq = std::atoll(next());
        } else if (arg == "--lr") {
            opts.lr = std::atof(next());
        } else if (arg == "--momentum") {
            opts.momentum = std::atof(next());
        } else if (arg == "--seed") {
            opts.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--checkpoint") {
            opts.checkpoint = next();
        } else if (arg == "--checkpoint-every") {
            opts.checkpointEvery = std::atoi(next());
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--fault-spec") {
            opts.faultSpec = next();
        } else if (arg == "--plan") {
            opts.plan = next();
        } else if (arg == "--codec") {
            opts.codec = next();
        } else if (arg == "--no-overlap") {
            opts.overlap = false;
        } else if (arg == "--trace-out") {
            opts.traceOut = next();
        } else if (arg == "--metrics-out") {
            opts.metricsOut = next();
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: primepar_train [--steps N] [--devices D]"
                " [--threads T] [--batch B]\n"
                "            [--hidden H] [--heads A] [--ffn F]"
                " [--seq S] [--lr LR]\n"
                "            [--momentum M] [--seed SEED]"
                " [--checkpoint FILE]\n"
                "            [--checkpoint-every N] [--resume]"
                " [--fault-spec SPEC]\n"
                "            [--plan dp|heuristic] [--codec SPEC]"
                " [--no-overlap]\n"
                "            [--trace-out FILE]"
                " [--metrics-out FILE]\n"
                "exit codes: 0 ok, 1 internal, 2 usage, 3 transient"
                " fault,\n"
                "            4 device lost, 5 checkpoint, 6 fenced\n");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument %s (try --help)\n",
                         arg.c_str());
            std::exit(2);
        }
    }
    if (!isPowerOfTwo(opts.devices)) {
        std::fprintf(stderr, "--devices must be a power of two\n");
        std::exit(2);
    }
    if (opts.plan != "dp" && opts.plan != "heuristic") {
        std::fprintf(stderr, "--plan must be dp or heuristic\n");
        std::exit(2);
    }
    if (opts.resume && opts.checkpoint.empty()) {
        std::fprintf(stderr, "--resume requires --checkpoint FILE\n");
        std::exit(2);
    }
    return opts;
}

int
log2i(int v)
{
    int bits = 0;
    while ((1 << bits) < v)
        ++bits;
    return bits;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);

    TrainerOptions topts;
    topts.model.name = "custom";
    topts.model.hiddenSize = opts.hidden;
    topts.model.numHeads = opts.heads;
    topts.model.ffnSize = opts.ffn;
    topts.model.seqLength = opts.seq;
    topts.model.numLayers = 1;
    topts.batch = opts.batch;
    topts.runtime.numBits = log2i(opts.devices);
    topts.runtime.execution.numThreads = opts.threads;
    topts.runtime.execution.overlapComm = opts.overlap;
    topts.lr = opts.lr;
    topts.momentum = opts.momentum;
    topts.seed = opts.seed;
    topts.runtime.checkpoint.path = opts.checkpoint;
    topts.runtime.checkpoint.every = opts.checkpointEvery;
    if (opts.plan == "dp") {
        // Re-planning (initial and after a device failure) through the
        // segmented-DP optimizer on the current grid size. The DP may
        // partition a layernorm's normalized dim (cost-model-only
        // execution); the functional executor cannot run that, so such
        // nodes fall back to the heuristic strategy.
        topts.replanner = [](const CompGraph &g, int bits) {
            DpOptions dp;
            dp.numThreads = 0;
            std::vector<PartitionSeq> plan =
                replanForSurvivors(g, 1 << bits, dp).strategies;
            const auto fallback = defaultBlockPlan(g, bits);
            for (int n = 0; n < g.numNodes(); ++n) {
                const OpSpec &op = g.node(n);
                if (op.normalizedDim >= 0 &&
                    plan[n].sliceCounts(op)[op.normalizedDim] > 1)
                    plan[n] = fallback[n];
            }
            return plan;
        };
    }

    try {
        if (!opts.faultSpec.empty())
            topts.runtime.faults = FaultSpec::parse(opts.faultSpec);
        if (!opts.codec.empty())
            topts.runtime.transport.codec =
                CodecConfig::parse(opts.codec);

        std::printf("training %lldx%lldx%lld block on %d devices"
                    " (plan: %s%s)\n",
                    static_cast<long long>(opts.hidden),
                    static_cast<long long>(opts.ffn),
                    static_cast<long long>(opts.seq), opts.devices,
                    opts.plan.c_str(),
                    topts.runtime.faults.enabled() ? ", faults on" : "");

        BlockTrainer trainer(topts);
        TracingObserver tracer;
        MetricsRegistry registry;
        MetricsObserver metrics(&registry);
        if (!opts.traceOut.empty())
            trainer.addObserver(&tracer);
        if (!opts.metricsOut.empty())
            trainer.addObserver(&metrics);
        if (opts.resume) {
            trainer.resumeFromCheckpointFile();
            std::printf("resumed from '%s' at step %lld\n",
                        opts.checkpoint.c_str(),
                        static_cast<long long>(trainer.step()));
        }

        while (trainer.step() < opts.steps) {
            const StepStats stats = trainer.trainStep();
            std::printf("step %4lld  loss % .6f  (2^%d devices)\n",
                        static_cast<long long>(stats.step), stats.loss,
                        trainer.deviceBits());
        }
        if (!opts.checkpoint.empty())
            trainer.saveCheckpointNow();

        if (!opts.traceOut.empty()) {
            const Trace trace = tracer.snapshot();
            std::ofstream out(opts.traceOut);
            out << trace.toChromeJson();
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             opts.traceOut.c_str());
                return 1;
            }
            std::printf("\n%s", trace.summary().c_str());
            std::printf("trace written to %s\n", opts.traceOut.c_str());
        }
        if (!opts.metricsOut.empty()) {
            saveJsonFile(opts.metricsOut, registry.snapshotJson());
            std::printf("metrics written to %s\n",
                        opts.metricsOut.c_str());
        }

        // Communication volume: the last step's logical payloads plus
        // the run's exact per-transfer raw/wire byte totals (these
        // differ from CommVolume::rawBytes() when all-reduces ran —
        // the wire carries gather + broadcast hops).
        const CommVolume comm = trainer.lastStepComm();
        const RuntimeHealth &health = trainer.health();
        std::printf("\nlast step comm: %lld ring elements, "
                    "%lld all-reduce elements (%d reduces), "
                    "%lld raw bytes\n",
                    static_cast<long long>(comm.ringElements),
                    static_cast<long long>(comm.allReduceElements),
                    comm.allReduceCount,
                    static_cast<long long>(comm.rawBytes()));
        if (health.transfers > 0 && health.bytesMoved > 0) {
            std::printf(
                "wire traffic (run total): raw %lld bytes, on wire "
                "%lld bytes (%.2fx%s%s)\n",
                static_cast<long long>(health.bytesMoved),
                static_cast<long long>(health.bytesOnWire),
                static_cast<double>(health.bytesOnWire) /
                    static_cast<double>(health.bytesMoved),
                opts.codec.empty() ? "" : ", codec ",
                opts.codec.c_str());
        }

        std::printf("\n%s\n", trainer.health().report().c_str());
        return 0;
    } catch (const DeviceFailedError &err) {
        std::fprintf(stderr,
                     "unrecoverable: %s (replan budget exhausted)\n",
                     err.what());
        return exitcode::DeviceLost;
    } catch (const std::exception &err) {
        // Distinct, documented exit codes per failure class (see
        // --help and runtime/errors.hh): scripts branch on *why* a
        // run failed, not just that it did.
        std::fprintf(stderr, "error: %s\n", err.what());
        return exitcode::forCurrentException();
    }
}
