/**
 * @file
 * `primepar_worker` — multi-process distributed training.
 *
 * One binary, two roles:
 *
 *   primepar_worker --serve --workers 2 [--steps N] [--devices D] ...
 *       Runs the coordinator: waits for --workers registrations,
 *       places the devices, broadcasts the job, then supervises
 *       liveness (heartbeats + connection closure), driving
 *       generation bumps and re-placement when a worker dies.
 *       Prints `PRIMEPAR_COORD_PORT=<port>` on stdout once listening
 *       (scripts parse this to launch the workers), and the final
 *       per-step losses with %.17g precision when the job ends.
 *
 *   primepar_worker --connect HOST:PORT [--threads T]
 *       Runs one worker: registers its data-plane listener with the
 *       coordinator, receives its id / the world / the job document,
 *       and trains over TcpTransport in SPMD lockstep with its peers —
 *       sharded by default (tensor data only for its owned device
 *       ranks; --replicated on the coordinator restores full
 *       replication). On a permanent peer failure it consults the
 *       coordinator (suspect RPC), adopts the re-planned world, and
 *       resumes from its checkpoint on the survivors — down to a
 *       plain InProcessTransport when it is the last one standing.
 *       Connecting into a *degraded* job re-joins it: the coordinator
 *       pauses the survivors at a barrier step, grows the grid back,
 *       and the new worker restores a survivor's checkpoint snapshot
 *       so training resumes on the full grid as if never degraded.
 *
 * Exit codes follow the runtime taxonomy (runtime/errors.hh):
 *   0 ok   1 internal   2 usage   3 transient fault
 *   4 device lost (replan budget exhausted)   5 checkpoint   6 fenced
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "optimizer/segmented_dp.hh"
#include "runtime/coordinator.hh"
#include "runtime/metrics.hh"
#include "runtime/tcp_transport.hh"
#include "runtime/trainer.hh"
#include "support/bits.hh"
#include "support/json.hh"
#include "support/logging.hh"

using namespace primepar;

namespace {

struct Options
{
    bool serve = false;
    std::string connect; // host:port
    int workers = 2;
    int port = 0;
    int steps = 6;
    int devices = 4;
    int threads = 1;
    std::int64_t batch = 2;
    std::int64_t hidden = 32;
    std::int64_t heads = 4;
    std::int64_t ffn = 64;
    std::int64_t seq = 16;
    double lr = 0.01;
    double momentum = 0.9;
    std::uint64_t seed = 1234;
    std::string faultSpec;
    std::string plan = "heuristic";
    std::string checkpointDir;
    int checkpointEvery = 0;
    int heartbeatMs = 100;
    int missLimit = 5;
    /** Full lockstep replication instead of sharded execution. */
    bool replicated = false;
    /** Workers resume from their own checkpoint file when present. */
    bool resume = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(exitcode::Usage);
            }
            return argv[++i];
        };
        if (arg == "--serve") {
            opts.serve = true;
        } else if (arg == "--connect") {
            opts.connect = next();
        } else if (arg == "--workers") {
            opts.workers = std::atoi(next());
        } else if (arg == "--port") {
            opts.port = std::atoi(next());
        } else if (arg == "--steps") {
            opts.steps = std::atoi(next());
        } else if (arg == "--devices") {
            opts.devices = std::atoi(next());
        } else if (arg == "--threads") {
            opts.threads = std::atoi(next());
        } else if (arg == "--batch") {
            opts.batch = std::atoll(next());
        } else if (arg == "--hidden") {
            opts.hidden = std::atoll(next());
        } else if (arg == "--heads") {
            opts.heads = std::atoll(next());
        } else if (arg == "--ffn") {
            opts.ffn = std::atoll(next());
        } else if (arg == "--seq") {
            opts.seq = std::atoll(next());
        } else if (arg == "--lr") {
            opts.lr = std::atof(next());
        } else if (arg == "--momentum") {
            opts.momentum = std::atof(next());
        } else if (arg == "--seed") {
            opts.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--fault-spec") {
            opts.faultSpec = next();
        } else if (arg == "--plan") {
            opts.plan = next();
        } else if (arg == "--checkpoint-dir") {
            opts.checkpointDir = next();
        } else if (arg == "--checkpoint-every") {
            opts.checkpointEvery = std::atoi(next());
        } else if (arg == "--heartbeat-ms") {
            opts.heartbeatMs = std::atoi(next());
        } else if (arg == "--miss-limit") {
            opts.missLimit = std::atoi(next());
        } else if (arg == "--replicated") {
            opts.replicated = true;
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: primepar_worker --serve --workers N"
                " [--port P] [--steps N]\n"
                "           [--devices D] [--batch B] [--hidden H]"
                " [--heads A] [--ffn F]\n"
                "           [--seq S] [--lr LR] [--momentum M]"
                " [--seed SEED]\n"
                "           [--fault-spec SPEC] [--plan dp|heuristic]\n"
                "           [--checkpoint-dir DIR]"
                " [--checkpoint-every N]\n"
                "           [--heartbeat-ms MS] [--miss-limit N]\n"
                "           [--replicated] [--resume]\n"
                "   or: primepar_worker --connect HOST:PORT"
                " [--threads T]\n"
                "exit codes: 0 ok, 1 internal, 2 usage, 3 transient"
                " fault,\n"
                "            4 device lost, 5 checkpoint, 6 fenced\n");
            std::exit(exitcode::Ok);
        } else {
            std::fprintf(stderr, "unknown argument %s (try --help)\n",
                         arg.c_str());
            std::exit(exitcode::Usage);
        }
    }
    if (opts.serve == !opts.connect.empty()) {
        std::fprintf(stderr,
                     "exactly one of --serve / --connect required\n");
        std::exit(exitcode::Usage);
    }
    if (opts.serve && !isPowerOfTwo(opts.devices)) {
        std::fprintf(stderr, "--devices must be a power of two\n");
        std::exit(exitcode::Usage);
    }
    if (opts.serve && opts.plan != "dp" && opts.plan != "heuristic") {
        std::fprintf(stderr, "--plan must be dp or heuristic\n");
        std::exit(exitcode::Usage);
    }
    return opts;
}

int
log2i(int v)
{
    int bits = 0;
    while ((1 << bits) < v)
        ++bits;
    return bits;
}

// ---------------------------------------------------------------------------
// Coordinator role

int
runCoordinator(const Options &opts)
{
    CoordinatorOptions copts;
    copts.numWorkers = opts.workers;
    copts.numBits = log2i(opts.devices);
    copts.port = opts.port;
    copts.dist.heartbeatMs = opts.heartbeatMs;
    copts.dist.heartbeatMissLimit = opts.missLimit;
    // Re-join needs durable per-step state to redistribute, so it is
    // enabled exactly when the workers keep checkpoint history.
    copts.allowRejoin =
        opts.checkpointEvery > 0 && !opts.checkpointDir.empty();

    JsonValue job = JsonValue::object();
    job.set("steps", JsonValue(static_cast<std::int64_t>(opts.steps)));
    job.set("batch", JsonValue(opts.batch));
    job.set("hidden", JsonValue(opts.hidden));
    job.set("heads", JsonValue(opts.heads));
    job.set("ffn", JsonValue(opts.ffn));
    job.set("seq", JsonValue(opts.seq));
    job.set("lr", JsonValue(opts.lr));
    job.set("momentum", JsonValue(opts.momentum));
    job.set("seed",
            JsonValue(static_cast<std::int64_t>(opts.seed)));
    job.set("fault_spec", JsonValue(opts.faultSpec));
    job.set("plan", JsonValue(opts.plan));
    job.set("checkpoint_dir", JsonValue(opts.checkpointDir));
    job.set("checkpoint_every",
            JsonValue(static_cast<std::int64_t>(opts.checkpointEvery)));
    job.set("replicated",
            JsonValue(static_cast<std::int64_t>(opts.replicated)));
    job.set("resume",
            JsonValue(static_cast<std::int64_t>(opts.resume)));
    JsonValue dist = JsonValue::object();
    dist.set("heartbeat_ms",
             JsonValue(static_cast<std::int64_t>(opts.heartbeatMs)));
    dist.set("miss_limit",
             JsonValue(static_cast<std::int64_t>(opts.missLimit)));
    job.set("dist", std::move(dist));
    copts.job = std::move(job);

    Coordinator coord(std::move(copts));
    MetricsRegistry registry;
    MetricsObserver metrics(&registry);
    coord.setObserver(&metrics);
    coord.start();
    // Scripts parse this line to learn the ephemeral port.
    std::printf("PRIMEPAR_COORD_PORT=%d\n", coord.port());
    std::fflush(stdout);

    const int rc = coord.run();
    for (const auto &[step, loss] : coord.losses())
        std::printf("final step %lld loss %.17g\n",
                    static_cast<long long>(step), loss);
    std::printf("coordinator: generation %llu, %d worker(s) lost, "
                "%d divergence(s)\n",
                static_cast<unsigned long long>(coord.generation()),
                coord.workersLost(), coord.divergences());
    if (coord.divergences() > 0)
        return exitcode::Internal;
    return rc == 0 ? exitcode::Ok : exitcode::Internal;
}

// ---------------------------------------------------------------------------
// Worker role

int
runWorker(const Options &opts)
{
    const std::size_t colon = opts.connect.rfind(':');
    if (colon == std::string::npos) {
        std::fprintf(stderr, "--connect wants HOST:PORT\n");
        return exitcode::Usage;
    }
    const std::string host = opts.connect.substr(0, colon);
    const int port = std::atoi(opts.connect.c_str() + colon + 1);

    DistOptions dopts;
    CoordinatorClient client(dopts);
    client.connect(host, port);

    // The data-plane listener outlives every transport rebuild: the
    // port registered with the coordinator stays valid across
    // re-plans.
    NetListener dataListener;
    dataListener.open(0);

    const JsonValue welcome = client.registerWorker(dataListener.port());
    const JsonValue &job = welcome.at("job");
    DistWorld world = DistWorld::fromJson(welcome.at("world"));
    world.myWorker = client.workerId();

    auto jobInt = [&](const char *key, std::int64_t dflt) {
        const JsonValue *v = job.find(key);
        return v ? static_cast<std::int64_t>(v->asNumber()) : dflt;
    };
    auto jobNum = [&](const char *key, double dflt) {
        const JsonValue *v = job.find(key);
        return v ? v->asNumber() : dflt;
    };
    auto jobStr = [&](const char *key) {
        const JsonValue *v = job.find(key);
        return v ? v->asString() : std::string();
    };
    if (const JsonValue *d = job.find("dist")) {
        if (const JsonValue *v = d->find("heartbeat_ms"))
            dopts.heartbeatMs = static_cast<int>(v->asNumber());
        if (const JsonValue *v = d->find("miss_limit"))
            dopts.heartbeatMissLimit = static_cast<int>(v->asNumber());
    }
    // Sharded unless the job asks for full lockstep replication.
    dopts.sharded = jobInt("replicated", 0) == 0;
    client.startHeartbeats(dopts.heartbeatMs);

    const std::int64_t steps = jobInt("steps", 6);

    TrainerOptions topts;
    topts.model.name = "dist";
    topts.model.hiddenSize = jobInt("hidden", 32);
    topts.model.numHeads = jobInt("heads", 4);
    topts.model.ffnSize = jobInt("ffn", 64);
    topts.model.seqLength = jobInt("seq", 16);
    topts.model.numLayers = 1;
    topts.batch = jobInt("batch", 2);
    topts.lr = jobNum("lr", 0.01);
    topts.momentum = jobNum("momentum", 0.9);
    topts.seed = static_cast<std::uint64_t>(jobInt("seed", 1234));
    topts.runtime.numBits = world.numBits;
    topts.runtime.execution.numThreads = opts.threads;
    const std::string faultSpec = jobStr("fault_spec");
    if (!faultSpec.empty())
        topts.runtime.faults = FaultSpec::parse(faultSpec);
    const std::string ckDir = jobStr("checkpoint_dir");
    if (!ckDir.empty()) {
        topts.runtime.checkpoint.path =
            ckDir + "/worker" + std::to_string(client.workerId()) +
            ".ckpt";
        topts.runtime.checkpoint.every =
            static_cast<int>(jobInt("checkpoint_every", 0));
        // Re-join donors serve immutable per-step snapshots.
        topts.runtime.checkpoint.keepHistory = true;
    }
    if (jobStr("plan") == "dp") {
        topts.replanner = [](const CompGraph &g, int bits) {
            DpOptions dp;
            dp.numThreads = 0;
            std::vector<PartitionSeq> plan =
                replanForSurvivors(g, 1 << bits, dp).strategies;
            const auto fallback = defaultBlockPlan(g, bits);
            for (int n = 0; n < g.numNodes(); ++n) {
                const OpSpec &op = g.node(n);
                if (op.normalizedDim >= 0 &&
                    plan[n].sliceCounts(op)[op.normalizedDim] > 1)
                    plan[n] = fallback[n];
            }
            return plan;
        };
    }

    // The transport factory: first build uses the welcomed world; a
    // rebuild after a permanent device failure first asks the
    // coordinator about the failed device's owner (suspect RPC) and
    // adopts whatever world comes back.
    auto worldRef = std::make_shared<DistWorld>(world);
    topts.transportFactory =
        [&client, &dataListener, worldRef, dopts,
         transportOpts = topts.runtime.transport](
            int bits, const DeviceFailedError *cause,
            std::shared_ptr<FaultInjector> injector,
            RuntimeHealth *health) -> std::unique_ptr<Transport> {
        if (cause) {
            const std::int64_t owner =
                worldRef->ownerOf(cause->device);
            DistWorld next = (owner >= 0 &&
                              owner != worldRef->myWorker)
                                 ? client.suspect(owner)
                                 : client.fetchWorld();
            next.myWorker = client.workerId();
            *worldRef = next;
        }
        if (!worldRef->find(worldRef->myWorker))
            throw FencedWorkerError(
                "worker " + std::to_string(worldRef->myWorker) +
                    " is not part of generation " +
                    std::to_string(worldRef->generation) +
                    " — superseded",
                worldRef->generation, worldRef->generation);
        if (worldRef->numBits != bits) {
            // The grid shrank without a worker dying (an emulated
            // in-process device failure, replicated in every
            // process): same workers, deterministically re-placed.
            worldRef->numBits = bits;
            DistWorld::placeDevices(worldRef->workers, bits);
        }
        if (worldRef->workers.size() <= 1) {
            PRIMEPAR_INFORM("worker ", worldRef->myWorker,
                            ": sole survivor; continuing in-process");
            return std::make_unique<InProcessTransport>(
                transportOpts, injector, health);
        }
        return std::make_unique<TcpTransport>(transportOpts, dopts,
                                              *worldRef,
                                              &dataListener, injector,
                                              health);
    };

    std::printf("worker %lld: %lld devices on %zu workers, %lld"
                " steps\n",
                static_cast<long long>(client.workerId()),
                1ll << world.numBits, world.workers.size(),
                static_cast<long long>(steps));

    BlockTrainer trainer(topts);

    // A re-join welcome carries the resume barrier and the donor
    // whose step-R checkpoint snapshot holds the state to adopt;
    // --resume makes a worker reload its own last checkpoint instead.
    const JsonValue *resumeStep = welcome.find("resume_step");
    if (resumeStep && resumeStep->asNumber() >= 0 && !ckDir.empty()) {
        const std::int64_t rstep =
            static_cast<std::int64_t>(resumeStep->asNumber());
        const std::int64_t donor = static_cast<std::int64_t>(
            welcome.at("restore_from").asNumber());
        const std::string src = ckDir + "/worker" +
                                std::to_string(donor) + ".ckpt.s" +
                                std::to_string(rstep);
        trainer.restoreFrom(loadCheckpoint(src));
        std::printf("worker %lld re-joining at step %lld (restored"
                    " from %s)\n",
                    static_cast<long long>(client.workerId()),
                    static_cast<long long>(rstep), src.c_str());
        std::fflush(stdout);
    } else if (jobInt("resume", 0) != 0 &&
               !topts.runtime.checkpoint.path.empty()) {
        std::ifstream probe(topts.runtime.checkpoint.path,
                            std::ios::binary);
        if (probe.good())
            trainer.resumeFromCheckpointFile();
    }

    double lastLoss = 0.0;
    while (trainer.step() < steps) {
        StepStats stats;
        try {
            stats = trainer.trainStep();
        } catch (const FencedWorkerError &) {
            // In sharded mode a worker may exchange nothing with the
            // peer that died, so the first sign of a degrade is a
            // newer-generation frame from a survivor. Adopt the new
            // world and roll back to the shared checkpoint — lockstep
            // guarantees every survivor's latest checkpoint is at the
            // same step, so the replay stays deterministic.
            if (topts.runtime.checkpoint.path.empty())
                throw;
            DistWorld next = client.fetchWorld();
            next.myWorker = client.workerId();
            if (next.generation <= worldRef->generation ||
                !next.find(next.myWorker))
                throw;
            *worldRef = next;
            trainer.resyncTo(next.numBits);
            trainer.resumeFromCheckpointFile();
            std::printf("worker %lld fence-adopted generation %llu"
                        " (2^%d devices)\n",
                        static_cast<long long>(client.workerId()),
                        static_cast<unsigned long long>(
                            next.generation),
                        trainer.deviceBits());
            std::fflush(stdout);
            continue;
        }
        lastLoss = stats.loss;
        const StepAck ack = client.reportStep(stats.step, stats.loss);
        std::printf("worker %lld step %lld loss %.17g (2^%d"
                    " devices)\n",
                    static_cast<long long>(client.workerId()),
                    static_cast<long long>(stats.step), stats.loss,
                    trainer.deviceBits());
        std::fflush(stdout);
        if (ack.pauseAt >= 0 && trainer.step() >= ack.pauseAt &&
            !ckDir.empty()) {
            // A rejoiner is waiting: checkpoint at exactly this step,
            // park at the barrier, and adopt the restored world.
            trainer.saveCheckpointNow();
            const std::uint64_t genBefore = client.generation();
            DistWorld next = client.resync(trainer.step());
            if (next.generation != genBefore) {
                *worldRef = next;
                trainer.resyncTo(next.numBits);
                std::printf("worker %lld resynced to generation %llu"
                            " (2^%d devices)\n",
                            static_cast<long long>(client.workerId()),
                            static_cast<unsigned long long>(
                                next.generation),
                            trainer.deviceBits());
                std::fflush(stdout);
            }
        }
    }
    client.done(trainer.step(), lastLoss);
    client.stopHeartbeats();
    std::printf("worker %lld done\n",
                static_cast<long long>(client.workerId()));
    return exitcode::Ok;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    try {
        return opts.serve ? runCoordinator(opts) : runWorker(opts);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "primepar_worker: %s\n", err.what());
        return exitcode::forCurrentException();
    }
}
