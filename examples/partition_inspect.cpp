/**
 * @file
 * `partition_inspect` — explain any partition sequence.
 *
 * Takes a sequence in the paper's notation and prints everything
 * PrimePar derives from it for a linear operator: the DSI table per
 * phase and step, the ring communication schedule, all-reduce groups,
 * replication factors, per-device memory, and the Sec. 3.3 feature
 * checks.
 *
 * Usage:
 *   partition_inspect [SEQ] [--devices N] [--b B --m M --n N --k K]
 *
 * e.g. `partition_inspect B,P2x2 --devices 8`
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "primepar.hh"

using namespace primepar;

int
main(int argc, char **argv)
{
    std::string seq_text = "P2x2";
    int devices = 4;
    std::int64_t b = 8, m = 2048, n = 4096, k = 4096;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() { return std::atoll(argv[++i]); };
        if (arg == "--devices")
            devices = static_cast<int>(next());
        else if (arg == "--b")
            b = next();
        else if (arg == "--m")
            m = next();
        else if (arg == "--n")
            n = next();
        else if (arg == "--k")
            k = next();
        else
            seq_text = arg;
    }

    const OpSpec op = makeLinearOp("linear", b, m, n, k);
    const PartitionSeq seq = parseSequence(op, seq_text);
    const int bits = log2Exact(devices);
    const DsiTable dsi(op, seq, bits);

    std::printf("operator: O[B=%lld,M=%lld,K=%lld] = "
                "I[B,M,N=%lld] x W[N,K]\n",
                static_cast<long long>(b), static_cast<long long>(m),
                static_cast<long long>(k), static_cast<long long>(n));
    std::printf("sequence: %s over %d devices, %d temporal steps\n\n",
                seq.toString(op).c_str(), devices, dsi.steps());

    // DSI table.
    for (Phase ph : {Phase::Forward, Phase::Backward, Phase::Gradient}) {
        std::printf("%s DSIs (device: [B,M,N,K] per step)\n",
                    phaseName(ph));
        for (std::int64_t dev = 0; dev < dsi.numDevices(); ++dev) {
            std::printf("  dev %lld:", static_cast<long long>(dev));
            for (int t = 0; t < dsi.steps(); ++t) {
                std::printf(" [%lld,%lld,%lld,%lld]",
                            static_cast<long long>(
                                dsi.value(ph, dev, t, 0)),
                            static_cast<long long>(
                                dsi.value(ph, dev, t, 1)),
                            static_cast<long long>(
                                dsi.value(ph, dev, t, 2)),
                            static_cast<long long>(
                                dsi.value(ph, dev, t, 3)));
            }
            std::printf("\n");
        }
    }

    // Communication.
    std::printf("\ncommunication:\n");
    for (std::size_t p = 0; p < op.passes.size(); ++p) {
        const PassComm comm =
            derivePassComm(op, seq, dsi, static_cast<int>(p));
        std::printf("  %s:", phaseName(op.passes[p].phase));
        std::int64_t ring = 0;
        for (const auto &step : comm.stepShifts)
            for (const ShiftSet &set : step)
                ring += set.elementsPerTransfer *
                        static_cast<std::int64_t>(set.transfers.size());
        for (const auto &step : comm.accShifts)
            for (const ShiftSet &set : step)
                ring += set.elementsPerTransfer *
                        static_cast<std::int64_t>(set.transfers.size());
        std::printf(" ring %lld elems", static_cast<long long>(ring));
        if (comm.allReduce.has_value()) {
            std::printf(", all-reduce of %s (%lld elems/dev, "
                        "indicator %s, %zu groups)",
                        op.refName(comm.allReduce->tensor).c_str(),
                        static_cast<long long>(
                            comm.allReduce->elementsPerDevice),
                        indicatorToString(comm.allReduce->indicator)
                            .c_str(),
                        comm.allReduce->groups.size());
        } else {
            std::printf(", collective-free");
        }
        std::printf("\n");
    }

    // Replication and memory.
    std::printf("\nreplication factors (Forward):");
    for (std::size_t t = 0; t < op.tensors.size(); ++t) {
        std::printf(" %s=%d", op.tensors[t].name.c_str(),
                    replicationFactor(op, dsi,
                                      {static_cast<int>(t), false},
                                      Phase::Forward, 0));
    }
    const OpMemory mem = opMemory(op, seq, dsi);
    std::printf("\nper-device memory: params %.1f MiB, stash %.1f MiB, "
                "working %.1f MiB, double-buffers %.1f MiB\n",
                mem.paramBytes / (1 << 20), mem.stashBytes / (1 << 20),
                mem.workingBytes / (1 << 20),
                mem.doubleBufferBytes / (1 << 20));

    // Feature checks.
    const auto coverage = verifyContractionCoverage(op, dsi);
    const auto f1 = verifyCollectiveFree(op, seq, dsi);
    const auto f2 = verifyNoReplication(op, dsi);
    const auto f3 = verifyPhaseAlignment(op, dsi);
    std::printf("\nchecks: coverage %s | collective-free %s | "
                "replication-free %s | phase-aligned %s\n",
                coverage ? "OK" : "FAIL", f1 ? "yes" : "no",
                f2 ? "yes" : "no", f3 ? "yes" : "no");
    if (!coverage)
        std::printf("  %s\n", coverage.message.c_str());
    return 0;
}
