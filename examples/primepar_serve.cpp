/**
 * @file
 * `primepar_serve` — the planning-as-a-service daemon.
 *
 * Serves plan requests over the PPF1 control protocol, answering from
 * a persistent mmap'd plan store when possible and falling back to
 * the multithreaded segmented DP on miss (see DESIGN.md "Serving
 * plans"). Prints `PRIMEPAR_SERVE_PORT=<port>` once listening, so
 * scripts can start it on an ephemeral port and scrape the actual
 * one. Runs until a client sends the shutdown verb (primepar_plan_client
 * --shutdown) or the process receives SIGINT/SIGTERM.
 *
 * Usage:
 *   primepar_serve [--port P] [--store FILE.pps] [--dp-slots N]
 *                  [--threads T] [--metrics-out F.json]
 *
 * Bench mode (scripts/bench_check.sh --serve):
 *   primepar_serve --bench --store FILE.pps [--bench-out F.json]
 *                  [--model NAME] [--devices N] [--batch B]
 *
 * measures the cold (fresh DP) and warm (served from a re-loaded
 * mmap'd store by a brand-new service instance) latencies of the same
 * request, asserts the warm plan is bit-identical, and writes the
 * result as a JSON report.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "runtime/errors.hh"
#include "runtime/metrics.hh"
#include "serve/plan_server.hh"
#include "serve/plan_service.hh"
#include "support/json.hh"

using namespace primepar;

namespace {

struct Options
{
    int port = 0;
    std::string storePath;
    int dpSlots = 2;
    int threads = 0;
    std::string metricsFile;
    bool bench = false;
    std::string benchOut;
    // Bench request spec.
    std::string model = "OPT 6.7B";
    int devices = 32;
    std::int64_t batch = 8;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            opts.port = std::atoi(next());
        } else if (arg == "--store") {
            opts.storePath = next();
        } else if (arg == "--dp-slots") {
            opts.dpSlots = std::atoi(next());
        } else if (arg == "--threads") {
            opts.threads = std::atoi(next());
        } else if (arg == "--metrics-out") {
            opts.metricsFile = next();
        } else if (arg == "--bench") {
            opts.bench = true;
        } else if (arg == "--bench-out") {
            opts.benchOut = next();
        } else if (arg == "--model") {
            opts.model = next();
        } else if (arg == "--devices") {
            opts.devices = std::atoi(next());
        } else if (arg == "--batch") {
            opts.batch = std::atoll(next());
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: primepar_serve [--port P] [--store FILE.pps]"
                " [--dp-slots N]\n"
                "                      [--threads T]"
                " [--metrics-out F.json]\n"
                "       primepar_serve --bench --store FILE.pps"
                " [--bench-out F.json]\n"
                "                      [--model NAME] [--devices N]"
                " [--batch B]\n");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument %s (try --help)\n",
                         arg.c_str());
            std::exit(2);
        }
    }
    return opts;
}

double
nowMsBench()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * The warm-path proof: a cold DP through service A persists the plan;
 * a *fresh* service B then answers the same request from the mmap'd
 * store. The two plans must be bit-identical and the warm path must
 * be at least two orders of magnitude faster.
 */
int
runBench(const Options &opts)
{
    if (opts.storePath.empty()) {
        std::fprintf(stderr,
                     "--bench requires --store (the persistent file "
                     "the warm path is served from)\n");
        return 2;
    }
    std::remove(opts.storePath.c_str()); // measure a genuinely cold run

    PlanRequest req;
    req.model = opts.model;
    req.devices = opts.devices;
    req.batch = opts.batch;

    PlanServiceOptions cold;
    cold.storePath = opts.storePath;
    cold.dpThreads = opts.threads;
    double coldMs = 0.0;
    PlanResponse first;
    {
        PlanService service(cold);
        const double t0 = nowMsBench();
        first = service.plan(req);
        coldMs = nowMsBench() - t0;
    }
    if (!first.ok || first.source != "dp") {
        std::fprintf(stderr, "cold request failed (%s, source '%s')\n",
                     first.error.c_str(), first.source.c_str());
        return 1;
    }

    // A brand-new service: nothing in memory, only the mmap'd store.
    PlanService warmService(cold);
    const double t1 = nowMsBench();
    const PlanResponse second = warmService.plan(req);
    const double warmMs = nowMsBench() - t1;
    if (!second.ok || second.source != "store") {
        std::fprintf(stderr, "warm request not served from the store "
                             "(%s, source '%s')\n",
                     second.error.c_str(), second.source.c_str());
        return 1;
    }
    const bool identical =
        first.strategies == second.strategies &&
        std::memcmp(&first.layerCostUs, &second.layerCostUs,
                    sizeof(double)) == 0 &&
        std::memcmp(&first.totalCostUs, &second.totalCostUs,
                    sizeof(double)) == 0;
    const double speedup = coldMs / (warmMs > 0 ? warmMs : 1e-9);

    std::printf("serve bench: %s on %d devices\n", req.model.c_str(),
                req.devices);
    std::printf("  cold (fresh DP + persist): %.1f ms\n", coldMs);
    std::printf("  warm (mmap'd store):       %.3f ms\n", warmMs);
    std::printf("  speedup %.0fx, bit-identical: %s\n", speedup,
                identical ? "yes" : "NO");

    if (!opts.benchOut.empty()) {
        JsonValue doc = JsonValue::object();
        doc.set("schema", "primepar-serve-bench-v1");
        doc.set("model", req.model);
        doc.set("devices", req.devices);
        doc.set("batch", static_cast<std::int64_t>(req.batch));
        doc.set("cold_ms", coldMs);
        doc.set("warm_ms", warmMs);
        doc.set("speedup", speedup);
        doc.set("bit_identical", identical);
        doc.set("warm_source", second.source);
        doc.set("layer_cost_us", second.layerCostUs);
        doc.set("total_cost_us", second.totalCostUs);
        saveJsonFile(opts.benchOut, doc);
        std::printf("  report written to %s\n", opts.benchOut.c_str());
    }
    return identical ? 0 : 1;
}

// stop() is not async-signal-safe, so the handler only sets a flag
// and the main loop (which polls waitForShutdown with a timeout)
// notices it within one poll interval.
std::sig_atomic_t volatile gSignalled = 0;

void
onSignal(int)
{
    gSignalled = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    try {
        if (opts.bench)
            return runBench(opts);

        PlanServerOptions server;
        server.port = opts.port;
        server.service.storePath = opts.storePath;
        server.service.dpSlots = opts.dpSlots;
        server.service.dpThreads = opts.threads;
        PlanServer daemon(server);
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::printf("PRIMEPAR_SERVE_PORT=%d\n", daemon.port());
        if (!opts.storePath.empty()) {
            std::printf("store %s: %zu plans resident\n",
                        opts.storePath.c_str(),
                        daemon.service().storeSize());
        }
        std::fflush(stdout);
        while (!gSignalled && !daemon.waitForShutdown(200))
            ;
        daemon.stop();
        if (!opts.metricsFile.empty()) {
            saveJsonFile(opts.metricsFile,
                         daemon.service().statsJson());
            std::printf("metrics written to %s\n",
                        opts.metricsFile.c_str());
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return exitcode::forCurrentException();
    }
}
