/**
 * @file
 * Scenario: planning the OPT 175B MLP block on one 8-GPU slice of the
 * cluster — the exact workload of the paper's Fig. 9 discussion.
 *
 * Compares three plans side by side on the cluster simulator:
 * Megatron's hand rules, the best conventional (spatial-only) plan,
 * and PrimePar's spatial-temporal plan, and shows where the latency
 * goes in each.
 */

#include <cstdio>

#include "baselines/megatron.hh"
#include "graph/transformer.hh"
#include "optimizer/segmented_dp.hh"
#include "sim/model_sim.hh"
#include "support/table.hh"

using namespace primepar;

namespace {

void
report(const char *name, const ClusterTopology &topo,
       const CompGraph &graph,
       const std::vector<PartitionSeq> &strategies, TextTable &table)
{
    const ModelSimulator sim(topo, graph, strategies);
    const ModelSimResult r = sim.simulate();
    table.row({name, fmtDouble(r.computeUs / 1e3, 1),
               fmtDouble(r.allReduceUs / 1e3, 1),
               fmtDouble(r.ringUs / 1e3, 1),
               fmtDouble(r.redistUs / 1e3, 1),
               fmtDouble(r.latencyUs / 1e3, 1),
               fmtDouble(r.peakMemoryBytes / (1 << 30), 2)});
}

} // namespace

int
main()
{
    const ModelConfig model = opt175b();
    const int devices = 8;
    const std::int64_t batch = 8;

    const ClusterTopology topo = ClusterTopology::paperCluster(devices);
    const CostModel cost(topo, profileModels(topo));
    const CompGraph graph = buildMlpBlock(model, batch);

    std::printf("Planning %s MLP block (fc1 %lldx%lld, fc2 %lldx%lld) "
                "on %d GPUs (%d nodes x %d)\n\n",
                model.name.c_str(),
                static_cast<long long>(model.hiddenSize),
                static_cast<long long>(model.ffnSize),
                static_cast<long long>(model.ffnSize),
                static_cast<long long>(model.hiddenSize), devices,
                topo.numNodes(), topo.gpusPerNode());

    const MegatronPlan megatron = bestMegatronPlan(graph, cost);
    const DpResult alpa = alpaOptimize(graph, cost);
    DpOptions opts;
    const DpResult pp = SegmentedDpOptimizer(graph, cost, opts).optimize();

    std::printf("chosen partition sequences:\n");
    for (int n = 0; n < graph.numNodes(); ++n) {
        std::printf("  %-5s  Megatron(d=%d,m=%d): %-10s  spatial-best: "
                    "%-10s  PrimePar: %s\n",
                    graph.node(n).name.c_str(),
                    megatron.config.dataParallel,
                    megatron.config.modelParallel,
                    megatron.strategies[n].toString(graph.node(n)).c_str(),
                    alpa.strategies[n].toString(graph.node(n)).c_str(),
                    pp.strategies[n].toString(graph.node(n)).c_str());
    }
    std::printf("\n(PrimePar search: %.1f ms — catalogs %.1f, edge "
                "tables %.1f, DP %.1f)\n\n",
                pp.optimizationMs, pp.catalogMs, pp.edgeTableMs,
                pp.dpMs);

    TextTable table;
    table.header({"plan", "compute ms", "collective ms", "ring ms",
                  "redist ms", "iteration ms", "peak mem GiB"});
    report("Megatron", topo, graph, megatron.strategies, table);
    report("spatial-best", topo, graph, alpa.strategies, table);
    report("PrimePar", topo, graph, pp.strategies, table);
    std::printf("%s", table.render().c_str());
    return 0;
}
