/**
 * @file
 * `primepar_plan_client` — command-line client for `primepar_serve`.
 *
 * Sends one plan request (or a stats / ping / shutdown verb) to a
 * running plan daemon and prints the answer — as text or, with
 * --json, as the raw response document for scripts to parse.
 *
 * Usage:
 *   primepar_plan_client --connect HOST:PORT
 *       [--model NAME] [--devices N] [--batch B] [--layers L]
 *       [--alpha A] [--no-psquare] [--no-batch-dim] [--beam-width N]
 *       [--max-temporal-steps K] [--json]
 *   primepar_plan_client --connect HOST:PORT --stats
 *   primepar_plan_client --connect HOST:PORT --ping
 *   primepar_plan_client --connect HOST:PORT --shutdown
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "runtime/errors.hh"
#include "serve/plan_client.hh"

using namespace primepar;

namespace {

struct Options
{
    std::string host = "127.0.0.1";
    int port = 0;
    PlanRequest req;
    bool stats = false;
    bool ping = false;
    bool shutdown = false;
    bool json = false;
    int deadlineMs = 600000;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--connect") {
            const std::string hp = next();
            const std::size_t colon = hp.rfind(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr,
                             "--connect wants HOST:PORT (got %s)\n",
                             hp.c_str());
                std::exit(2);
            }
            opts.host = hp.substr(0, colon);
            opts.port = std::atoi(hp.c_str() + colon + 1);
        } else if (arg == "--model") {
            opts.req.model = next();
        } else if (arg == "--devices") {
            opts.req.devices = std::atoi(next());
        } else if (arg == "--batch") {
            opts.req.batch = std::atoll(next());
        } else if (arg == "--layers") {
            opts.req.layers = std::atoi(next());
        } else if (arg == "--alpha") {
            opts.req.alpha = std::atof(next());
        } else if (arg == "--no-psquare") {
            opts.req.psquare = false;
        } else if (arg == "--no-batch-dim") {
            opts.req.batchDim = false;
        } else if (arg == "--beam-width") {
            opts.req.beamWidth = std::atoi(next());
        } else if (arg == "--max-temporal-steps") {
            opts.req.maxTemporalSteps = std::atoi(next());
        } else if (arg == "--deadline-ms") {
            opts.deadlineMs = std::atoi(next());
        } else if (arg == "--stats") {
            opts.stats = true;
        } else if (arg == "--ping") {
            opts.ping = true;
        } else if (arg == "--shutdown") {
            opts.shutdown = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: primepar_plan_client --connect HOST:PORT\n"
                "           [--model NAME] [--devices N] [--batch B]"
                " [--layers L]\n"
                "           [--alpha A] [--no-psquare]"
                " [--no-batch-dim]\n"
                "           [--beam-width N] [--max-temporal-steps K]"
                " [--json]\n"
                "           [--deadline-ms MS] [--stats] [--ping]"
                " [--shutdown]\n");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument %s (try --help)\n",
                         arg.c_str());
            std::exit(2);
        }
    }
    if (opts.port <= 0) {
        std::fprintf(stderr, "--connect HOST:PORT is required\n");
        std::exit(2);
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    try {
        PlanClient client(opts.host, opts.port);
        if (opts.ping) {
            const bool up = client.ping();
            std::printf("%s\n", up ? "ok" : "unhealthy");
            return up ? 0 : 1;
        }
        if (opts.shutdown) {
            const bool acked = client.shutdown();
            std::printf("%s\n",
                        acked ? "shutdown acknowledged"
                              : "shutdown rejected");
            return acked ? 0 : 1;
        }
        if (opts.stats) {
            std::printf("%s\n", client.stats().toString(2).c_str());
            return 0;
        }
        const PlanResponse resp =
            client.plan(opts.req, opts.deadlineMs);
        if (opts.json) {
            std::printf("%s\n", resp.toJson().toString(2).c_str());
            return resp.ok ? 0 : 1;
        }
        if (!resp.ok) {
            std::fprintf(stderr, "plan failed: %s\n",
                         resp.error.c_str());
            return 1;
        }
        std::printf("plan for %s (source %s, %.1f ms server time):\n",
                    opts.req.summary().c_str(), resp.source.c_str(),
                    resp.serverUs / 1e3);
        for (const std::string &line : resp.strategyText)
            std::printf("  %s\n", line.c_str());
        std::printf("layer cost %.1f us, total %.1f us",
                    resp.layerCostUs, resp.totalCostUs);
        if (resp.truncated)
            std::printf(" (within %.2f%% of optimal, certified)",
                        resp.gapPct);
        std::printf("\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return exitcode::forCurrentException();
    }
}
