/**
 * @file
 * Scenario: multi-iteration training on emulated devices.
 *
 * Trains a linear layer for several SGD steps under three different
 * partition strategies — data parallel, Megatron row parallel, and
 * the spatial-temporal P_{2x2} — and checks after every step that all
 * three stay bit-for-bit in sync with single-device training. This
 * demonstrates the paper's feature 3 operationally: the weight and
 * its gradient end every iteration co-located, so the optimizer
 * update is purely local, and training can run iteration after
 * iteration with no extra redistribution.
 */

#include <cstdio>
#include <map>

#include "runtime/spmd_executor.hh"
#include "support/rng.hh"

using namespace primepar;

int
main()
{
    const OpSpec op = makeLinearOp("fc", 4, 8, 16, 16);
    const int num_bits = 2; // 4 devices
    const double lr = 0.05;
    const int iterations = 5;

    Rng rng(2024);
    const Tensor w0 = Tensor::random(Shape{16, 16}, rng);

    struct System
    {
        const char *name;
        PartitionSeq seq;
        Tensor weight;
    };
    std::vector<System> systems = {
        {"data-parallel (B,B)",
         PartitionSeq({PartitionStep::byDim(0), PartitionStep::byDim(0)}),
         w0},
        {"row-parallel (N,N)",
         PartitionSeq({PartitionStep::byDim(2), PartitionStep::byDim(2)}),
         w0},
        {"spatial-temporal (P2x2)",
         PartitionSeq({PartitionStep::pSquare(1)}), w0},
    };
    Tensor w_ref = w0;

    for (int it = 0; it < iterations; ++it) {
        // Fresh batch and upstream gradient each iteration.
        std::map<std::string, Tensor> inputs;
        inputs["I"] = Tensor::random(Shape{4, 8, 16}, rng);
        inputs["dO"] = Tensor::random(Shape{4, 8, 16}, rng);

        // Single-device reference step.
        inputs["W"] = w_ref;
        const TrainStepResult ref = referenceTrainStep(op, inputs);
        Tensor delta = ref.d_weight;
        delta.scale(static_cast<float>(-lr));
        w_ref.add(delta);

        std::printf("iteration %d:\n", it);
        for (System &sys : systems) {
            inputs["W"] = sys.weight;
            SpmdOpExecutor exec(op, sys.seq, num_bits);
            const TrainStepResult got = exec.run(inputs);
            sys.weight = exec.sgdUpdateAndGather(lr);

            const float out_diff = got.output.maxAbsDiff(ref.output);
            const float w_diff = sys.weight.maxAbsDiff(w_ref);
            std::printf("  %-26s output diff %.2e, weight diff %.2e, "
                        "ring %lld elems, all-reduce %lld elems\n",
                        sys.name, out_diff, w_diff,
                        static_cast<long long>(
                            exec.stats().ringElements),
                        static_cast<long long>(
                            exec.stats().allReduceElements));
            if (w_diff > 1e-3f) {
                std::printf("  DIVERGED\n");
                return 1;
            }
        }
    }
    std::printf("\nall strategies tracked single-device training for "
                "%d iterations.\n",
                iterations);
    std::printf("note: only P2x2 did it with zero all-reduce traffic.\n");
    return 0;
}
