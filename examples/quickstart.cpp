/**
 * @file
 * Quickstart: the PrimePar public API in one file.
 *
 *  1. Describe an operator (a transformer linear layer).
 *  2. Pick a partition sequence — here the paper's novel
 *     spatial-temporal primitive P_{2x2} over 4 devices.
 *  3. Inspect what PrimePar derives from the DSIs: slice assignments,
 *     ring communication, and the three feature guarantees.
 *  4. Actually execute the partitioned training step on emulated
 *     devices and check it against single-device training.
 */

#include <cstdio>
#include <map>

#include "partition/alignment.hh"
#include "partition/comm_pattern.hh"
#include "partition/dsi.hh"
#include "runtime/spmd_executor.hh"
#include "support/rng.hh"

using namespace primepar;

int
main()
{
    // A small linear operator O[B,M,K] = I[B,M,N] x W[N,K].
    const OpSpec op = makeLinearOp("fc", /*b=*/4, /*m=*/8, /*n=*/8,
                                   /*k=*/8);

    // Partition with P_{2x2}: 4 devices, 2 temporal steps, and — as
    // the paper proves — no collective communication, no replication.
    const PartitionSeq seq({PartitionStep::pSquare(1)});
    const int num_bits = 2; // 2^2 = 4 devices
    const DsiTable dsi(op, seq, num_bits);

    std::printf("strategy: %s over %lld devices, %d temporal steps\n\n",
                seq.toString(op).c_str(),
                static_cast<long long>(dsi.numDevices()), dsi.steps());

    // Which slice of each dimension does device 0 hold at each step?
    for (int t = 0; t < dsi.steps(); ++t) {
        std::printf("forward step %d: device 0 holds M-slice %lld, "
                    "N-slice %lld, K-slice %lld\n",
                    t,
                    static_cast<long long>(
                        dsi.value(Phase::Forward, 0, t, 1)),
                    static_cast<long long>(
                        dsi.value(Phase::Forward, 0, t, 2)),
                    static_cast<long long>(
                        dsi.value(Phase::Forward, 0, t, 3)));
    }

    // The ring communication schedule (paper Table 1), derived
    // mechanically from the DSIs.
    const PassComm fwd = derivePassComm(op, seq, dsi, 0);
    std::printf("\nforward step 0 ring transfers:\n");
    for (const ShiftSet &set : fwd.stepShifts[0]) {
        for (const Transfer &tr : set.transfers) {
            std::printf("  %s: device %lld <- device %lld\n",
                        op.refName(set.tensor).c_str(),
                        static_cast<long long>(tr.receiver),
                        static_cast<long long>(tr.sender));
        }
    }

    // The three feature guarantees of Sec. 3.3.
    const auto all = verifyAll(op, seq, dsi);
    std::printf("\nfeatures 1-3 + contraction coverage: %s\n",
                all.ok ? "verified" : all.message.c_str());

    // Execute the partitioned training step for real.
    Rng rng(1);
    std::map<std::string, Tensor> inputs;
    inputs["I"] = Tensor::random(Shape{4, 8, 8}, rng);
    inputs["W"] = Tensor::random(Shape{8, 8}, rng);
    inputs["dO"] = Tensor::random(Shape{4, 8, 8}, rng);

    SpmdOpExecutor exec(op, seq, num_bits);
    const TrainStepResult got = exec.run(inputs);
    const TrainStepResult ref = referenceTrainStep(op, inputs);

    std::printf("\npartitioned vs single-device training:\n");
    std::printf("  forward output max diff: %.2e\n",
                got.output.maxAbsDiff(ref.output));
    std::printf("  input gradient max diff: %.2e\n",
                got.d_input.maxAbsDiff(ref.d_input));
    std::printf("  weight gradient max diff: %.2e\n",
                got.d_weight.maxAbsDiff(ref.d_weight));
    std::printf("  ring traffic: %lld elements, all-reduces: %d\n",
                static_cast<long long>(exec.stats().ringElements),
                exec.stats().allReduceCount);
    return 0;
}
