# Empty dependencies file for primepar_support.
# This may be replaced when dependencies are built.
