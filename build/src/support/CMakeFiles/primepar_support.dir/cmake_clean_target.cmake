file(REMOVE_RECURSE
  "libprimepar_support.a"
)
