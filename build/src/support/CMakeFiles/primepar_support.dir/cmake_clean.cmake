file(REMOVE_RECURSE
  "CMakeFiles/primepar_support.dir/logging.cc.o"
  "CMakeFiles/primepar_support.dir/logging.cc.o.d"
  "CMakeFiles/primepar_support.dir/regression.cc.o"
  "CMakeFiles/primepar_support.dir/regression.cc.o.d"
  "CMakeFiles/primepar_support.dir/table.cc.o"
  "CMakeFiles/primepar_support.dir/table.cc.o.d"
  "libprimepar_support.a"
  "libprimepar_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
