
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/alignment.cc" "src/partition/CMakeFiles/primepar_partition.dir/alignment.cc.o" "gcc" "src/partition/CMakeFiles/primepar_partition.dir/alignment.cc.o.d"
  "/root/repo/src/partition/comm_pattern.cc" "src/partition/CMakeFiles/primepar_partition.dir/comm_pattern.cc.o" "gcc" "src/partition/CMakeFiles/primepar_partition.dir/comm_pattern.cc.o.d"
  "/root/repo/src/partition/dsi.cc" "src/partition/CMakeFiles/primepar_partition.dir/dsi.cc.o" "gcc" "src/partition/CMakeFiles/primepar_partition.dir/dsi.cc.o.d"
  "/root/repo/src/partition/op_spec.cc" "src/partition/CMakeFiles/primepar_partition.dir/op_spec.cc.o" "gcc" "src/partition/CMakeFiles/primepar_partition.dir/op_spec.cc.o.d"
  "/root/repo/src/partition/partition_step.cc" "src/partition/CMakeFiles/primepar_partition.dir/partition_step.cc.o" "gcc" "src/partition/CMakeFiles/primepar_partition.dir/partition_step.cc.o.d"
  "/root/repo/src/partition/space.cc" "src/partition/CMakeFiles/primepar_partition.dir/space.cc.o" "gcc" "src/partition/CMakeFiles/primepar_partition.dir/space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/primepar_support.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/primepar_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
