file(REMOVE_RECURSE
  "CMakeFiles/primepar_partition.dir/alignment.cc.o"
  "CMakeFiles/primepar_partition.dir/alignment.cc.o.d"
  "CMakeFiles/primepar_partition.dir/comm_pattern.cc.o"
  "CMakeFiles/primepar_partition.dir/comm_pattern.cc.o.d"
  "CMakeFiles/primepar_partition.dir/dsi.cc.o"
  "CMakeFiles/primepar_partition.dir/dsi.cc.o.d"
  "CMakeFiles/primepar_partition.dir/op_spec.cc.o"
  "CMakeFiles/primepar_partition.dir/op_spec.cc.o.d"
  "CMakeFiles/primepar_partition.dir/partition_step.cc.o"
  "CMakeFiles/primepar_partition.dir/partition_step.cc.o.d"
  "CMakeFiles/primepar_partition.dir/space.cc.o"
  "CMakeFiles/primepar_partition.dir/space.cc.o.d"
  "libprimepar_partition.a"
  "libprimepar_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
