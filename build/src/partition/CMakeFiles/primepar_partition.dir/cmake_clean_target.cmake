file(REMOVE_RECURSE
  "libprimepar_partition.a"
)
