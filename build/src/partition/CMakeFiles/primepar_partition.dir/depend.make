# Empty dependencies file for primepar_partition.
# This may be replaced when dependencies are built.
