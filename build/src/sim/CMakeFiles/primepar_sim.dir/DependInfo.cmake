
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/primepar_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/primepar_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/primepar_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/primepar_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/model_sim.cc" "src/sim/CMakeFiles/primepar_sim.dir/model_sim.cc.o" "gcc" "src/sim/CMakeFiles/primepar_sim.dir/model_sim.cc.o.d"
  "/root/repo/src/sim/op_sim.cc" "src/sim/CMakeFiles/primepar_sim.dir/op_sim.cc.o" "gcc" "src/sim/CMakeFiles/primepar_sim.dir/op_sim.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/primepar_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/primepar_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/primepar_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/primepar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/primepar_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/primepar_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/primepar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
