# Empty compiler generated dependencies file for primepar_sim.
# This may be replaced when dependencies are built.
