file(REMOVE_RECURSE
  "libprimepar_sim.a"
)
