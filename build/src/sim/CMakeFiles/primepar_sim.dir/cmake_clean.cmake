file(REMOVE_RECURSE
  "CMakeFiles/primepar_sim.dir/engine.cc.o"
  "CMakeFiles/primepar_sim.dir/engine.cc.o.d"
  "CMakeFiles/primepar_sim.dir/memory.cc.o"
  "CMakeFiles/primepar_sim.dir/memory.cc.o.d"
  "CMakeFiles/primepar_sim.dir/model_sim.cc.o"
  "CMakeFiles/primepar_sim.dir/model_sim.cc.o.d"
  "CMakeFiles/primepar_sim.dir/op_sim.cc.o"
  "CMakeFiles/primepar_sim.dir/op_sim.cc.o.d"
  "CMakeFiles/primepar_sim.dir/trace.cc.o"
  "CMakeFiles/primepar_sim.dir/trace.cc.o.d"
  "libprimepar_sim.a"
  "libprimepar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
