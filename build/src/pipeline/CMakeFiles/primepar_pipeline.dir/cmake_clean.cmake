file(REMOVE_RECURSE
  "CMakeFiles/primepar_pipeline.dir/three_d.cc.o"
  "CMakeFiles/primepar_pipeline.dir/three_d.cc.o.d"
  "libprimepar_pipeline.a"
  "libprimepar_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
