file(REMOVE_RECURSE
  "libprimepar_pipeline.a"
)
