# Empty compiler generated dependencies file for primepar_pipeline.
# This may be replaced when dependencies are built.
