file(REMOVE_RECURSE
  "libprimepar_baselines.a"
)
