file(REMOVE_RECURSE
  "CMakeFiles/primepar_baselines.dir/megatron.cc.o"
  "CMakeFiles/primepar_baselines.dir/megatron.cc.o.d"
  "CMakeFiles/primepar_baselines.dir/zero.cc.o"
  "CMakeFiles/primepar_baselines.dir/zero.cc.o.d"
  "libprimepar_baselines.a"
  "libprimepar_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
