# Empty dependencies file for primepar_baselines.
# This may be replaced when dependencies are built.
