# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("tensor")
subdirs("topology")
subdirs("partition")
subdirs("comm")
subdirs("graph")
subdirs("sim")
subdirs("cost")
subdirs("optimizer")
subdirs("baselines")
subdirs("pipeline")
subdirs("runtime")
