
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/redistribution.cc" "src/comm/CMakeFiles/primepar_comm.dir/redistribution.cc.o" "gcc" "src/comm/CMakeFiles/primepar_comm.dir/redistribution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/primepar_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/primepar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/primepar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
