# Empty dependencies file for primepar_comm.
# This may be replaced when dependencies are built.
