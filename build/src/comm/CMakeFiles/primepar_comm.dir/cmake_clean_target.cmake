file(REMOVE_RECURSE
  "libprimepar_comm.a"
)
