file(REMOVE_RECURSE
  "CMakeFiles/primepar_comm.dir/redistribution.cc.o"
  "CMakeFiles/primepar_comm.dir/redistribution.cc.o.d"
  "libprimepar_comm.a"
  "libprimepar_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
