# Empty dependencies file for primepar_topology.
# This may be replaced when dependencies are built.
