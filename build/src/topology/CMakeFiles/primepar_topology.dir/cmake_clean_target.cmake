file(REMOVE_RECURSE
  "libprimepar_topology.a"
)
