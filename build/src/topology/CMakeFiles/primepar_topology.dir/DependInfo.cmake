
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/cluster.cc" "src/topology/CMakeFiles/primepar_topology.dir/cluster.cc.o" "gcc" "src/topology/CMakeFiles/primepar_topology.dir/cluster.cc.o.d"
  "/root/repo/src/topology/device.cc" "src/topology/CMakeFiles/primepar_topology.dir/device.cc.o" "gcc" "src/topology/CMakeFiles/primepar_topology.dir/device.cc.o.d"
  "/root/repo/src/topology/groups.cc" "src/topology/CMakeFiles/primepar_topology.dir/groups.cc.o" "gcc" "src/topology/CMakeFiles/primepar_topology.dir/groups.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/primepar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
