file(REMOVE_RECURSE
  "CMakeFiles/primepar_topology.dir/cluster.cc.o"
  "CMakeFiles/primepar_topology.dir/cluster.cc.o.d"
  "CMakeFiles/primepar_topology.dir/device.cc.o"
  "CMakeFiles/primepar_topology.dir/device.cc.o.d"
  "CMakeFiles/primepar_topology.dir/groups.cc.o"
  "CMakeFiles/primepar_topology.dir/groups.cc.o.d"
  "libprimepar_topology.a"
  "libprimepar_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
