# Empty dependencies file for primepar_cost.
# This may be replaced when dependencies are built.
