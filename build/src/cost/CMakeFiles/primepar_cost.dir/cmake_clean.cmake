file(REMOVE_RECURSE
  "CMakeFiles/primepar_cost.dir/cost_model.cc.o"
  "CMakeFiles/primepar_cost.dir/cost_model.cc.o.d"
  "CMakeFiles/primepar_cost.dir/profiler.cc.o"
  "CMakeFiles/primepar_cost.dir/profiler.cc.o.d"
  "libprimepar_cost.a"
  "libprimepar_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
