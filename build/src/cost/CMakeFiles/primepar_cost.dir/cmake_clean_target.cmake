file(REMOVE_RECURSE
  "libprimepar_cost.a"
)
