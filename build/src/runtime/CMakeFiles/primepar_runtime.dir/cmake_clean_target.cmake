file(REMOVE_RECURSE
  "libprimepar_runtime.a"
)
