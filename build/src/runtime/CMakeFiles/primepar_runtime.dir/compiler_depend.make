# Empty compiler generated dependencies file for primepar_runtime.
# This may be replaced when dependencies are built.
