file(REMOVE_RECURSE
  "CMakeFiles/primepar_runtime.dir/graph_executor.cc.o"
  "CMakeFiles/primepar_runtime.dir/graph_executor.cc.o.d"
  "CMakeFiles/primepar_runtime.dir/spmd_executor.cc.o"
  "CMakeFiles/primepar_runtime.dir/spmd_executor.cc.o.d"
  "CMakeFiles/primepar_runtime.dir/transformer_runtime.cc.o"
  "CMakeFiles/primepar_runtime.dir/transformer_runtime.cc.o.d"
  "libprimepar_runtime.a"
  "libprimepar_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
