file(REMOVE_RECURSE
  "libprimepar_tensor.a"
)
