file(REMOVE_RECURSE
  "CMakeFiles/primepar_tensor.dir/einsum.cc.o"
  "CMakeFiles/primepar_tensor.dir/einsum.cc.o.d"
  "CMakeFiles/primepar_tensor.dir/ops.cc.o"
  "CMakeFiles/primepar_tensor.dir/ops.cc.o.d"
  "CMakeFiles/primepar_tensor.dir/tensor.cc.o"
  "CMakeFiles/primepar_tensor.dir/tensor.cc.o.d"
  "libprimepar_tensor.a"
  "libprimepar_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
