# Empty compiler generated dependencies file for primepar_tensor.
# This may be replaced when dependencies are built.
