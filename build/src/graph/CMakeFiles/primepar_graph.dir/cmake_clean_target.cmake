file(REMOVE_RECURSE
  "libprimepar_graph.a"
)
