# Empty dependencies file for primepar_graph.
# This may be replaced when dependencies are built.
