file(REMOVE_RECURSE
  "CMakeFiles/primepar_graph.dir/graph.cc.o"
  "CMakeFiles/primepar_graph.dir/graph.cc.o.d"
  "CMakeFiles/primepar_graph.dir/transformer.cc.o"
  "CMakeFiles/primepar_graph.dir/transformer.cc.o.d"
  "libprimepar_graph.a"
  "libprimepar_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
