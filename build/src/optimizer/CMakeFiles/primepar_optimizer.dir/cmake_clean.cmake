file(REMOVE_RECURSE
  "CMakeFiles/primepar_optimizer.dir/catalog.cc.o"
  "CMakeFiles/primepar_optimizer.dir/catalog.cc.o.d"
  "CMakeFiles/primepar_optimizer.dir/segmented_dp.cc.o"
  "CMakeFiles/primepar_optimizer.dir/segmented_dp.cc.o.d"
  "libprimepar_optimizer.a"
  "libprimepar_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
