file(REMOVE_RECURSE
  "libprimepar_optimizer.a"
)
