# Empty dependencies file for primepar_optimizer.
# This may be replaced when dependencies are built.
