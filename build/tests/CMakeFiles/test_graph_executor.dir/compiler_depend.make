# Empty compiler generated dependencies file for test_graph_executor.
# This may be replaced when dependencies are built.
