file(REMOVE_RECURSE
  "CMakeFiles/test_graph_executor.dir/test_graph_executor.cc.o"
  "CMakeFiles/test_graph_executor.dir/test_graph_executor.cc.o.d"
  "test_graph_executor"
  "test_graph_executor.pdb"
  "test_graph_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
