# Empty dependencies file for test_trace_torus.
# This may be replaced when dependencies are built.
