file(REMOVE_RECURSE
  "CMakeFiles/test_trace_torus.dir/test_trace_torus.cc.o"
  "CMakeFiles/test_trace_torus.dir/test_trace_torus.cc.o.d"
  "test_trace_torus"
  "test_trace_torus.pdb"
  "test_trace_torus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
