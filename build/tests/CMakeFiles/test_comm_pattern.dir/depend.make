# Empty dependencies file for test_comm_pattern.
# This may be replaced when dependencies are built.
