file(REMOVE_RECURSE
  "CMakeFiles/test_comm_pattern.dir/test_comm_pattern.cc.o"
  "CMakeFiles/test_comm_pattern.dir/test_comm_pattern.cc.o.d"
  "test_comm_pattern"
  "test_comm_pattern.pdb"
  "test_comm_pattern[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
