file(REMOVE_RECURSE
  "CMakeFiles/test_public_api.dir/test_public_api.cc.o"
  "CMakeFiles/test_public_api.dir/test_public_api.cc.o.d"
  "test_public_api"
  "test_public_api.pdb"
  "test_public_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_public_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
