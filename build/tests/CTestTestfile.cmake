# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_comm_pattern[1]_include.cmake")
include("/root/repo/build/tests/test_redistribution[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_trace_torus[1]_include.cmake")
include("/root/repo/build/tests/test_zero[1]_include.cmake")
include("/root/repo/build/tests/test_property_random[1]_include.cmake")
include("/root/repo/build/tests/test_graph_executor[1]_include.cmake")
include("/root/repo/build/tests/test_public_api[1]_include.cmake")
