file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_opttime.dir/bench_table2_opttime.cc.o"
  "CMakeFiles/bench_table2_opttime.dir/bench_table2_opttime.cc.o.d"
  "bench_table2_opttime"
  "bench_table2_opttime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_opttime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
