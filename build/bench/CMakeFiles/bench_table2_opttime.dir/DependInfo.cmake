
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_opttime.cc" "bench/CMakeFiles/bench_table2_opttime.dir/bench_table2_opttime.cc.o" "gcc" "bench/CMakeFiles/bench_table2_opttime.dir/bench_table2_opttime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/primepar_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/primepar_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/primepar_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/primepar_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/primepar_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/primepar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/primepar_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/primepar_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/primepar_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/primepar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/primepar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
