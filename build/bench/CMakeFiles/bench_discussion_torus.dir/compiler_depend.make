# Empty compiler generated dependencies file for bench_discussion_torus.
# This may be replaced when dependencies are built.
