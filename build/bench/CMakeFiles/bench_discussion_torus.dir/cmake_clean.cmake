file(REMOVE_RECURSE
  "CMakeFiles/bench_discussion_torus.dir/bench_discussion_torus.cc.o"
  "CMakeFiles/bench_discussion_torus.dir/bench_discussion_torus.cc.o.d"
  "bench_discussion_torus"
  "bench_discussion_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discussion_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
