# Empty compiler generated dependencies file for primepar_bench_common.
# This may be replaced when dependencies are built.
