file(REMOVE_RECURSE
  "CMakeFiles/primepar_bench_common.dir/common.cc.o"
  "CMakeFiles/primepar_bench_common.dir/common.cc.o.d"
  "libprimepar_bench_common.a"
  "libprimepar_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
