file(REMOVE_RECURSE
  "libprimepar_bench_common.a"
)
