# Empty dependencies file for bench_fig10_3d.
# This may be replaced when dependencies are built.
