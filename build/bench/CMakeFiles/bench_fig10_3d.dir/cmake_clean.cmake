file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_3d.dir/bench_fig10_3d.cc.o"
  "CMakeFiles/bench_fig10_3d.dir/bench_fig10_3d.cc.o.d"
  "bench_fig10_3d"
  "bench_fig10_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
