# Empty dependencies file for bench_related_zero.
# This may be replaced when dependencies are built.
