file(REMOVE_RECURSE
  "CMakeFiles/bench_related_zero.dir/bench_related_zero.cc.o"
  "CMakeFiles/bench_related_zero.dir/bench_related_zero.cc.o.d"
  "bench_related_zero"
  "bench_related_zero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_zero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
