file(REMOVE_RECURSE
  "CMakeFiles/partition_inspect.dir/partition_inspect.cpp.o"
  "CMakeFiles/partition_inspect.dir/partition_inspect.cpp.o.d"
  "partition_inspect"
  "partition_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
