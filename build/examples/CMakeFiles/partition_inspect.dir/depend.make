# Empty dependencies file for partition_inspect.
# This may be replaced when dependencies are built.
