# Empty compiler generated dependencies file for primepar_plan.
# This may be replaced when dependencies are built.
