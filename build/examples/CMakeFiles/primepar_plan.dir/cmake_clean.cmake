file(REMOVE_RECURSE
  "CMakeFiles/primepar_plan.dir/primepar_plan.cpp.o"
  "CMakeFiles/primepar_plan.dir/primepar_plan.cpp.o.d"
  "primepar_plan"
  "primepar_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primepar_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
