# Empty compiler generated dependencies file for llama2_cluster_search.
# This may be replaced when dependencies are built.
