file(REMOVE_RECURSE
  "CMakeFiles/llama2_cluster_search.dir/llama2_cluster_search.cpp.o"
  "CMakeFiles/llama2_cluster_search.dir/llama2_cluster_search.cpp.o.d"
  "llama2_cluster_search"
  "llama2_cluster_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llama2_cluster_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
