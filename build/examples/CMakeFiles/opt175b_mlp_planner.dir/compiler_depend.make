# Empty compiler generated dependencies file for opt175b_mlp_planner.
# This may be replaced when dependencies are built.
