file(REMOVE_RECURSE
  "CMakeFiles/opt175b_mlp_planner.dir/opt175b_mlp_planner.cpp.o"
  "CMakeFiles/opt175b_mlp_planner.dir/opt175b_mlp_planner.cpp.o.d"
  "opt175b_mlp_planner"
  "opt175b_mlp_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt175b_mlp_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
