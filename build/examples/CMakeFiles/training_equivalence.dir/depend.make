# Empty dependencies file for training_equivalence.
# This may be replaced when dependencies are built.
