file(REMOVE_RECURSE
  "CMakeFiles/training_equivalence.dir/training_equivalence.cpp.o"
  "CMakeFiles/training_equivalence.dir/training_equivalence.cpp.o.d"
  "training_equivalence"
  "training_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
