#include "common.hh"

namespace primepar {
namespace bench {

double
tokensPerSecond(const ModelConfig &model, std::int64_t batch,
                double iteration_us)
{
    return static_cast<double>(batch) * model.seqLength /
           (iteration_us * 1e-6);
}

SystemResult
measure(const std::string &system, const ModelConfig &model,
        const ClusterTopology &topo, const CompGraph &graph,
        std::vector<PartitionSeq> strategies)
{
    SystemResult r;
    r.system = system;
    r.strategies = strategies;
    const ModelSimulator sim(topo, graph, std::move(strategies));
    const ModelSimResult m = sim.simulate(model.numLayers);
    r.latencyUs = m.latencyUs;
    r.computeUs = m.computeUs;
    r.allReduceUs = m.allReduceUs;
    r.ringUs = m.ringUs;
    r.redistUs = m.redistUs;
    r.peakMemoryBytes = m.peakMemoryBytes;
    r.tokensPerSec = tokensPerSecond(
        model, graph.node(0).dims[graph.node(0).dimIndex("B")].size,
        m.latencyUs);
    return r;
}

std::vector<SystemResult>
compareSystems(const ModelConfig &model, int devices, std::int64_t batch,
               int num_threads)
{
    const ClusterTopology topo = ClusterTopology::paperCluster(devices);
    const CostModel cost(topo, profileModels(topo));
    const CompGraph graph = buildTransformerBlock(model, batch);

    std::vector<SystemResult> results;

    const MegatronPlan megatron = bestMegatronPlan(graph, cost);
    results.push_back(
        measure("Megatron", model, topo, graph, megatron.strategies));

    // The spatial-only search is a subspace of PrimePar's, but the
    // catalogs differ (PSquare sequences excluded), so the shared
    // cache helps across *cells*, not across the two searches.
    const auto cache = std::make_shared<CatalogCache>();

    DpOptions alpa_opts;
    alpa_opts.numLayers = model.numLayers;
    alpa_opts.numThreads = num_threads;
    alpa_opts.catalogCache = cache;
    const DpResult alpa = alpaOptimize(graph, cost, alpa_opts);
    results.push_back(
        measure("Alpa", model, topo, graph, alpa.strategies));

    DpOptions opts;
    opts.numLayers = model.numLayers;
    opts.numThreads = num_threads;
    opts.catalogCache = cache;
    const DpResult pp =
        SegmentedDpOptimizer(graph, cost, opts).optimize();
    results.push_back(
        measure("PrimePar", model, topo, graph, pp.strategies));

    return results;
}

} // namespace bench
} // namespace primepar
