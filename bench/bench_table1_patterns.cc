/**
 * @file
 * Regenerates the paper's Table 1: the ring-communication sender
 * coordinates of P_{2^k x 2^k} for every phase and temporal interval,
 * derived generically from the DSIs and summarized back into (r, c)
 * offset form. The offsets must be position-independent (a ring) and
 * match the closed forms printed in the paper.
 */

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "partition/comm_pattern.hh"
#include "partition/dsi.hh"
#include "support/bits.hh"

using namespace primepar;

namespace {

std::int64_t
deviceFromRC(int k, std::int64_t r, std::int64_t c)
{
    std::int64_t linear = 0;
    for (int j = 0; j < k; ++j) {
        linear = (linear << 2) | (((r >> (k - 1 - j)) & 1) << 1) |
                 ((c >> (k - 1 - j)) & 1);
    }
    return linear;
}

void
rcOf(int k, std::int64_t dev, std::int64_t &r, std::int64_t &c)
{
    r = c = 0;
    for (int j = 0; j < k; ++j) {
        r = (r << 1) | ((dev >> (2 * (k - 1 - j) + 1)) & 1);
        c = (c << 1) | ((dev >> (2 * (k - 1 - j))) & 1);
    }
}

/** Summarize a shift set as a single (dr, dc) sender offset. */
std::string
offsetOf(const ShiftSet &set, int k)
{
    const std::int64_t side = 1 << k;
    std::set<std::pair<std::int64_t, std::int64_t>> offsets;
    for (const Transfer &tr : set.transfers) {
        std::int64_t rr, rc, sr, sc;
        rcOf(k, tr.receiver, rr, rc);
        rcOf(k, tr.sender, sr, sc);
        offsets.insert({positiveMod(sr - rr, side),
                        positiveMod(sc - rc, side)});
    }
    if (offsets.size() != 1)
        return "NOT A RING";
    auto [dr, dc] = *offsets.begin();
    auto show = [&](std::int64_t d) {
        if (d == 0)
            return std::string("");
        if (d == side - 1)
            return std::string("-1");
        return "+" + std::to_string(d);
    };
    return "(r" + show(dr) + ", c" + show(dc) + ")";
}

} // namespace

int
main()
{
    std::printf("=== PrimePar reproduction: Table 1 (ring "
                "communication senders of P_{2^k x 2^k}) ===\n");
    std::printf("Derived from the DSI table; paper's closed forms in "
                "brackets.\n\n");

    for (int k : {1, 2, 3}) {
        const std::int64_t side = 1 << k;
        const OpSpec op = makeLinearOp("fc", 4, 8 * side, 8 * side,
                                       8 * side);
        const PartitionSeq seq({PartitionStep::pSquare(k)});
        const DsiTable dsi(op, seq, 2 * k);
        std::printf("k = %d (%lldx%lld devices, %lld temporal steps)\n",
                    k, static_cast<long long>(side),
                    static_cast<long long>(side),
                    static_cast<long long>(side));
        (void)deviceFromRC;

        const char *phase_names[] = {"Forward", "Backward", "Gradient"};
        for (int p = 0; p < 3; ++p) {
            const PassComm comm = derivePassComm(op, seq, dsi, p);
            std::printf("  %s\n", phase_names[p]);
            for (int t = 0; t < dsi.steps(); ++t) {
                std::string line;
                for (const ShiftSet &set : comm.stepShifts[t]) {
                    line += "  " + op.refName(set.tensor) + " <- " +
                            offsetOf(set, k);
                }
                for (const ShiftSet &set : comm.accShifts[t]) {
                    line += "  " + op.refName(set.tensor) + " <- " +
                            offsetOf(set, k) + " (accumulator)";
                }
                if (!line.empty())
                    std::printf("    t=%d:%s\n", t, line.c_str());
            }
        }
        std::printf("\n");
    }
    std::printf(
        "Paper Table 1: Forward t<2^k-1: I<-(r,c+1), W<-(r+1,c). "
        "Backward t<2^k-1: dO<-(r,c+1), W<-(r-1,c+1); t=2^k-1: "
        "W<-(r,c+1). Gradient t<2^k-2: I<-(r+1,c-1), dO<-(r+1,c); "
        "t=2^k-2: I<-(r+1,c), dO<-(r+1,c+1); t=2^k-1: dW<-(r,c+1).\n");
    return 0;
}
