/**
 * @file
 * Reproduces the paper's Fig. 8: normalized peak per-device memory of
 * Megatron-LM, Alpa and PrimePar under the same configurations that
 * produce the Fig. 7 throughputs.
 *
 * Expected shape (paper): PrimePar lowest everywhere; ~90% of
 * Megatron at ~7B scale, down to ~68% for BLOOM 176B at 16/32 GPUs.
 */

#include <cstdio>

#include "common.hh"

using namespace primepar;
using namespace primepar::bench;

int
main()
{
    std::printf(
        "=== PrimePar reproduction: Fig. 8 (peak memory) ===\n"
        "Normalized to Megatron-LM = 1.00 per cell; batch 8.\n\n");

    TextTable table;
    table.header({"model", "gpus", "Megatron", "Alpa", "PrimePar",
                  "PrimePar GiB"});

    const double gib = 1024.0 * 1024.0 * 1024.0;
    for (const ModelConfig &model : evaluationModels()) {
        for (int devices : {4, 8, 16, 32}) {
            const auto results = compareSystems(model, devices, 8);
            const double base = results[0].peakMemoryBytes;
            table.row(
                {model.name, std::to_string(devices),
                 fmtDouble(results[0].peakMemoryBytes / base, 2),
                 fmtDouble(results[1].peakMemoryBytes / base, 2),
                 fmtDouble(results[2].peakMemoryBytes / base, 2),
                 fmtDouble(results[2].peakMemoryBytes / gib, 2)});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper reference: PrimePar ~0.90 at 7B scale, down to "
                "~0.68 for BLOOM 176B at 16/32 GPUs.\n");
    return 0;
}
