/**
 * @file
 * Reproduces the paper's Fig. 9: latency breakdown of the OPT 175B
 * MLP block (fc1 -> activation -> fc2) for batch sizes 8 and 16 on 8
 * and 16 GPUs, Megatron-LM vs PrimePar, plus the chosen partition
 * sequences of one configuration (the paper's right-hand panel).
 *
 * Expected shape (paper): PrimePar's collective-communication latency
 * is 19.9%-62.2% of Megatron's; compute latency is roughly equal; the
 * ring point-to-point traffic introduced by the novel partition is
 * small and fully overlapped with compute.
 */

#include <cstdio>

#include "common.hh"

using namespace primepar;
using namespace primepar::bench;

namespace {

struct Cell
{
    SystemResult megatron;
    SystemResult primepar;
};

Cell
runCell(std::int64_t batch, int devices)
{
    const ModelConfig model = opt175b();
    const ClusterTopology topo = ClusterTopology::paperCluster(devices);
    const CostModel cost(topo, profileModels(topo));
    const CompGraph graph = buildMlpBlock(model, batch);

    Cell cell;
    const MegatronPlan mg = bestMegatronPlan(graph, cost);
    cell.megatron =
        measure("Megatron", model, topo, graph, mg.strategies);

    DpOptions opts;
    const DpResult pp = SegmentedDpOptimizer(graph, cost, opts).optimize();
    cell.primepar =
        measure("PrimePar", model, topo, graph, pp.strategies);
    return cell;
}

} // namespace

int
main()
{
    std::printf("=== PrimePar reproduction: Fig. 9 (MLP block "
                "latency breakdown, OPT 175B) ===\n\n");

    TextTable table;
    table.header({"batch", "gpus", "system", "compute us",
                  "collective us", "ring us", "redist us", "total us",
                  "collective vs Megatron"});
    for (std::int64_t batch : {8, 16}) {
        for (int devices : {8, 16}) {
            const Cell cell = runCell(batch, devices);
            table.row({std::to_string(batch), std::to_string(devices),
                       "Megatron",
                       fmtDouble(cell.megatron.computeUs, 0),
                       fmtDouble(cell.megatron.allReduceUs, 0),
                       fmtDouble(cell.megatron.ringUs, 0),
                       fmtDouble(cell.megatron.redistUs, 0),
                       fmtDouble(cell.megatron.latencyUs, 0), "100%"});
            const double rel =
                cell.megatron.allReduceUs > 0
                    ? 100.0 * cell.primepar.allReduceUs /
                          cell.megatron.allReduceUs
                    : 0.0;
            table.row({std::to_string(batch), std::to_string(devices),
                       "PrimePar",
                       fmtDouble(cell.primepar.computeUs, 0),
                       fmtDouble(cell.primepar.allReduceUs, 0),
                       fmtDouble(cell.primepar.ringUs, 0),
                       fmtDouble(cell.primepar.redistUs, 0),
                       fmtDouble(cell.primepar.latencyUs, 0),
                       fmtDouble(rel, 1) + "%"});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper reference: PrimePar collective latency is "
                "19.9%%-62.2%% of Megatron's; compute roughly equal; "
                "ring traffic overlapped.\n\n");

    // Right panel: the chosen partition sequences at batch 8, 8 GPUs.
    const Cell cell = runCell(8, 8);
    const ModelConfig model = opt175b();
    const CompGraph graph = buildMlpBlock(model, 8);
    std::printf("Partition sequences (batch 8, 8 GPUs):\n");
    for (int n = 0; n < graph.numNodes(); ++n) {
        std::printf("  %-6s  Megatron: %-12s  PrimePar: %s\n",
                    graph.node(n).name.c_str(),
                    cell.megatron.strategies[n]
                        .toString(graph.node(n))
                        .c_str(),
                    cell.primepar.strategies[n]
                        .toString(graph.node(n))
                        .c_str());
    }
    std::printf("\nPaper reference (Fig. 9 right): PrimePar fc2 uses "
                "a sequence like B,N,P2x2 — the novel primitive on "
                "the intra-node bits with one all-reduce level moved "
                "to a quarter-size tensor.\n");

    // Kernel execution timelines (the paper's right-hand panel).
    const ClusterTopology topo = ClusterTopology::paperCluster(8);
    auto timeline = [&](const char *name,
                        const std::vector<PartitionSeq> &strategies) {
        Trace trace;
        const ModelSimulator sim(topo, graph, strategies);
        sim.simulate(1, &trace);
        std::printf("\n%s timeline (one MLP iteration, 8 devices):\n%s",
                    name, trace.toAscii(70).c_str());
    };
    timeline("Megatron", cell.megatron.strategies);
    timeline("PrimePar", cell.primepar.strategies);
    return 0;
}
