/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Every bench binary regenerates one table or figure of the paper
 * (see DESIGN.md's experiment index): it searches strategies with the
 * optimizer / baselines, *measures* them on the event simulator, and
 * prints the same rows or series the paper reports, with the paper's
 * reference numbers alongside where the paper states them.
 */

#ifndef PRIMEPAR_BENCH_COMMON_HH
#define PRIMEPAR_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "baselines/megatron.hh"
#include "cost/cost_model.hh"
#include "graph/transformer.hh"
#include "optimizer/segmented_dp.hh"
#include "sim/model_sim.hh"
#include "support/table.hh"

namespace primepar {
namespace bench {

/** Measured outcome of one (system, model, scale) cell. */
struct SystemResult
{
    std::string system;
    double tokensPerSec = 0.0;
    double latencyUs = 0.0;
    double computeUs = 0.0;
    double allReduceUs = 0.0;
    double ringUs = 0.0;
    double redistUs = 0.0;
    double peakMemoryBytes = 0.0;
    std::vector<PartitionSeq> strategies;
};

/** Simulate a strategy assignment for the full model. */
SystemResult measure(const std::string &system, const ModelConfig &model,
                     const ClusterTopology &topo, const CompGraph &graph,
                     std::vector<PartitionSeq> strategies);

/**
 * Run the three systems of the paper's Figs. 7/8 on one (model,
 * device-count) cell: best Megatron (d, m), Alpa-like (optimal
 * spatial-only plan), PrimePar (full spatial-temporal plan).
 *
 * @param num_threads planner threads (0 = hardware concurrency); the
 *        chosen plans are identical at any value. The Alpa and
 *        PrimePar searches share one catalog cache.
 */
std::vector<SystemResult> compareSystems(const ModelConfig &model,
                                         int devices,
                                         std::int64_t batch,
                                         int num_threads = 0);

/** Tokens/s given a whole-model iteration latency. */
double tokensPerSecond(const ModelConfig &model, std::int64_t batch,
                       double iteration_us);

} // namespace bench
} // namespace primepar

#endif // PRIMEPAR_BENCH_COMMON_HH
