/**
 * @file
 * Reproduces the paper's Table 2: wall-clock time of the segmented
 * dynamic programming optimizer for the OPT / Llama2 / BLOOM model
 * structures at parallelism sizes 4 / 8 / 16 / 32 (single thread).
 *
 * Expected shape (paper, on a Xeon Gold 5218): ~85 ms at 4-8
 * devices, ~170 ms at 16, a few seconds at 32 — the jump at 32 comes
 * from the cubic dependence on the per-operator space size.
 */

#include <benchmark/benchmark.h>

#include "common.hh"

using namespace primepar;
using namespace primepar::bench;

namespace {

void
optimizeOnce(benchmark::State &state, const ModelConfig &model)
{
    const int devices = static_cast<int>(state.range(0));
    const ClusterTopology topo = ClusterTopology::paperCluster(devices);
    const CostModel cost(topo, profileModels(topo));
    const CompGraph graph = buildTransformerBlock(model, 8);

    DpOptions opts;
    opts.numLayers = model.numLayers;
    for (auto _ : state) {
        const DpResult r =
            SegmentedDpOptimizer(graph, cost, opts).optimize();
        benchmark::DoNotOptimize(r.layerCost);
        state.counters["search_ms"] = r.optimizationMs;
    }
}

void
BM_Optimize_OPT(benchmark::State &state)
{
    optimizeOnce(state, opt6p7b());
}

void
BM_Optimize_Llama2(benchmark::State &state)
{
    optimizeOnce(state, llama2_7b());
}

void
BM_Optimize_Bloom(benchmark::State &state)
{
    optimizeOnce(state, bloom7b1());
}

} // namespace

BENCHMARK(BM_Optimize_OPT)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Optimize_Llama2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Optimize_Bloom)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
