/**
 * @file
 * Reproduces the paper's Table 2: wall-clock time of the segmented
 * dynamic programming optimizer for the OPT / Llama2 / BLOOM model
 * structures at parallelism sizes 4 / 8 / 16 / 32.
 *
 * Expected shape (paper, on a Xeon Gold 5218): ~85 ms at 4-8
 * devices, ~170 ms at 16, a few seconds at 32 — the jump at 32 comes
 * from the cubic dependence on the per-operator space size.
 *
 * Two modes:
 *  - default: google-benchmark timings at numThreads = 1 (the paper's
 *    single-thread setting);
 *  - sweep (`--json out.json` and/or `--sweep`): runs every
 *    (model, devices) cell at a sweep of planner thread counts,
 *    verifies the chosen plans and costs are bit-identical across
 *    thread counts, prints a table with per-phase timings and
 *    speedups, and emits machine-readable JSON so planner-latency
 *    trajectories can be tracked across commits.
 *
 *    bench_table2_opttime --sweep [--json FILE] [--devices 4,8,16]
 *                         [--threads 1,2,4] \
 *                         [--models "OPT 6.7B,Llama2 7B"] \
 *                         [--prune on|off|both] [--beam N]
 *
 *    The sweep scales to big topologies (--devices 512,1024,...,4096):
 *    above 64 devices it bounds the per-operator space
 *    (maxTemporalSteps = 8, then 4 above 1024 devices), narrows the
 *    pruning pilot to 8 candidates, and defaults to the certified-gap
 *    beam (16 wide up to 1024 devices, 8 above), since the exhaustive
 *    space there holds 10^5-10^8 sequences per operator. `--prune
 *    both` runs each cell with and without dominance pruning — the
 *    A/B column behind BENCH_planner.json — and verifies that the
 *    two agree bit-identically whenever no beam truncation occurred.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hh"
#include "runtime/errors.hh"
#include "support/bits.hh"
#include "support/parallel.hh"

using namespace primepar;
using namespace primepar::bench;

namespace {

void
optimizeOnce(benchmark::State &state, const ModelConfig &model)
{
    const int devices = static_cast<int>(state.range(0));
    const ClusterTopology topo = ClusterTopology::paperCluster(devices);
    const CostModel cost(topo, profileModels(topo));
    const CompGraph graph = buildTransformerBlock(model, 8);

    DpOptions opts;
    opts.numLayers = model.numLayers;
    opts.numThreads = 1; // the paper's single-thread setting
    for (auto _ : state) {
        const DpResult r =
            SegmentedDpOptimizer(graph, cost, opts).optimize();
        benchmark::DoNotOptimize(r.layerCost);
        state.counters["search_ms"] = r.optimizationMs;
    }
}

void
BM_Optimize_OPT(benchmark::State &state)
{
    optimizeOnce(state, opt6p7b());
}

void
BM_Optimize_Llama2(benchmark::State &state)
{
    optimizeOnce(state, llama2_7b());
}

void
BM_Optimize_Bloom(benchmark::State &state)
{
    optimizeOnce(state, bloom7b1());
}

// ---------------------------------------------------------------------
// Thread-sweep mode.

struct SweepOptions
{
    std::string jsonPath;
    std::vector<int> devices{4, 8, 16};
    std::vector<int> threads;
    std::vector<ModelConfig> models;
    int pruneMode = 1;  // 0 = off, 1 = on, 2 = both (A/B)
    int beamWidth = -1; // -1 = auto by device count
};

/** Beam default: exact up to 64 devices, then narrow with scale so
 *  the 4096-device cell stays under a minute. Catalog evaluation cost
 *  per candidate and traffic cost per class pair both grow with the
 *  device count, so the beam must *shrink* as the topology grows. */
int
autoBeamWidth(int devices)
{
    if (devices <= 64)
        return 0;
    return devices <= 1024 ? 16 : 8;
}

std::vector<int>
parseIntList(const char *text)
{
    std::vector<int> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(std::atoi(item.c_str()));
    return out;
}

/** Default thread sweep: 1, powers of two up to, and including, the
 *  hardware concurrency. */
std::vector<int>
defaultThreadSweep()
{
    const int hw = hardwareConcurrency();
    std::vector<int> sweep;
    for (int t = 1; t < hw; t *= 2)
        sweep.push_back(t);
    sweep.push_back(hw);
    return sweep;
}

struct SweepCell
{
    std::string model;
    int devices = 0;
    int numThreads = 0; // resolved
    bool pruned = true;
    int beamWidth = 0;
    DpResult result;
};

int
runSweep(const SweepOptions &opts)
{
    std::vector<SweepCell> cells;
    bool consistent = true;

    TextTable table;
    table.header({"model", "devices", "threads", "prune", "search ms",
                  "catalog ms", "pilot ms", "tables ms", "dp ms",
                  "gap %", "speedup"});

    // Exhaustive (prune off) first so the speedup column reads as the
    // pruning gain; within a mode, later thread counts read as thread
    // scaling.
    std::vector<bool> prune_modes;
    if (opts.pruneMode != 1)
        prune_modes.push_back(false);
    if (opts.pruneMode != 0)
        prune_modes.push_back(true);

    for (const ModelConfig &model : opts.models) {
        for (const int devices : opts.devices) {
            const ClusterTopology topo =
                ClusterTopology::paperCluster(devices);
            const CostModel cost(topo, profileModels(topo));
            const CompGraph graph = buildTransformerBlock(model, 8);
            const int beam = opts.beamWidth >= 0
                                 ? opts.beamWidth
                                 : autoBeamWidth(devices);

            DpResult baseline; // first run of this (model, devices)
            bool have_baseline = false;
            double baseline_ms = 0.0;
            for (const bool pruned : prune_modes) {
                if (!pruned && devices > 64) {
                    std::fprintf(stderr,
                                 "warning: exhaustive planning at %d "
                                 "devices may take hours\n",
                                 devices);
                }
                for (const int threads : opts.threads) {
                    DpOptions dp;
                    dp.numLayers = model.numLayers;
                    dp.numThreads = threads;
                    dp.pruneDominated = pruned;
                    dp.beamWidth = beam;
                    if (devices > 64) {
                        // Big-topology bounds: cap the per-operator
                        // temporal depth and narrow the pilot (any
                        // pilotWidth >= 1 keeps pruning exact; a
                        // pilot as wide as the beam would redo the
                        // full table work a second time).
                        dp.space.maxTemporalSteps =
                            devices > 1024 ? 4 : 8;
                        dp.pilotWidth = 8;
                    }
                    const DpResult r =
                        SegmentedDpOptimizer(graph, cost, dp)
                            .optimize();

                    SweepCell cell;
                    cell.model = model.name;
                    cell.devices = devices;
                    cell.numThreads = resolveNumThreads(threads);
                    cell.pruned = pruned;
                    cell.beamWidth = beam;
                    cell.result = r;

                    if (!have_baseline) {
                        baseline_ms = r.optimizationMs;
                    } else if (!r.truncated && !baseline.truncated &&
                               (r.layerCost != baseline.layerCost ||
                                r.totalCost != baseline.totalCost ||
                                r.strategies != baseline.strategies)) {
                        // Exact runs must agree bit-identically across
                        // thread counts AND across prune on/off.
                        consistent = false;
                        std::fprintf(
                            stderr,
                            "CONSISTENCY VIOLATION: %s @ %d devices, "
                            "%d threads, prune %s diverges from the "
                            "first exact plan\n",
                            model.name.c_str(), devices,
                            cell.numThreads, pruned ? "on" : "off");
                    }
                    table.row({model.name, std::to_string(devices),
                               std::to_string(cell.numThreads),
                               pruned ? "on" : "off",
                               fmtDouble(r.optimizationMs, 1),
                               fmtDouble(r.catalogMs, 1),
                               fmtDouble(r.pilotMs, 1),
                               fmtDouble(r.edgeTableMs, 1),
                               fmtDouble(r.dpMs, 1),
                               fmtDouble(r.gapPct, 2),
                               fmtDouble(baseline_ms /
                                             r.optimizationMs,
                                         2)});
                    cells.push_back(std::move(cell));
                    if (!have_baseline) {
                        baseline = r;
                        have_baseline = true;
                    }
                }
            }
        }
    }
    std::printf("%s", table.render().c_str());

    if (!opts.jsonPath.empty()) {
        std::ostringstream os;
        os << "{\n  \"host_threads\": " << hardwareConcurrency()
           << ",\n  \"deterministic\": "
           << (consistent ? "true" : "false") << ",\n  \"results\": [";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const SweepCell &c = cells[i];
            const DpResult &r = c.result;
            os << (i ? "," : "") << "\n    {\"model\": \"" << c.model
               << "\", \"devices\": " << c.devices
               << ", \"num_threads\": " << c.numThreads
               << ", \"prune\": " << (c.pruned ? "true" : "false")
               << ", \"beam_width\": " << c.beamWidth
               << ", \"search_ms\": " << r.optimizationMs
               << ", \"catalog_ms\": " << r.catalogMs
               << ", \"pilot_ms\": " << r.pilotMs
               << ", \"table_ms\": " << r.edgeTableMs
               << ", \"dp_ms\": " << r.dpMs
               << ", \"candidates_total\": " << r.candidatesTotal
               << ", \"candidates_kept\": " << r.candidatesKept
               << ", \"states_pruned\": " << r.statesPruned
               << ", \"truncated\": " << (r.truncated ? "true" : "false")
               << ", \"gap_pct\": " << r.gapPct
               << ", \"layer_cost_us\": " << r.layerCost
               << ", \"total_cost_us\": " << r.totalCost << "}";
        }
        os << "\n  ]\n}\n";
        std::ofstream out(opts.jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         opts.jsonPath.c_str());
            return 1;
        }
        out << os.str();
        std::printf("wrote %s\n", opts.jsonPath.c_str());
    }
    return consistent ? 0 : 1;
}

} // namespace

BENCHMARK(BM_Optimize_OPT)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Optimize_Llama2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Optimize_Bloom)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int
run(int argc, char **argv)
{
    SweepOptions sweep;
    bool sweep_mode = false;
    std::vector<std::string> model_names{"OPT 6.7B", "Llama2 7B",
                                         "BLOOM 7B1"};
    for (int i = 1; i < argc; ++i) {
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--sweep") == 0) {
            sweep_mode = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            sweep_mode = true;
            sweep.jsonPath = next();
        } else if (std::strcmp(argv[i], "--devices") == 0) {
            sweep.devices = parseIntList(next());
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            sweep.threads = parseIntList(next());
        } else if (std::strcmp(argv[i], "--prune") == 0) {
            const std::string mode = next();
            if (mode == "off")
                sweep.pruneMode = 0;
            else if (mode == "on")
                sweep.pruneMode = 1;
            else if (mode == "both")
                sweep.pruneMode = 2;
            else
                throw InputError("--prune must be on, off or both "
                                 "(got '" +
                                 mode + "')");
        } else if (std::strcmp(argv[i], "--beam") == 0) {
            sweep.beamWidth = std::atoi(next());
        } else if (std::strcmp(argv[i], "--models") == 0) {
            model_names.clear();
            std::stringstream ss(next());
            std::string item;
            while (std::getline(ss, item, ','))
                model_names.push_back(item);
        }
    }
    if (sweep_mode) {
        for (const int d : sweep.devices) {
            if (d < 1 || !isPowerOfTwo(d)) {
                throw InputError(
                    "--devices entries must be positive powers of two "
                    "(got " +
                    std::to_string(d) +
                    "); the paper cluster tiles 2^k devices");
            }
        }
        if (sweep.beamWidth > 0 && sweep.beamWidth < 2)
            throw InputError("--beam must be 0 (exact) or >= 2");
        if (sweep.threads.empty())
            sweep.threads = defaultThreadSweep();
        for (const std::string &name : model_names)
            sweep.models.push_back(modelByName(name));
        return runSweep(sweep);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const InputError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
