/**
 * @file
 * Reproduces the paper's Fig. 7: normalized training throughput of
 * Megatron-LM, Alpa and PrimePar for the six evaluation models at
 * 4 / 8 / 16 / 32 GPUs (tensor parallelism only, no pipeline).
 *
 * Expected shape (paper): PrimePar >= Alpa ~ Megatron everywhere;
 * 1.16-1.20x at ~7B scale, 1.11-1.68x beyond 100B, speedup growing
 * with the device count; geo-mean 1.30x at 32 GPUs.
 */

#include <cmath>
#include <cstdio>

#include "common.hh"

using namespace primepar;
using namespace primepar::bench;

int
main()
{
    std::printf(
        "=== PrimePar reproduction: Fig. 7 (training throughput) ===\n"
        "Normalized to Megatron-LM = 1.00 per cell; batch 8.\n\n");

    TextTable table;
    table.header({"model", "gpus", "Megatron", "Alpa", "PrimePar",
                  "PrimePar tok/s"});

    double geo_mean_32 = 1.0;
    int count_32 = 0;
    for (const ModelConfig &model : evaluationModels()) {
        for (int devices : {4, 8, 16, 32}) {
            const auto results = compareSystems(model, devices, 8);
            const double base = results[0].tokensPerSec;
            table.row({model.name, std::to_string(devices),
                       fmtDouble(results[0].tokensPerSec / base, 2),
                       fmtDouble(results[1].tokensPerSec / base, 2),
                       fmtDouble(results[2].tokensPerSec / base, 2),
                       fmtDouble(results[2].tokensPerSec, 0)});
            if (devices == 32) {
                geo_mean_32 *= results[2].tokensPerSec / base;
                ++count_32;
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Geo-mean PrimePar speedup over Megatron at 32 GPUs: "
                "%.2fx (paper: 1.30x; paper max: 1.68x)\n",
                std::pow(geo_mean_32, 1.0 / count_32));
    return 0;
}
