/**
 * @file
 * Micro-benchmarks of PrimePar's hot paths.
 *
 * Two modes:
 *  - default (google-benchmark): DSI table evaluation, comm-pattern
 *    derivation, partition space enumeration, redistribution traffic
 *    and the SPMD contraction kernel — guards the optimizer's O(P^3)
 *    inner loops against regressions.
 *  - `--json [FILE]` (add `--quick` for CI sizes): the runtime
 *    microbench. Reports blocked-vs-naive kernel timings (ms, GFLOP/s,
 *    bytes moved), a partitioned training step across thread counts
 *    (tokens/s, ring/all-reduce bytes, scaling efficiency), the
 *    fault-free overhead of the checksummed transport (budget < 3%),
 *    the overhead of the full observability stack (tracing + metrics,
 *    same budget), the async comm/compute overlap win on a
 *    communication-heavy config over an emulated link (step speedup
 *    and fraction of transfer time hidden; budgets >= 1.15x and >=
 *    60% at full size), the per-codec bytes-on-wire of a
 *    bf16-rounded gradient payload (pack must cost <= 0.7x raw and
 *    round-trip exactly) and buffer pool statistics as a
 *    `primepar-bench-runtime-v1` JSON
 *    document, validated by scripts/bench_check.sh.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "baselines/megatron.hh"
#include "cost/cost_model.hh"
#include "partition/comm_pattern.hh"
#include "partition/space.hh"
#include "runtime/graph_executor.hh"
#include "runtime/metrics.hh"
#include "runtime/observer.hh"
#include "runtime/transformer_runtime.hh"
#include "runtime/transport.hh"
#include "tensor/einsum.hh"
#include "tensor/gemm.hh"
#include "tensor/ops.hh"

using namespace primepar;

namespace {

void
BM_DsiTableBuild(benchmark::State &state)
{
    const int bits = static_cast<int>(state.range(0));
    const OpSpec op = makeLinearOp("fc", 8, 2048, 4096, 4096);
    PartitionSeq seq;
    seq.push(PartitionStep::pSquare(bits / 2));
    for (int b = 2 * (bits / 2); b < bits; ++b)
        seq.push(PartitionStep::byDim(0));
    for (auto _ : state) {
        DsiTable dsi(op, seq, bits);
        benchmark::DoNotOptimize(dsi.steps());
    }
}
BENCHMARK(BM_DsiTableBuild)->Arg(2)->Arg(4)->Arg(6);

void
BM_DerivePassComm(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    const OpSpec op = makeLinearOp("fc", 8, 2048, 4096, 4096);
    const PartitionSeq seq({PartitionStep::pSquare(k)});
    const DsiTable dsi(op, seq, 2 * k);
    for (auto _ : state) {
        const PassComm comm = derivePassComm(op, seq, dsi, 2);
        benchmark::DoNotOptimize(comm.stepShifts.size());
    }
}
BENCHMARK(BM_DerivePassComm)->Arg(1)->Arg(2)->Arg(3);

void
BM_EnumerateSpace(benchmark::State &state)
{
    const int bits = static_cast<int>(state.range(0));
    const OpSpec op = makeLinearOp("fc", 64, 2048, 4096, 4096);
    for (auto _ : state) {
        const auto space = enumerateSequences(op, bits);
        benchmark::DoNotOptimize(space.size());
    }
    state.counters["sequences"] = static_cast<double>(
        enumerateSequences(op, bits).size());
}
BENCHMARK(BM_EnumerateSpace)->Arg(3)->Arg(4)->Arg(5);

void
BM_TrafficSplit(benchmark::State &state)
{
    const OpSpec op = makeLinearOp("fc", 8, 2048, 4096, 4096);
    const ClusterTopology topo = ClusterTopology::paperCluster(
        1 << state.range(0));
    const CostModel cm(topo, profileModels(topo));
    const int bits = static_cast<int>(state.range(0));
    PartitionSeq a, b;
    for (int i = 0; i < bits; ++i) {
        a.push(PartitionStep::byDim(i % 2));
        b.push(PartitionStep::byDim(3 - i % 2));
    }
    const DsiTable da(op, a, bits), db(op, b, bits);
    const EdgeDimMap map{0, 1, 3};
    const auto have = layoutOf(op, da, {op.outputTensor, false},
                               Phase::Forward, 0, map, {8, 2048, 4096});
    const auto need = layoutOf(op, db, {op.outputTensor, false},
                               Phase::Forward, 0, map, {8, 2048, 4096});
    const auto prepared = CostModel::prepareSource(have);
    for (auto _ : state) {
        const auto split = cm.trafficSplit(prepared, need);
        benchmark::DoNotOptimize(split.intraNode);
    }
}
BENCHMARK(BM_TrafficSplit)->Arg(3)->Arg(5);

void
BM_ContractProduct(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    Rng rng(1);
    const Tensor a = Tensor::random(Shape{n, n}, rng);
    const Tensor b = Tensor::random(Shape{n, n}, rng);
    Tensor out(Shape{n, n});
    for (auto _ : state) {
        out.zero();
        contractProduct(a, {0, 1}, b, {1, 2}, out, {0, 2});
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_ContractProduct)->Arg(32)->Arg(64);

// ---------------------------------------------------------------------
// Runtime microbench (--json mode)
// ---------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

/** Best-of-@p iters wall time of @p fn in milliseconds. */
template <typename Fn>
double
timeMs(int iters, Fn &&fn)
{
    double best = 0.0;
    for (int i = 0; i < iters; ++i) {
        const auto t0 = Clock::now();
        fn();
        const auto t1 = Clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (i == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** JSON float: bench_check.sh refuses NaN/Inf, so clamp them loudly. */
std::string
jnum(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    os.precision(6);
    os << std::fixed << v;
    return os.str();
}

struct KernelReport
{
    std::string name;
    std::int64_t m, n, k;
    double blocked_ms, naive_ms, max_abs_diff;
    std::int64_t bytes_moved;
};

void
emitKernel(std::ostream &os, const KernelReport &r, bool last)
{
    const double flops = 2.0 * static_cast<double>(r.m) *
                         static_cast<double>(r.n) *
                         static_cast<double>(r.k);
    os << "    {\"name\": \"" << r.name << "\", \"m\": " << r.m
       << ", \"n\": " << r.n << ", \"k\": " << r.k
       << ", \"blocked_ms\": " << jnum(r.blocked_ms)
       << ", \"naive_ms\": " << jnum(r.naive_ms)
       << ", \"speedup\": " << jnum(r.naive_ms / r.blocked_ms)
       << ", \"gflops\": " << jnum(flops / (r.blocked_ms * 1e6))
       << ", \"bytes_moved\": " << r.bytes_moved
       << ", \"max_abs_diff\": " << jnum(r.max_abs_diff) << "}"
       << (last ? "" : ",") << "\n";
}

std::vector<KernelReport>
runKernelBenches(bool quick)
{
    std::vector<KernelReport> reports;
    Rng rng(1234);
    const int iters = quick ? 1 : 3;

    // The acceptance-criterion GEMM: 1024^3 linearForward.
    const std::int64_t G = quick ? 128 : 1024;
    const std::int64_t S = quick ? 96 : 512;

    {
        const Tensor in = Tensor::random({G, G}, rng);
        const Tensor w = Tensor::random({G, G}, rng);
        Tensor blocked, ref;
        const double bms =
            timeMs(iters, [&] { blocked = linearForward(in, w); });
        const double nms =
            timeMs(1, [&] { ref = naive::linearForward(in, w); });
        reports.push_back({"linearForward", G, G, G, bms, nms,
                           static_cast<double>(blocked.maxAbsDiff(ref)),
                           4 * (3 * G * G)});
    }
    {
        const Tensor go = Tensor::random({S, S}, rng);
        const Tensor w = Tensor::random({S, S}, rng);
        Tensor blocked, ref;
        const double bms =
            timeMs(iters, [&] { blocked = linearBackward(go, w); });
        const double nms =
            timeMs(1, [&] { ref = naive::linearBackward(go, w); });
        reports.push_back({"linearBackward", S, S, S, bms, nms,
                           static_cast<double>(blocked.maxAbsDiff(ref)),
                           4 * (3 * S * S)});
    }
    {
        const Tensor in = Tensor::random({S, S}, rng);
        const Tensor go = Tensor::random({S, S}, rng);
        Tensor blocked, ref;
        const double bms =
            timeMs(iters, [&] { blocked = linearGradient(in, go); });
        const double nms =
            timeMs(1, [&] { ref = naive::linearGradient(in, go); });
        reports.push_back({"linearGradient", S, S, S, bms, nms,
                           static_cast<double>(blocked.maxAbsDiff(ref)),
                           4 * (3 * S * S)});
    }
    {
        const std::int64_t B = 8, M = quick ? 64 : 256;
        const Tensor a = Tensor::random({B, M, M}, rng);
        const Tensor b = Tensor::random({B, M, M}, rng);
        Tensor blocked, ref;
        const double bms = timeMs(
            iters, [&] { blocked = batchedMatmul(a, b, false, true); });
        const double nms = timeMs(
            1, [&] { ref = naive::batchedMatmul(a, b, false, true); });
        reports.push_back({"batchedMatmulNT", B * M, M, M, bms, nms,
                           static_cast<double>(blocked.maxAbsDiff(ref)),
                           4 * (3 * B * M * M)});
    }
    {
        // The executor's generic contraction through the einsum GEMM
        // fast path, against the seed odometer.
        const std::int64_t M = quick ? 64 : 256;
        const Tensor a = Tensor::random({M, M}, rng);
        const Tensor b = Tensor::random({M, M}, rng);
        Tensor blocked(Shape{M, M});
        Tensor ref(Shape{M, M});
        const double bms = timeMs(iters, [&] {
            blocked.zero();
            contractProduct(a, {0, 1}, b, {1, 2}, blocked, {0, 2});
        });
        const double nms = timeMs(1, [&] {
            ref.zero();
            naive::contract(a, {0, 1}, b, {1, 2}, ref, {0, 2});
        });
        reports.push_back({"contractProduct", M, M, M, bms, nms,
                           static_cast<double>(blocked.maxAbsDiff(ref)),
                           4 * (3 * M * M)});
    }
    return reports;
}

/** PrimePar-style plan over 4 emulated devices: PSquare on each
 *  linear, batch/sequence splits elsewhere. */
std::vector<PartitionSeq>
benchBlockPlan(const CompGraph &graph)
{
    std::vector<PartitionSeq> plan(graph.numNodes());
    for (int n = 0; n < graph.numNodes(); ++n) {
        const OpSpec &op = graph.node(n);
        if (op.psquare.has_value()) {
            plan[n] = PartitionSeq({PartitionStep::pSquare(1)});
        } else if (op.kind == "matmul" || op.kind == "softmax") {
            plan[n] = PartitionSeq(
                {PartitionStep::byDim(0),
                 PartitionStep::byDim(op.dimIndex("Hd"))});
        } else {
            plan[n] = PartitionSeq(
                {PartitionStep::byDim(0),
                 PartitionStep::byDim(op.dimIndex("M"))});
        }
    }
    return plan;
}

/** One partitioned transformer-block training step, timed per thread
 *  count; outputs must be bit-identical across all of them. */
void
emitTrainingStep(std::ostream &os, bool quick)
{
    ModelConfig cfg;
    cfg.name = "bench";
    cfg.hiddenSize = quick ? 32 : 128;
    cfg.numHeads = 4;
    cfg.ffnSize = quick ? 64 : 512;
    cfg.seqLength = quick ? 16 : 32;
    cfg.numLayers = 1;
    const std::int64_t batch = 4;

    const CompGraph graph = buildTransformerBlock(cfg, batch);
    Rng rng(99);
    GraphIO io;
    io.input = Tensor::random(
        Shape{batch, cfg.seqLength, cfg.hiddenSize}, rng);
    io.params = randomBlockParams(graph, rng);
    io.d_output = Tensor::random(
        Shape{batch, cfg.seqLength, cfg.hiddenSize}, rng);

    const std::vector<PartitionSeq> plan = benchBlockPlan(graph);

    const std::int64_t tokens = batch * cfg.seqLength;
    const int iters = quick ? 1 : 3;
    const std::vector<int> thread_settings = {1, 2, 4, 0};

    double base_ms = 0.0;
    GraphResult ref_result;
    bool bit_identical = true;
    std::int64_t ring_bytes = 0, allreduce_bytes = 0;

    os << "  \"training_step\": {\n"
       << "    \"model\": {\"hidden\": " << cfg.hiddenSize
       << ", \"heads\": " << cfg.numHeads << ", \"ffn\": " << cfg.ffnSize
       << ", \"seq\": " << cfg.seqLength << ", \"batch\": " << batch
       << ", \"devices\": 4},\n"
       << "    \"tokens_per_step\": " << tokens << ",\n"
       << "    \"threads\": [\n";

    for (std::size_t i = 0; i < thread_settings.size(); ++i) {
        const int requested = thread_settings[i];
        SpmdGraphExecutor exec(graph, plan, 2, requested);
        installTransformerBlockTransforms(exec, cfg, batch);

        GraphResult result;
        const double ms =
            timeMs(iters, [&] { result = exec.run(io); });
        if (i == 0) {
            base_ms = ms;
            ref_result = result;
            ring_bytes = exec.stats().ringElements * 4;
            allreduce_bytes = exec.stats().allReduceElements * 4;
        } else {
            if (result.output.maxAbsDiff(ref_result.output) != 0.0f ||
                result.d_input.maxAbsDiff(ref_result.d_input) != 0.0f)
                bit_identical = false;
            for (const auto &[name, grad] : ref_result.d_params) {
                if (result.d_params.at(name).maxAbsDiff(grad) != 0.0f)
                    bit_identical = false;
            }
        }
        os << "      {\"num_threads\": " << requested
           << ", \"resolved_threads\": " << resolveNumThreads(requested)
           << ", \"ms_per_step\": " << jnum(ms)
           << ", \"tokens_per_s\": "
           << jnum(static_cast<double>(tokens) / (ms / 1000.0))
           << ", \"speedup_vs_1t\": " << jnum(base_ms / ms) << "}"
           << (i + 1 < thread_settings.size() ? "," : "") << "\n";
    }

    os << "    ],\n"
       << "    \"ring_bytes_per_step\": " << ring_bytes << ",\n"
       << "    \"allreduce_bytes_per_step\": " << allreduce_bytes
       << ",\n"
       << "    \"bit_identical_across_threads\": "
       << (bit_identical ? "true" : "false") << "\n"
       << "  },\n";
}

/** Fault-free cost of routing every shift/all-reduce through the
 *  checksummed transport vs direct in-process copies. Budget: < 3%
 *  overhead per training step, with bit-identical outputs. */
void
emitFaultOverhead(std::ostream &os, bool quick)
{
    ModelConfig cfg;
    cfg.name = "bench";
    cfg.hiddenSize = quick ? 32 : 128;
    cfg.numHeads = 4;
    cfg.ffnSize = quick ? 64 : 512;
    cfg.seqLength = quick ? 16 : 32;
    cfg.numLayers = 1;
    const std::int64_t batch = 4;

    const CompGraph graph = buildTransformerBlock(cfg, batch);
    Rng rng(99);
    GraphIO io;
    io.input = Tensor::random(
        Shape{batch, cfg.seqLength, cfg.hiddenSize}, rng);
    io.params = randomBlockParams(graph, rng);
    io.d_output = Tensor::random(
        Shape{batch, cfg.seqLength, cfg.hiddenSize}, rng);

    const std::vector<PartitionSeq> plan = benchBlockPlan(graph);
    // Best-of over many interleaved rounds: the overhead budget is a
    // ~0.3ms signal on an ~11ms step, so the minima need to converge
    // further than the other sections' do.
    const int rounds = quick ? 4 : 48;

    // Serial pipeline on both sides: this section isolates the
    // transport's copy/checksum cost, and the async comm worker's
    // scheduling jitter on a shared core would drown the ~1% signal
    // (the overlap win has its own overlap_efficiency section).
    SpmdGraphExecutor base_exec(graph, plan, 2, 0,
                                /*overlap_comm=*/false);
    installTransformerBlockTransforms(base_exec, cfg, batch);

    // Same step, but every transfer goes through the transport with
    // checksums + header verification on (no injector, no guard): the
    // cost a fault-free run pays for being protectable.
    RuntimeHealth health;
    InProcessTransport transport({}, nullptr, &health);
    SpmdGraphExecutor fault_exec(graph, plan, 2, 0,
                                 /*overlap_comm=*/false);
    installTransformerBlockTransforms(fault_exec, cfg, batch);
    fault_exec.setTransport(&transport);
    GuardOptions guard;
    guard.enabled = false;
    fault_exec.setHealth(&health, guard);

    // Interleave the two variants round-by-round (alternating which
    // goes first) so machine-wide drift hits both alike;
    // best-of-rounds absorbs transient noise.
    GraphResult base_result, fault_result;
    double base_ms = 0.0, transport_ms = 0.0;
    for (int r = 0; r < rounds; ++r) {
        double b, t;
        if (r & 1) {
            t = timeMs(1, [&] { fault_result = fault_exec.run(io); });
            b = timeMs(1, [&] { base_result = base_exec.run(io); });
        } else {
            b = timeMs(1, [&] { base_result = base_exec.run(io); });
            t = timeMs(1, [&] { fault_result = fault_exec.run(io); });
        }
        base_ms = (r == 0) ? b : std::min(base_ms, b);
        transport_ms = (r == 0) ? t : std::min(transport_ms, t);
    }

    // One clean run for the per-step transfer counters.
    health.reset();
    fault_result = fault_exec.run(io);

    bool bit_identical =
        fault_result.output.maxAbsDiff(base_result.output) == 0.0f &&
        fault_result.d_input.maxAbsDiff(base_result.d_input) == 0.0f;
    for (const auto &[name, grad] : base_result.d_params) {
        if (fault_result.d_params.at(name).maxAbsDiff(grad) != 0.0f)
            bit_identical = false;
    }

    os << "  \"fault_overhead\": {\n"
       << "    \"base_ms_per_step\": " << jnum(base_ms) << ",\n"
       << "    \"transport_ms_per_step\": " << jnum(transport_ms)
       << ",\n"
       << "    \"overhead_pct\": "
       << jnum((transport_ms / base_ms - 1.0) * 100.0) << ",\n"
       << "    \"transfers_per_step\": " << health.transfers << ",\n"
       << "    \"bytes_moved_per_step\": " << health.bytesMoved
       << ",\n"
       << "    \"bit_identical\": "
       << (bit_identical ? "true" : "false") << ",\n"
       << "    \"all_clear\": "
       << (health.allClear() ? "true" : "false") << "\n"
       << "  },\n";
}

/** Cost of attaching the full observability stack (TracingObserver +
 *  MetricsObserver) to a transport-routed training step, vs the same
 *  step unobserved. Budget: < 3% per step at full size. */
void
emitObserverOverhead(std::ostream &os, bool quick)
{
    ModelConfig cfg;
    cfg.name = "bench";
    cfg.hiddenSize = quick ? 32 : 128;
    cfg.numHeads = 4;
    cfg.ffnSize = quick ? 64 : 512;
    cfg.seqLength = quick ? 16 : 32;
    cfg.numLayers = 1;
    const std::int64_t batch = 4;

    const CompGraph graph = buildTransformerBlock(cfg, batch);
    Rng rng(99);
    GraphIO io;
    io.input = Tensor::random(
        Shape{batch, cfg.seqLength, cfg.hiddenSize}, rng);
    io.params = randomBlockParams(graph, rng);
    io.d_output = Tensor::random(
        Shape{batch, cfg.seqLength, cfg.hiddenSize}, rng);

    const std::vector<PartitionSeq> plan = benchBlockPlan(graph);
    // Best-of over many interleaved rounds: the overhead budget is a
    // ~0.3ms signal on an ~11ms step, so the minima need to converge
    // further than the other sections' do.
    const int rounds = quick ? 4 : 48;

    // Serial pipeline on both sides, for the same reason as the
    // fault_overhead section: the observer cost is a small signal and
    // the async worker's scheduling jitter would swamp it.
    InProcessTransport base_transport;
    SpmdGraphExecutor base_exec(graph, plan, 2, 0,
                                /*overlap_comm=*/false);
    installTransformerBlockTransforms(base_exec, cfg, batch);
    base_exec.setTransport(&base_transport);

    TracingObserver tracer;
    MetricsRegistry registry;
    MetricsObserver metrics(&registry);
    ObserverChain chain;
    chain.add(&tracer);
    chain.add(&metrics);
    InProcessTransport traced_transport;
    traced_transport.setObserver(&chain);
    SpmdGraphExecutor traced_exec(graph, plan, 2, 0,
                                  /*overlap_comm=*/false);
    installTransformerBlockTransforms(traced_exec, cfg, batch);
    traced_exec.setTransport(&traced_transport);
    traced_exec.addObserver(&chain);

    GraphResult base_result, traced_result;
    double base_ms = 0.0, traced_ms = 0.0;
    for (int r = 0; r < rounds; ++r) {
        double b, t;
        if (r & 1) {
            t = timeMs(1, [&] { traced_result = traced_exec.run(io); });
            b = timeMs(1, [&] { base_result = base_exec.run(io); });
        } else {
            b = timeMs(1, [&] { base_result = base_exec.run(io); });
            t = timeMs(1, [&] { traced_result = traced_exec.run(io); });
        }
        base_ms = (r == 0) ? b : std::min(base_ms, b);
        traced_ms = (r == 0) ? t : std::min(traced_ms, t);
    }

    // One clean run for the per-step span/transfer counters.
    registry.reset();
    tracer.reset();
    traced_result = traced_exec.run(io);

    bool bit_identical =
        traced_result.output.maxAbsDiff(base_result.output) == 0.0f &&
        traced_result.d_input.maxAbsDiff(base_result.d_input) == 0.0f;
    for (const auto &[name, grad] : base_result.d_params) {
        if (traced_result.d_params.at(name).maxAbsDiff(grad) != 0.0f)
            bit_identical = false;
    }
    const std::int64_t spans = static_cast<std::int64_t>(
        tracer.snapshot().spans().size());

    os << "  \"observer_overhead\": {\n"
       << "    \"base_ms_per_step\": " << jnum(base_ms) << ",\n"
       << "    \"traced_ms_per_step\": " << jnum(traced_ms) << ",\n"
       << "    \"overhead_pct\": "
       << jnum((traced_ms / base_ms - 1.0) * 100.0) << ",\n"
       << "    \"spans_per_step\": " << spans << ",\n"
       << "    \"transfers_per_step\": "
       << registry.counter("transport.transfers") << ",\n"
       << "    \"bit_identical\": "
       << (bit_identical ? "true" : "false") << "\n"
       << "  },\n";
}

/** Async ring/compute overlap vs the strictly synchronous path on a
 *  communication-heavy block, plus the overlap efficiency (fraction
 *  of transfer time hidden under compute spans). Budgets at full
 *  size: >= 1.15x step speedup, >= 60% hidden. */
void
emitOverlapEfficiency(std::ostream &os, bool quick)
{
    // Communication-heavy on purpose: a wide model over an emulated
    // 1 GB/s link, so the ring traffic's in-flight wire time is a
    // large slice of the synchronous step — the async pipeline's
    // window to win back.
    ModelConfig cfg;
    cfg.name = "bench";
    cfg.hiddenSize = quick ? 32 : 192;
    cfg.numHeads = 4;
    cfg.ffnSize = quick ? 64 : 768;
    cfg.seqLength = quick ? 16 : 64;
    cfg.numLayers = 1;
    const std::int64_t batch = 4;

    const CompGraph graph = buildTransformerBlock(cfg, batch);
    Rng rng(99);
    GraphIO io;
    io.input = Tensor::random(
        Shape{batch, cfg.seqLength, cfg.hiddenSize}, rng);
    io.params = randomBlockParams(graph, rng);
    io.d_output = Tensor::random(
        Shape{batch, cfg.seqLength, cfg.hiddenSize}, rng);

    const std::vector<PartitionSeq> plan = benchBlockPlan(graph);
    const int rounds = quick ? 4 : 16;

    // The emulated interconnect: 20 us per-transfer latency, 1 GB/s.
    // In-flight wire time is a sleep, not CPU work, so the async
    // executor can genuinely hide it even on one hardware thread.
    TransportOptions topts;
    topts.linkLatencyUs = 20.0;
    topts.linkBytesPerUs = 1000.0;

    InProcessTransport sync_transport(topts, nullptr, nullptr);
    SpmdGraphExecutor sync_exec(graph, plan, 2, 0,
                                /*overlap_comm=*/false);
    installTransformerBlockTransforms(sync_exec, cfg, batch);
    sync_exec.setTransport(&sync_transport);

    InProcessTransport async_transport(topts, nullptr, nullptr);
    SpmdGraphExecutor async_exec(graph, plan, 2, 0);
    installTransformerBlockTransforms(async_exec, cfg, batch);
    async_exec.setTransport(&async_transport);

    GraphResult sync_result, async_result;
    double sync_ms = 0.0, async_ms = 0.0;
    for (int r = 0; r < rounds; ++r) {
        double s, a;
        if (r & 1) {
            a = timeMs(1, [&] { async_result = async_exec.run(io); });
            s = timeMs(1, [&] { sync_result = sync_exec.run(io); });
        } else {
            s = timeMs(1, [&] { sync_result = sync_exec.run(io); });
            a = timeMs(1, [&] { async_result = async_exec.run(io); });
        }
        sync_ms = (r == 0) ? s : std::min(sync_ms, s);
        async_ms = (r == 0) ? a : std::min(async_ms, a);
    }

    bool bit_identical =
        async_result.output.maxAbsDiff(sync_result.output) == 0.0f &&
        async_result.d_input.maxAbsDiff(sync_result.d_input) == 0.0f;
    for (const auto &[name, grad] : sync_result.d_params) {
        if (async_result.d_params.at(name).maxAbsDiff(grad) != 0.0f)
            bit_identical = false;
    }

    // One traced async run for the overlap accounting: how much of
    // the summed Ring span time lies under a Compute span.
    TracingObserver tracer;
    async_exec.addObserver(&tracer);
    async_exec.run(io);
    const OverlapStats ov = tracer.overlapStats();

    os << "  \"overlap_efficiency\": {\n"
       << "    \"link_latency_us\": " << jnum(topts.linkLatencyUs)
       << ",\n"
       << "    \"link_bytes_per_us\": " << jnum(topts.linkBytesPerUs)
       << ",\n"
       << "    \"sync_ms_per_step\": " << jnum(sync_ms) << ",\n"
       << "    \"async_ms_per_step\": " << jnum(async_ms) << ",\n"
       << "    \"speedup\": " << jnum(sync_ms / async_ms) << ",\n"
       << "    \"transfer_us_per_step\": " << jnum(ov.transferUs)
       << ",\n"
       << "    \"hidden_us_per_step\": " << jnum(ov.hiddenUs) << ",\n"
       << "    \"efficiency\": " << jnum(ov.efficiency()) << ",\n"
       << "    \"bit_identical\": "
       << (bit_identical ? "true" : "false") << "\n"
       << "  },\n";
}

/** Wire compression of a bit-packable gradient workload: bf16-rounded
 *  fp32 through each codec-equipped transport channel. Budget: the
 *  lossless pack stream is <= 0.7x the raw bytes, round-tripped
 *  exactly. */
void
emitBytesOnWire(std::ostream &os, bool quick)
{
    const std::int64_t n = quick ? (1 << 14) : (1 << 20);
    Rng rng(4242);
    Tensor grads = Tensor::random(Shape{n}, rng);
    // Gradients that went through a bf16 stage: the canonical
    // bit-packable payload (low 16 bits zero).
    float *p = grads.data();
    for (std::int64_t i = 0; i < n; ++i) {
        std::uint32_t u;
        std::memcpy(&u, &p[i], 4);
        u &= 0xffff0000u;
        std::memcpy(&p[i], &u, 4);
    }

    TransferTag tag;
    tag.tensor = "dW";
    tag.channel = "allreduce";
    tag.sender = 0;
    tag.receiver = 1;
    const int iters = quick ? 2 : 5;

    os << "  \"bytes_on_wire\": {\n"
       << "    \"elements\": " << n << ",\n"
       << "    \"raw_bytes\": " << 4 * n << ",\n"
       << "    \"codecs\": [\n";

    bool pack_exact = false;
    double pack_ratio = 1.0;
    const char *codecs[] = {"none", "pack", "bf16", "int8"};
    for (std::size_t c = 0; c < 4; ++c) {
        TransportOptions topts;
        topts.codec = CodecConfig::parse(codecs[c]);
        RuntimeHealth health;
        InProcessTransport transport(topts, nullptr, &health);
        Tensor recv;
        const double ms = timeMs(
            iters, [&] { transport.transferInto(tag, grads, recv); });
        const std::int64_t wire = health.bytesOnWire /
                                  std::max<std::int64_t>(
                                      health.transfers, 1);
        const double ratio = static_cast<double>(wire) /
                             static_cast<double>(4 * n);
        const bool exact = recv.maxAbsDiff(grads) == 0.0f;
        if (std::string(codecs[c]) == "pack") {
            pack_exact = exact;
            pack_ratio = ratio;
        }
        os << "      {\"codec\": \"" << codecs[c]
           << "\", \"wire_bytes\": " << wire
           << ", \"ratio\": " << jnum(ratio)
           << ", \"ms_per_transfer\": " << jnum(ms)
           << ", \"exact\": " << (exact ? "true" : "false") << "}"
           << (c + 1 < 4 ? "," : "") << "\n";
    }

    os << "    ],\n"
       << "    \"pack_ratio\": " << jnum(pack_ratio) << ",\n"
       << "    \"pack_exact_round_trip\": "
       << (pack_exact ? "true" : "false") << "\n"
       << "  },\n";
}

/** Fork a real distributed job — `primepar_worker --serve` plus
 *  @p numWorkers workers on its ephemeral port — and return the
 *  largest per-worker peak RSS (KiB, from wait4's ru_maxrss), or -1
 *  on launch failure. */
long
runWorkerJobPeakRss(const std::string &jobArgs, int numWorkers)
{
#ifdef PRIMEPAR_WORKER_BIN
    const std::string cmd = std::string(PRIMEPAR_WORKER_BIN) +
                            " --serve " + jobArgs + " 2>/dev/null";
    FILE *coord = popen(cmd.c_str(), "r");
    if (!coord)
        return -1;
    char line[512];
    int port = -1;
    while (std::fgets(line, sizeof line, coord)) {
        if (std::sscanf(line, "PRIMEPAR_COORD_PORT=%d", &port) == 1)
            break;
    }
    if (port <= 0) {
        pclose(coord);
        return -1;
    }
    const std::string addr = "127.0.0.1:" + std::to_string(port);
    std::vector<pid_t> pids;
    for (int w = 0; w < numWorkers; ++w) {
        const pid_t pid = fork();
        if (pid == 0) {
            const int null = ::open("/dev/null", O_WRONLY);
            if (null >= 0) {
                ::dup2(null, 1);
                ::dup2(null, 2);
            }
            ::execl(PRIMEPAR_WORKER_BIN, "primepar_worker",
                    "--connect", addr.c_str(),
                    static_cast<char *>(nullptr));
            std::_Exit(127);
        }
        if (pid > 0)
            pids.push_back(pid);
    }
    while (std::fgets(line, sizeof line, coord)) {
    }
    pclose(coord);
    long peak = -1;
    for (const pid_t pid : pids) {
        int status = 0;
        struct rusage ru = {};
        if (::wait4(pid, &status, 0, &ru) == pid)
            peak = std::max(peak, static_cast<long>(ru.ru_maxrss));
    }
    return peak;
#else
    (void)jobArgs;
    (void)numWorkers;
    return -1;
#endif
}

/** Per-worker resident memory of a 4-worker / 16-device TCP job.
 *  Sharded workers materialize tensor data only for the device ranks
 *  they own, so each one's peak RSS must sit well below a fully
 *  replicated worker's. Budget: sharded <= 0.5x replicated at full
 *  size (quick mode only sanity-checks <= 0.95x — the tiny CI model
 *  is dominated by the fixed process baseline). */
void
emitWorkerRss(std::ostream &os, bool quick)
{
    const int workers = 4, devices = 16;
    const int steps = quick ? 2 : 3;
    const std::string model =
        quick ? "--batch 2 --hidden 32 --heads 2 --ffn 64 --seq 16"
              : "--batch 8 --hidden 256 --heads 8 --ffn 1024"
                " --seq 128";
    const std::string base =
        "--workers " + std::to_string(workers) + " --devices " +
        std::to_string(devices) + " --steps " +
        std::to_string(steps) + " --seed 7 " + model;
    const long sharded = runWorkerJobPeakRss(base, workers);
    const long replicated =
        runWorkerJobPeakRss(base + " --replicated", workers);
    const double ratio = (sharded > 0 && replicated > 0)
                             ? static_cast<double>(sharded) /
                                   static_cast<double>(replicated)
                             : 1.0;
    os << "  \"worker_rss\": {\n"
       << "    \"workers\": " << workers << ",\n"
       << "    \"devices\": " << devices << ",\n"
       << "    \"steps\": " << steps << ",\n"
       << "    \"sharded_peak_kb\": " << sharded << ",\n"
       << "    \"replicated_peak_kb\": " << replicated << ",\n"
       << "    \"ratio\": " << jnum(ratio) << ",\n"
       << "    \"budget\": " << jnum(quick ? 0.95 : 0.5) << "\n"
       << "  },\n";
}

int
runRuntimeBench(const std::string &out_path, bool quick)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"schema\": \"primepar-bench-runtime-v1\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": " << hardwareConcurrency() << ",\n";

    BufferPool::global().resetStats();
    const auto kernels = runKernelBenches(quick);
    os << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < kernels.size(); ++i)
        emitKernel(os, kernels[i], i + 1 == kernels.size());
    os << "  ],\n";

    emitTrainingStep(os, quick);
    emitFaultOverhead(os, quick);
    emitObserverOverhead(os, quick);
    emitOverlapEfficiency(os, quick);
    emitBytesOnWire(os, quick);
    emitWorkerRss(os, quick);

    const BufferPoolStats ps = BufferPool::global().stats();
    os << "  \"buffer_pool\": {\"acquires\": " << ps.acquires
       << ", \"pool_hits\": " << ps.poolHits
       << ", \"fresh_allocs\": " << ps.freshAllocs
       << ", \"bytes_allocated\": " << ps.bytesAllocated
       << ", \"bytes_retained\": " << ps.bytesRetained << "}\n"
       << "}\n";

    if (out_path.empty()) {
        std::cout << os.str();
    } else {
        std::ofstream f(out_path);
        if (!f) {
            std::cerr << "cannot open " << out_path << "\n";
            return 1;
        }
        f << os.str();
        std::cerr << "wrote " << out_path << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false, quick = false;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                out_path = argv[++i];
        } else if (arg == "--quick") {
            quick = true;
        }
    }
    if (json || quick)
        return runRuntimeBench(out_path, quick);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
