/**
 * @file
 * Micro-benchmarks of PrimePar's hot paths (google-benchmark):
 * DSI table evaluation, communication-pattern derivation, partition
 * space enumeration, redistribution traffic evaluation and the SPMD
 * contraction kernel. These guard the optimizer's O(P^3) inner loops
 * against regressions.
 */

#include <benchmark/benchmark.h>

#include "cost/cost_model.hh"
#include "partition/comm_pattern.hh"
#include "partition/space.hh"
#include "tensor/einsum.hh"

using namespace primepar;

namespace {

void
BM_DsiTableBuild(benchmark::State &state)
{
    const int bits = static_cast<int>(state.range(0));
    const OpSpec op = makeLinearOp("fc", 8, 2048, 4096, 4096);
    PartitionSeq seq;
    seq.push(PartitionStep::pSquare(bits / 2));
    for (int b = 2 * (bits / 2); b < bits; ++b)
        seq.push(PartitionStep::byDim(0));
    for (auto _ : state) {
        DsiTable dsi(op, seq, bits);
        benchmark::DoNotOptimize(dsi.steps());
    }
}
BENCHMARK(BM_DsiTableBuild)->Arg(2)->Arg(4)->Arg(6);

void
BM_DerivePassComm(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    const OpSpec op = makeLinearOp("fc", 8, 2048, 4096, 4096);
    const PartitionSeq seq({PartitionStep::pSquare(k)});
    const DsiTable dsi(op, seq, 2 * k);
    for (auto _ : state) {
        const PassComm comm = derivePassComm(op, seq, dsi, 2);
        benchmark::DoNotOptimize(comm.stepShifts.size());
    }
}
BENCHMARK(BM_DerivePassComm)->Arg(1)->Arg(2)->Arg(3);

void
BM_EnumerateSpace(benchmark::State &state)
{
    const int bits = static_cast<int>(state.range(0));
    const OpSpec op = makeLinearOp("fc", 64, 2048, 4096, 4096);
    for (auto _ : state) {
        const auto space = enumerateSequences(op, bits);
        benchmark::DoNotOptimize(space.size());
    }
    state.counters["sequences"] = static_cast<double>(
        enumerateSequences(op, bits).size());
}
BENCHMARK(BM_EnumerateSpace)->Arg(3)->Arg(4)->Arg(5);

void
BM_TrafficSplit(benchmark::State &state)
{
    const OpSpec op = makeLinearOp("fc", 8, 2048, 4096, 4096);
    const ClusterTopology topo = ClusterTopology::paperCluster(
        1 << state.range(0));
    const CostModel cm(topo, profileModels(topo));
    const int bits = static_cast<int>(state.range(0));
    PartitionSeq a, b;
    for (int i = 0; i < bits; ++i) {
        a.push(PartitionStep::byDim(i % 2));
        b.push(PartitionStep::byDim(3 - i % 2));
    }
    const DsiTable da(op, a, bits), db(op, b, bits);
    const EdgeDimMap map{0, 1, 3};
    const auto have = layoutOf(op, da, {op.outputTensor, false},
                               Phase::Forward, 0, map, {8, 2048, 4096});
    const auto need = layoutOf(op, db, {op.outputTensor, false},
                               Phase::Forward, 0, map, {8, 2048, 4096});
    const auto prepared = CostModel::prepareSource(have);
    for (auto _ : state) {
        const auto split = cm.trafficSplit(prepared, need);
        benchmark::DoNotOptimize(split.intraNode);
    }
}
BENCHMARK(BM_TrafficSplit)->Arg(3)->Arg(5);

void
BM_ContractProduct(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    Rng rng(1);
    const Tensor a = Tensor::random(Shape{n, n}, rng);
    const Tensor b = Tensor::random(Shape{n, n}, rng);
    Tensor out(Shape{n, n});
    for (auto _ : state) {
        out.zero();
        contractProduct(a, {0, 1}, b, {1, 2}, out, {0, 2});
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_ContractProduct)->Arg(32)->Arg(64);

} // namespace

BENCHMARK_MAIN();
