/**
 * @file
 * Reproduces the paper's Fig. 10: 3D-parallelism throughput of
 * Megatron-LM vs PrimePar over all (p, d, m) configurations with
 * p > 1 on 32 GPUs.
 *
 * Expected shape (paper): PrimePar >= Megatron in every feasible
 * configuration; ~7B models peak at (2,4,4) with a small PrimePar
 * edge; >100B models peak at (2,1,16) where PrimePar reaches up to
 * 1.46x (OPT 175B), 1.27x (Llama2 70B), 1.40x (BLOOM 176B).
 */

#include <cstdio>
#include <map>

#include "common.hh"
#include "pipeline/three_d.hh"

using namespace primepar;
using namespace primepar::bench;

namespace {

/** PrimePar per-stage strategies: searched with batch partitioning
 *  disabled so that d is controlled externally (paper Sec. 6.4). */
std::vector<PartitionSeq>
primeparStageStrategies(const CompGraph &block, int m)
{
    const ClusterTopology topo = ClusterTopology::paperCluster(m);
    const CostModel cost(topo, profileModels(topo));
    DpOptions opts;
    opts.space.excludedDims = {0}; // batch
    return SegmentedDpOptimizer(block, cost, opts).optimize().strategies;
}

} // namespace

int
main()
{
    std::printf("=== PrimePar reproduction: Fig. 10 (3D parallelism, "
                "32 GPUs) ===\n"
                "Global batch 32, micro-batch 4; throughput "
                "normalized to the best Megatron configuration per "
                "model; 0 = does not fit in memory.\n\n");

    const std::int64_t global_batch = 32, micro_batch = 4;

    for (const ModelConfig &model : evaluationModels()) {
        const ThreeDEvaluator eval(model, global_batch, micro_batch);
        const CompGraph block = buildTransformerBlock(model, micro_batch);

        // Cache per-m strategies (shared across p).
        std::map<int, std::vector<PartitionSeq>> mega_by_m, pp_by_m;

        TextTable table;
        table.header({"(p,d,m)", "Megatron tok/s", "PrimePar tok/s",
                      "speedup", "ckpt"});
        double best_mega = 0.0, best_pp = 0.0;
        std::string best_mega_cfg, best_pp_cfg;
        for (const ThreeDConfig &cfg : threeDConfigs(32)) {
            if (!mega_by_m.count(cfg.m)) {
                const auto s = megatronStrategies(block, {1, cfg.m});
                if (s.has_value()) {
                    mega_by_m[cfg.m] = *s;
                    pp_by_m[cfg.m] =
                        primeparStageStrategies(block, cfg.m);
                }
            }
            if (!mega_by_m.count(cfg.m))
                continue;
            const ThreeDResult mg =
                eval.evaluate(cfg, block, mega_by_m[cfg.m]);
            const ThreeDResult pp =
                eval.evaluate(cfg, block, pp_by_m[cfg.m]);
            const double speedup =
                mg.throughput > 0 ? pp.throughput / mg.throughput : 0.0;
            table.row({cfg.toString(), fmtDouble(mg.throughput, 0),
                       fmtDouble(pp.throughput, 0),
                       mg.throughput > 0 ? fmtDouble(speedup, 2) + "x"
                                         : "-",
                       pp.activationCheckpointing ? "yes" : "no"});
            if (mg.throughput > best_mega) {
                best_mega = mg.throughput;
                best_mega_cfg = cfg.toString();
            }
            if (pp.throughput > best_pp) {
                best_pp = pp.throughput;
                best_pp_cfg = cfg.toString();
            }
        }
        std::printf("%s\n%s", model.name.c_str(),
                    table.render().c_str());
        if (best_mega > 0) {
            std::printf("best: Megatron %s (%.0f tok/s), PrimePar %s "
                        "(%.0f tok/s), peak speedup %.2fx\n\n",
                        best_mega_cfg.c_str(), best_mega,
                        best_pp_cfg.c_str(), best_pp,
                        best_pp / best_mega);
        }
    }
    std::printf("Paper reference: 7B-scale models peak at (2,4,4); "
                ">100B models peak at (2,1,16); PrimePar best-vs-best "
                "up to 1.46x (OPT 175B), 1.27x (Llama2 70B), 1.40x "
                "(BLOOM 176B).\n");
    return 0;
}
