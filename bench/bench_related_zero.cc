/**
 * @file
 * Quantifies the paper's Sec. 8 positioning against ZeRO: ZeRO
 * removes state redundancy from data parallelism at the price of
 * extra collectives (reduce-scatter / all-gather), whereas PrimePar's
 * spatial-temporal partitioning removes both the replication and the
 * collectives.
 */

#include <cstdio>

#include "baselines/zero.hh"
#include "common.hh"

using namespace primepar;
using namespace primepar::bench;

int
main()
{
    std::printf("=== PrimePar vs ZeRO-style data parallelism "
                "(Sec. 8 related work) ===\n"
                "16 GPUs, global batch 16.\n\n");

    for (const ModelConfig &model : {llama2_7b(), opt6p7b()}) {
        const ClusterTopology topo = ClusterTopology::paperCluster(16);
        TextTable table;
        table.header({"system", "iteration ms", "collective ms",
                      "peak mem GiB", "fits 32GB"});
        const double gib = 1024.0 * 1024.0 * 1024.0;

        for (ZeroStage stage : {ZeroStage::None, ZeroStage::One,
                                ZeroStage::Two, ZeroStage::Three}) {
            const ZeroResult r = evaluateZero(model, topo, 16, stage);
            table.row({zeroStageName(stage),
                       fmtDouble(r.iterationUs / 1e3, 1),
                       fmtDouble(r.collectiveUs / 1e3, 1),
                       fmtDouble(r.peakMemoryBytes / gib, 2),
                       r.feasible ? "yes" : "no"});
        }
        {
            const CostModel cost(topo, profileModels(topo));
            const CompGraph graph = buildTransformerBlock(model, 16);
            DpOptions opts;
            opts.numLayers = model.numLayers;
            const DpResult pp =
                SegmentedDpOptimizer(graph, cost, opts).optimize();
            const SystemResult r =
                measure("PrimePar", model, topo, graph, pp.strategies);
            table.row({"PrimePar", fmtDouble(r.latencyUs / 1e3, 1),
                       fmtDouble(r.allReduceUs / 1e3, 1),
                       fmtDouble(r.peakMemoryBytes / gib, 2),
                       r.peakMemoryBytes < 32.0 * gib ? "yes" : "no"});
        }
        std::printf("%s\n%s\n", model.name.c_str(),
                    table.render().c_str());
    }
    std::printf("Takeaway: ZeRO trades replication for collectives; "
                "the spatial-temporal partition primitive avoids "
                "both (paper Sec. 8).\n");
    return 0;
}
