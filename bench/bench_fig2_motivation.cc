/**
 * @file
 * Reproduces the paper's Fig. 2 (motivation).
 *
 * (a) Share of training latency spent in all-reduce under Megatron-LM
 *     on 16 GPUs for OPT 6.7B, Llama2 70B, BLOOM 176B. The paper's
 *     bars sit roughly between 30% and 60%.
 * (b) Peak per-device memory of Megatron vs the ideal (replication-
 *     free) distribution for Llama2 70B on 4 / 8 / 16 / 32 GPUs; the
 *     gap widens with the device count.
 */

#include <cstdio>

#include "common.hh"
#include "sim/memory.hh"

using namespace primepar;
using namespace primepar::bench;

namespace {

void
fig2a()
{
    std::printf("Fig. 2a: collective-communication share of "
                "Megatron-LM training latency (16 GPUs)\n");
    std::printf("(all-reduce plus the boundary gathers that plain "
                "Megatron issues as all-reduces)\n");
    TextTable table;
    table.header({"model", "collective us", "iteration us", "share",
                  "paper"});
    const char *paper[] = {"~35%", "~50%", "~55%"};
    int row = 0;
    for (const ModelConfig &model :
         {opt6p7b(), llama2_70b(), bloom176b()}) {
        const ClusterTopology topo = ClusterTopology::paperCluster(16);
        const CostModel cost(topo, profileModels(topo));
        const CompGraph graph = buildTransformerBlock(model, 8);
        const MegatronPlan plan = bestMegatronPlan(graph, cost);
        const SystemResult r =
            measure("Megatron", model, topo, graph, plan.strategies);
        const double collective = r.allReduceUs + r.redistUs;
        table.row({model.name, fmtDouble(collective, 0),
                   fmtDouble(r.latencyUs, 0),
                   fmtDouble(100.0 * collective / r.latencyUs, 1) + "%",
                   paper[row++]});
    }
    std::printf("%s\n", table.render().c_str());
}

void
fig2b()
{
    std::printf("Fig. 2b: Megatron-LM peak memory vs ideal "
                "(Llama2 70B, same global batch)\n");
    TextTable table;
    table.header({"gpus", "megatron GiB", "ideal GiB", "ratio"});
    const ModelConfig model = llama2_70b();
    const std::int64_t global_batch = 8;
    for (int devices : {4, 8, 16, 32}) {
        const ClusterTopology topo =
            ClusterTopology::paperCluster(devices);
        const CostModel cost(topo, profileModels(topo));
        const CompGraph graph =
            buildTransformerBlock(model, global_batch);
        const MegatronPlan plan = bestMegatronPlan(graph, cost);
        const SystemResult r =
            measure("Megatron", model, topo, graph, plan.strategies);

        // Ideal: total state spread evenly, no replication.
        const double ideal =
            modelIdealMemoryBytes(graph, devices) * model.numLayers;

        const double gib = 1024.0 * 1024.0 * 1024.0;
        table.row({std::to_string(devices),
                   fmtDouble(r.peakMemoryBytes / gib, 2),
                   fmtDouble(ideal / gib, 2),
                   fmtDouble(r.peakMemoryBytes / ideal, 2) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper: the Megatron-vs-ideal gap grows steadily with "
                "parallelism size.\n");
}

} // namespace

int
main()
{
    std::printf("=== PrimePar reproduction: Fig. 2 (motivation) ===\n\n");
    fig2a();
    fig2b();
    return 0;
}
