/**
 * @file
 * Ablation studies for DESIGN.md's design-choice questions:
 *
 *  A. Cost-model fidelity: R^2 of the fitted latency models and the
 *     agreement between cost-model ranking and simulator ranking over
 *     a full operator space.
 *  B. Space ablation: the value of the spatial-temporal primitive —
 *     optimal plan cost with and without PSquare in the search space.
 *  C. Overlap ablation: how much of the ring traffic of PSquare plans
 *     hides behind compute (exposed stall vs total ring time).
 *  D. Memory-weight (alpha) sweep: the latency/memory trade-off knob
 *     of Eq. 7.
 */

#include <algorithm>
#include <cstdio>

#include "common.hh"
#include "partition/space.hh"
#include "sim/op_sim.hh"

using namespace primepar;
using namespace primepar::bench;

namespace {

void
ablationFidelity()
{
    std::printf("A. Cost-model fidelity\n");
    const ClusterTopology topo = ClusterTopology::paperCluster(8);
    const auto models = profileModels(topo);
    const auto quality = profileQuality(topo, models);
    std::printf("  fit R^2: all-reduce(worst)=%.6f ring-hop=%.6f "
                "matmul=%.6f\n",
                quality.worstAllReduceR2, quality.ringHopR2,
                quality.matmulR2);

    const CostModel cm(topo, models);
    const OpSpec op = makeLinearOp("fc", 8, 2048, 12288, 49152);
    const auto space = enumerateSequences(op, 3);
    std::vector<double> model_cost, sim_cost;
    for (const auto &seq : space) {
        const OpPlan plan(op, seq, 3);
        model_cost.push_back(cm.intraCost(plan).latencyUs);
        SimContext ctx(topo);
        for (Phase ph :
             {Phase::Forward, Phase::Backward, Phase::Gradient})
            simulateOpPhase(ctx, plan, ph);
        sim_cost.push_back(ctx.makespan());
    }
    const std::size_t best_model =
        std::min_element(model_cost.begin(), model_cost.end()) -
        model_cost.begin();
    const double best_sim =
        *std::min_element(sim_cost.begin(), sim_cost.end());
    std::printf("  %zu sequences; cost-model optimum is within %.1f%% "
                "of the simulator optimum\n\n",
                space.size(),
                100.0 * (sim_cost[best_model] / best_sim - 1.0));
}

void
ablationSpace()
{
    std::printf("B. Search-space ablation (OPT 175B MLP block, "
                "simulated iteration latency)\n");
    TextTable table;
    table.header({"gpus", "spatial-only us", "with PSquare us",
                  "improvement"});
    const ModelConfig model = opt175b();
    for (int devices : {4, 8, 16}) {
        const ClusterTopology topo =
            ClusterTopology::paperCluster(devices);
        const CostModel cost(topo, profileModels(topo));
        const CompGraph graph = buildMlpBlock(model, 8);

        DpOptions with;
        DpOptions without;
        without.space.allowPSquare = false;
        const DpResult a =
            SegmentedDpOptimizer(graph, cost, without).optimize();
        const DpResult b =
            SegmentedDpOptimizer(graph, cost, with).optimize();
        const double la =
            measure("spatial", model, topo, graph, a.strategies)
                .latencyUs;
        const double lb =
            measure("primepar", model, topo, graph, b.strategies)
                .latencyUs;
        table.row({std::to_string(devices), fmtDouble(la, 0),
                   fmtDouble(lb, 0), fmtDouble(la / lb, 2) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
}

void
ablationOverlap()
{
    std::printf("C. Overlap ablation (P2x2 on one node, large linear)\n");
    const ClusterTopology topo = ClusterTopology::paperCluster(4);
    const OpSpec op = makeLinearOp("fc", 8, 2048, 12288, 49152);
    const OpPlan plan(op, PartitionSeq({PartitionStep::pSquare(1)}), 2);
    SimContext ctx(topo);
    SimBreakdown total;
    for (Phase ph : {Phase::Forward, Phase::Backward, Phase::Gradient})
        total.accumulate(simulateOpPhase(ctx, plan, ph));
    std::printf("  compute=%.0fus ring(wire)=%.0fus exposed stall="
                "%.0fus -> %.1f%% of ring traffic is hidden\n\n",
                total.computeUs, total.ringUs, total.stallUs,
                100.0 * (1.0 - total.stallUs /
                                   std::max(1.0, total.ringUs)));
}

void
ablationAlpha()
{
    std::printf("D. Memory-weight (alpha) sweep, Llama2 7B block on 8 "
                "GPUs\n");
    TextTable table;
    table.header({"alpha us/MiB", "latency us", "peak mem GiB"});
    const ModelConfig model = llama2_7b();
    const ClusterTopology topo = ClusterTopology::paperCluster(8);
    const auto models = profileModels(topo);
    const CompGraph graph = buildTransformerBlock(model, 8);
    const double gib = 1024.0 * 1024.0 * 1024.0;
    for (double alpha : {0.0, 2.0, 10.0, 50.0}) {
        const CostModel cost(topo, models, alpha);
        DpOptions opts;
        const DpResult r =
            SegmentedDpOptimizer(graph, cost, opts).optimize();
        const auto m =
            measure("pp", model, topo, graph, r.strategies);
        table.row({fmtDouble(alpha, 1), fmtDouble(m.latencyUs, 0),
                   fmtDouble(m.peakMemoryBytes / gib, 3)});
    }
    std::printf("%s", table.render().c_str());
}

} // namespace

int
main()
{
    std::printf("=== PrimePar ablations ===\n\n");
    ablationFidelity();
    ablationSpace();
    ablationOverlap();
    ablationAlpha();
    return 0;
}
