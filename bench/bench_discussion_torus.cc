/**
 * @file
 * Reproduces the paper's Sec. 7 discussion: PrimePar on torus
 * interconnects (TPU-v4-like).
 *
 * The novel primitive only induces neighbour ring communication, so a
 * 2-D torus — where every hop has full link bandwidth — suits it
 * perfectly. The paper predicts (a) more efficient scaling on tori
 * than on hierarchical clusters, and (b) linear scaling as long as
 * the per-step ring latency stays below the per-step compute latency.
 */

#include <cstdio>

#include "common.hh"
#include "sim/op_sim.hh"

using namespace primepar;
using namespace primepar::bench;

namespace {

/** Simulate one full training step of a PSquare-partitioned linear. */
SimBreakdown
runPSquare(const ClusterTopology &topo, int k, const OpSpec &op)
{
    const OpPlan plan(op, PartitionSeq({PartitionStep::pSquare(k)}),
                      2 * k);
    SimContext ctx(topo);
    SimBreakdown total;
    for (Phase ph : {Phase::Forward, Phase::Backward, Phase::Gradient})
        total.accumulate(simulateOpPhase(ctx, plan, ph));
    total.spanUs = ctx.makespan();
    return total;
}

void
torusVsHierarchical()
{
    std::printf("P4x4 on 16 devices: hierarchical cluster vs 2-D "
                "torus\n");
    const OpSpec op = makeLinearOp("fc", 8, 2048, 12288, 49152);
    TextTable table;
    table.header({"topology", "compute us", "ring us", "stall us",
                  "step span us"});
    {
        const auto topo = ClusterTopology::paperCluster(16);
        const auto r = runPSquare(topo, 2, op);
        table.row({"4 nodes x 4 (NVLink+IB)", fmtDouble(r.computeUs, 0),
                   fmtDouble(r.ringUs, 0), fmtDouble(r.stallUs, 0),
                   fmtDouble(r.spanUs, 0)});
    }
    {
        const auto topo = ClusterTopology::torus2d(4);
        const auto r = runPSquare(topo, 2, op);
        table.row({"4x4 torus (uniform links)",
                   fmtDouble(r.computeUs, 0), fmtDouble(r.ringUs, 0),
                   fmtDouble(r.stallUs, 0), fmtDouble(r.spanUs, 0)});
    }
    std::printf("%s\n", table.render().c_str());
}

void
scalingSeries()
{
    std::printf("Scaling P_{2^k x 2^k} on growing tori (fixed total "
                "work, per-device efficiency)\n");
    TextTable table;
    table.header({"devices", "k", "span us", "ideal us", "efficiency"});
    const OpSpec op = makeLinearOp("fc", 8, 4096, 12288, 49152);
    double base_span = 0.0;
    for (int k = 0; k <= 3; ++k) {
        const int devices = 1 << (2 * k);
        SimBreakdown r;
        if (k == 0) {
            const ClusterTopology topo = ClusterTopology::torus2d(1);
            const OpPlan plan(op, PartitionSeq{}, 0);
            SimContext ctx(topo);
            for (Phase ph :
                 {Phase::Forward, Phase::Backward, Phase::Gradient})
                r.accumulate(simulateOpPhase(ctx, plan, ph));
            r.spanUs = ctx.makespan();
            base_span = r.spanUs;
        } else {
            const ClusterTopology topo = ClusterTopology::torus2d(1 << k);
            r = runPSquare(topo, k, op);
        }
        const double ideal = base_span / devices;
        table.row({std::to_string(devices), std::to_string(k),
                   fmtDouble(r.spanUs, 0), fmtDouble(ideal, 0),
                   fmtDouble(100.0 * ideal / r.spanUs, 1) + "%"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper: \"linear scaling ... as long as the ring "
                "communication latency per step is no longer than "
                "computation latency\".\n\n");
}

void
crossoverSweep()
{
    std::printf("Overlap crossover: shrinking per-step compute until "
                "ring latency dominates (4x4 torus, P4x4)\n");
    TextTable table;
    table.header({"M (rows)", "compute/step us", "ring/step us",
                  "stall us", "overlapped"});
    for (std::int64_t m : {4096, 1024, 256, 64}) {
        const OpSpec op = makeLinearOp("fc", 8, m, 12288, 49152);
        const auto topo = ClusterTopology::torus2d(4);
        const auto r = runPSquare(topo, 2, op);
        // 3 passes x 4 steps each.
        const double compute_step = r.computeUs / 12.0;
        const double ring_step = r.ringUs / 12.0;
        table.row({std::to_string(m), fmtDouble(compute_step, 0),
                   fmtDouble(ring_step, 0), fmtDouble(r.stallUs, 0),
                   r.stallUs < 0.05 * r.computeUs ? "yes" : "no"});
    }
    std::printf("%s", table.render().c_str());
}

} // namespace

int
main()
{
    std::printf("=== PrimePar discussion (Sec. 7): torus "
                "interconnects ===\n\n");
    torusVsHierarchical();
    scalingSeries();
    crossoverSweep();
    return 0;
}
