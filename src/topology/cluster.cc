#include "cluster.hh"

#include <algorithm>

#include "support/bits.hh"

namespace primepar {

ClusterTopology::ClusterTopology(int num_nodes, int gpus_per_node)
    : nodes(num_nodes), perNode(gpus_per_node),
      bits(log2Exact(static_cast<std::int64_t>(num_nodes) * gpus_per_node)),
      // NVLink-class intra-node: 300 GB/s aggregate per the paper.
      intraBw(300.0e3),
      // InfiniBand-class inter-node: ~12.5 GB/s effective per GPU pair.
      interBw(12.5e3), intraLat(3.0), interLat(8.0)
{
    PRIMEPAR_ASSERT(isPowerOfTwo(num_nodes) && isPowerOfTwo(gpus_per_node),
                    "cluster level populations must be powers of two");
}

ClusterTopology
ClusterTopology::paperCluster(int num_devices)
{
    PRIMEPAR_ASSERT(isPowerOfTwo(num_devices), "device count must be 2^n");
    // The paper uses nodes of 4 V100s. Smaller configurations fit in a
    // single node; larger ones span multiple nodes.
    const int per_node = num_devices < 4 ? num_devices : 4;
    return ClusterTopology(num_devices / per_node, per_node);
}

ClusterTopology
ClusterTopology::torus2d(int side, double link_bw)
{
    ClusterTopology topo(side, side);
    topo.topoKind = Kind::Torus2D;
    // Uniform links; 1 us per hop of wormhole latency.
    topo.setLinkParams(link_bw, link_bw, 1.0, 1.0);
    return topo;
}

int
ClusterTopology::hopDistance(std::int64_t a, std::int64_t b) const
{
    if (a == b)
        return 0;
    if (topoKind == Kind::Hierarchical)
        return nodeOf(a) == nodeOf(b) ? 1 : 2;

    // Torus placement de-interleaves the device-id bits into (row,
    // column) — exactly the r/c extraction of the PSquare primitive,
    // so that its logical 2^k x 2^k square tiles the physical torus
    // and every ring hop is a physical neighbour hop (the "twistable
    // tori cater to PrimePar's rings" point of Sec. 7).
    const std::int64_t side = perNode;
    const int k = log2Exact(side);
    auto coords = [&](std::int64_t dev, std::int64_t &r,
                      std::int64_t &c) {
        r = c = 0;
        for (int j = 0; j < k; ++j) {
            r = (r << 1) | ((dev >> (2 * (k - 1 - j) + 1)) & 1);
            c = (c << 1) | ((dev >> (2 * (k - 1 - j))) & 1);
        }
    };
    std::int64_t ra, ca, rb, cb;
    coords(a, ra, ca);
    coords(b, rb, cb);
    auto wrap = [&](std::int64_t d) {
        d = d < 0 ? -d : d;
        return static_cast<int>(std::min(d, side - d));
    };
    return wrap(ra - rb) + wrap(ca - cb);
}

bool
ClusterTopology::sameNode(std::int64_t a, std::int64_t b) const
{
    if (topoKind == Kind::Torus2D)
        return hopDistance(a, b) <= 1;
    return nodeOf(a) == nodeOf(b);
}

double
ClusterTopology::linkBandwidth(std::int64_t a, std::int64_t b) const
{
    if (topoKind == Kind::Torus2D)
        return intraBw; // uniform links; multi-hop keeps bandwidth
    return sameNode(a, b) ? intraBw : interBw;
}

double
ClusterTopology::linkLatency(std::int64_t a, std::int64_t b) const
{
    if (topoKind == Kind::Torus2D)
        return intraLat * hopDistance(a, b);
    return sameNode(a, b) ? intraLat : interLat;
}

void
ClusterTopology::setLinkParams(double intra_bw, double inter_bw,
                               double intra_lat, double inter_lat)
{
    intraBw = intra_bw;
    interBw = inter_bw;
    intraLat = intra_lat;
    interLat = inter_lat;
}

} // namespace primepar
