#include "device.hh"

#include <sstream>

namespace primepar {

std::string
DeviceId::toString() const
{
    std::ostringstream os;
    os << '(';
    for (int i = 0; i < nBits; ++i) {
        if (i)
            os << ',';
        os << bit(i);
    }
    os << ')';
    return os.str();
}

std::vector<DeviceId>
allDevices(int num_bits)
{
    std::vector<DeviceId> devices;
    const std::int64_t n = std::int64_t{1} << num_bits;
    devices.reserve(n);
    for (std::int64_t i = 0; i < n; ++i)
        devices.emplace_back(num_bits, i);
    return devices;
}

} // namespace primepar
