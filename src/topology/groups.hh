/**
 * @file
 * Communication group patterns (paper Sec. 4.1, Fig. 5).
 *
 * Grouped collectives (all-reduce) and grouped ring communications are
 * described by a *group indicator*: the subset of device-id bit
 * positions that vary within a group. Devices agreeing on all
 * non-indicator bits form one group; the groups partition the device
 * set. The latency of a grouped operation is dominated by the slowest
 * group, which depends on whether the group spans inter-node links.
 */

#ifndef PRIMEPAR_TOPOLOGY_GROUPS_HH
#define PRIMEPAR_TOPOLOGY_GROUPS_HH

#include <string>
#include <vector>

#include "cluster.hh"
#include "device.hh"

namespace primepar {

/** A set of device-id bit positions (0-based; 0 == d_1). */
using GroupIndicator = std::vector<int>;

/** One communication group: linear device indices, in ring order. */
using DeviceGroup = std::vector<std::int64_t>;

/**
 * Enumerate the disjoint groups induced by @p indicator over 2^n
 * devices. Within a group, devices differ exactly in the indicator
 * bits; group members are listed in increasing indicator value, which
 * is the ring order used by grouped collectives.
 */
std::vector<DeviceGroup> enumerateGroups(int num_bits,
                                         const GroupIndicator &indicator);

/** Group size for an indicator: 2^|indicator|. */
inline std::int64_t
groupSize(const GroupIndicator &indicator)
{
    return std::int64_t{1} << indicator.size();
}

/**
 * Bottleneck bandwidth (bytes/us) of a ring over @p group in @p topo:
 * the minimum link bandwidth between consecutive ring members.
 */
double ringBottleneckBandwidth(const ClusterTopology &topo,
                               const DeviceGroup &group);

/** Worst (maximum) per-hop latency of a ring over @p group, in us. */
double ringWorstLatency(const ClusterTopology &topo,
                        const DeviceGroup &group);

/** True if any pair of consecutive ring members crosses nodes. */
bool groupSpansNodes(const ClusterTopology &topo, const DeviceGroup &group);

/** e.g. "(d2,d3)". */
std::string indicatorToString(const GroupIndicator &indicator);

/**
 * Canonical key describing a group *pattern* for latency profiling:
 * classifies the indicator by how many of its bits are inter-node vs
 * intra-node for the given topology. Two indicators with the same key
 * have identical latency behaviour, which is what makes profiling
 * scalable (the paper's observation in Sec. 4.1).
 */
struct GroupPatternKey
{
    int interNodeBits = 0;
    int intraNodeBits = 0;

    auto operator<=>(const GroupPatternKey &) const = default;
};

/** Compute the pattern key of @p indicator under @p topo. */
GroupPatternKey groupPatternKey(const ClusterTopology &topo,
                                const GroupIndicator &indicator);

} // namespace primepar

#endif // PRIMEPAR_TOPOLOGY_GROUPS_HH
