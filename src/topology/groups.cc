#include "groups.hh"

#include <algorithm>
#include <sstream>

#include "support/bits.hh"
#include "support/logging.hh"

namespace primepar {

std::vector<DeviceGroup>
enumerateGroups(int num_bits, const GroupIndicator &indicator)
{
    for (int b : indicator)
        PRIMEPAR_ASSERT(b >= 0 && b < num_bits,
                        "indicator bit out of range: ", b);

    // Bits not in the indicator identify the group.
    std::vector<int> other_bits;
    for (int b = 0; b < num_bits; ++b) {
        if (std::find(indicator.begin(), indicator.end(), b) ==
            indicator.end()) {
            other_bits.push_back(b);
        }
    }

    const std::int64_t num_groups = std::int64_t{1} << other_bits.size();
    const std::int64_t members = std::int64_t{1} << indicator.size();

    std::vector<DeviceGroup> groups;
    groups.reserve(num_groups);
    for (std::int64_t g = 0; g < num_groups; ++g) {
        DeviceGroup group;
        group.reserve(members);
        for (std::int64_t m = 0; m < members; ++m) {
            std::int64_t linear = 0;
            for (std::size_t i = 0; i < other_bits.size(); ++i) {
                const std::int64_t bit = (g >> (other_bits.size() - 1 - i))
                                         & 1;
                linear |= bit << (num_bits - 1 - other_bits[i]);
            }
            for (std::size_t i = 0; i < indicator.size(); ++i) {
                const std::int64_t bit = (m >> (indicator.size() - 1 - i))
                                         & 1;
                linear |= bit << (num_bits - 1 - indicator[i]);
            }
            group.push_back(linear);
        }
        groups.push_back(std::move(group));
    }
    return groups;
}

double
ringBottleneckBandwidth(const ClusterTopology &topo, const DeviceGroup &group)
{
    PRIMEPAR_ASSERT(!group.empty(), "empty device group");
    if (group.size() == 1)
        return topo.intraBandwidth();
    double bw = topo.intraBandwidth();
    for (std::size_t i = 0; i < group.size(); ++i) {
        const std::int64_t a = group[i];
        const std::int64_t b = group[(i + 1) % group.size()];
        bw = std::min(bw, topo.linkBandwidth(a, b));
    }
    return bw;
}

double
ringWorstLatency(const ClusterTopology &topo, const DeviceGroup &group)
{
    PRIMEPAR_ASSERT(!group.empty(), "empty device group");
    if (group.size() == 1)
        return 0.0;
    double lat = 0.0;
    for (std::size_t i = 0; i < group.size(); ++i) {
        const std::int64_t a = group[i];
        const std::int64_t b = group[(i + 1) % group.size()];
        lat = std::max(lat, topo.linkLatency(a, b));
    }
    return lat;
}

bool
groupSpansNodes(const ClusterTopology &topo, const DeviceGroup &group)
{
    for (std::size_t i = 0; i + 1 < group.size(); ++i) {
        if (!topo.sameNode(group[i], group[i + 1]))
            return true;
    }
    return group.size() > 1 &&
           !topo.sameNode(group.back(), group.front());
}

std::string
indicatorToString(const GroupIndicator &indicator)
{
    std::ostringstream os;
    os << '(';
    for (std::size_t i = 0; i < indicator.size(); ++i) {
        if (i)
            os << ',';
        os << 'd' << (indicator[i] + 1);
    }
    os << ')';
    return os.str();
}

GroupPatternKey
groupPatternKey(const ClusterTopology &topo, const GroupIndicator &indicator)
{
    // Device linear index = [node bits][intra-node bits]; bit position b
    // (0-based from d_1, the MSB) is an inter-node bit iff it lies within
    // the leading log2(numNodes) bits.
    const int node_bits = log2Exact(topo.numNodes());
    GroupPatternKey key;
    for (int b : indicator) {
        if (b < node_bits)
            ++key.interNodeBits;
        else
            ++key.intraNodeBits;
    }
    return key;
}

} // namespace primepar
