/**
 * @file
 * Hierarchical cluster model.
 *
 * The evaluation platform of the paper is a cluster of nodes, each with
 * several GPUs: fast intra-node links (NVLink) and slower inter-node
 * links (InfiniBand). This class captures the hierarchy and per-link
 * parameters; the event simulator and the cost model both consume it.
 */

#ifndef PRIMEPAR_TOPOLOGY_CLUSTER_HH
#define PRIMEPAR_TOPOLOGY_CLUSTER_HH

#include <cstdint>

#include "device.hh"

namespace primepar {

/** Compute/memory capabilities of one device (V100-class defaults). */
struct DeviceSpec
{
    /** Sustained matmul throughput in flop/us (50 Tflop/s). */
    double flops_per_us = 50.0e6;
    /** Device memory bandwidth in bytes/us (900 GB/s). */
    double mem_bytes_per_us = 900.0e3;
    /** Fixed kernel launch overhead in us. */
    double kernel_overhead_us = 5.0;
    /** Device memory capacity in bytes (32 GB). */
    std::int64_t memory_bytes = std::int64_t{32} * 1024 * 1024 * 1024;
};

/**
 * A two-level cluster: @p numNodes nodes of @p gpusPerNode devices.
 *
 * Devices are numbered linearly; device i lives on node i / gpusPerNode.
 * Both level populations must be powers of two so device-id bits split
 * cleanly into inter-node bits (high) and intra-node bits (low).
 */
class ClusterTopology
{
  public:
    /** Interconnect style. */
    enum class Kind
    {
        /** Two-level: NVLink within nodes, InfiniBand across. */
        Hierarchical,
        /** 2-D torus of uniform links (TPU-v4-like, paper Sec. 7):
         *  every device has four neighbours; multi-hop transfers pay
         *  per-hop latency but keep link bandwidth. */
        Torus2D,
    };

    /**
     * @param num_nodes number of nodes (power of two)
     * @param gpus_per_node devices per node (power of two)
     */
    ClusterTopology(int num_nodes, int gpus_per_node);

    /** Cluster of V100-like nodes matching the paper's testbed shape:
     *  4 GPUs per node, NVLink intra-node, InfiniBand inter-node. */
    static ClusterTopology paperCluster(int num_devices);

    /**
     * A side x side 2-D torus of uniform links. Device linear index =
     * row * side + column; rows play the role of "nodes" so device-id
     * bits still split into a high (row) and low (column) half.
     *
     * @param side torus side (power of two)
     * @param link_bw per-link bandwidth in bytes/us (default: a
     *        TPU-like 50 GB/s per direction)
     */
    static ClusterTopology torus2d(int side, double link_bw = 50.0e3);

    Kind kind() const { return topoKind; }

    int numNodes() const { return nodes; }
    int gpusPerNode() const { return perNode; }
    int numDevices() const { return nodes * perNode; }

    /** log2(numDevices): the device-id bit count n. */
    int numBits() const { return bits; }

    /** Node index hosting device @p dev. */
    int nodeOf(std::int64_t dev) const
    {
        return static_cast<int>(dev) / perNode;
    }

    /** True iff the two devices communicate over the fast class of
     *  link: same node (hierarchical) or torus neighbours. */
    bool sameNode(std::int64_t a, std::int64_t b) const;

    /** Wraparound hop distance on the torus; 0/1 for hierarchical
     *  same-node/cross-node pairs. */
    int hopDistance(std::int64_t a, std::int64_t b) const;

    /** Point-to-point bandwidth between two devices in bytes/us. */
    double linkBandwidth(std::int64_t a, std::int64_t b) const;

    /** Point-to-point base latency between two devices in us. */
    double linkLatency(std::int64_t a, std::int64_t b) const;

    /** Intra-node link bandwidth in bytes/us. */
    double intraBandwidth() const { return intraBw; }
    /** Inter-node link bandwidth in bytes/us. */
    double interBandwidth() const { return interBw; }

    /** Per-device compute/memory spec. */
    const DeviceSpec &deviceSpec() const { return spec; }
    DeviceSpec &deviceSpec() { return spec; }

    /** Override link parameters (bytes/us, us). */
    void setLinkParams(double intra_bw, double inter_bw, double intra_lat,
                       double inter_lat);

  private:
    Kind topoKind = Kind::Hierarchical;
    int nodes;
    int perNode;
    int bits;
    DeviceSpec spec;
    double intraBw;  ///< bytes/us
    double interBw;  ///< bytes/us
    double intraLat; ///< us
    double interLat; ///< us
};

} // namespace primepar

#endif // PRIMEPAR_TOPOLOGY_CLUSTER_HH
