/**
 * @file
 * Device identifiers.
 *
 * PrimePar partitions over 2^n homogeneous devices, each indexed by a
 * Device ID D = (d_1, ..., d_n) with d_i in {0, 1} (paper Sec. 3.1).
 * d_1 is the most significant bit of the linear device index; this
 * matches the paper's Fig. 9 numbering where, on 2 nodes x 4 GPUs,
 * group indicator (d_2, d_3) yields intra-node groups {0,1,2,3} and
 * {4,5,6,7}.
 */

#ifndef PRIMEPAR_TOPOLOGY_DEVICE_HH
#define PRIMEPAR_TOPOLOGY_DEVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/bits.hh"
#include "support/logging.hh"

namespace primepar {

/** A device id: n bits, bit(0) == d_1 == most significant. */
class DeviceId
{
  public:
    DeviceId() = default;

    /** Construct from a linear index over @p num_bits bits. */
    DeviceId(int num_bits, std::int64_t linear_index)
        : nBits(num_bits), index(linear_index)
    {
        PRIMEPAR_ASSERT(num_bits >= 0 && num_bits < 63, "bad bit count");
        PRIMEPAR_ASSERT(linear_index >= 0 &&
                            linear_index < (std::int64_t{1} << num_bits),
                        "device index out of range");
    }

    /** Number of id bits n. */
    int numBits() const { return nBits; }

    /** Linear device index in [0, 2^n). */
    std::int64_t linear() const { return index; }

    /** d_{i+1}: bit i (0-based), bit 0 is the most significant (d_1). */
    int
    bit(int i) const
    {
        PRIMEPAR_ASSERT(i >= 0 && i < nBits, "bit index out of range");
        return static_cast<int>((index >> (nBits - 1 - i)) & 1);
    }

    /** Total number of devices with this bit width. */
    std::int64_t numDevices() const { return std::int64_t{1} << nBits; }

    bool operator==(const DeviceId &o) const = default;

    /** e.g. "(0,1,1)". */
    std::string toString() const;

  private:
    int nBits = 0;
    std::int64_t index = 0;
};

/** All 2^n device ids for a given bit width. */
std::vector<DeviceId> allDevices(int num_bits);

} // namespace primepar

#endif // PRIMEPAR_TOPOLOGY_DEVICE_HH
