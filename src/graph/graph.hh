/**
 * @file
 * Computation-graph IR.
 *
 * A model is a DAG of operators connected by edges carrying activation
 * tensors. Each edge records how the dims of the tensor *as consumed*
 * map onto the dims of the producing operator (fused dimensions like
 * QKV-output <-> heads are handled by proportional rescaling in the
 * redistribution planner). The optimizer and the simulator both walk
 * this graph.
 */

#ifndef PRIMEPAR_GRAPH_GRAPH_HH
#define PRIMEPAR_GRAPH_GRAPH_HH

#include <string>
#include <vector>

#include "comm/redistribution.hh"
#include "partition/op_spec.hh"

namespace primepar {

/** One edge: the output of @p src feeds tensor @p dstTensor of @p dst. */
struct GraphEdge
{
    int src = -1;
    int dst = -1;
    /** Index of the consumer tensor receiving the data (an operand of
     *  the consumer's forward pass). */
    int dstTensor = 0;
    /** For each dim of that consumer tensor: the matching producer op
     *  dim, or -1 when the producer does not split it. */
    EdgeDimMap dimMap;
};

/** A computation graph (nodes in topological order). */
class CompGraph
{
  public:
    /** Append a node; returns its index. */
    int addNode(OpSpec op);

    /** Connect src's output to (dst, dst_tensor). */
    void addEdge(int src, int dst, int dst_tensor, EdgeDimMap dim_map);

    int numNodes() const { return static_cast<int>(nodesVec.size()); }
    const OpSpec &node(int i) const { return nodesVec[i]; }
    OpSpec &node(int i) { return nodesVec[i]; }
    const std::vector<GraphEdge> &edges() const { return edgesVec; }

    /** Edges entering / leaving a node. */
    std::vector<const GraphEdge *> inEdges(int node) const;
    std::vector<const GraphEdge *> outEdges(int node) const;

    /** Transfer-tensor dim sizes of an edge (consumer tensor dims). */
    std::vector<std::int64_t> transferSizes(const GraphEdge &e) const;

    /** Element size in bytes of the tensor carried by an edge. */
    double transferBytes(const GraphEdge &e) const;

  private:
    std::vector<OpSpec> nodesVec;
    std::vector<GraphEdge> edgesVec;
};

} // namespace primepar

#endif // PRIMEPAR_GRAPH_GRAPH_HH
