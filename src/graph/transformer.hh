/**
 * @file
 * Transformer block builder and model zoo.
 *
 * Builds the 13-node transformer block of the paper's Fig. 6:
 *
 *   n0 input -> n1 LN1 -> n2 QKV linear -> n3 QK^T -> n4 softmax
 *   -> n5 AV -> n6 out-proj -> n7 +residual(n0) -> n8 LN2 -> n9 fc1
 *   -> n10 gelu -> n11 fc2 -> n12 +residual(n7)
 *
 * Extended (skip) edges: e(2,5) carries V, e(0,7) and e(7,12) carry
 * the residuals — exactly the segment boundaries of the paper's
 * segmented dynamic programming.
 *
 * The model zoo covers the six evaluation workloads: OPT 6.7B/175B,
 * Llama2 7B/70B and BLOOM 7B1/176B.
 */

#ifndef PRIMEPAR_GRAPH_TRANSFORMER_HH
#define PRIMEPAR_GRAPH_TRANSFORMER_HH

#include <string>
#include <vector>

#include "graph.hh"

namespace primepar {

/** Shape hyperparameters of a transformer model. */
struct ModelConfig
{
    std::string name;
    std::int64_t hiddenSize = 0;
    std::int64_t numHeads = 0;
    std::int64_t ffnSize = 0;
    std::int64_t seqLength = 0;
    int numLayers = 0;

    std::int64_t headEmbed() const { return hiddenSize / numHeads; }

    /** Approximate parameter count of one transformer layer. */
    double layerParams() const;

    /** Approximate total parameter count. */
    double totalParams() const { return layerParams() * numLayers; }
};

/** The six evaluation models (paper Sec. 6). */
ModelConfig opt6p7b();
ModelConfig opt175b();
ModelConfig llama2_7b();
ModelConfig llama2_70b();
ModelConfig bloom7b1();
ModelConfig bloom176b();

/** All six, in the paper's presentation order. */
std::vector<ModelConfig> evaluationModels();

/** Look up a model by name; fatal on unknown names. */
ModelConfig modelByName(const std::string &name);

/** Node indices of interest within a built transformer block. */
struct TransformerBlockIndex
{
    int input = 0;
    int ln1 = 1;
    int qkv = 2;
    int qk = 3;
    int softmax = 4;
    int av = 5;
    int outProj = 6;
    int residual1 = 7;
    int ln2 = 8;
    int fc1 = 9;
    int activation = 10;
    int fc2 = 11;
    int residual2 = 12;
};

/**
 * Build one transformer block graph (Fig. 6).
 *
 * @param cfg model shape
 * @param batch micro-batch size
 */
CompGraph buildTransformerBlock(const ModelConfig &cfg,
                                std::int64_t batch);

/**
 * Build just the MLP sub-block (fc1 -> gelu -> fc2) used by the
 * paper's Fig. 9 ablation.
 */
CompGraph buildMlpBlock(const ModelConfig &cfg, std::int64_t batch);

} // namespace primepar

#endif // PRIMEPAR_GRAPH_TRANSFORMER_HH
