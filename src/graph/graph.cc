#include "graph.hh"

#include "support/logging.hh"

namespace primepar {

int
CompGraph::addNode(OpSpec op)
{
    nodesVec.push_back(std::move(op));
    return static_cast<int>(nodesVec.size()) - 1;
}

void
CompGraph::addEdge(int src, int dst, int dst_tensor, EdgeDimMap dim_map)
{
    PRIMEPAR_ASSERT(src >= 0 && src < numNodes() && dst >= 0 &&
                        dst < numNodes() && src < dst,
                    "bad edge ", src, " -> ", dst);
    const OpSpec &consumer = nodesVec[dst];
    PRIMEPAR_ASSERT(dst_tensor >= 0 &&
                        dst_tensor <
                            static_cast<int>(consumer.tensors.size()),
                    "bad consumer tensor index");
    PRIMEPAR_ASSERT(dim_map.size() ==
                        consumer.tensors[dst_tensor].dims.size(),
                    "edge dim map arity mismatch for ",
                    nodesVec[src].name, " -> ", consumer.name);
    edgesVec.push_back({src, dst, dst_tensor, std::move(dim_map)});
}

std::vector<const GraphEdge *>
CompGraph::inEdges(int node) const
{
    std::vector<const GraphEdge *> result;
    for (const auto &e : edgesVec) {
        if (e.dst == node)
            result.push_back(&e);
    }
    return result;
}

std::vector<const GraphEdge *>
CompGraph::outEdges(int node) const
{
    std::vector<const GraphEdge *> result;
    for (const auto &e : edgesVec) {
        if (e.src == node)
            result.push_back(&e);
    }
    return result;
}

std::vector<std::int64_t>
CompGraph::transferSizes(const GraphEdge &e) const
{
    const OpSpec &consumer = nodesVec[e.dst];
    std::vector<std::int64_t> sizes;
    for (int d : consumer.tensors[e.dstTensor].dims)
        sizes.push_back(consumer.dims[d].size);
    return sizes;
}

double
CompGraph::transferBytes(const GraphEdge &e) const
{
    const OpSpec &consumer = nodesVec[e.dst];
    return consumer.tensorBytes(e.dstTensor);
}

} // namespace primepar
