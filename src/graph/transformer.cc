#include "transformer.hh"

#include "support/logging.hh"

namespace primepar {

double
ModelConfig::layerParams() const
{
    // QKV (h x 3h) + out-proj (h x h) + fc1 (h x f) + fc2 (f x h)
    // + layernorm affine params (negligible).
    return static_cast<double>(hiddenSize) * 3 * hiddenSize +
           static_cast<double>(hiddenSize) * hiddenSize +
           2.0 * static_cast<double>(hiddenSize) * ffnSize;
}

ModelConfig
opt6p7b()
{
    return {"OPT 6.7B", 4096, 32, 16384, 2048, 32};
}

ModelConfig
opt175b()
{
    return {"OPT 175B", 12288, 96, 49152, 2048, 96};
}

ModelConfig
llama2_7b()
{
    return {"Llama2 7B", 4096, 32, 11008, 4096, 32};
}

ModelConfig
llama2_70b()
{
    return {"Llama2 70B", 8192, 64, 28672, 4096, 80};
}

ModelConfig
bloom7b1()
{
    return {"BLOOM 7B1", 4096, 32, 16384, 2048, 30};
}

ModelConfig
bloom176b()
{
    return {"BLOOM 176B", 14336, 112, 57344, 2048, 70};
}

std::vector<ModelConfig>
evaluationModels()
{
    return {opt6p7b(),   llama2_7b(),  bloom7b1(),
            opt175b(),   llama2_70b(), bloom176b()};
}

ModelConfig
modelByName(const std::string &name)
{
    for (const auto &m : evaluationModels()) {
        if (m.name == name)
            return m;
    }
    PRIMEPAR_FATAL("unknown model ", name);
}

CompGraph
buildTransformerBlock(const ModelConfig &cfg, std::int64_t batch)
{
    const std::int64_t b = batch;
    const std::int64_t s = cfg.seqLength;
    const std::int64_t h = cfg.hiddenSize;
    const std::int64_t nh = cfg.numHeads;
    const std::int64_t e = cfg.headEmbed();
    const std::int64_t f = cfg.ffnSize;

    CompGraph g;
    // n0: output of the previous layer (identity placeholder).
    g.addNode(makeElementwiseOp("input", {"B", "M", "H"}, {b, s, h}, 0.0));
    g.addNode(makeLayerNormOp("ln1", b, s, h));
    g.addNode(makeLinearOp("qkv", b, s, h, 3 * h));
    // QK^T: Q[B,Hd,M,E] x K[B,Hd,M2,E]^T -> scores[B,Hd,M,M2].
    g.addNode(makeBatchedMatmulOp("qk", {"B", "Hd", "M", "M2", "E"},
                                  {b, nh, s, s, e}, {0, 1, 2, 4},
                                  {0, 1, 3, 4}, {0, 1, 2, 3}, 4));
    g.addNode(makeSoftmaxOp("softmax", {"B", "Hd", "M", "M2"},
                            {b, nh, s, s}));
    // AV: scores[B,Hd,M,M2] x V[B,Hd,M2,E] -> ctx[B,Hd,M,E].
    g.addNode(makeBatchedMatmulOp("av", {"B", "Hd", "M", "M2", "E"},
                                  {b, nh, s, s, e}, {0, 1, 2, 3},
                                  {0, 1, 3, 4}, {0, 1, 2, 4}, 4));
    g.addNode(makeLinearOp("out_proj", b, s, h, h));
    g.addNode(makeAddOp("residual1", {"B", "M", "H"}, {b, s, h}));
    g.addNode(makeLayerNormOp("ln2", b, s, h));
    g.addNode(makeLinearOp("fc1", b, s, h, f));
    g.addNode(makeElementwiseOp("gelu", {"B", "M", "F"}, {b, s, f}));
    g.addNode(makeLinearOp("fc2", b, s, f, h));
    g.addNode(makeAddOp("residual2", {"B", "M", "H"}, {b, s, h}));

    // Chain edges. Dim maps list, per consumer-tensor dim, the
    // producer op dim it corresponds to.
    g.addEdge(0, 1, 0, {0, 1, 2});
    g.addEdge(1, 2, 0, {0, 1, 2});
    // QKV output [B,M,K=3h] -> Q[B,Hd,M,E] and K[B,Hd,M2,E]: Hd maps
    // onto K (head partitioning), E is never split by the producer.
    g.addEdge(2, 3, 0, {0, 3, 1, -1});
    g.addEdge(2, 3, 1, {0, 3, 1, -1});
    g.addEdge(3, 4, 0, {0, 1, 2, 3});
    g.addEdge(4, 5, 0, {0, 1, 2, 3});
    // V flows from QKV as well: consumer Bm[B,Hd,M2,E].
    g.addEdge(2, 5, 1, {0, 3, 1, -1});
    // Context [B,Hd,M,E] -> out-proj I[B,M,N]: N maps onto Hd.
    g.addEdge(5, 6, 0, {0, 2, 1});
    // Residual 1: main path and skip path.
    g.addEdge(6, 7, 0, {0, 1, 3});
    g.addEdge(0, 7, 1, {0, 1, 2});
    g.addEdge(7, 8, 0, {0, 1, 2});
    g.addEdge(8, 9, 0, {0, 1, 2});
    g.addEdge(9, 10, 0, {0, 1, 3});
    g.addEdge(10, 11, 0, {0, 1, 2});
    g.addEdge(11, 12, 0, {0, 1, 3});
    g.addEdge(7, 12, 1, {0, 1, 2});
    return g;
}

CompGraph
buildMlpBlock(const ModelConfig &cfg, std::int64_t batch)
{
    const std::int64_t b = batch;
    const std::int64_t s = cfg.seqLength;
    const std::int64_t h = cfg.hiddenSize;
    const std::int64_t f = cfg.ffnSize;

    CompGraph g;
    g.addNode(makeLinearOp("fc1", b, s, h, f));
    g.addNode(makeElementwiseOp("relu", {"B", "M", "F"}, {b, s, f}));
    g.addNode(makeLinearOp("fc2", b, s, f, h));
    g.addEdge(0, 1, 0, {0, 1, 3});
    g.addEdge(1, 2, 0, {0, 1, 2});
    return g;
}

} // namespace primepar
