#include "ops.hh"

#include <cmath>

#include "gemm.hh"
#include "support/logging.hh"

namespace primepar {

namespace {

/** Flatten leading (batch) dims of a tensor with >= 2 dims. */
std::int64_t
batchCount(const Tensor &t)
{
    std::int64_t n = 1;
    for (int d = 0; d < t.rank() - 2; ++d)
        n *= t.dim(d);
    return n;
}

} // namespace

Tensor
linearForward(const Tensor &input, const Tensor &weight)
{
    PRIMEPAR_ASSERT(input.rank() >= 2 && weight.rank() == 2,
                    "linearForward rank mismatch");
    const std::int64_t m_total = input.numel() / input.dim(input.rank() - 1);
    const std::int64_t n = input.dim(input.rank() - 1);
    PRIMEPAR_ASSERT(weight.dim(0) == n, "linearForward inner dim mismatch: ",
                    input.shapeString(), " x ", weight.shapeString());
    const std::int64_t k = weight.dim(1);

    Shape out_shape = input.shape();
    out_shape.back() = k;
    Tensor out(out_shape);

    // out[i, jk] = sum_jn in[i, jn] * w[jn, jk], ascending jn.
    gemmAccumulate(input.data(), weight.data(), out.data(), m_total, k, n,
                   /*trans_a=*/false, /*trans_b=*/false);
    return out;
}

Tensor
linearBackward(const Tensor &d_output, const Tensor &weight)
{
    PRIMEPAR_ASSERT(d_output.rank() >= 2 && weight.rank() == 2,
                    "linearBackward rank mismatch");
    const std::int64_t k = d_output.dim(d_output.rank() - 1);
    PRIMEPAR_ASSERT(weight.dim(1) == k, "linearBackward inner dim mismatch");
    const std::int64_t n = weight.dim(0);
    const std::int64_t m_total = d_output.numel() / k;

    Shape out_shape = d_output.shape();
    out_shape.back() = n;
    Tensor out(out_shape);

    // gi[i, jn] = sum_jk go[i, jk] * w[jn, jk], ascending jk.
    gemmAccumulate(d_output.data(), weight.data(), out.data(), m_total, n,
                   k, /*trans_a=*/false, /*trans_b=*/true);
    return out;
}

Tensor
linearGradient(const Tensor &input, const Tensor &d_output)
{
    PRIMEPAR_ASSERT(input.rank() >= 2 && d_output.rank() == input.rank(),
                    "linearGradient rank mismatch");
    const std::int64_t n = input.dim(input.rank() - 1);
    const std::int64_t k = d_output.dim(d_output.rank() - 1);
    const std::int64_t m_total = input.numel() / n;
    PRIMEPAR_ASSERT(d_output.numel() / k == m_total,
                    "linearGradient row count mismatch");

    Tensor dw(Shape{n, k});
    // dw[jn, jk] = sum_i in[i, jn] * go[i, jk], ascending i.
    gemmAccumulate(input.data(), d_output.data(), dw.data(), n, k, m_total,
                   /*trans_a=*/true, /*trans_b=*/false);
    return dw;
}

Tensor
batchedMatmul(const Tensor &a, const Tensor &b, bool trans_a, bool trans_b)
{
    PRIMEPAR_ASSERT(a.rank() >= 2 && b.rank() == a.rank(),
                    "batchedMatmul rank mismatch");
    const std::int64_t batches = batchCount(a);
    PRIMEPAR_ASSERT(batches == batchCount(b),
                    "batchedMatmul batch mismatch: ", a.shapeString(),
                    " vs ", b.shapeString());

    const std::int64_t a_rows = a.dim(a.rank() - 2);
    const std::int64_t a_cols = a.dim(a.rank() - 1);
    const std::int64_t b_rows = b.dim(b.rank() - 2);
    const std::int64_t b_cols = b.dim(b.rank() - 1);

    const std::int64_t m = trans_a ? a_cols : a_rows;
    const std::int64_t inner = trans_a ? a_rows : a_cols;
    const std::int64_t inner_b = trans_b ? b_cols : b_rows;
    const std::int64_t k = trans_b ? b_rows : b_cols;
    PRIMEPAR_ASSERT(inner == inner_b, "batchedMatmul inner dim mismatch: ",
                    a.shapeString(), " x ", b.shapeString());

    Shape out_shape(a.shape().begin(), a.shape().end() - 2);
    out_shape.push_back(m);
    out_shape.push_back(k);
    Tensor out(out_shape);

    const std::int64_t a_sz = a_rows * a_cols;
    const std::int64_t b_sz = b_rows * b_cols;
    const std::int64_t o_sz = m * k;
    const float *ap = a.data();
    const float *bp = b.data();
    float *op = out.data();

    for (std::int64_t bt = 0; bt < batches; ++bt)
        gemmAccumulate(ap + bt * a_sz, bp + bt * b_sz, op + bt * o_sz, m,
                       k, inner, trans_a, trans_b);
    return out;
}

Tensor
softmaxLastDim(const Tensor &input)
{
    const std::int64_t cols = input.dim(input.rank() - 1);
    const std::int64_t rows = input.numel() / cols;
    Tensor out(input.shape());
    const float *in = input.data();
    float *o = out.data();
    for (std::int64_t r = 0; r < rows; ++r) {
        const float *row = in + r * cols;
        float *orow = o + r * cols;
        float mx = row[0];
        for (std::int64_t c = 1; c < cols; ++c)
            mx = std::max(mx, row[c]);
        float sum = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c) {
            orow[c] = std::exp(row[c] - mx);
            sum += orow[c];
        }
        const float inv = 1.0f / sum;
        for (std::int64_t c = 0; c < cols; ++c)
            orow[c] *= inv;
    }
    return out;
}

Tensor
softmaxBackward(const Tensor &output, const Tensor &d_output)
{
    PRIMEPAR_ASSERT(output.shape() == d_output.shape(),
                    "softmaxBackward shape mismatch");
    const std::int64_t cols = output.dim(output.rank() - 1);
    const std::int64_t rows = output.numel() / cols;
    Tensor out(output.shape());
    const float *y = output.data();
    const float *gy = d_output.data();
    float *gx = out.data();
    for (std::int64_t r = 0; r < rows; ++r) {
        const float *yrow = y + r * cols;
        const float *grow = gy + r * cols;
        float dot = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c)
            dot += yrow[c] * grow[c];
        float *orow = gx + r * cols;
        for (std::int64_t c = 0; c < cols; ++c)
            orow[c] = yrow[c] * (grow[c] - dot);
    }
    return out;
}

LayerNormResult
layerNormForward(const Tensor &input, const Tensor &gamma,
                 const Tensor &beta, float eps)
{
    const std::int64_t cols = input.dim(input.rank() - 1);
    PRIMEPAR_ASSERT(gamma.numel() == cols && beta.numel() == cols,
                    "layerNorm parameter size mismatch");
    const std::int64_t rows = input.numel() / cols;

    LayerNormResult res{Tensor(input.shape()), Tensor(Shape{rows}),
                        Tensor(Shape{rows})};
    const float *in = input.data();
    const float *g = gamma.data();
    const float *b = beta.data();
    float *o = res.output.data();
    float *mean = res.mean.data();
    float *inv_std = res.inv_std.data();

    for (std::int64_t r = 0; r < rows; ++r) {
        const float *row = in + r * cols;
        float mu = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c)
            mu += row[c];
        mu /= cols;
        float var = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c)
            var += (row[c] - mu) * (row[c] - mu);
        var /= cols;
        const float is = 1.0f / std::sqrt(var + eps);
        mean[r] = mu;
        inv_std[r] = is;
        float *orow = o + r * cols;
        for (std::int64_t c = 0; c < cols; ++c)
            orow[c] = (row[c] - mu) * is * g[c] + b[c];
    }
    return res;
}

LayerNormGrads
layerNormBackward(const Tensor &input, const LayerNormResult &fwd,
                  const Tensor &gamma, const Tensor &d_output)
{
    const std::int64_t cols = input.dim(input.rank() - 1);
    const std::int64_t rows = input.numel() / cols;

    LayerNormGrads grads{Tensor(input.shape()), Tensor(Shape{cols}),
                         Tensor(Shape{cols})};
    const float *in = input.data();
    const float *g = gamma.data();
    const float *gy = d_output.data();
    const float *mean = fwd.mean.data();
    const float *inv_std = fwd.inv_std.data();
    float *gx = grads.d_input.data();
    float *gg = grads.d_gamma.data();
    float *gb = grads.d_beta.data();

    for (std::int64_t r = 0; r < rows; ++r) {
        const float *row = in + r * cols;
        const float *grow = gy + r * cols;
        const float mu = mean[r];
        const float is = inv_std[r];

        float sum_gy = 0.0f, sum_gy_xhat = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c) {
            const float xhat = (row[c] - mu) * is;
            const float gyg = grow[c] * g[c];
            sum_gy += gyg;
            sum_gy_xhat += gyg * xhat;
            gg[c] += grow[c] * xhat;
            gb[c] += grow[c];
        }
        float *orow = gx + r * cols;
        for (std::int64_t c = 0; c < cols; ++c) {
            const float xhat = (row[c] - mu) * is;
            const float gyg = grow[c] * g[c];
            orow[c] =
                is * (gyg - sum_gy / cols - xhat * sum_gy_xhat / cols);
        }
    }
    return grads;
}

namespace {

constexpr float kGeluC = 0.7978845608028654f; // sqrt(2/pi)

float
geluScalar(float x)
{
    const float inner = kGeluC * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

float
geluGradScalar(float x)
{
    const float inner = kGeluC * (x + 0.044715f * x * x * x);
    const float t = std::tanh(inner);
    const float dinner = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
}

} // namespace

Tensor
gelu(const Tensor &input)
{
    Tensor out(input.shape());
    const float *in = input.data();
    float *o = out.data();
    for (std::int64_t i = 0; i < input.numel(); ++i)
        o[i] = geluScalar(in[i]);
    return out;
}

Tensor
geluBackward(const Tensor &input, const Tensor &d_output)
{
    PRIMEPAR_ASSERT(input.shape() == d_output.shape(),
                    "geluBackward shape mismatch");
    Tensor out(input.shape());
    const float *in = input.data();
    const float *gy = d_output.data();
    float *o = out.data();
    for (std::int64_t i = 0; i < input.numel(); ++i)
        o[i] = gy[i] * geluGradScalar(in[i]);
    return out;
}

Tensor
relu(const Tensor &input)
{
    Tensor out(input.shape());
    const float *in = input.data();
    float *o = out.data();
    for (std::int64_t i = 0; i < input.numel(); ++i)
        o[i] = in[i] > 0.0f ? in[i] : 0.0f;
    return out;
}

Tensor
reluBackward(const Tensor &input, const Tensor &d_output)
{
    PRIMEPAR_ASSERT(input.shape() == d_output.shape(),
                    "reluBackward shape mismatch");
    Tensor out(input.shape());
    const float *in = input.data();
    const float *gy = d_output.data();
    float *o = out.data();
    for (std::int64_t i = 0; i < input.numel(); ++i)
        o[i] = in[i] > 0.0f ? gy[i] : 0.0f;
    return out;
}

Tensor
addTensors(const Tensor &a, const Tensor &b)
{
    Tensor out = a;
    out.add(b);
    return out;
}

} // namespace primepar
