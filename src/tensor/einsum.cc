#include "einsum.hh"

#include <algorithm>
#include <map>

#include "gemm.hh"
#include "support/logging.hh"

namespace primepar {

namespace {

bool
contains(const std::vector<int> &labels, int l)
{
    return std::find(labels.begin(), labels.end(), l) != labels.end();
}

bool
hasDuplicates(const std::vector<int> &labels)
{
    for (std::size_t i = 0; i < labels.size(); ++i)
        for (std::size_t j = i + 1; j < labels.size(); ++j)
            if (labels[i] == labels[j])
                return true;
    return false;
}

/** Parameters of a batched-GEMM view of a labelled contraction. */
struct GemmPlan
{
    std::int64_t batches = 1;
    std::int64_t m = 1;
    std::int64_t n = 1;
    std::int64_t k = 1;
    bool trans_a = false;
    bool trans_b = false;
};

std::vector<int>
concat(const std::vector<int> &x, const std::vector<int> &y)
{
    std::vector<int> r = x;
    r.insert(r.end(), y.begin(), y.end());
    return r;
}

/**
 * Recognize a contraction that is a batched GEMM over contiguous label
 * groups. Classify each label by membership (batch = in a, b and out;
 * m = a and out; n = b and out; k = a and b only) and require each
 * tensor's label list to be its groups concatenated in a row-major
 * compatible order. The contracted group must keep the same internal
 * order in both inputs, so the flattened GEMM contraction index walks
 * the k labels exactly like the odometer fallback does — that is what
 * keeps the fast path bit-identical to naive::contract.
 */
bool
planGemm(const std::vector<int> &a_dims, const std::vector<int> &b_dims,
         const std::vector<int> &out_dims,
         const std::map<int, std::int64_t> &extent, GemmPlan &plan)
{
    if (hasDuplicates(a_dims) || hasDuplicates(b_dims) ||
        hasDuplicates(out_dims))
        return false;

    std::vector<int> batch, m_labels, n_labels, k_labels;
    for (int l : out_dims) {
        const bool in_a = contains(a_dims, l);
        const bool in_b = contains(b_dims, l);
        if (in_a && in_b)
            batch.push_back(l);
        else if (in_a)
            m_labels.push_back(l);
        else if (in_b)
            n_labels.push_back(l);
        else
            return false; // output-only label: not a contraction
    }
    for (int l : a_dims) {
        if (!contains(out_dims, l)) {
            if (!contains(b_dims, l))
                return false; // summed label missing from b
            k_labels.push_back(l);
        }
    }
    for (int l : b_dims) {
        if (!contains(out_dims, l) && !contains(a_dims, l))
            return false;
    }
    if (k_labels.empty())
        return false; // outer product; GEMM with k=0 would be a no-op

    if (out_dims != concat(concat(batch, m_labels), n_labels))
        return false;

    if (a_dims == concat(concat(batch, m_labels), k_labels))
        plan.trans_a = false;
    else if (a_dims == concat(concat(batch, k_labels), m_labels))
        plan.trans_a = true;
    else
        return false;

    if (b_dims == concat(concat(batch, k_labels), n_labels))
        plan.trans_b = false;
    else if (b_dims == concat(concat(batch, n_labels), k_labels))
        plan.trans_b = true;
    else
        return false;

    auto product = [&](const std::vector<int> &labels) {
        std::int64_t p = 1;
        for (int l : labels)
            p *= extent.at(l);
        return p;
    };
    plan.batches = product(batch);
    plan.m = product(m_labels);
    plan.n = product(n_labels);
    plan.k = product(k_labels);
    return true;
}

} // namespace

void
contractProduct(const Tensor &a, const std::vector<int> &a_dims,
                const Tensor &b, const std::vector<int> &b_dims,
                Tensor &out, const std::vector<int> &out_dims)
{
    PRIMEPAR_ASSERT(static_cast<int>(a_dims.size()) == a.rank() &&
                        static_cast<int>(b_dims.size()) == b.rank() &&
                        static_cast<int>(out_dims.size()) == out.rank(),
                    "einsum label arity mismatch");

    // Collect loop labels: output labels first, then contracted ones.
    std::vector<int> loop_labels = out_dims;
    for (int l : a_dims) {
        if (std::find(loop_labels.begin(), loop_labels.end(), l) ==
            loop_labels.end())
            loop_labels.push_back(l);
    }
    for (int l : b_dims) {
        if (std::find(loop_labels.begin(), loop_labels.end(), l) ==
            loop_labels.end())
            loop_labels.push_back(l);
    }

    // Extents per label, consistency-checked across tensors.
    std::map<int, std::int64_t> extent;
    auto record = [&](const std::vector<int> &labels, const Tensor &t) {
        for (std::size_t i = 0; i < labels.size(); ++i) {
            auto [it, inserted] = extent.emplace(labels[i], t.dim(i));
            PRIMEPAR_ASSERT(it->second == t.dim(i),
                            "einsum extent mismatch on label ",
                            labels[i]);
            (void)inserted;
        }
    };
    record(a_dims, a);
    record(b_dims, b);
    record(out_dims, out);

    for (const auto &[label, e] : extent) {
        (void)label;
        if (e == 0)
            return;
    }

    // Fast path: every executor contraction (linear layers, attention
    // score / context matmuls and their backward passes) is a batched
    // GEMM over contiguous label groups. Detect that shape and run the
    // blocked kernel; the per-element term order is unchanged.
    GemmPlan plan;
    if (planGemm(a_dims, b_dims, out_dims, extent, plan)) {
        const float *ap = a.data();
        const float *bp = b.data();
        float *op = out.data();
        const std::int64_t a_sz = plan.m * plan.k;
        const std::int64_t b_sz = plan.k * plan.n;
        const std::int64_t o_sz = plan.m * plan.n;
        for (std::int64_t bt = 0; bt < plan.batches; ++bt)
            gemmAccumulate(ap + bt * a_sz, bp + bt * b_sz,
                           op + bt * o_sz, plan.m, plan.n, plan.k,
                           plan.trans_a, plan.trans_b);
        return;
    }

    // Per-tensor stride of each loop label.
    auto strides_for = [&](const std::vector<int> &labels,
                           const Tensor &t) {
        std::vector<std::int64_t> by_axis(labels.size(), 1);
        for (int i = static_cast<int>(labels.size()) - 2; i >= 0; --i)
            by_axis[i] = by_axis[i + 1] * t.dim(i + 1);
        std::vector<std::int64_t> by_label(loop_labels.size(), 0);
        for (std::size_t i = 0; i < labels.size(); ++i) {
            const auto pos = std::find(loop_labels.begin(),
                                       loop_labels.end(), labels[i]) -
                             loop_labels.begin();
            by_label[pos] += by_axis[i];
        }
        return by_label;
    };
    const auto a_stride = strides_for(a_dims, a);
    const auto b_stride = strides_for(b_dims, b);
    const auto o_stride = strides_for(out_dims, out);

    const std::size_t n_loops = loop_labels.size();
    std::vector<std::int64_t> idx(n_loops, 0);
    std::vector<std::int64_t> extents(n_loops);
    for (std::size_t i = 0; i < n_loops; ++i)
        extents[i] = extent[loop_labels[i]];
    if (n_loops == 0) {
        // 0-d corner: single multiply-accumulate.
        out.data()[0] += a.data()[0] * b.data()[0];
        return;
    }

    const float *ap = a.data();
    const float *bp = b.data();
    float *op = out.data();

    // Hoist the innermost loop out of the odometer into a specialized
    // kernel chosen by its stride pattern. Each variant performs the
    // identical multiply-accumulate sequence as the plain odometer —
    // the dot variant accumulates through a scalar instead of memory,
    // which adds the same terms in the same order.
    const std::int64_t in_e = extents[n_loops - 1];
    const std::int64_t in_as = a_stride[n_loops - 1];
    const std::int64_t in_bs = b_stride[n_loops - 1];
    const std::int64_t in_os = o_stride[n_loops - 1];

    std::int64_t a_pos = 0, b_pos = 0, o_pos = 0;
    while (true) {
        if (in_os == 0) {
            // Innermost label is contracted: dot product.
            float acc = op[o_pos];
            for (std::int64_t t = 0; t < in_e; ++t)
                acc += ap[a_pos + t * in_as] * bp[b_pos + t * in_bs];
            op[o_pos] = acc;
        } else if (in_as == 0) {
            // Broadcast a over the innermost output axis: axpy.
            const float av = ap[a_pos];
            for (std::int64_t t = 0; t < in_e; ++t)
                op[o_pos + t * in_os] += av * bp[b_pos + t * in_bs];
        } else if (in_bs == 0) {
            const float bv = bp[b_pos];
            for (std::int64_t t = 0; t < in_e; ++t)
                op[o_pos + t * in_os] += ap[a_pos + t * in_as] * bv;
        } else {
            for (std::int64_t t = 0; t < in_e; ++t)
                op[o_pos + t * in_os] +=
                    ap[a_pos + t * in_as] * bp[b_pos + t * in_bs];
        }

        // Odometer increment over the remaining (outer) labels.
        int d = static_cast<int>(n_loops) - 2;
        for (; d >= 0; --d) {
            ++idx[d];
            a_pos += a_stride[d];
            b_pos += b_stride[d];
            o_pos += o_stride[d];
            if (idx[d] < extents[d])
                break;
            a_pos -= extents[d] * a_stride[d];
            b_pos -= extents[d] * b_stride[d];
            o_pos -= extents[d] * o_stride[d];
            idx[d] = 0;
        }
        if (d < 0)
            break;
    }
}

} // namespace primepar
