#include "einsum.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace primepar {

void
contractProduct(const Tensor &a, const std::vector<int> &a_dims,
                const Tensor &b, const std::vector<int> &b_dims,
                Tensor &out, const std::vector<int> &out_dims)
{
    PRIMEPAR_ASSERT(static_cast<int>(a_dims.size()) == a.rank() &&
                        static_cast<int>(b_dims.size()) == b.rank() &&
                        static_cast<int>(out_dims.size()) == out.rank(),
                    "einsum label arity mismatch");

    // Collect loop labels: output labels first, then contracted ones.
    std::vector<int> loop_labels = out_dims;
    for (int l : a_dims) {
        if (std::find(loop_labels.begin(), loop_labels.end(), l) ==
            loop_labels.end())
            loop_labels.push_back(l);
    }
    for (int l : b_dims) {
        if (std::find(loop_labels.begin(), loop_labels.end(), l) ==
            loop_labels.end())
            loop_labels.push_back(l);
    }

    // Extents per label, consistency-checked across tensors.
    std::map<int, std::int64_t> extent;
    auto record = [&](const std::vector<int> &labels, const Tensor &t) {
        for (std::size_t i = 0; i < labels.size(); ++i) {
            auto [it, inserted] = extent.emplace(labels[i], t.dim(i));
            PRIMEPAR_ASSERT(it->second == t.dim(i),
                            "einsum extent mismatch on label ",
                            labels[i]);
            (void)inserted;
        }
    };
    record(a_dims, a);
    record(b_dims, b);
    record(out_dims, out);

    // Per-tensor stride of each loop label.
    auto strides_for = [&](const std::vector<int> &labels,
                           const Tensor &t) {
        std::vector<std::int64_t> by_axis(labels.size(), 1);
        for (int i = static_cast<int>(labels.size()) - 2; i >= 0; --i)
            by_axis[i] = by_axis[i + 1] * t.dim(i + 1);
        std::vector<std::int64_t> by_label(loop_labels.size(), 0);
        for (std::size_t i = 0; i < labels.size(); ++i) {
            const auto pos = std::find(loop_labels.begin(),
                                       loop_labels.end(), labels[i]) -
                             loop_labels.begin();
            by_label[pos] += by_axis[i];
        }
        return by_label;
    };
    const auto a_stride = strides_for(a_dims, a);
    const auto b_stride = strides_for(b_dims, b);
    const auto o_stride = strides_for(out_dims, out);

    const std::size_t n_loops = loop_labels.size();
    std::vector<std::int64_t> idx(n_loops, 0);
    std::vector<std::int64_t> extents(n_loops);
    for (std::size_t i = 0; i < n_loops; ++i) {
        extents[i] = extent[loop_labels[i]];
        if (extents[i] == 0)
            return;
    }
    if (n_loops == 0) {
        // 0-d corner: single multiply-accumulate.
        out.data()[0] += a.data()[0] * b.data()[0];
        return;
    }

    const float *ap = a.data();
    const float *bp = b.data();
    float *op = out.data();

    std::int64_t a_pos = 0, b_pos = 0, o_pos = 0;
    while (true) {
        op[o_pos] += ap[a_pos] * bp[b_pos];

        // Odometer increment, innermost label last.
        int d = static_cast<int>(n_loops) - 1;
        for (; d >= 0; --d) {
            ++idx[d];
            a_pos += a_stride[d];
            b_pos += b_stride[d];
            o_pos += o_stride[d];
            if (idx[d] < extents[d])
                break;
            a_pos -= extents[d] * a_stride[d];
            b_pos -= extents[d] * b_stride[d];
            o_pos -= extents[d] * o_stride[d];
            idx[d] = 0;
        }
        if (d < 0)
            break;
    }
}

} // namespace primepar
