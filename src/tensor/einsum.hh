/**
 * @file
 * Generic labelled contraction over dense tensors.
 *
 * The SPMD executor computes sub-operator partials generically: every
 * contraction pass is "out[out_dims] += A[a_dims] * B[b_dims]" summed
 * over the dims absent from out. Dims are identified by integer labels
 * (the operator's dim indices); every tensor's axes carry an ordered
 * label list.
 */

#ifndef PRIMEPAR_TENSOR_EINSUM_HH
#define PRIMEPAR_TENSOR_EINSUM_HH

#include <vector>

#include "tensor.hh"

namespace primepar {

/**
 * Accumulate the product contraction of @p a and @p b into @p out.
 *
 * @param a,b input tensors
 * @param a_dims,b_dims dim labels of their axes (sizes must agree with
 *        the tensors' shapes and with equal labels elsewhere)
 * @param out accumulated output (not zeroed here)
 * @param out_dims dim labels of the output axes
 *
 * Labels appearing in inputs but not in @p out_dims are summed over.
 */
void contractProduct(const Tensor &a, const std::vector<int> &a_dims,
                     const Tensor &b, const std::vector<int> &b_dims,
                     Tensor &out, const std::vector<int> &out_dims);

} // namespace primepar

#endif // PRIMEPAR_TENSOR_EINSUM_HH
