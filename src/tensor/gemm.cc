#include "gemm.hh"

#include <algorithm>

#include "buffer_pool.hh"
#include "support/logging.hh"

#if defined(__GNUC__) || defined(__clang__)
#define PRIMEPAR_RESTRICT __restrict__
#else
#define PRIMEPAR_RESTRICT
#endif

namespace primepar {

namespace {

// Blocking parameters. NR*4 bytes is the C-tile row held in vector
// registers; KC*NR*4 bytes (8 KiB) is the B panel a register tile
// streams, sized to stay L1-resident across the i loop.
constexpr std::int64_t MR = 4;
constexpr std::int64_t NR = 8;
constexpr std::int64_t KC = 256;

#if defined(__GNUC__) || defined(__clang__)
#define PRIMEPAR_GEMM_SIMD 1
typedef float v4sf __attribute__((vector_size(16)));

inline v4sf
loadu(const float *p)
{
    v4sf v;
    __builtin_memcpy(&v, p, sizeof(v));
    return v;
}

inline void
storeu(float *p, v4sf v)
{
    __builtin_memcpy(p, &v, sizeof(v));
}

inline v4sf
splat(float x)
{
    return (v4sf){x, x, x, x};
}

/**
 * Register micro-kernel: C[4][8] += A-rows x B-panel over l in
 * [l0, l1). @p a points at the row block (element (r, l) at
 * a[r*ars + l*acs]), @p b at column j0 of the full B (row l at
 * b + l*ldb), @p c at the tile origin.
 */
inline void
micro4x8(const float *PRIMEPAR_RESTRICT a, std::int64_t ars,
         std::int64_t acs, const float *PRIMEPAR_RESTRICT b,
         std::int64_t ldb, float *PRIMEPAR_RESTRICT c, std::int64_t ldc,
         std::int64_t l0, std::int64_t l1)
{
    v4sf c00 = loadu(c + 0 * ldc), c01 = loadu(c + 0 * ldc + 4);
    v4sf c10 = loadu(c + 1 * ldc), c11 = loadu(c + 1 * ldc + 4);
    v4sf c20 = loadu(c + 2 * ldc), c21 = loadu(c + 2 * ldc + 4);
    v4sf c30 = loadu(c + 3 * ldc), c31 = loadu(c + 3 * ldc + 4);
    for (std::int64_t l = l0; l < l1; ++l) {
        const float *PRIMEPAR_RESTRICT brow = b + l * ldb;
        const v4sf b0 = loadu(brow);
        const v4sf b1 = loadu(brow + 4);
        const v4sf a0 = splat(a[0 * ars + l * acs]);
        c00 += a0 * b0;
        c01 += a0 * b1;
        const v4sf a1 = splat(a[1 * ars + l * acs]);
        c10 += a1 * b0;
        c11 += a1 * b1;
        const v4sf a2 = splat(a[2 * ars + l * acs]);
        c20 += a2 * b0;
        c21 += a2 * b1;
        const v4sf a3 = splat(a[3 * ars + l * acs]);
        c30 += a3 * b0;
        c31 += a3 * b1;
    }
    storeu(c + 0 * ldc, c00);
    storeu(c + 0 * ldc + 4, c01);
    storeu(c + 1 * ldc, c10);
    storeu(c + 1 * ldc + 4, c11);
    storeu(c + 2 * ldc, c20);
    storeu(c + 2 * ldc + 4, c21);
    storeu(c + 3 * ldc, c30);
    storeu(c + 3 * ldc + 4, c31);
}

/** Single-row variant of micro4x8 for the m % MR edge. */
inline void
micro1x8(const float *PRIMEPAR_RESTRICT a, std::int64_t acs,
         const float *PRIMEPAR_RESTRICT b, std::int64_t ldb,
         float *PRIMEPAR_RESTRICT c, std::int64_t l0, std::int64_t l1)
{
    v4sf c0 = loadu(c);
    v4sf c1 = loadu(c + 4);
    for (std::int64_t l = l0; l < l1; ++l) {
        const float *PRIMEPAR_RESTRICT brow = b + l * ldb;
        const v4sf av = splat(a[l * acs]);
        c0 += av * loadu(brow);
        c1 += av * loadu(brow + 4);
    }
    storeu(c, c0);
    storeu(c + 4, c1);
}
#endif // PRIMEPAR_GEMM_SIMD

/** Scalar edge kernel, same ascending-l term order: C[i][j0..n) over
 *  rows [i0, i1). */
void
edgeCols(const float *PRIMEPAR_RESTRICT a, std::int64_t ars,
         std::int64_t acs, const float *PRIMEPAR_RESTRICT b,
         std::int64_t ldb, float *PRIMEPAR_RESTRICT c, std::int64_t ldc,
         std::int64_t i0, std::int64_t i1, std::int64_t j0,
         std::int64_t j1, std::int64_t l0, std::int64_t l1)
{
    for (std::int64_t i = i0; i < i1; ++i) {
        float *PRIMEPAR_RESTRICT crow = c + i * ldc;
        for (std::int64_t l = l0; l < l1; ++l) {
            const float v = a[i * ars + l * acs];
            const float *PRIMEPAR_RESTRICT brow = b + l * ldb;
            for (std::int64_t j = j0; j < j1; ++j)
                crow[j] += v * brow[j];
        }
    }
}

/**
 * Blocked C[m,n] += A x B with B dense row-major k x n. A is accessed
 * as A(i,l) = a[i*ars + l*acs], which covers both orientations.
 */
void
gemmPanels(const float *PRIMEPAR_RESTRICT a, std::int64_t ars,
           std::int64_t acs, const float *PRIMEPAR_RESTRICT b,
           float *PRIMEPAR_RESTRICT c, std::int64_t m, std::int64_t n,
           std::int64_t k)
{
    for (std::int64_t l0 = 0; l0 < k; l0 += KC) {
        const std::int64_t l1 = std::min(k, l0 + KC);
#if PRIMEPAR_GEMM_SIMD
        std::int64_t j0 = 0;
        for (; j0 + NR <= n; j0 += NR) {
            std::int64_t i0 = 0;
            for (; i0 + MR <= m; i0 += MR)
                micro4x8(a + i0 * ars, ars, acs, b + j0, n,
                         c + i0 * n + j0, n, l0, l1);
            for (; i0 < m; ++i0)
                micro1x8(a + i0 * ars, acs, b + j0, n, c + i0 * n + j0,
                         l0, l1);
        }
        if (j0 < n)
            edgeCols(a, ars, acs, b, n, c, n, 0, m, j0, n, l0, l1);
#else
        edgeCols(a, ars, acs, b, n, c, n, 0, m, 0, n, l0, l1);
#endif
    }
}

/** Cache-blocked transpose of an n x k matrix into a k x n buffer. */
void
packTranspose(const float *PRIMEPAR_RESTRICT src, float *PRIMEPAR_RESTRICT dst,
              std::int64_t n, std::int64_t k)
{
    constexpr std::int64_t TB = 32;
    for (std::int64_t l0 = 0; l0 < k; l0 += TB) {
        const std::int64_t l1 = std::min(k, l0 + TB);
        for (std::int64_t j0 = 0; j0 < n; j0 += TB) {
            const std::int64_t j1 = std::min(n, j0 + TB);
            for (std::int64_t l = l0; l < l1; ++l)
                for (std::int64_t j = j0; j < j1; ++j)
                    dst[l * n + j] = src[j * k + l];
        }
    }
}

} // namespace

void
gemmAccumulate(const float *a, const float *b, float *c, std::int64_t m,
               std::int64_t n, std::int64_t k, bool trans_a, bool trans_b)
{
    PRIMEPAR_ASSERT(m >= 0 && n >= 0 && k >= 0, "negative GEMM extent");
    if (m == 0 || n == 0 || k == 0)
        return;

    const std::int64_t ars = trans_a ? 1 : k;
    const std::int64_t acs = trans_a ? m : 1;

    if (!trans_b) {
        gemmPanels(a, ars, acs, b, c, m, n, k);
        return;
    }
    // Repack B^T so the inner kernel streams contiguous rows; the
    // pooled workspace makes this allocation-free in steady state.
    Workspace packed(k * n);
    packTranspose(b, packed.data(), n, k);
    gemmPanels(a, ars, acs, packed.data(), c, m, n, k);
}

} // namespace primepar
