#include "gemm.hh"

#include <algorithm>

#include "support/logging.hh"

namespace primepar {

namespace naive {

namespace {

std::int64_t
batchCount(const Tensor &t)
{
    std::int64_t n = 1;
    for (int d = 0; d < t.rank() - 2; ++d)
        n *= t.dim(d);
    return n;
}

} // namespace

Tensor
linearForward(const Tensor &input, const Tensor &weight)
{
    const std::int64_t m_total =
        input.numel() / input.dim(input.rank() - 1);
    const std::int64_t n = input.dim(input.rank() - 1);
    const std::int64_t k = weight.dim(1);
    Shape out_shape = input.shape();
    out_shape.back() = k;
    Tensor out(out_shape);

    const float *in = input.data();
    const float *w = weight.data();
    float *o = out.data();
    for (std::int64_t i = 0; i < m_total; ++i) {
        for (std::int64_t jn = 0; jn < n; ++jn) {
            const float v = in[i * n + jn];
            const float *wrow = w + jn * k;
            float *orow = o + i * k;
            for (std::int64_t jk = 0; jk < k; ++jk)
                orow[jk] += v * wrow[jk];
        }
    }
    return out;
}

Tensor
linearBackward(const Tensor &d_output, const Tensor &weight)
{
    const std::int64_t k = d_output.dim(d_output.rank() - 1);
    const std::int64_t n = weight.dim(0);
    const std::int64_t m_total = d_output.numel() / k;
    Shape out_shape = d_output.shape();
    out_shape.back() = n;
    Tensor out(out_shape);

    const float *go = d_output.data();
    const float *w = weight.data();
    float *gi = out.data();
    for (std::int64_t i = 0; i < m_total; ++i) {
        for (std::int64_t jn = 0; jn < n; ++jn) {
            const float *wrow = w + jn * k;
            const float *grow = go + i * k;
            float acc = gi[i * n + jn];
            for (std::int64_t jk = 0; jk < k; ++jk)
                acc += grow[jk] * wrow[jk];
            gi[i * n + jn] = acc;
        }
    }
    return out;
}

Tensor
linearGradient(const Tensor &input, const Tensor &d_output)
{
    const std::int64_t n = input.dim(input.rank() - 1);
    const std::int64_t k = d_output.dim(d_output.rank() - 1);
    const std::int64_t m_total = input.numel() / n;
    Tensor dw(Shape{n, k});

    const float *in = input.data();
    const float *go = d_output.data();
    float *g = dw.data();
    for (std::int64_t i = 0; i < m_total; ++i) {
        for (std::int64_t jn = 0; jn < n; ++jn) {
            const float v = in[i * n + jn];
            const float *grow = go + i * k;
            float *grad_row = g + jn * k;
            for (std::int64_t jk = 0; jk < k; ++jk)
                grad_row[jk] += v * grow[jk];
        }
    }
    return dw;
}

Tensor
batchedMatmul(const Tensor &a, const Tensor &b, bool trans_a, bool trans_b)
{
    const std::int64_t batches = batchCount(a);
    const std::int64_t a_rows = a.dim(a.rank() - 2);
    const std::int64_t a_cols = a.dim(a.rank() - 1);
    const std::int64_t b_rows = b.dim(b.rank() - 2);
    const std::int64_t b_cols = b.dim(b.rank() - 1);
    const std::int64_t m = trans_a ? a_cols : a_rows;
    const std::int64_t inner = trans_a ? a_rows : a_cols;
    const std::int64_t k = trans_b ? b_rows : b_cols;

    Shape out_shape(a.shape().begin(), a.shape().end() - 2);
    out_shape.push_back(m);
    out_shape.push_back(k);
    Tensor out(out_shape);

    const std::int64_t a_sz = a_rows * a_cols;
    const std::int64_t b_sz = b_rows * b_cols;
    const std::int64_t o_sz = m * k;
    const float *ap = a.data();
    const float *bp = b.data();
    float *op = out.data();

    auto a_at = [&](std::int64_t base, std::int64_t i, std::int64_t j) {
        return trans_a ? ap[base + j * a_cols + i]
                       : ap[base + i * a_cols + j];
    };
    auto b_at = [&](std::int64_t base, std::int64_t i, std::int64_t j) {
        return trans_b ? bp[base + j * b_cols + i]
                       : bp[base + i * b_cols + j];
    };

    for (std::int64_t bt = 0; bt < batches; ++bt) {
        const std::int64_t abase = bt * a_sz;
        const std::int64_t bbase = bt * b_sz;
        const std::int64_t obase = bt * o_sz;
        for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = 0; j < k; ++j) {
                float acc = 0.0f;
                for (std::int64_t l = 0; l < inner; ++l)
                    acc += a_at(abase, i, l) * b_at(bbase, l, j);
                op[obase + i * k + j] = acc;
            }
        }
    }
    return out;
}

void
contract(const Tensor &a, const std::vector<int> &a_dims, const Tensor &b,
         const std::vector<int> &b_dims, Tensor &out,
         const std::vector<int> &out_dims)
{
    // Verbatim seed odometer: output labels outermost, then leftover
    // a labels, then leftover b labels, innermost last.
    std::vector<int> loop_labels = out_dims;
    for (int l : a_dims) {
        if (std::find(loop_labels.begin(), loop_labels.end(), l) ==
            loop_labels.end())
            loop_labels.push_back(l);
    }
    for (int l : b_dims) {
        if (std::find(loop_labels.begin(), loop_labels.end(), l) ==
            loop_labels.end())
            loop_labels.push_back(l);
    }

    auto strides_for = [&](const std::vector<int> &labels,
                           const Tensor &t) {
        std::vector<std::int64_t> by_axis(labels.size(), 1);
        for (int i = static_cast<int>(labels.size()) - 2; i >= 0; --i)
            by_axis[i] = by_axis[i + 1] * t.dim(i + 1);
        std::vector<std::int64_t> by_label(loop_labels.size(), 0);
        for (std::size_t i = 0; i < labels.size(); ++i) {
            const auto pos = std::find(loop_labels.begin(),
                                       loop_labels.end(), labels[i]) -
                             loop_labels.begin();
            by_label[pos] += by_axis[i];
        }
        return by_label;
    };
    const auto a_stride = strides_for(a_dims, a);
    const auto b_stride = strides_for(b_dims, b);
    const auto o_stride = strides_for(out_dims, out);

    std::vector<std::int64_t> extents(loop_labels.size(), 0);
    auto record = [&](const std::vector<int> &labels, const Tensor &t) {
        for (std::size_t i = 0; i < labels.size(); ++i) {
            const auto pos = std::find(loop_labels.begin(),
                                       loop_labels.end(), labels[i]) -
                             loop_labels.begin();
            extents[pos] = t.dim(static_cast<int>(i));
        }
    };
    record(out_dims, out);
    record(b_dims, b);
    record(a_dims, a);

    const std::size_t n_loops = loop_labels.size();
    for (std::int64_t e : extents) {
        if (e == 0)
            return;
    }
    if (n_loops == 0) {
        out.data()[0] += a.data()[0] * b.data()[0];
        return;
    }

    const float *ap = a.data();
    const float *bp = b.data();
    float *op = out.data();
    std::vector<std::int64_t> idx(n_loops, 0);
    std::int64_t a_pos = 0, b_pos = 0, o_pos = 0;
    while (true) {
        op[o_pos] += ap[a_pos] * bp[b_pos];
        int d = static_cast<int>(n_loops) - 1;
        for (; d >= 0; --d) {
            ++idx[d];
            a_pos += a_stride[d];
            b_pos += b_stride[d];
            o_pos += o_stride[d];
            if (idx[d] < extents[d])
                break;
            a_pos -= extents[d] * a_stride[d];
            b_pos -= extents[d] * b_stride[d];
            o_pos -= extents[d] * o_stride[d];
            idx[d] = 0;
        }
        if (d < 0)
            break;
    }
}

} // namespace naive

} // namespace primepar
