/**
 * @file
 * Dense N-dimensional float tensor.
 *
 * This is the substrate for PrimePar's functional executor: partitioned
 * sub-operators are really executed on (small) CPU tensors and compared
 * against single-device reference training, proving the semantics of
 * each partition primitive instead of assuming them.
 *
 * The tensor is contiguous row-major and always owns its storage; views
 * are materialized by slice()/narrow() which copy. This keeps aliasing
 * semantics trivial — the executor moves tensor *values* between
 * emulated devices anyway. Storage is drawn from the process-wide
 * BufferPool, so the runtime's per-step temporaries (slices, partials,
 * shift snapshots) recycle memory instead of hitting the heap.
 */

#ifndef PRIMEPAR_TENSOR_TENSOR_HH
#define PRIMEPAR_TENSOR_TENSOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "buffer_pool.hh"
#include "support/rng.hh"

namespace primepar {

/** Shape of a tensor: one extent per dimension. */
using Shape = std::vector<std::int64_t>;

/** A contiguous row-major dense float tensor. */
class Tensor
{
  public:
    /** An empty 0-element tensor. */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /**
     * Tensor of the given shape with *unspecified* contents (possibly
     * recycled pool memory). Only for callers that overwrite every
     * element before reading — slice/permute outputs, fill targets.
     */
    static Tensor uninitialized(Shape shape);

    /** Tensor filled with a constant. */
    static Tensor full(Shape shape, float value);

    /** Tensor with uniform values in [-1, 1) from @p rng. */
    static Tensor random(Shape shape, Rng &rng);

    /** Number of dimensions. */
    int rank() const { return static_cast<int>(shapeVec.size()); }

    /** Shape accessor. */
    const Shape &shape() const { return shapeVec; }

    /** Extent of dimension @p dim. */
    std::int64_t dim(int d) const;

    /** Total number of elements. */
    std::int64_t numel() const { return count; }

    /** Raw storage access. */
    float *data() { return storage.data(); }
    const float *data() const { return storage.data(); }

    /** Element access via multi-index. */
    float &at(const std::vector<std::int64_t> &index);
    float at(const std::vector<std::int64_t> &index) const;

    /**
     * Copy out a contiguous slab: along each dimension d take the
     * half-open range [starts[d], starts[d] + extents[d]).
     */
    Tensor slice(const std::vector<std::int64_t> &starts,
                 const std::vector<std::int64_t> &extents) const;

    /** Slice a single dimension, keeping the others whole. */
    Tensor narrow(int d, std::int64_t start, std::int64_t extent) const;

    /** Write @p src into this tensor at offset @p starts (inverse of
     * slice()). */
    void assignSlice(const std::vector<std::int64_t> &starts,
                     const Tensor &src);

    /** Accumulate @p src into this tensor at offset @p starts. */
    void accumulateSlice(const std::vector<std::int64_t> &starts,
                         const Tensor &src);

    /** Elementwise in-place accumulation; shapes must match. */
    void add(const Tensor &other);

    /** Multiply every element by @p s. */
    void scale(float s);

    /** Reset all elements to zero. */
    void zero();

    /** Reinterpret with a new shape of identical element count. */
    Tensor reshape(Shape new_shape) const;

    /**
     * Reorder axes: result axis i is this tensor's axis @p axes[i]
     * (a materialized transpose).
     */
    Tensor permute(const std::vector<int> &axes) const;

    /** Max absolute elementwise difference against @p other. */
    float maxAbsDiff(const Tensor &other) const;

    /** True if all elements differ by at most @p atol + rtol*|ref|. */
    bool allClose(const Tensor &other, float rtol = 1e-4f,
                  float atol = 1e-5f) const;

    /** Human-readable shape, e.g. "[2, 3, 4]". */
    std::string shapeString() const;

  private:
    struct Uninit
    {};
    Tensor(Shape shape, Uninit);

    std::int64_t flatIndex(const std::vector<std::int64_t> &index) const;

    Shape shapeVec;
    std::vector<std::int64_t> strides;
    std::int64_t count = 0;
    FloatBuffer storage;
};

} // namespace primepar

#endif // PRIMEPAR_TENSOR_TENSOR_HH
