#include "buffer_pool.hh"

#include <cstring>

#include "support/logging.hh"

namespace primepar {

BufferPool::~BufferPool()
{
    trim();
}

BufferPool &
BufferPool::global()
{
    // Deliberately leaked: Tensors with static storage duration may
    // release after any ordered destructor would have run.
    static BufferPool *pool = new BufferPool;
    return *pool;
}

float *
BufferPool::acquire(std::int64_t n)
{
    PRIMEPAR_ASSERT(n >= 0, "negative buffer size");
    if (n == 0)
        return nullptr;
    {
        std::lock_guard<std::mutex> lock(mu);
        ++st.acquires;
        const auto it = freeLists.find(n);
        if (it != freeLists.end() && !it->second.empty()) {
            float *p = it->second.back();
            it->second.pop_back();
            ++st.poolHits;
            st.bytesRetained -= n * static_cast<std::int64_t>(sizeof(float));
            return p;
        }
        ++st.freshAllocs;
        st.bytesAllocated += n * static_cast<std::int64_t>(sizeof(float));
    }
    return new float[n];
}

void
BufferPool::release(float *p, std::int64_t n)
{
    if (!p)
        return;
    {
        std::lock_guard<std::mutex> lock(mu);
        const std::int64_t bytes =
            n * static_cast<std::int64_t>(sizeof(float));
        if (st.bytesRetained + bytes <= maxRetainedBytes) {
            freeLists[n].push_back(p);
            st.bytesRetained += bytes;
            return;
        }
    }
    delete[] p;
}

BufferPoolStats
BufferPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return st;
}

void
BufferPool::resetStats()
{
    std::lock_guard<std::mutex> lock(mu);
    const std::int64_t retained = st.bytesRetained;
    st = BufferPoolStats{};
    st.bytesRetained = retained;
}

void
BufferPool::trim()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[size, list] : freeLists) {
        (void)size;
        for (float *p : list)
            delete[] p;
        list.clear();
    }
    freeLists.clear();
    st.bytesRetained = 0;
}

void
BufferPool::setMaxRetainedBytes(std::int64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu);
    maxRetainedBytes = bytes;
}

FloatBuffer::FloatBuffer(std::int64_t n_in, bool zeroed)
    : ptr(BufferPool::global().acquire(n_in)), n(n_in)
{
    if (zeroed && ptr)
        std::memset(ptr, 0, static_cast<std::size_t>(n) * sizeof(float));
}

FloatBuffer::FloatBuffer(const FloatBuffer &other)
    : ptr(BufferPool::global().acquire(other.n)), n(other.n)
{
    if (ptr)
        std::memcpy(ptr, other.ptr,
                    static_cast<std::size_t>(n) * sizeof(float));
}

FloatBuffer &
FloatBuffer::operator=(const FloatBuffer &other)
{
    if (this == &other)
        return *this;
    if (n != other.n) {
        BufferPool::global().release(ptr, n);
        ptr = BufferPool::global().acquire(other.n);
        n = other.n;
    }
    if (ptr)
        std::memcpy(ptr, other.ptr,
                    static_cast<std::size_t>(n) * sizeof(float));
    return *this;
}

FloatBuffer::FloatBuffer(FloatBuffer &&other) noexcept
    : ptr(other.ptr), n(other.n)
{
    other.ptr = nullptr;
    other.n = 0;
}

FloatBuffer &
FloatBuffer::operator=(FloatBuffer &&other) noexcept
{
    if (this == &other)
        return *this;
    BufferPool::global().release(ptr, n);
    ptr = other.ptr;
    n = other.n;
    other.ptr = nullptr;
    other.n = 0;
    return *this;
}

FloatBuffer::~FloatBuffer()
{
    BufferPool::global().release(ptr, n);
}

} // namespace primepar
