/**
 * @file
 * Reference kernels on dense tensors.
 *
 * These single-device kernels define the mathematical semantics that
 * every partitioned execution must reproduce exactly. They cover the
 * operator set of a transformer block: linear layers (forward /
 * backward / gradient), batched attention matmuls, softmax, layer
 * normalization and elementwise ops.
 */

#ifndef PRIMEPAR_TENSOR_OPS_HH
#define PRIMEPAR_TENSOR_OPS_HH

#include "tensor.hh"

namespace primepar {

/**
 * Linear forward: O[..., M, K] = I[..., M, N] x W[N, K].
 *
 * Leading dimensions of I are batch dimensions.
 */
Tensor linearForward(const Tensor &input, const Tensor &weight);

/** Linear backward: dI[..., M, N] = dO[..., M, K] x W[N, K]^T. */
Tensor linearBackward(const Tensor &d_output, const Tensor &weight);

/**
 * Linear gradient: dW[N, K] = sum over batch of I[..., M, N]^T x
 * dO[..., M, K] (batch and M are both summed over).
 */
Tensor linearGradient(const Tensor &input, const Tensor &d_output);

/**
 * Batched matrix multiply: treats the last two dimensions as the
 * matrix and all leading dimensions as (matching) batch dimensions.
 *
 * @param trans_a transpose the matrix part of @p a
 * @param trans_b transpose the matrix part of @p b
 */
Tensor batchedMatmul(const Tensor &a, const Tensor &b,
                     bool trans_a = false, bool trans_b = false);

/** Softmax over the last dimension. */
Tensor softmaxLastDim(const Tensor &input);

/**
 * Softmax backward over the last dimension.
 *
 * @param output forward softmax output
 * @param d_output upstream gradient
 */
Tensor softmaxBackward(const Tensor &output, const Tensor &d_output);

/** Result bundle of layer normalization forward. */
struct LayerNormResult
{
    Tensor output;
    Tensor mean;    ///< per-row mean (last dim reduced)
    Tensor inv_std; ///< per-row 1/sqrt(var + eps)
};

/** Layer normalization over the last dimension with affine params. */
LayerNormResult layerNormForward(const Tensor &input, const Tensor &gamma,
                                 const Tensor &beta, float eps = 1e-5f);

/** Gradients of layer normalization. */
struct LayerNormGrads
{
    Tensor d_input;
    Tensor d_gamma;
    Tensor d_beta;
};

/** Layer normalization backward over the last dimension. */
LayerNormGrads layerNormBackward(const Tensor &input,
                                 const LayerNormResult &fwd,
                                 const Tensor &gamma,
                                 const Tensor &d_output);

/** GELU activation (tanh approximation). */
Tensor gelu(const Tensor &input);

/** GELU backward. */
Tensor geluBackward(const Tensor &input, const Tensor &d_output);

/** ReLU activation. */
Tensor relu(const Tensor &input);

/** ReLU backward. */
Tensor reluBackward(const Tensor &input, const Tensor &d_output);

/** Elementwise sum of two equal-shape tensors. */
Tensor addTensors(const Tensor &a, const Tensor &b);

} // namespace primepar

#endif // PRIMEPAR_TENSOR_OPS_HH
