/**
 * @file
 * Cache-blocked GEMM kernel shared by every contraction in the repo.
 *
 * One accumulate-into-C kernel covers linearForward / linearBackward /
 * linearGradient, batched attention matmuls and the executor's generic
 * contractions (via the einsum GEMM fast path). The blocking scheme
 * (DESIGN.md "Runtime performance") keeps B panels L1-resident and a
 * 4x8 register tile of C live across the contraction block.
 *
 * Determinism contract: for every output element C[i][j] the products
 * A(i,l)*B(l,j) are added in ascending l order, one term at a time —
 * exactly the order of the naive triple loop. Blocking, register
 * accumulation and SIMD over *distinct* output elements never
 * reassociate a single element's sum, so the result is bit-identical
 * to the naive reference kernels below at any block size.
 */

#ifndef PRIMEPAR_TENSOR_GEMM_HH
#define PRIMEPAR_TENSOR_GEMM_HH

#include "tensor.hh"

namespace primepar {

/**
 * C[m,n] += A x B with ascending-l accumulation order per element.
 *
 * All matrices are dense row-major:
 *  - A is m x k (or k x m when @p trans_a; A(i,l) = a[l*m + i]),
 *  - B is k x n (or n x k when @p trans_b; B(l,j) = b[j*k + l]),
 *  - C is m x n and is accumulated into (not zeroed here).
 *
 * @p c must not alias @p a or @p b. A transposed B is repacked into a
 * pooled workspace once per call, so the inner kernel always streams
 * contiguous B rows.
 */
void gemmAccumulate(const float *a, const float *b, float *c,
                    std::int64_t m, std::int64_t n, std::int64_t k,
                    bool trans_a, bool trans_b);

/**
 * Naive reference kernels (seed-fidelity triple loops, compiled at
 * default optimization). They define the bit pattern the blocked
 * kernels must reproduce exactly, serve as the baseline that
 * bench_micro's speedup figures are measured against, and — unlike
 * the seed loops — propagate NaN/Inf from zero-valued operands
 * (no `v == 0` shortcut; 0 * NaN must stay NaN).
 */
namespace naive {

Tensor linearForward(const Tensor &input, const Tensor &weight);
Tensor linearBackward(const Tensor &d_output, const Tensor &weight);
Tensor linearGradient(const Tensor &input, const Tensor &d_output);
Tensor batchedMatmul(const Tensor &a, const Tensor &b,
                     bool trans_a = false, bool trans_b = false);

/** Seed odometer implementation of contractProduct (same signature,
 *  same term order) for einsum fast-path equivalence tests. */
void contract(const Tensor &a, const std::vector<int> &a_dims,
              const Tensor &b, const std::vector<int> &b_dims,
              Tensor &out, const std::vector<int> &out_dims);

} // namespace naive

} // namespace primepar

#endif // PRIMEPAR_TENSOR_GEMM_HH
