#include "tensor.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "support/logging.hh"

namespace primepar {

namespace {

std::int64_t
shapeCount(const Shape &shape)
{
    std::int64_t n = 1;
    for (std::int64_t e : shape) {
        PRIMEPAR_ASSERT(e >= 0, "negative tensor extent");
        n *= e;
    }
    return n;
}

std::vector<std::int64_t>
shapeStrides(const Shape &shape)
{
    std::vector<std::int64_t> strides(shape.size(), 1);
    for (int d = static_cast<int>(shape.size()) - 2; d >= 0; --d)
        strides[d] = strides[d + 1] * shape[d + 1];
    return strides;
}

/**
 * Longest contiguous run copyable in one memcpy from a slice: the
 * innermost extent times every trailing dimension the slice covers
 * completely. Returns the first dimension NOT folded into the run
 * (-1 when the whole tensor is one run).
 */
int
sliceRunDim(const Shape &shape, const std::vector<std::int64_t> &starts,
            const std::vector<std::int64_t> &extents)
{
    int d = static_cast<int>(shape.size()) - 1;
    while (d >= 0 && starts[d] == 0 && extents[d] == shape[d])
        --d;
    return d;
}

} // namespace

Tensor::Tensor(Shape shape)
    : shapeVec(std::move(shape)), strides(shapeStrides(shapeVec)),
      count(shapeCount(shapeVec)), storage(count, /*zeroed=*/true)
{}

Tensor::Tensor(Shape shape, Uninit)
    : shapeVec(std::move(shape)), strides(shapeStrides(shapeVec)),
      count(shapeCount(shapeVec)), storage(count, /*zeroed=*/false)
{}

Tensor
Tensor::uninitialized(Shape shape)
{
    return Tensor(std::move(shape), Uninit{});
}

Tensor
Tensor::full(Shape shape, float value)
{
    Tensor t = uninitialized(std::move(shape));
    std::fill(t.storage.data(), t.storage.data() + t.count, value);
    return t;
}

Tensor
Tensor::random(Shape shape, Rng &rng)
{
    Tensor t = uninitialized(std::move(shape));
    float *p = t.storage.data();
    for (std::int64_t i = 0; i < t.count; ++i)
        p[i] = rng.uniform();
    return t;
}

std::int64_t
Tensor::dim(int d) const
{
    PRIMEPAR_ASSERT(d >= 0 && d < rank(), "dim index ", d, " out of range");
    return shapeVec[d];
}

std::int64_t
Tensor::flatIndex(const std::vector<std::int64_t> &index) const
{
    PRIMEPAR_ASSERT(index.size() == shapeVec.size(),
                    "index rank mismatch");
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < index.size(); ++d) {
        PRIMEPAR_ASSERT(index[d] >= 0 && index[d] < shapeVec[d],
                        "index out of range in dim ", d);
        flat += index[d] * strides[d];
    }
    return flat;
}

float &
Tensor::at(const std::vector<std::int64_t> &index)
{
    return storage.data()[flatIndex(index)];
}

float
Tensor::at(const std::vector<std::int64_t> &index) const
{
    return storage.data()[flatIndex(index)];
}

Tensor
Tensor::slice(const std::vector<std::int64_t> &starts,
              const std::vector<std::int64_t> &extents) const
{
    PRIMEPAR_ASSERT(starts.size() == shapeVec.size() &&
                        extents.size() == shapeVec.size(),
                    "slice rank mismatch");
    for (std::size_t d = 0; d < starts.size(); ++d) {
        PRIMEPAR_ASSERT(starts[d] >= 0 && extents[d] >= 0 &&
                            starts[d] + extents[d] <= shapeVec[d],
                        "slice out of range in dim ", d, ": start ",
                        starts[d], " extent ", extents[d], " of ",
                        shapeVec[d]);
    }

    Tensor out = uninitialized(Shape(extents.begin(), extents.end()));
    if (out.count == 0)
        return out;

    // Copy the largest contiguous runs possible: every trailing
    // dimension the slice covers completely folds into one memcpy.
    const int r = rank();
    const int run_dim = sliceRunDim(shapeVec, starts, extents);
    if (run_dim < 0) {
        std::memcpy(out.storage.data(), storage.data(),
                    static_cast<std::size_t>(count) * sizeof(float));
        return out;
    }
    const std::int64_t run =
        extents[run_dim] * (run_dim + 1 < r ? strides[run_dim] : 1);

    std::vector<std::int64_t> idx(run_dim, 0);
    std::int64_t base = starts[run_dim] * strides[run_dim];
    for (int d = 0; d < run_dim; ++d)
        base += starts[d] * strides[d];
    std::int64_t src = base;
    std::int64_t out_pos = 0;
    while (true) {
        std::memcpy(out.storage.data() + out_pos, storage.data() + src,
                    static_cast<std::size_t>(run) * sizeof(float));
        out_pos += run;

        int d = run_dim - 1;
        for (; d >= 0; --d) {
            ++idx[d];
            src += strides[d];
            if (idx[d] < extents[d])
                break;
            src -= extents[d] * strides[d];
            idx[d] = 0;
        }
        if (d < 0)
            break;
    }
    return out;
}

Tensor
Tensor::narrow(int d, std::int64_t start, std::int64_t extent) const
{
    std::vector<std::int64_t> starts(rank(), 0);
    std::vector<std::int64_t> extents(shapeVec.begin(), shapeVec.end());
    starts[d] = start;
    extents[d] = extent;
    return slice(starts, extents);
}

void
Tensor::assignSlice(const std::vector<std::int64_t> &starts,
                    const Tensor &src)
{
    PRIMEPAR_ASSERT(starts.size() == shapeVec.size() &&
                        src.rank() == rank(),
                    "assignSlice rank mismatch");
    if (src.count == 0)
        return;
    const int r = rank();
    for (int d = 0; d < r; ++d) {
        PRIMEPAR_ASSERT(starts[d] >= 0 &&
                            starts[d] + src.shapeVec[d] <= shapeVec[d],
                        "assignSlice out of range in dim ", d);
    }

    const std::vector<std::int64_t> extents(src.shapeVec.begin(),
                                            src.shapeVec.end());
    const int run_dim = sliceRunDim(shapeVec, starts, extents);
    if (run_dim < 0) {
        std::memcpy(storage.data(), src.storage.data(),
                    static_cast<std::size_t>(count) * sizeof(float));
        return;
    }
    const std::int64_t run =
        extents[run_dim] * (run_dim + 1 < r ? strides[run_dim] : 1);

    std::vector<std::int64_t> idx(run_dim, 0);
    std::int64_t dst = starts[run_dim] * strides[run_dim];
    for (int d = 0; d < run_dim; ++d)
        dst += starts[d] * strides[d];
    std::int64_t src_pos = 0;
    while (true) {
        std::memcpy(storage.data() + dst, src.storage.data() + src_pos,
                    static_cast<std::size_t>(run) * sizeof(float));
        src_pos += run;

        int d = run_dim - 1;
        for (; d >= 0; --d) {
            ++idx[d];
            dst += strides[d];
            if (idx[d] < extents[d])
                break;
            dst -= extents[d] * strides[d];
            idx[d] = 0;
        }
        if (d < 0)
            break;
    }
}

void
Tensor::accumulateSlice(const std::vector<std::int64_t> &starts,
                        const Tensor &src)
{
    PRIMEPAR_ASSERT(starts.size() == shapeVec.size() &&
                        src.rank() == rank(),
                    "accumulateSlice rank mismatch");
    if (src.count == 0)
        return;
    const int r = rank();
    const std::int64_t inner = src.shapeVec[r - 1];
    std::vector<std::int64_t> idx(r, 0);
    std::int64_t src_pos = 0;
    float *dst_base = storage.data();
    const float *src_base = src.storage.data();
    while (true) {
        std::int64_t dst = 0;
        for (int d = 0; d < r; ++d)
            dst += (starts[d] + idx[d]) * strides[d];
        for (std::int64_t i = 0; i < inner; ++i)
            dst_base[dst + i] += src_base[src_pos + i];
        src_pos += inner;

        int d = r - 2;
        for (; d >= 0; --d) {
            if (++idx[d] < src.shapeVec[d])
                break;
            idx[d] = 0;
        }
        if (d < 0)
            break;
    }
}

void
Tensor::add(const Tensor &other)
{
    PRIMEPAR_ASSERT(other.shapeVec == shapeVec,
                    "add shape mismatch: ", shapeString(), " vs ",
                    other.shapeString());
    float *p = storage.data();
    const float *q = other.storage.data();
    for (std::int64_t i = 0; i < count; ++i)
        p[i] += q[i];
}

void
Tensor::scale(float s)
{
    float *p = storage.data();
    for (std::int64_t i = 0; i < count; ++i)
        p[i] *= s;
}

void
Tensor::zero()
{
    if (count > 0)
        std::memset(storage.data(), 0,
                    static_cast<std::size_t>(count) * sizeof(float));
}

Tensor
Tensor::reshape(Shape new_shape) const
{
    PRIMEPAR_ASSERT(shapeCount(new_shape) == count,
                    "reshape element count mismatch");
    Tensor out = uninitialized(std::move(new_shape));
    if (count > 0)
        std::memcpy(out.storage.data(), storage.data(),
                    static_cast<std::size_t>(count) * sizeof(float));
    return out;
}

Tensor
Tensor::permute(const std::vector<int> &axes) const
{
    PRIMEPAR_ASSERT(static_cast<int>(axes.size()) == rank(),
                    "permute arity mismatch");
    Shape new_shape(axes.size());
    for (std::size_t i = 0; i < axes.size(); ++i) {
        PRIMEPAR_ASSERT(axes[i] >= 0 && axes[i] < rank(),
                        "permute axis out of range");
        new_shape[i] = shapeVec[axes[i]];
    }
    Tensor out = uninitialized(new_shape);
    if (count == 0)
        return out;

    // Gather with the innermost output axis hoisted: when that axis
    // is also the innermost source axis the row copies contiguously.
    const int r = rank();
    const std::int64_t inner_n = new_shape[r - 1];
    const std::int64_t inner_s = strides[axes[r - 1]];
    const float *src = storage.data();
    float *dst = out.storage.data();

    std::vector<std::int64_t> idx(axes.size(), 0);
    std::int64_t out_pos = 0;
    while (true) {
        std::int64_t base = 0;
        for (int i = 0; i < r - 1; ++i)
            base += idx[i] * strides[axes[i]];
        if (inner_s == 1) {
            std::memcpy(dst + out_pos, src + base,
                        static_cast<std::size_t>(inner_n) *
                            sizeof(float));
        } else {
            for (std::int64_t t = 0; t < inner_n; ++t)
                dst[out_pos + t] = src[base + t * inner_s];
        }
        out_pos += inner_n;

        int d = r - 2;
        for (; d >= 0; --d) {
            if (++idx[d] < new_shape[d])
                break;
            idx[d] = 0;
        }
        if (d < 0)
            break;
    }
    return out;
}

float
Tensor::maxAbsDiff(const Tensor &other) const
{
    PRIMEPAR_ASSERT(other.shapeVec == shapeVec,
                    "maxAbsDiff shape mismatch");
    float m = 0.0f;
    const float *p = storage.data();
    const float *q = other.storage.data();
    for (std::int64_t i = 0; i < count; ++i)
        m = std::max(m, std::abs(p[i] - q[i]));
    return m;
}

bool
Tensor::allClose(const Tensor &other, float rtol, float atol) const
{
    if (other.shapeVec != shapeVec)
        return false;
    const float *p = storage.data();
    const float *q = other.storage.data();
    for (std::int64_t i = 0; i < count; ++i) {
        const float tol = atol + rtol * std::abs(q[i]);
        if (std::abs(p[i] - q[i]) > tol)
            return false;
    }
    return true;
}

std::string
Tensor::shapeString() const
{
    std::ostringstream os;
    os << '[';
    for (std::size_t d = 0; d < shapeVec.size(); ++d) {
        if (d)
            os << ", ";
        os << shapeVec[d];
    }
    os << ']';
    return os.str();
}

} // namespace primepar
