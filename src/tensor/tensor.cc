#include "tensor.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.hh"

namespace primepar {

namespace {

std::int64_t
shapeCount(const Shape &shape)
{
    std::int64_t n = 1;
    for (std::int64_t e : shape) {
        PRIMEPAR_ASSERT(e >= 0, "negative tensor extent");
        n *= e;
    }
    return n;
}

std::vector<std::int64_t>
shapeStrides(const Shape &shape)
{
    std::vector<std::int64_t> strides(shape.size(), 1);
    for (int d = static_cast<int>(shape.size()) - 2; d >= 0; --d)
        strides[d] = strides[d + 1] * shape[d + 1];
    return strides;
}

} // namespace

Tensor::Tensor(Shape shape)
    : shapeVec(std::move(shape)), strides(shapeStrides(shapeVec)),
      count(shapeCount(shapeVec)), storage(count, 0.0f)
{}

Tensor
Tensor::full(Shape shape, float value)
{
    Tensor t(std::move(shape));
    std::fill(t.storage.begin(), t.storage.end(), value);
    return t;
}

Tensor
Tensor::random(Shape shape, Rng &rng)
{
    Tensor t(std::move(shape));
    for (float &v : t.storage)
        v = rng.uniform();
    return t;
}

std::int64_t
Tensor::dim(int d) const
{
    PRIMEPAR_ASSERT(d >= 0 && d < rank(), "dim index ", d, " out of range");
    return shapeVec[d];
}

std::int64_t
Tensor::flatIndex(const std::vector<std::int64_t> &index) const
{
    PRIMEPAR_ASSERT(index.size() == shapeVec.size(),
                    "index rank mismatch");
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < index.size(); ++d) {
        PRIMEPAR_ASSERT(index[d] >= 0 && index[d] < shapeVec[d],
                        "index out of range in dim ", d);
        flat += index[d] * strides[d];
    }
    return flat;
}

float &
Tensor::at(const std::vector<std::int64_t> &index)
{
    return storage[flatIndex(index)];
}

float
Tensor::at(const std::vector<std::int64_t> &index) const
{
    return storage[flatIndex(index)];
}

Tensor
Tensor::slice(const std::vector<std::int64_t> &starts,
              const std::vector<std::int64_t> &extents) const
{
    PRIMEPAR_ASSERT(starts.size() == shapeVec.size() &&
                        extents.size() == shapeVec.size(),
                    "slice rank mismatch");
    for (std::size_t d = 0; d < starts.size(); ++d) {
        PRIMEPAR_ASSERT(starts[d] >= 0 && extents[d] >= 0 &&
                            starts[d] + extents[d] <= shapeVec[d],
                        "slice out of range in dim ", d, ": start ",
                        starts[d], " extent ", extents[d], " of ",
                        shapeVec[d]);
    }

    Tensor out(Shape(extents.begin(), extents.end()));
    if (out.count == 0)
        return out;

    // Iterate over all rows of the innermost dimension and memcpy them.
    const int r = rank();
    const std::int64_t inner = extents[r - 1];
    std::vector<std::int64_t> idx(r, 0);
    std::int64_t out_pos = 0;
    while (true) {
        std::int64_t src = 0;
        for (int d = 0; d < r; ++d)
            src += (starts[d] + idx[d]) * strides[d];
        std::copy_n(storage.data() + src, inner,
                    out.storage.data() + out_pos);
        out_pos += inner;

        int d = r - 2;
        for (; d >= 0; --d) {
            if (++idx[d] < extents[d])
                break;
            idx[d] = 0;
        }
        if (d < 0)
            break;
    }
    return out;
}

Tensor
Tensor::narrow(int d, std::int64_t start, std::int64_t extent) const
{
    std::vector<std::int64_t> starts(rank(), 0);
    std::vector<std::int64_t> extents(shapeVec.begin(), shapeVec.end());
    starts[d] = start;
    extents[d] = extent;
    return slice(starts, extents);
}

void
Tensor::assignSlice(const std::vector<std::int64_t> &starts,
                    const Tensor &src)
{
    PRIMEPAR_ASSERT(starts.size() == shapeVec.size() &&
                        src.rank() == rank(),
                    "assignSlice rank mismatch");
    if (src.count == 0)
        return;
    const int r = rank();
    const std::int64_t inner = src.shapeVec[r - 1];
    std::vector<std::int64_t> idx(r, 0);
    std::int64_t src_pos = 0;
    while (true) {
        std::int64_t dst = 0;
        for (int d = 0; d < r; ++d) {
            PRIMEPAR_ASSERT(starts[d] + idx[d] < shapeVec[d],
                            "assignSlice out of range in dim ", d);
            dst += (starts[d] + idx[d]) * strides[d];
        }
        std::copy_n(src.storage.data() + src_pos, inner,
                    storage.data() + dst);
        src_pos += inner;

        int d = r - 2;
        for (; d >= 0; --d) {
            if (++idx[d] < src.shapeVec[d])
                break;
            idx[d] = 0;
        }
        if (d < 0)
            break;
    }
}

void
Tensor::accumulateSlice(const std::vector<std::int64_t> &starts,
                        const Tensor &src)
{
    PRIMEPAR_ASSERT(starts.size() == shapeVec.size() &&
                        src.rank() == rank(),
                    "accumulateSlice rank mismatch");
    if (src.count == 0)
        return;
    const int r = rank();
    const std::int64_t inner = src.shapeVec[r - 1];
    std::vector<std::int64_t> idx(r, 0);
    std::int64_t src_pos = 0;
    while (true) {
        std::int64_t dst = 0;
        for (int d = 0; d < r; ++d)
            dst += (starts[d] + idx[d]) * strides[d];
        for (std::int64_t i = 0; i < inner; ++i)
            storage[dst + i] += src.storage[src_pos + i];
        src_pos += inner;

        int d = r - 2;
        for (; d >= 0; --d) {
            if (++idx[d] < src.shapeVec[d])
                break;
            idx[d] = 0;
        }
        if (d < 0)
            break;
    }
}

void
Tensor::add(const Tensor &other)
{
    PRIMEPAR_ASSERT(other.shapeVec == shapeVec,
                    "add shape mismatch: ", shapeString(), " vs ",
                    other.shapeString());
    for (std::int64_t i = 0; i < count; ++i)
        storage[i] += other.storage[i];
}

void
Tensor::scale(float s)
{
    for (float &v : storage)
        v *= s;
}

void
Tensor::zero()
{
    std::fill(storage.begin(), storage.end(), 0.0f);
}

Tensor
Tensor::reshape(Shape new_shape) const
{
    PRIMEPAR_ASSERT(shapeCount(new_shape) == count,
                    "reshape element count mismatch");
    Tensor out(std::move(new_shape));
    out.storage = storage;
    return out;
}

Tensor
Tensor::permute(const std::vector<int> &axes) const
{
    PRIMEPAR_ASSERT(static_cast<int>(axes.size()) == rank(),
                    "permute arity mismatch");
    Shape new_shape(axes.size());
    for (std::size_t i = 0; i < axes.size(); ++i) {
        PRIMEPAR_ASSERT(axes[i] >= 0 && axes[i] < rank(),
                        "permute axis out of range");
        new_shape[i] = shapeVec[axes[i]];
    }
    Tensor out(new_shape);
    if (count == 0)
        return out;

    std::vector<std::int64_t> idx(axes.size(), 0);
    std::int64_t out_pos = 0;
    while (true) {
        std::int64_t src = 0;
        for (std::size_t i = 0; i < axes.size(); ++i)
            src += idx[i] * strides[axes[i]];
        out.storage[out_pos++] = storage[src];

        int d = rank() - 1;
        for (; d >= 0; --d) {
            if (++idx[d] < new_shape[d])
                break;
            idx[d] = 0;
        }
        if (d < 0)
            break;
    }
    return out;
}

float
Tensor::maxAbsDiff(const Tensor &other) const
{
    PRIMEPAR_ASSERT(other.shapeVec == shapeVec,
                    "maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (std::int64_t i = 0; i < count; ++i)
        m = std::max(m, std::abs(storage[i] - other.storage[i]));
    return m;
}

bool
Tensor::allClose(const Tensor &other, float rtol, float atol) const
{
    if (other.shapeVec != shapeVec)
        return false;
    for (std::int64_t i = 0; i < count; ++i) {
        const float tol = atol + rtol * std::abs(other.storage[i]);
        if (std::abs(storage[i] - other.storage[i]) > tol)
            return false;
    }
    return true;
}

std::string
Tensor::shapeString() const
{
    std::ostringstream os;
    os << '[';
    for (std::size_t d = 0; d < shapeVec.size(); ++d) {
        if (d)
            os << ", ";
        os << shapeVec[d];
    }
    os << ']';
    return os.str();
}

} // namespace primepar
