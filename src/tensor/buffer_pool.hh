/**
 * @file
 * Buffer-reuse allocator for tensor storage and kernel workspaces.
 *
 * The SPMD executor materializes many short-lived tensors per temporal
 * step — operand slices, compute partials, shift snapshots — whose
 * sizes recur identically step after step and iteration after
 * iteration. Allocating them with new[] each time costs page faults
 * and zeroing bandwidth that dwarfs the actual copies on small shards.
 * BufferPool keeps released float arrays in exact-size free lists so
 * the steady state performs no heap allocation at all.
 *
 * Thread safety: the pool is mutex-guarded; acquire()/release() may be
 * called concurrently from the runtime's per-device workers. Recycled
 * memory is handed out *uninitialized* — FloatBuffer zeroes on request
 * (Tensor construction) and kernels that fully overwrite skip it.
 */

#ifndef PRIMEPAR_TENSOR_BUFFER_POOL_HH
#define PRIMEPAR_TENSOR_BUFFER_POOL_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace primepar {

/** Counters describing pool effectiveness (see bench_micro --json). */
struct BufferPoolStats
{
    std::int64_t acquires = 0;      ///< total acquire() calls
    std::int64_t poolHits = 0;      ///< acquires served from a free list
    std::int64_t freshAllocs = 0;   ///< acquires that hit the heap
    std::int64_t bytesAllocated = 0; ///< cumulative fresh-alloc bytes
    std::int64_t bytesRetained = 0;  ///< bytes currently cached
};

/**
 * Exact-size-bucketed free lists of float arrays.
 *
 * Exact-size keying is deliberate: the runtime's temporaries recur
 * with identical shapes every temporal step, so buckets converge after
 * the first step and never fragment.
 */
class BufferPool
{
  public:
    BufferPool() = default;
    ~BufferPool();

    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;

    /** The process-wide pool used by Tensor storage and kernels. */
    static BufferPool &global();

    /**
     * Hand out an array of @p n floats with *unspecified* contents
     * (recycled when a same-size buffer is free, else heap-allocated).
     * n == 0 returns nullptr.
     */
    float *acquire(std::int64_t n);

    /** Return an array obtained from acquire(); @p n must match. */
    void release(float *p, std::int64_t n);

    /** Snapshot of the counters. */
    BufferPoolStats stats() const;

    /** Reset the counters (not the cached buffers). */
    void resetStats();

    /** Free every cached buffer (outstanding ones are unaffected). */
    void trim();

    /** Cap on cached bytes; buffers released beyond it are freed
     *  immediately. Default 512 MiB. */
    void setMaxRetainedBytes(std::int64_t bytes);

  private:
    mutable std::mutex mu;
    std::unordered_map<std::int64_t, std::vector<float *>> freeLists;
    BufferPoolStats st;
    std::int64_t maxRetainedBytes = std::int64_t(512) << 20;
};

/**
 * Value-semantic float array backed by BufferPool::global().
 *
 * This is Tensor's storage: construction acquires from the pool (with
 * optional zeroing), destruction releases back to it, copies memcpy —
 * reusing the destination's existing allocation when sizes match.
 */
class FloatBuffer
{
  public:
    FloatBuffer() = default;
    explicit FloatBuffer(std::int64_t n, bool zeroed = true);
    FloatBuffer(const FloatBuffer &other);
    FloatBuffer &operator=(const FloatBuffer &other);
    FloatBuffer(FloatBuffer &&other) noexcept;
    FloatBuffer &operator=(FloatBuffer &&other) noexcept;
    ~FloatBuffer();

    float *data() { return ptr; }
    const float *data() const { return ptr; }
    std::int64_t size() const { return n; }

  private:
    float *ptr = nullptr;
    std::int64_t n = 0;
};

/** RAII pooled scratch array for kernel-internal workspaces (packing
 *  buffers, transposes). Contents start unspecified. */
class Workspace
{
  public:
    explicit Workspace(std::int64_t n_in)
        : ptr(BufferPool::global().acquire(n_in)), n(n_in)
    {}
    ~Workspace() { BufferPool::global().release(ptr, n); }

    Workspace(const Workspace &) = delete;
    Workspace &operator=(const Workspace &) = delete;

    float *data() { return ptr; }

  private:
    float *ptr;
    std::int64_t n;
};

} // namespace primepar

#endif // PRIMEPAR_TENSOR_BUFFER_POOL_HH
