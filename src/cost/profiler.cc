#include "profiler.hh"

#include <vector>

#include "sim/engine.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace primepar {

namespace {

/** Payload sweep (bytes): 64 KiB .. 256 MiB, doubling. */
std::vector<double>
payloadSweep()
{
    std::vector<double> sizes;
    for (double b = 64.0 * 1024; b <= 256.0 * 1024 * 1024; b *= 2.0)
        sizes.push_back(b);
    return sizes;
}

/** A representative indicator for a pattern key under @p topo. */
GroupIndicator
representativeIndicator(const ClusterTopology &topo,
                        const GroupPatternKey &key)
{
    const int node_bits = log2Exact(topo.numNodes());
    GroupIndicator ind;
    for (int i = 0; i < key.interNodeBits; ++i)
        ind.push_back(i);
    for (int i = 0; i < key.intraNodeBits; ++i)
        ind.push_back(node_bits + i);
    return ind;
}

} // namespace

ProfiledModels
profileModels(const ClusterTopology &topo)
{
    ProfiledModels models;
    const auto sizes = payloadSweep();
    const int node_bits = log2Exact(topo.numNodes());
    const int gpu_bits = log2Exact(topo.gpusPerNode());

    // All-reduce per pattern key: every feasible (inter, intra) split.
    for (int inter = 0; inter <= node_bits; ++inter) {
        for (int intra = 0; intra <= gpu_bits; ++intra) {
            if (inter + intra == 0)
                continue;
            const GroupPatternKey key{inter, intra};
            const GroupIndicator ind =
                representativeIndicator(topo, key);
            const auto groups = enumerateGroups(topo.numBits(), ind);
            std::vector<double> ys;
            for (double bytes : sizes) {
                double worst = 0.0;
                for (const auto &g : groups) {
                    worst = std::max(
                        worst, ringAllReduceDuration(topo, g, bytes));
                }
                ys.push_back(worst);
            }
            models.allReduce[key] = fitLinear(sizes, ys);
        }
    }

    // Ring hop: intra-node neighbours and cross-node neighbours.
    {
        std::vector<double> intra_ys, inter_ys;
        for (double bytes : sizes) {
            intra_ys.push_back(transferWireTime(topo, 0, 1 % topo.numDevices(), bytes));
            const std::int64_t other =
                topo.numNodes() > 1 ? topo.gpusPerNode() : 1;
            inter_ys.push_back(
                transferWireTime(topo, 0, other % topo.numDevices(),
                                 bytes));
        }
        models.ringHop[0] = fitLinear(sizes, intra_ys);
        models.ringHop[1] = fitLinear(sizes, inter_ys);
    }

    // Kernels: matmul-class vs flops (square-ish GEMMs), memory-bound
    // vs bytes.
    {
        std::vector<double> flops, lat;
        for (double n = 256; n <= 8192; n *= 2) {
            const double f = 2.0 * n * n * n;
            const double bytes = 3.0 * n * n * 2.0;
            flops.push_back(f);
            lat.push_back(
                computeDuration(topo.deviceSpec(), f, bytes));
        }
        models.matmulKernel = fitLinear(flops, lat);
    }
    {
        std::vector<double> ys;
        for (double bytes : sizes)
            ys.push_back(
                computeDuration(topo.deviceSpec(), 0.0, bytes));
        models.memoryKernel = fitLinear(sizes, ys);
    }

    // Redistribution: even scatter of the total traffic, profiled
    // separately for intra-node peers and cross-node peers (the
    // latency per byte differs by more than an order of magnitude).
    for (int cls = 0; cls < 2; ++cls) {
        std::vector<double> ys;
        for (double bytes : sizes) {
            SimContext ctx(topo);
            const std::int64_t n = topo.numDevices();
            const double per_pair = bytes / static_cast<double>(n);
            for (std::int64_t d = 0; d < n; ++d) {
                std::int64_t peer;
                if (cls == 0) {
                    // Neighbour within the node.
                    peer = (d / topo.gpusPerNode()) *
                               topo.gpusPerNode() +
                           (d + 1) % topo.gpusPerNode();
                } else {
                    peer = (d + n / 2) % n;
                }
                if (peer == d)
                    continue;
                ctx.ready[peer] = std::max(
                    ctx.ready[peer],
                    ctx.transfer(d, peer, per_pair, 0.0));
            }
            ys.push_back(ctx.makespan());
        }
        models.redistribution[cls] = fitLinear(sizes, ys);
    }
    if (topo.numNodes() == 1)
        models.redistribution[1] = models.redistribution[0];
    if (topo.gpusPerNode() == 1)
        models.redistribution[0] = models.redistribution[1];
    return models;
}

ProfileQuality
profileQuality(const ClusterTopology &topo, const ProfiledModels &models)
{
    ProfileQuality q;
    const auto sizes = payloadSweep();

    for (const auto &[key, model] : models.allReduce) {
        const GroupIndicator ind = representativeIndicator(topo, key);
        const auto groups = enumerateGroups(topo.numBits(), ind);
        std::vector<double> ys;
        for (double bytes : sizes) {
            double worst = 0.0;
            for (const auto &g : groups)
                worst = std::max(worst,
                                 ringAllReduceDuration(topo, g, bytes));
            ys.push_back(worst);
        }
        q.worstAllReduceR2 =
            std::min(q.worstAllReduceR2, rSquared(model, sizes, ys));
    }

    {
        std::vector<double> ys;
        for (double bytes : sizes)
            ys.push_back(transferWireTime(topo, 0, 1, bytes));
        q.ringHopR2 = rSquared(models.ringHop[0], sizes, ys);
    }
    {
        std::vector<double> flops, lat;
        for (double n = 256; n <= 8192; n *= 2) {
            const double f = 2.0 * n * n * n;
            flops.push_back(f);
            lat.push_back(computeDuration(topo.deviceSpec(), f,
                                          3.0 * n * n * 2.0));
        }
        q.matmulR2 = rSquared(models.matmulKernel, flops, lat);
    }
    return q;
}

} // namespace primepar
