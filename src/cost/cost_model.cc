#include "cost_model.hh"

#include <algorithm>
#include <bit>
#include <map>
#include <sstream>

#include "support/logging.hh"

namespace primepar {

namespace {

void
appendDouble(std::ostringstream &os, double v)
{
    os << std::bit_cast<std::uint64_t>(v) << ';';
}

void
appendModel(std::ostringstream &os, const LinearModel &m)
{
    appendDouble(os, m.intercept);
    appendDouble(os, m.slope);
}

std::string
costFingerprint(const ClusterTopology &topo, const ProfiledModels &models,
                double alpha, const MemoryModelParams &mem)
{
    std::ostringstream os;
    os << static_cast<int>(topo.kind()) << ';' << topo.numNodes() << ';'
       << topo.gpusPerNode() << ';';
    appendDouble(os, topo.intraBandwidth());
    appendDouble(os, topo.interBandwidth());
    appendDouble(os, topo.linkLatency(0, 0));
    if (topo.numNodes() > 1)
        appendDouble(os, topo.linkLatency(0, topo.gpusPerNode()));
    appendDouble(os, topo.deviceSpec().flops_per_us);
    appendDouble(os, topo.deviceSpec().mem_bytes_per_us);
    appendDouble(os, topo.deviceSpec().kernel_overhead_us);
    for (const auto &[key, model] : models.allReduce) {
        os << key.interNodeBits << ',' << key.intraNodeBits << ':';
        appendModel(os, model);
    }
    appendModel(os, models.ringHop[0]);
    appendModel(os, models.ringHop[1]);
    appendModel(os, models.matmulKernel);
    appendModel(os, models.memoryKernel);
    appendModel(os, models.redistribution[0]);
    appendModel(os, models.redistribution[1]);
    appendDouble(os, alpha);
    appendDouble(os, mem.paramStateFactor);
    os << (mem.doubleBuffers ? 1 : 0) << ';';
    return os.str();
}

} // namespace

CostModel::CostModel(const ClusterTopology &topo_in,
                     ProfiledModels models_in, double alpha_memory)
    : topo(topo_in), models(std::move(models_in)), alpha(alpha_memory),
      fp(costFingerprint(topo, models, alpha, memParams))
{}

double
CostModel::ringSetLatency(const OpSpec &op, const ShiftSet &set) const
{
    if (set.transfers.empty())
        return 0.0;
    const double bytes =
        static_cast<double>(set.elementsPerTransfer) * op.bytesPerElement;
    bool cross_node = false;
    for (const Transfer &tr : set.transfers) {
        if (!topo.sameNode(tr.sender, tr.receiver)) {
            cross_node = true;
            break;
        }
    }
    return models.ringHop[cross_node ? 1 : 0](bytes);
}

IntraCost
CostModel::intraCost(const OpPlan &plan) const
{
    const OpSpec &op = *plan.op;
    const DsiTable &dsi = plan.dsi;
    IntraCost cost;

    for (std::size_t p = 0; p < op.passes.size(); ++p) {
        const PassSpec &pass = op.passes[p];
        const PassComm &comm = plan.passComms[p];
        const int steps = dsi.steps();

        // Per-step sub-operator kernel latency.
        const double flops =
            op.passFlops(pass) /
            (static_cast<double>(dsi.numDevices()) * steps);
        double bytes = 0.0;
        for (const TensorRef &ref : pass.operands)
            bytes += static_cast<double>(
                         dsi.tensorSliceNumel(op, ref.tensor)) *
                     op.bytesPerElement;
        bytes += static_cast<double>(
                     dsi.tensorSliceNumel(op, pass.output.tensor)) *
                 op.bytesPerElement;
        const bool math_bound =
            op.kind == "linear" || op.kind == "matmul";
        const double kernel = math_bound
                                  ? models.matmulKernel(flops)
                                  : models.memoryKernel(bytes);

        // Eq. 7: sum over steps of max(compute, ring).
        for (int t = 0; t < steps; ++t) {
            double ring = 0.0;
            for (const ShiftSet &set : comm.stepShifts[t])
                ring += ringSetLatency(op, set);
            for (const ShiftSet &set : comm.accShifts[t])
                ring += ringSetLatency(op, set);
            cost.latencyUs += std::max(kernel, ring);
            cost.computeUs += kernel;
            cost.ringUs += ring;
        }

        // Grouped all-reduce through the fitted pattern model.
        if (comm.allReduce.has_value()) {
            const AllReduceSpec &spec = *comm.allReduce;
            const double payload =
                static_cast<double>(spec.elementsPerDevice) *
                op.bytesPerElement;
            const GroupPatternKey key =
                groupPatternKey(topo, spec.indicator);
            const auto it = models.allReduce.find(key);
            PRIMEPAR_ASSERT(it != models.allReduce.end(),
                            "no profiled all-reduce model for pattern");
            const double dur = it->second(payload);
            cost.latencyUs += dur;
            cost.allReduceUs += dur;
        }
    }

    // Layernorm expectation exchange when the normalized dimension is
    // split spatially (paper Sec. 3.2, "potential all-reduce of
    // expectations").
    if (op.normalizedDim >= 0 &&
        dsi.sliceCount(op.normalizedDim) > 1) {
        const TensorRef out{op.outputTensor, false};
        GroupIndicator bits;
        // Bits that slice the normalized dim: probe via footprint of a
        // pseudo-tensor — reuse the full footprint of the output and
        // intersect with the dim's variation.
        const int n = dsi.numBits();
        for (int b = 0; b < n; ++b) {
            const std::int64_t mask = std::int64_t{1} << (n - 1 - b);
            bool affects = false;
            for (std::int64_t dev = 0;
                 dev < dsi.numDevices() && !affects; ++dev) {
                if (dsi.value(Phase::Forward, dev, 0,
                              op.normalizedDim) !=
                    dsi.value(Phase::Forward, dev ^ mask, 0,
                              op.normalizedDim))
                    affects = true;
            }
            if (affects)
                bits.push_back(b);
        }
        if (!bits.empty()) {
            const std::int64_t rows =
                dsi.tensorSliceNumel(op, out.tensor) /
                dsi.sliceExtent(op.normalizedDim);
            const double payload = static_cast<double>(rows) * 2 * 4;
            const GroupPatternKey key = groupPatternKey(topo, bits);
            const auto it = models.allReduce.find(key);
            if (it != models.allReduce.end()) {
                const double dur = it->second(payload);
                cost.latencyUs += dur;
                cost.allReduceUs += dur;
            }
        }
    }

    cost.memoryBytes =
        opMemory(op, plan.seq, dsi, plan.passComms, memParams).total();
    cost.weighted =
        cost.latencyUs + alpha * cost.memoryBytes / (1024.0 * 1024.0);
    return cost;
}

std::int64_t
CostModel::trafficElements(const TensorLayout &have,
                           const TensorLayout &need)
{
    PRIMEPAR_ASSERT(have.numDevices() == need.numDevices(),
                    "layout device mismatch");
    std::int64_t traffic = 0;
    for (std::int64_t dev = 0; dev < need.numDevices(); ++dev) {
        const auto &nb = need.deviceBox[dev];
        const auto &hb = have.deviceBox[dev];
        std::int64_t v = 1, overlap = 1;
        for (std::size_t d = 0; d < nb.size(); ++d) {
            v *= nb[d].length();
            overlap *= nb[d].intersect(hb[d]);
        }
        traffic += v - overlap;
    }
    return traffic;
}

CostModel::PreparedSource
CostModel::prepareSource(const TensorLayout &have)
{
    PreparedSource src;
    std::map<std::vector<SliceRange>, int> index;
    for (std::int64_t dev = 0; dev < have.numDevices(); ++dev) {
        auto [it, inserted] = index.emplace(
            have.deviceBox[dev], static_cast<int>(src.boxes.size()));
        if (inserted) {
            src.boxes.push_back(have.deviceBox[dev]);
            src.holders.emplace_back();
        }
        src.holders[it->second].push_back(dev);
    }
    src.holdsBox.assign(have.numDevices(),
                        std::vector<bool>(src.boxes.size(), false));
    for (std::size_t b = 0; b < src.holders.size(); ++b)
        for (std::int64_t dev : src.holders[b])
            src.holdsBox[dev][b] = true;
    return src;
}

CostModel::TrafficSplit
CostModel::trafficSplit(const PreparedSource &have,
                        const TensorLayout &need) const
{
    TrafficSplit split;
    for (std::int64_t dst = 0; dst < need.numDevices(); ++dst) {
        const auto &need_box = need.deviceBox[dst];
        for (std::size_t b = 0; b < have.boxes.size(); ++b) {
            const auto &src_box = have.boxes[b];
            std::int64_t volume = 1;
            for (std::size_t d = 0; d < need_box.size(); ++d) {
                volume *= need_box[d].intersect(src_box[d]);
                if (volume == 0)
                    break;
            }
            if (volume == 0 || have.holdsBox[dst][b])
                continue;
            // Prefer a same-node replica when one exists.
            bool intra = false;
            for (std::int64_t h : have.holders[b]) {
                if (topo.sameNode(h, dst)) {
                    intra = true;
                    break;
                }
            }
            if (intra)
                split.intraNode += volume;
            else
                split.interNode += volume;
        }
    }
    return split;
}

CostModel::TrafficSplit
CostModel::trafficSplit(const TensorLayout &have,
                        const TensorLayout &need) const
{
    return trafficSplit(prepareSource(have), need);
}

CostModel::PreparedSourceGrid
CostModel::prepareSourceGrid(const TensorLayout &have) const
{
    PreparedSourceGrid grid;
    grid.flat = prepareSource(have);
    const int num_boxes = static_cast<int>(grid.flat.boxes.size());
    grid.dims = num_boxes > 0
                    ? static_cast<int>(grid.flat.boxes[0].size())
                    : 0;

    grid.boxOfDevice.assign(
        static_cast<std::size_t>(have.numDevices()), -1);
    for (std::size_t b = 0; b < grid.flat.holders.size(); ++b) {
        for (const std::int64_t dev : grid.flat.holders[b])
            grid.boxOfDevice[dev] = static_cast<std::int32_t>(b);
    }

    grid.maskWords = (topo.numNodes() + 63) / 64;
    grid.nodeMask.assign(
        static_cast<std::size_t>(num_boxes) * grid.maskWords, 0);
    for (int b = 0; b < num_boxes; ++b) {
        for (const std::int64_t h : grid.flat.holders[b]) {
            const int node = topo.nodeOf(h);
            grid.nodeMask[static_cast<std::size_t>(b) * grid.maskWords +
                          node / 64] |= std::uint64_t{1} << (node % 64);
        }
    }

    // Per-dim realized intervals; the grid index is only usable when
    // they are pairwise disjoint (they always are for layoutOf()
    // layouts, where each dim carries one slice partition).
    grid.gridValid = true;
    grid.intervals.resize(grid.dims);
    grid.tuple.assign(static_cast<std::size_t>(num_boxes) * grid.dims,
                      -1);
    for (int d = 0; d < grid.dims && grid.gridValid; ++d) {
        std::map<SliceRange, std::int32_t> ids;
        for (int b = 0; b < num_boxes; ++b)
            ids.emplace(grid.flat.boxes[b][d], 0);
        auto &ivs = grid.intervals[d];
        ivs.reserve(ids.size());
        std::int32_t id = 0;
        for (auto &[range, assigned] : ids) {
            if (!ivs.empty() && ivs.back().end > range.start) {
                grid.gridValid = false;
                break;
            }
            assigned = id++;
            ivs.push_back(range);
        }
        if (!grid.gridValid)
            break;
        for (int b = 0; b < num_boxes; ++b) {
            grid.tuple[static_cast<std::size_t>(b) * grid.dims + d] =
                ids[grid.flat.boxes[b][d]];
        }
    }
    if (grid.gridValid) {
        grid.order.resize(num_boxes);
        for (int b = 0; b < num_boxes; ++b)
            grid.order[b] = b;
        const std::int32_t *tuple = grid.tuple.data();
        const int dims = grid.dims;
        std::sort(grid.order.begin(), grid.order.end(),
                  [tuple, dims](std::int32_t a, std::int32_t b) {
                      for (int d = 0; d < dims; ++d) {
                          const std::int32_t ta = tuple[a * dims + d];
                          const std::int32_t tb = tuple[b * dims + d];
                          if (ta != tb)
                              return ta < tb;
                      }
                      return a < b;
                  });
    }
    return grid;
}

CostModel::PreparedNeed
CostModel::prepareNeed(const TensorLayout &need) const
{
    PreparedNeed out;
    out.layout = need;
    std::map<std::vector<SliceRange>, std::int32_t> box_ids;
    std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t>
        group_ids;
    for (std::int64_t dev = 0; dev < need.numDevices(); ++dev) {
        const auto [bit, binserted] = box_ids.emplace(
            need.deviceBox[dev],
            static_cast<std::int32_t>(out.boxes.size()));
        if (binserted)
            out.boxes.push_back(need.deviceBox[dev]);
        const std::int32_t node = topo.nodeOf(dev);
        const auto [git, ginserted] = group_ids.emplace(
            std::make_pair(bit->second, node),
            static_cast<std::int32_t>(out.groups.size()));
        if (ginserted) {
            PreparedNeed::Group g;
            g.box = bit->second;
            g.node = node;
            out.groups.push_back(std::move(g));
        }
        out.groups[git->second].devices.push_back(
            static_cast<std::int32_t>(dev));
    }
    return out;
}

CostModel::TrafficSplit
CostModel::trafficSplitFast(const PreparedSourceGrid &have,
                            const PreparedNeed &need) const
{
    if (!have.gridValid)
        return trafficSplit(have.flat, need.layout);

    TrafficSplit split;
    const int dims = have.dims;
    std::vector<std::int32_t> lo(dims), hi(dims);
    std::vector<std::vector<std::int64_t>> ovl(dims);

    for (const PreparedNeed::Group &g : need.groups) {
        const auto &need_box = need.boxes[g.box];

        // Per-dim overlapping interval-id ranges and overlap lengths.
        bool empty = false;
        for (int d = 0; d < dims; ++d) {
            const auto &ivs = have.intervals[d];
            const SliceRange &nr = need_box[d];
            // First interval with end > nr.start.
            const auto first = std::upper_bound(
                ivs.begin(), ivs.end(), nr.start,
                [](std::int64_t s, const SliceRange &r) {
                    return s < r.end;
                });
            // First interval with start >= nr.end.
            const auto last = std::lower_bound(
                first, ivs.end(), nr.end,
                [](const SliceRange &r, std::int64_t e) {
                    return r.start < e;
                });
            lo[d] = static_cast<std::int32_t>(first - ivs.begin());
            hi[d] = static_cast<std::int32_t>(last - ivs.begin());
            if (lo[d] >= hi[d]) {
                empty = true;
                break;
            }
            ovl[d].assign(hi[d] - lo[d], 0);
            for (std::int32_t id = lo[d]; id < hi[d]; ++id)
                ovl[d][id - lo[d]] = nr.intersect(ivs[id]);
        }

        std::int64_t group_intra = 0, group_inter = 0;
        if (!empty) {
            // Walk the lex-sorted boxes, narrowing to the tuple
            // rectangle one dim at a time.
            const std::int32_t *tuple = have.tuple.data();
            const auto descend = [&](auto &&self, int level,
                                     std::int32_t b0, std::int32_t b1,
                                     std::int64_t vol) -> void {
                if (level == dims) {
                    for (std::int32_t i = b0; i < b1; ++i) {
                        const std::int32_t box = have.order[i];
                        const std::uint64_t word =
                            have.nodeMask[static_cast<std::size_t>(
                                              box) *
                                              have.maskWords +
                                          g.node / 64];
                        if (word & (std::uint64_t{1} << (g.node % 64)))
                            group_intra += vol;
                        else
                            group_inter += vol;
                    }
                    return;
                }
                for (std::int32_t id = lo[level]; id < hi[level];
                     ++id) {
                    const auto cmp = [&](std::int32_t box,
                                         std::int32_t v) {
                        return tuple[box * dims + level] < v;
                    };
                    const auto s0 = std::lower_bound(
                        have.order.begin() + b0,
                        have.order.begin() + b1, id, cmp);
                    const auto s1 = std::lower_bound(
                        s0, have.order.begin() + b1, id + 1, cmp);
                    if (s0 != s1) {
                        self(self, level + 1,
                             static_cast<std::int32_t>(
                                 s0 - have.order.begin()),
                             static_cast<std::int32_t>(
                                 s1 - have.order.begin()),
                             vol * ovl[level][id - lo[level]]);
                    }
                }
            };
            descend(descend, 0, 0,
                    static_cast<std::int32_t>(have.order.size()), 1);
        }

        // Each member device's own box was classified intra above
        // (the device itself is a same-node holder); the slow path
        // skips it entirely, so subtract its overlap.
        for (const std::int32_t dev : g.devices) {
            const std::int32_t own = have.boxOfDevice[dev];
            std::int64_t own_vol = own >= 0 ? 1 : 0;
            if (own >= 0) {
                const auto &own_box = have.flat.boxes[own];
                for (int d = 0; d < dims && own_vol != 0; ++d)
                    own_vol *= need_box[d].intersect(own_box[d]);
            }
            split.intraNode += group_intra - own_vol;
            split.interNode += group_inter;
        }
    }
    return split;
}

double
CostModel::computeFloorUs(const OpSpec &op) const
{
    const double devices =
        static_cast<double>(std::int64_t{1} << topo.numBits());
    // Temporal steps divide the per-step kernel size; with 2k of n
    // bits spent on a PSquare the step count is at most 2^(n/2).
    const double max_steps = static_cast<double>(
        std::int64_t{1} << (topo.numBits() / 2));
    double floor_us = 0.0;
    for (const PassSpec &pass : op.passes) {
        const double flops = op.passFlops(pass) / devices;
        double bytes = 0.0;
        for (const TensorRef &ref : pass.operands)
            bytes += op.tensorNumel(ref.tensor) * op.bytesPerElement;
        bytes += op.tensorNumel(pass.output.tensor) * op.bytesPerElement;
        bytes /= devices;
        const bool math_bound =
            op.kind == "linear" || op.kind == "matmul";
        const LinearModel &m =
            math_bound ? models.matmulKernel : models.memoryKernel;
        const double x = math_bound ? flops : bytes;
        // sum_t kernel(x / steps) = steps * intercept + slope * x is
        // monotone in steps for nonneg intercepts; guard against a
        // fitted negative intercept by evaluating both extremes.
        const double at_one = m(x);
        const double at_max = max_steps * m.intercept + m.slope * x;
        floor_us += std::max(0.0, std::min(at_one, at_max));
    }
    return floor_us;
}

double
CostModel::redistLatencyUs(double intra_bytes, double inter_bytes) const
{
    double lat = 0.0;
    if (intra_bytes > 0.0)
        lat += models.redistribution[0](intra_bytes);
    if (inter_bytes > 0.0)
        lat += models.redistribution[1](inter_bytes);
    return lat;
}

} // namespace primepar
