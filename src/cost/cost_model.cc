#include "cost_model.hh"

#include <algorithm>
#include <bit>
#include <map>
#include <sstream>

#include "support/logging.hh"

namespace primepar {

namespace {

void
appendDouble(std::ostringstream &os, double v)
{
    os << std::bit_cast<std::uint64_t>(v) << ';';
}

void
appendModel(std::ostringstream &os, const LinearModel &m)
{
    appendDouble(os, m.intercept);
    appendDouble(os, m.slope);
}

std::string
costFingerprint(const ClusterTopology &topo, const ProfiledModels &models,
                double alpha, const MemoryModelParams &mem)
{
    std::ostringstream os;
    os << static_cast<int>(topo.kind()) << ';' << topo.numNodes() << ';'
       << topo.gpusPerNode() << ';';
    appendDouble(os, topo.intraBandwidth());
    appendDouble(os, topo.interBandwidth());
    appendDouble(os, topo.linkLatency(0, 0));
    if (topo.numNodes() > 1)
        appendDouble(os, topo.linkLatency(0, topo.gpusPerNode()));
    appendDouble(os, topo.deviceSpec().flops_per_us);
    appendDouble(os, topo.deviceSpec().mem_bytes_per_us);
    appendDouble(os, topo.deviceSpec().kernel_overhead_us);
    for (const auto &[key, model] : models.allReduce) {
        os << key.interNodeBits << ',' << key.intraNodeBits << ':';
        appendModel(os, model);
    }
    appendModel(os, models.ringHop[0]);
    appendModel(os, models.ringHop[1]);
    appendModel(os, models.matmulKernel);
    appendModel(os, models.memoryKernel);
    appendModel(os, models.redistribution[0]);
    appendModel(os, models.redistribution[1]);
    appendDouble(os, alpha);
    appendDouble(os, mem.paramStateFactor);
    os << (mem.doubleBuffers ? 1 : 0) << ';';
    return os.str();
}

} // namespace

CostModel::CostModel(const ClusterTopology &topo_in,
                     ProfiledModels models_in, double alpha_memory)
    : topo(topo_in), models(std::move(models_in)), alpha(alpha_memory),
      fp(costFingerprint(topo, models, alpha, memParams))
{}

double
CostModel::ringSetLatency(const OpSpec &op, const ShiftSet &set) const
{
    if (set.transfers.empty())
        return 0.0;
    const double bytes =
        static_cast<double>(set.elementsPerTransfer) * op.bytesPerElement;
    bool cross_node = false;
    for (const Transfer &tr : set.transfers) {
        if (!topo.sameNode(tr.sender, tr.receiver)) {
            cross_node = true;
            break;
        }
    }
    return models.ringHop[cross_node ? 1 : 0](bytes);
}

IntraCost
CostModel::intraCost(const OpPlan &plan) const
{
    const OpSpec &op = *plan.op;
    const DsiTable &dsi = plan.dsi;
    IntraCost cost;

    for (std::size_t p = 0; p < op.passes.size(); ++p) {
        const PassSpec &pass = op.passes[p];
        const PassComm &comm = plan.passComms[p];
        const int steps = dsi.steps();

        // Per-step sub-operator kernel latency.
        const double flops =
            op.passFlops(pass) /
            (static_cast<double>(dsi.numDevices()) * steps);
        double bytes = 0.0;
        for (const TensorRef &ref : pass.operands)
            bytes += static_cast<double>(
                         dsi.tensorSliceNumel(op, ref.tensor)) *
                     op.bytesPerElement;
        bytes += static_cast<double>(
                     dsi.tensorSliceNumel(op, pass.output.tensor)) *
                 op.bytesPerElement;
        const bool math_bound =
            op.kind == "linear" || op.kind == "matmul";
        const double kernel = math_bound
                                  ? models.matmulKernel(flops)
                                  : models.memoryKernel(bytes);

        // Eq. 7: sum over steps of max(compute, ring).
        for (int t = 0; t < steps; ++t) {
            double ring = 0.0;
            for (const ShiftSet &set : comm.stepShifts[t])
                ring += ringSetLatency(op, set);
            for (const ShiftSet &set : comm.accShifts[t])
                ring += ringSetLatency(op, set);
            cost.latencyUs += std::max(kernel, ring);
            cost.computeUs += kernel;
            cost.ringUs += ring;
        }

        // Grouped all-reduce through the fitted pattern model.
        if (comm.allReduce.has_value()) {
            const AllReduceSpec &spec = *comm.allReduce;
            const double payload =
                static_cast<double>(spec.elementsPerDevice) *
                op.bytesPerElement;
            const GroupPatternKey key =
                groupPatternKey(topo, spec.indicator);
            const auto it = models.allReduce.find(key);
            PRIMEPAR_ASSERT(it != models.allReduce.end(),
                            "no profiled all-reduce model for pattern");
            const double dur = it->second(payload);
            cost.latencyUs += dur;
            cost.allReduceUs += dur;
        }
    }

    // Layernorm expectation exchange when the normalized dimension is
    // split spatially (paper Sec. 3.2, "potential all-reduce of
    // expectations").
    if (op.normalizedDim >= 0 &&
        dsi.sliceCount(op.normalizedDim) > 1) {
        const TensorRef out{op.outputTensor, false};
        GroupIndicator bits;
        // Bits that slice the normalized dim: probe via footprint of a
        // pseudo-tensor — reuse the full footprint of the output and
        // intersect with the dim's variation.
        const int n = dsi.numBits();
        for (int b = 0; b < n; ++b) {
            const std::int64_t mask = std::int64_t{1} << (n - 1 - b);
            bool affects = false;
            for (std::int64_t dev = 0;
                 dev < dsi.numDevices() && !affects; ++dev) {
                if (dsi.value(Phase::Forward, dev, 0,
                              op.normalizedDim) !=
                    dsi.value(Phase::Forward, dev ^ mask, 0,
                              op.normalizedDim))
                    affects = true;
            }
            if (affects)
                bits.push_back(b);
        }
        if (!bits.empty()) {
            const std::int64_t rows =
                dsi.tensorSliceNumel(op, out.tensor) /
                dsi.sliceExtent(op.normalizedDim);
            const double payload = static_cast<double>(rows) * 2 * 4;
            const GroupPatternKey key = groupPatternKey(topo, bits);
            const auto it = models.allReduce.find(key);
            if (it != models.allReduce.end()) {
                const double dur = it->second(payload);
                cost.latencyUs += dur;
                cost.allReduceUs += dur;
            }
        }
    }

    cost.memoryBytes =
        opMemory(op, plan.seq, dsi, plan.passComms, memParams).total();
    cost.weighted =
        cost.latencyUs + alpha * cost.memoryBytes / (1024.0 * 1024.0);
    return cost;
}

std::int64_t
CostModel::trafficElements(const TensorLayout &have,
                           const TensorLayout &need)
{
    PRIMEPAR_ASSERT(have.numDevices() == need.numDevices(),
                    "layout device mismatch");
    std::int64_t traffic = 0;
    for (std::int64_t dev = 0; dev < need.numDevices(); ++dev) {
        const auto &nb = need.deviceBox[dev];
        const auto &hb = have.deviceBox[dev];
        std::int64_t v = 1, overlap = 1;
        for (std::size_t d = 0; d < nb.size(); ++d) {
            v *= nb[d].length();
            overlap *= nb[d].intersect(hb[d]);
        }
        traffic += v - overlap;
    }
    return traffic;
}

CostModel::PreparedSource
CostModel::prepareSource(const TensorLayout &have)
{
    PreparedSource src;
    std::map<std::vector<SliceRange>, int> index;
    for (std::int64_t dev = 0; dev < have.numDevices(); ++dev) {
        auto [it, inserted] = index.emplace(
            have.deviceBox[dev], static_cast<int>(src.boxes.size()));
        if (inserted) {
            src.boxes.push_back(have.deviceBox[dev]);
            src.holders.emplace_back();
        }
        src.holders[it->second].push_back(dev);
    }
    src.holdsBox.assign(have.numDevices(),
                        std::vector<bool>(src.boxes.size(), false));
    for (std::size_t b = 0; b < src.holders.size(); ++b)
        for (std::int64_t dev : src.holders[b])
            src.holdsBox[dev][b] = true;
    return src;
}

CostModel::TrafficSplit
CostModel::trafficSplit(const PreparedSource &have,
                        const TensorLayout &need) const
{
    TrafficSplit split;
    for (std::int64_t dst = 0; dst < need.numDevices(); ++dst) {
        const auto &need_box = need.deviceBox[dst];
        for (std::size_t b = 0; b < have.boxes.size(); ++b) {
            const auto &src_box = have.boxes[b];
            std::int64_t volume = 1;
            for (std::size_t d = 0; d < need_box.size(); ++d) {
                volume *= need_box[d].intersect(src_box[d]);
                if (volume == 0)
                    break;
            }
            if (volume == 0 || have.holdsBox[dst][b])
                continue;
            // Prefer a same-node replica when one exists.
            bool intra = false;
            for (std::int64_t h : have.holders[b]) {
                if (topo.sameNode(h, dst)) {
                    intra = true;
                    break;
                }
            }
            if (intra)
                split.intraNode += volume;
            else
                split.interNode += volume;
        }
    }
    return split;
}

CostModel::TrafficSplit
CostModel::trafficSplit(const TensorLayout &have,
                        const TensorLayout &need) const
{
    return trafficSplit(prepareSource(have), need);
}

double
CostModel::redistLatencyUs(double intra_bytes, double inter_bytes) const
{
    double lat = 0.0;
    if (intra_bytes > 0.0)
        lat += models.redistribution[0](intra_bytes);
    if (inter_bytes > 0.0)
        lat += models.redistribution[1](inter_bytes);
    return lat;
}

} // namespace primepar
