/**
 * @file
 * Latency profiling and linear-model fitting (paper Sec. 4.1).
 *
 * The paper obtains the coefficients of its linear latency models by
 * profiling the real system and applying linear regression, one model
 * per communication *group pattern* (which is what keeps profiling
 * scalable: patterns are classified by how many group-indicator bits
 * cross nodes, not by which devices participate). We reproduce the
 * same methodology against the cluster simulator: sweep payload sizes,
 * measure, fit.
 */

#ifndef PRIMEPAR_COST_PROFILER_HH
#define PRIMEPAR_COST_PROFILER_HH

#include <map>
#include <string>

#include "support/regression.hh"
#include "topology/cluster.hh"
#include "topology/groups.hh"

namespace primepar {

/** Fitted latency models consumed by the cost model. */
struct ProfiledModels
{
    /** All-reduce latency vs payload bytes, per group pattern key. */
    std::map<GroupPatternKey, LinearModel> allReduce;
    /** Single ring-hop transfer latency vs bytes: [0] intra-node,
     *  [1] cross-node. */
    LinearModel ringHop[2];
    /** Matmul-class kernel latency vs flops. */
    LinearModel matmulKernel;
    /** Memory-bound kernel latency vs bytes touched. */
    LinearModel memoryKernel;
    /** Inter-operator redistribution latency vs total traffic bytes,
     *  split by link class: [0] intra-node traffic, [1] cross-node
     *  traffic. */
    LinearModel redistribution[2];
};

/**
 * Profile the simulator for @p topo and fit all models. Sample sizes
 * sweep from 64 KiB to 256 MiB payloads (and matching kernel sizes).
 */
ProfiledModels profileModels(const ClusterTopology &topo);

/** R^2 diagnostics of the fits (for the ablation bench). */
struct ProfileQuality
{
    double worstAllReduceR2 = 1.0;
    double ringHopR2 = 1.0;
    double matmulR2 = 1.0;
};

/** Re-run the sweeps and report fit quality. */
ProfileQuality profileQuality(const ClusterTopology &topo,
                              const ProfiledModels &models);

} // namespace primepar

#endif // PRIMEPAR_COST_PROFILER_HH
