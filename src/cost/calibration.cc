#include "calibration.hh"

namespace primepar {

namespace {

constexpr const char *kSchema = "primepar-profiled-models-v1";

JsonValue
modelToJson(const LinearModel &m)
{
    JsonValue v = JsonValue::object();
    v.set("intercept", JsonValue(m.intercept));
    v.set("slope", JsonValue(m.slope));
    return v;
}

LinearModel
modelFromJson(const JsonValue &v, const char *what)
{
    if (!v.isObject())
        throw CalibrationError(std::string("model '") + what +
                               "' is not an object");
    LinearModel m;
    m.intercept = v.at("intercept").asNumber();
    m.slope = v.at("slope").asNumber();
    return m;
}

} // namespace

JsonValue
profiledModelsToJson(const ProfiledModels &models,
                     const CalibrationInfo *info)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue(kSchema));
    if (info && !info->source.empty())
        doc.set("source", JsonValue(info->source));

    JsonValue all_reduce = JsonValue::array();
    for (const auto &[key, model] : models.allReduce) {
        JsonValue entry = modelToJson(model);
        entry.set("inter_node_bits", JsonValue(key.interNodeBits));
        entry.set("intra_node_bits", JsonValue(key.intraNodeBits));
        all_reduce.push(std::move(entry));
    }
    doc.set("all_reduce", std::move(all_reduce));

    JsonValue ring = JsonValue::object();
    ring.set("intra", modelToJson(models.ringHop[0]));
    ring.set("inter", modelToJson(models.ringHop[1]));
    doc.set("ring_hop", std::move(ring));

    doc.set("matmul_kernel", modelToJson(models.matmulKernel));
    doc.set("memory_kernel", modelToJson(models.memoryKernel));

    JsonValue redist = JsonValue::object();
    redist.set("intra", modelToJson(models.redistribution[0]));
    redist.set("inter", modelToJson(models.redistribution[1]));
    doc.set("redistribution", std::move(redist));

    if (info && !info->r2.empty()) {
        JsonValue r2 = JsonValue::object();
        for (const auto &[name, value] : info->r2)
            r2.set(name, JsonValue(value));
        doc.set("r2", std::move(r2));
    }
    return doc;
}

ProfiledModels
profiledModelsFromJson(const JsonValue &doc, CalibrationInfo *info)
{
    if (!doc.isObject())
        throw CalibrationError("model document is not a JSON object");
    const JsonValue *schema = doc.find("schema");
    if (!schema)
        throw CalibrationError("model document has no 'schema' member");
    if (schema->asString() != kSchema)
        throw CalibrationError("unsupported model schema '" +
                               schema->asString() + "' (expected " +
                               kSchema + ")");

    ProfiledModels models;
    const JsonValue &all_reduce = doc.at("all_reduce");
    if (!all_reduce.isArray())
        throw CalibrationError("'all_reduce' is not an array");
    for (const JsonValue &entry : all_reduce.items()) {
        GroupPatternKey key;
        key.interNodeBits =
            static_cast<int>(entry.at("inter_node_bits").asNumber());
        key.intraNodeBits =
            static_cast<int>(entry.at("intra_node_bits").asNumber());
        models.allReduce[key] = modelFromJson(entry, "all_reduce");
    }
    const JsonValue &ring = doc.at("ring_hop");
    models.ringHop[0] = modelFromJson(ring.at("intra"), "ring_hop.intra");
    models.ringHop[1] = modelFromJson(ring.at("inter"), "ring_hop.inter");
    models.matmulKernel =
        modelFromJson(doc.at("matmul_kernel"), "matmul_kernel");
    models.memoryKernel =
        modelFromJson(doc.at("memory_kernel"), "memory_kernel");
    const JsonValue &redist = doc.at("redistribution");
    models.redistribution[0] =
        modelFromJson(redist.at("intra"), "redistribution.intra");
    models.redistribution[1] =
        modelFromJson(redist.at("inter"), "redistribution.inter");

    if (info) {
        *info = CalibrationInfo{};
        if (const JsonValue *source = doc.find("source"))
            info->source = source->asString();
        if (const JsonValue *r2 = doc.find("r2")) {
            for (const auto &[name, value] : r2->members())
                info->r2[name] = value.asNumber();
        }
    }
    return models;
}

void
saveProfiledModels(const std::string &path, const ProfiledModels &models,
                   const CalibrationInfo *info)
{
    saveJsonFile(path, profiledModelsToJson(models, info));
}

ProfiledModels
loadProfiledModels(const std::string &path, CalibrationInfo *info)
{
    return profiledModelsFromJson(loadJsonFile(path), info);
}

} // namespace primepar
