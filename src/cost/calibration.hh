/**
 * @file
 * Versioned persistence of calibrated latency models.
 *
 * The paper fits its cost-model coefficients by profiling the real
 * system once per cluster and reusing the fits (Sec. 4.1). This module
 * is the reuse half: ProfiledModels — whether fitted against the
 * simulator (cost/profiler.hh) or against the real SPMD runtime
 * (tools/primepar_calibrate) — round-trip through a
 * `primepar-profiled-models-v1` JSON document, so a calibration run
 * writes a file and every later planning run loads it instead of
 * re-profiling.
 *
 * The document carries optional provenance (a free-form `source`
 * string) and per-model R^2 fit diagnostics, which the loader hands
 * back but the cost model ignores.
 */

#ifndef PRIMEPAR_COST_CALIBRATION_HH
#define PRIMEPAR_COST_CALIBRATION_HH

#include <map>
#include <stdexcept>
#include <string>

#include "profiler.hh"
#include "support/json.hh"

namespace primepar {

/** Unknown schema, missing member, or malformed model document. */
class CalibrationError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Optional metadata carried alongside the fitted coefficients. */
struct CalibrationInfo
{
    /** Where the fits came from, e.g. "simulator" or "spmd-runtime". */
    std::string source;
    /** R^2 per model, keyed by the JSON member names ("matmul_kernel",
     *  "ring_hop.inter", "all_reduce.i0.n1", ...). */
    std::map<std::string, double> r2;
};

/** Render models (+ optional metadata) as the v1 document. */
JsonValue profiledModelsToJson(const ProfiledModels &models,
                               const CalibrationInfo *info = nullptr);

/** Parse a v1 document; throws CalibrationError on schema mismatch.
 *  @p info, when non-null, receives the carried metadata. */
ProfiledModels profiledModelsFromJson(const JsonValue &doc,
                                      CalibrationInfo *info = nullptr);

/** profiledModelsToJson + write to @p path. */
void saveProfiledModels(const std::string &path,
                        const ProfiledModels &models,
                        const CalibrationInfo *info = nullptr);

/** Load + parse @p path; throws CalibrationError / JsonError. */
ProfiledModels loadProfiledModels(const std::string &path,
                                  CalibrationInfo *info = nullptr);

} // namespace primepar

#endif // PRIMEPAR_COST_CALIBRATION_HH
