/**
 * @file
 * The PrimePar cost model (paper Sec. 4).
 *
 * Intra-operator cost (Eq. 7):
 *
 *   intraC(n, P) = sum_t max(compute(n,P,t), ring(n,P,t))
 *                  + allreduce(n, P) + alpha * memory(n, P)
 *
 * using latency models fitted by profiling (ProfiledModels).
 * Inter-operator cost (Eqs. 8-9): the redistribution traffic between
 * boundary distributions, run through a fitted linear model. The
 * optimizer minimizes the whole-model sum (Eq. 10).
 */

#ifndef PRIMEPAR_COST_COST_MODEL_HH
#define PRIMEPAR_COST_COST_MODEL_HH

#include <string>

#include "comm/redistribution.hh"
#include "profiler.hh"
#include "sim/memory.hh"
#include "sim/op_sim.hh"

namespace primepar {

/** Cost-model evaluation of one (operator, sequence) pair. */
struct IntraCost
{
    double latencyUs = 0.0;   ///< sum_t max(compute, ring) + allreduce
    double computeUs = 0.0;
    double ringUs = 0.0;
    double allReduceUs = 0.0;
    double memoryBytes = 0.0;
    double weighted = 0.0;    ///< Eq. 7 with the alpha memory term
};

/** Analytic cost model backed by profiled linear latency models. */
class CostModel
{
  public:
    /**
     * @param topo cluster topology
     * @param models profiled latency models for that topology
     * @param alpha_memory Eq. 7 coefficient, in us per MiB of
     *        per-device peak memory
     */
    CostModel(const ClusterTopology &topo, ProfiledModels models,
              double alpha_memory = 0.0);

    /** Evaluate Eq. 7 for a prepared operator plan. */
    IntraCost intraCost(const OpPlan &plan) const;

    /** Total traffic elements of a redistribution (Eq. 9). */
    static std::int64_t trafficElements(const TensorLayout &have,
                                        const TensorLayout &need);

    /** Redistribution traffic split by link class, in elements. */
    struct TrafficSplit
    {
        std::int64_t intraNode = 0;
        std::int64_t interNode = 0;
    };

    /**
     * Deduplicated view of a source layout: distinct boxes and their
     * holder devices. Prepare once per source layout, then evaluate
     * trafficSplit() against many destination layouts cheaply.
     */
    struct PreparedSource
    {
        std::vector<std::vector<SliceRange>> boxes;
        std::vector<std::vector<std::int64_t>> holders;
        /** holder bitmask per device (for fast locality checks). */
        std::vector<std::vector<bool>> holdsBox; ///< [device][box]
    };

    /** Build the deduplicated source view. */
    static PreparedSource prepareSource(const TensorLayout &have);

    /** Plan-accurate traffic split of a redistribution. */
    TrafficSplit trafficSplit(const PreparedSource &have,
                              const TensorLayout &need) const;

    /** Convenience overload preparing the source on the fly. */
    TrafficSplit trafficSplit(const TensorLayout &have,
                              const TensorLayout &need) const;

    /**
     * Grid-indexed source view for the fast traffic path. Layouts
     * produced by layoutOf() are (partial) product grids: every box is
     * a product of per-dimension intervals drawn from one disjoint
     * interval set per dimension. Indexing the realized boxes by their
     * interval-id tuples turns the per-destination "intersect every
     * source box" scan of trafficSplit() into an orthogonal range
     * query over only the overlapping boxes. When the structure checks
     * fail (overlapping per-dim intervals), gridValid is false and
     * evaluation falls back to the exact slow path — the fast path is
     * an *exact* reformulation, never an approximation.
     */
    struct PreparedSourceGrid
    {
        PreparedSource flat; ///< always valid; slow-path fallback
        bool gridValid = false;
        int dims = 0;
        /** Per dim: sorted, pairwise-disjoint realized intervals. */
        std::vector<std::vector<SliceRange>> intervals;
        /** Per box: interval id per dim ([box * dims + d]). */
        std::vector<std::int32_t> tuple;
        /** Box indices sorted lexicographically by tuple. */
        std::vector<std::int32_t> order;
        /** Bitmask over nodes holding a replica ([box*maskWords+w]). */
        int maskWords = 0;
        std::vector<std::uint64_t> nodeMask;
        /** Each device's own box index. */
        std::vector<std::int32_t> boxOfDevice;
    };

    /** Build the grid view (uses the topology for node masks). */
    PreparedSourceGrid prepareSourceGrid(const TensorLayout &have) const;

    /**
     * Destination view for the fast traffic path: devices grouped by
     * (need box, node) — all members see identical remote traffic, so
     * the range query runs once per group.
     */
    struct PreparedNeed
    {
        TensorLayout layout; ///< kept for the slow-path fallback
        std::vector<std::vector<SliceRange>> boxes; ///< distinct
        struct Group
        {
            std::int32_t box = 0;
            std::int32_t node = 0;
            std::vector<std::int32_t> devices;
        };
        std::vector<Group> groups;
    };

    /** Build the destination view. */
    PreparedNeed prepareNeed(const TensorLayout &need) const;

    /** Exact fast traffic split; bit-identical to trafficSplit(). */
    TrafficSplit trafficSplitFast(const PreparedSourceGrid &have,
                                  const PreparedNeed &need) const;

    /**
     * Admissible lower bound on the weighted intra cost of *any*
     * partition sequence of @p op on this topology: the summed
     * per-pass kernel latency at maximal parallelism, with every
     * communication and memory term dropped. Used to certify the
     * reported cost gap of the planner's approximate beam mode.
     */
    double computeFloorUs(const OpSpec &op) const;

    /** Fitted redistribution latency for the given traffic. */
    double redistLatencyUs(double intra_bytes, double inter_bytes) const;

    const ClusterTopology &topology() const { return topo; }
    double alphaMemory() const { return alpha; }

    /**
     * Stable identity of every parameter feeding intra-cost
     * evaluation (topology shape and link parameters, fitted model
     * coefficients, alpha, memory-model knobs). Catalogs built under
     * equal fingerprints are interchangeable — the key property the
     * planner's CatalogCache relies on.
     */
    const std::string &fingerprint() const { return fp; }

  private:
    double ringSetLatency(const OpSpec &op, const ShiftSet &set) const;

    const ClusterTopology &topo;
    ProfiledModels models;
    double alpha;
    MemoryModelParams memParams;
    std::string fp;
};

} // namespace primepar

#endif // PRIMEPAR_COST_COST_MODEL_HH
