/**
 * @file
 * Shared dense-matrix and cached-result types of the segmented DP.
 *
 * The Bellman matrices of one solved segment (DpSegment) and the final
 * outcome of one optimization run (PlanCacheEntry) are plain data:
 * they depend only on the structural inputs serialized into their
 * cache keys, so CatalogCache can store them across optimizer
 * invocations (scale-aware memoization — replanning after failures and
 * repeated bench sweep cells hit warm entries instead of re-running
 * the Bellman passes).
 */

#ifndef PRIMEPAR_OPTIMIZER_DP_CORE_HH
#define PRIMEPAR_OPTIMIZER_DP_CORE_HH

#include <cstdint>
#include <vector>

#include "partition/partition_step.hh"

namespace primepar {

/** Dense row-major double matrix. */
struct Mat
{
    int rows = 0, cols = 0;
    std::vector<double> v;

    Mat() = default;
    Mat(int r, int c, double fill = 0.0)
        : rows(r), cols(c), v(static_cast<std::size_t>(r) * c, fill)
    {}

    double &
    at(int r, int c)
    {
        return v[static_cast<std::size_t>(r) * cols + c];
    }
    double
    at(int r, int c) const
    {
        return v[static_cast<std::size_t>(r) * cols + c];
    }
};

/** Row-major int32 argmin matrix. */
struct ArgMat
{
    int rows = 0, cols = 0;
    std::vector<std::int32_t> v;

    ArgMat() = default;
    ArgMat(int r, int c)
        : rows(r), cols(c), v(static_cast<std::size_t>(r) * c, -1)
    {}

    std::int32_t &
    at(int r, int c)
    {
        return v[static_cast<std::size_t>(r) * cols + c];
    }
    std::int32_t
    at(int r, int c) const
    {
        return v[static_cast<std::size_t>(r) * cols + c];
    }
};

/**
 * Bellman state of one solved segment [a, c]. Matrix rows/columns are
 * *candidate positions* (indices into the candidate lists the segment
 * was solved over, which the cache key serializes in full).
 */
struct DpSegment
{
    int a = 0, c = 0;
    Mat C; ///< [P_a][P_c]
    /** args[j - a - 1].at(pa, p_{j+1}) = best p_j, for j+1 in
     *  (a+1, c]. */
    std::vector<ArgMat> args;

    /** Approximate resident size (for the cache byte budget). */
    std::size_t
    bytes() const
    {
        std::size_t total = C.v.size() * sizeof(double);
        for (const ArgMat &m : args)
            total += m.v.size() * sizeof(std::int32_t);
        return total;
    }
};

/** Cached final result of one optimization run. */
struct PlanCacheEntry
{
    std::vector<PartitionSeq> strategies;
    double layerCost = 0.0;
    double totalCost = 0.0;
    std::int64_t candidatesTotal = 0;
    std::int64_t candidatesKept = 0;
    bool truncated = false;
    double lowerBoundUs = 0.0;
    double gapPct = 0.0;
};

} // namespace primepar

#endif // PRIMEPAR_OPTIMIZER_DP_CORE_HH
