#include "catalog_cache.hh"

#include <bit>
#include <sstream>

#include "runtime/metrics.hh"

namespace primepar {

namespace {

void
appendI64(std::ostringstream &os, std::int64_t v)
{
    os << v << ',';
}

void
appendDoubleBits(std::ostringstream &os, double v)
{
    os << std::bit_cast<std::uint64_t>(v) << ',';
}

void
appendRef(std::ostringstream &os, const TensorRef &ref)
{
    os << ref.tensor << (ref.grad ? 'g' : 'v');
}

} // namespace

std::string
catalogKey(const OpSpec &op, int num_bits, const SpaceOptions &opts,
           const std::string &cost_fingerprint)
{
    std::ostringstream os;
    os << num_bits << ';' << (opts.allowPSquare ? 1 : 0) << ';'
       << opts.maxTemporalSteps << ';' << opts.candidateBudget << ';';
    for (int d : opts.excludedDims)
        os << d << ',';
    os << ';';

    os << op.kind << ';';
    for (const DimSpec &d : op.dims) {
        appendI64(os, d.size);
        os << (d.partitionable ? 1 : 0);
    }
    os << ';';
    for (const TensorSpec &t : op.tensors) {
        for (int d : t.dims)
            os << d << '.';
        os << (t.isParameter ? 'p' : 'a') << ',';
    }
    os << ';';
    for (const PassSpec &p : op.passes) {
        os << static_cast<int>(p.phase) << ':';
        for (const TensorRef &r : p.operands)
            appendRef(os, r);
        os << ':';
        appendRef(os, p.output);
        os << ':';
        for (int d : p.contracted)
            os << d << '.';
        appendDoubleBits(os, p.flopFactor);
    }
    os << ';';
    if (op.psquare) {
        os << op.psquare->m << '.' << op.psquare->n << '.'
           << op.psquare->k;
    }
    os << ';' << op.inputTensor << ';' << op.outputTensor << ';';
    for (const TensorRef &r : op.stashed)
        appendRef(os, r);
    os << ';' << op.normalizedDim << ';';
    appendDoubleBits(os, op.bytesPerElement);
    os << '|' << cost_fingerprint;
    return os.str();
}

std::shared_ptr<const NodeCatalog>
CatalogCache::find(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = entries.find(key);
    if (it == entries.end()) {
        ++missCount;
        return nullptr;
    }
    ++hitCount;
    return it->second;
}

std::shared_ptr<const NodeCatalog>
CatalogCache::insert(const std::string &key,
                     std::shared_ptr<const NodeCatalog> catalog)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto [it, inserted] = entries.emplace(key, std::move(catalog));
    return it->second;
}

std::size_t
CatalogCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
}

std::size_t
CatalogCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu);
    return hitCount;
}

std::size_t
CatalogCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu);
    return missCount;
}

std::shared_ptr<const DpSegment>
CatalogCache::findSegment(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = segments.find(key);
    if (it == segments.end()) {
        ++segmentMissCount;
        return nullptr;
    }
    ++segmentHitCount;
    segmentLru.splice(segmentLru.begin(), segmentLru,
                      it->second.lruPos);
    return it->second.segment;
}

/** Drop LRU segments until @p needed bytes fit within the budget.
 *  Caller holds mu. */
void
CatalogCache::evictSegmentsLocked(std::size_t needed)
{
    while (segmentByteCount + needed > segmentByteBudget &&
           !segmentLru.empty()) {
        const auto victim = segments.find(segmentLru.back());
        segmentByteCount -= victim->second.bytes;
        segments.erase(victim);
        segmentLru.pop_back();
        ++segmentEvictCount;
        if (metrics)
            metrics->add("planner.cache_evicted");
    }
}

std::shared_ptr<const DpSegment>
CatalogCache::insertSegment(const std::string &key,
                            std::shared_ptr<const DpSegment> segment)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = segments.find(key);
    if (it != segments.end())
        return it->second.segment;
    const std::size_t bytes = segment->bytes();
    if (bytes > segmentByteBudget) {
        // Larger than the whole cache: usable, just not resident.
        ++segmentRejectCount;
        if (metrics)
            metrics->add("planner.cache_rejected");
        return segment;
    }
    evictSegmentsLocked(bytes);
    segmentByteCount += bytes;
    segmentLru.push_front(key);
    segments.emplace(key,
                     SegmentSlot{segment, bytes, segmentLru.begin()});
    return segment;
}

void
CatalogCache::setSegmentByteBudget(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mu);
    segmentByteBudget = bytes;
    evictSegmentsLocked(0);
}

std::size_t
CatalogCache::segmentBytes() const
{
    std::lock_guard<std::mutex> lock(mu);
    return segmentByteCount;
}

std::size_t
CatalogCache::segmentHits() const
{
    std::lock_guard<std::mutex> lock(mu);
    return segmentHitCount;
}

std::size_t
CatalogCache::segmentMisses() const
{
    std::lock_guard<std::mutex> lock(mu);
    return segmentMissCount;
}

std::size_t
CatalogCache::segmentEvictions() const
{
    std::lock_guard<std::mutex> lock(mu);
    return segmentEvictCount;
}

std::size_t
CatalogCache::segmentRejections() const
{
    std::lock_guard<std::mutex> lock(mu);
    return segmentRejectCount;
}

void
CatalogCache::setMetrics(MetricsRegistry *m)
{
    std::lock_guard<std::mutex> lock(mu);
    metrics = m;
}

std::shared_ptr<const PlanCacheEntry>
CatalogCache::findPlan(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = plans.find(key);
    if (it == plans.end()) {
        ++planMissCount;
        return nullptr;
    }
    ++planHitCount;
    return it->second;
}

std::shared_ptr<const PlanCacheEntry>
CatalogCache::insertPlan(const std::string &key,
                         std::shared_ptr<const PlanCacheEntry> plan)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto [it, inserted] = plans.emplace(key, std::move(plan));
    return it->second;
}

} // namespace primepar
