#include "segmented_dp.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "cost/profiler.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "topology/cluster.hh"

namespace primepar {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Dense row-major double matrix. */
struct Mat
{
    int rows = 0, cols = 0;
    std::vector<double> v;

    Mat() = default;
    Mat(int r, int c, double fill = 0.0)
        : rows(r), cols(c), v(static_cast<std::size_t>(r) * c, fill)
    {}

    double &
    at(int r, int c)
    {
        return v[static_cast<std::size_t>(r) * cols + c];
    }
    double
    at(int r, int c) const
    {
        return v[static_cast<std::size_t>(r) * cols + c];
    }
};

/** Row-major int32 argmin matrix. */
struct ArgMat
{
    int rows = 0, cols = 0;
    std::vector<std::int32_t> v;

    ArgMat() = default;
    ArgMat(int r, int c)
        : rows(r), cols(c), v(static_cast<std::size_t>(r) * c, -1)
    {}

    std::int32_t &
    at(int r, int c)
    {
        return v[static_cast<std::size_t>(r) * cols + c];
    }
    std::int32_t
    at(int r, int c) const
    {
        return v[static_cast<std::size_t>(r) * cols + c];
    }
};

/** DP state of one segment [a, c]. */
struct Segment
{
    int a = 0, c = 0;
    Mat C; ///< [P_a][P_c]
    /** args[j - a - 1].at(pa, p_{j+1}) = best p_j, for j+1 in
     *  (a+1, c]. */
    std::vector<ArgMat> args;
};

/** One merge record: [a,b] + [b,c] -> [a,c]. */
struct Merge
{
    int a = 0, b = 0, c = 0;
    ArgMat argB; ///< best p_b per (p_a, p_c)
};

struct DpContext
{
    const CompGraph &graph;
    const CostModel &cost;
    ThreadPool *pool = nullptr;
    std::vector<std::shared_ptr<const NodeCatalog>> catalogs;
    std::vector<EdgeCostTable> tables; // parallel to graph.edges()
    /** (src, dst) -> indices into tables, built once; edgeCost() is
     *  an O(log V) lookup instead of a full edge-list rescan. */
    std::map<std::pair<int, int>, std::vector<std::size_t>> edgeIndex;

    const NodeCatalog &
    cat(int node) const
    {
        return *catalogs[node];
    }

    /** Build tables for every edge (parallel) and the (src, dst)
     *  adjacency index. */
    void
    buildTables()
    {
        const auto &edges = graph.edges();
        tables.resize(edges.size());
        parallelFor(pool, edges.size(), [this, &edges](std::size_t e) {
            tables[e] = buildEdgeCostTable(graph, edges[e],
                                           cat(edges[e].src),
                                           cat(edges[e].dst), cost, pool);
        });
        for (std::size_t e = 0; e < edges.size(); ++e)
            edgeIndex[{edges[e].src, edges[e].dst}].push_back(e);
    }

    /** Sum of the cost tables of all edges src -> dst (inf-free). */
    bool
    edgeCost(int src, int dst, Mat &out) const
    {
        const auto it = edgeIndex.find({src, dst});
        if (it == edgeIndex.end())
            return false;
        bool found = false;
        for (const std::size_t e : it->second) {
            const EdgeCostTable &table = tables[e];
            if (!found) {
                out = Mat(table.srcSize, table.dstSize);
                found = true;
            } else {
                PRIMEPAR_ASSERT(
                    table.srcSize == out.rows &&
                        table.dstSize == out.cols,
                    "parallel edges ", src, " -> ", dst,
                    " have mismatched cost tables: ", table.srcSize,
                    "x", table.dstSize, " vs ", out.rows, "x",
                    out.cols);
            }
            for (int i = 0; i < out.rows; ++i)
                for (int j = 0; j < out.cols; ++j)
                    out.at(i, j) += table.at(i, j);
        }
        return found;
    }
};

/** Run the Bellman recurrences within segment [a, c] (Eqs. 11-12). */
Segment
solveSegment(const DpContext &ctx, int a, int c)
{
    Segment seg;
    seg.a = a;
    seg.c = c;

    PRIMEPAR_ASSERT(c > a, "degenerate segment");

    // Init over [a, a+1].
    Mat e01;
    const bool has01 = ctx.edgeCost(a, a + 1, e01);
    seg.C = Mat(ctx.cat(a).size(), ctx.cat(a + 1).size());
    parallelFor(ctx.pool, static_cast<std::size_t>(seg.C.rows),
                [&](std::size_t i) {
        const int row = static_cast<int>(i);
        for (int j = 0; j < seg.C.cols; ++j) {
            seg.C.at(row, j) = ctx.cat(a).intraCost[row] +
                               ctx.cat(a + 1).intraCost[j] +
                               (has01 ? e01.at(row, j) : 0.0);
        }
    });

    for (int next = a + 2; next <= c; ++next) {
        const int j = next - 1;
        // Assumptions 1-2: every in-edge of `next` originating inside
        // this segment comes from j or a (edges from before the
        // segment are accounted for at merge time, Eq. 13).
        for (const GraphEdge *e : ctx.graph.inEdges(next)) {
            PRIMEPAR_ASSERT(e->src < a || e->src == j || e->src == a,
                            "segment assumption violated: edge ",
                            e->src, " -> ", e->dst,
                            " inside segment [", a, ", ", c, "]");
        }
        Mat e_chain, e_skip;
        const bool has_chain = ctx.edgeCost(j, next, e_chain);
        const bool has_skip = a != j && ctx.edgeCost(a, next, e_skip);

        const NodeCatalog &cat_next = ctx.cat(next);
        Mat next_c(seg.C.rows, cat_next.size(), kInf);
        ArgMat arg(seg.C.rows, cat_next.size());
        // Rows are independent (row pa reads row pa of seg.C, writes
        // row pa of next_c/arg); the argmin over pj stays a serial
        // loop inside one row, so ties break identically at any
        // thread count.
        parallelFor(ctx.pool, static_cast<std::size_t>(seg.C.rows),
                    [&](std::size_t row) {
            const int pa = static_cast<int>(row);
            for (int pj = 0; pj < seg.C.cols; ++pj) {
                const double base = seg.C.at(pa, pj);
                for (int pn = 0; pn < cat_next.size(); ++pn) {
                    const double val =
                        base +
                        (has_chain ? e_chain.at(pj, pn) : 0.0);
                    if (val < next_c.at(pa, pn)) {
                        next_c.at(pa, pn) = val;
                        arg.at(pa, pn) = pj;
                    }
                }
            }
            // Terms independent of p_j (Eq. 12's n_{j+1} and e').
            for (int pn = 0; pn < cat_next.size(); ++pn) {
                next_c.at(pa, pn) +=
                    cat_next.intraCost[pn] +
                    (has_skip ? e_skip.at(pa, pn) : 0.0);
            }
        });
        seg.C = std::move(next_c);
        seg.args.push_back(std::move(arg));
    }
    return seg;
}

} // namespace

SegmentedDpOptimizer::SegmentedDpOptimizer(const CompGraph &graph_in,
                                           const CostModel &cost_in,
                                           DpOptions opts_in)
    : graph(graph_in), cost(cost_in), opts(std::move(opts_in))
{}

DpResult
SegmentedDpOptimizer::optimize()
{
    const auto t0 = Clock::now();
    DpResult result;

    ThreadPool pool(opts.numThreads);
    DpContext ctx{graph, cost, &pool, {}, {}, {}};

    CatalogBuildStats cat_stats;
    ctx.catalogs = buildAllNodeCatalogs(graph, cost, opts.space, &pool,
                                        opts.catalogCache.get(),
                                        &cat_stats);
    result.catalogsBuilt = cat_stats.built;
    result.catalogCacheHits = cat_stats.cacheHits;
    result.catalogMs = msSince(t0);

    const auto t1 = Clock::now();
    ctx.buildTables();
    result.edgeTableMs = msSince(t1);

    const auto t2 = Clock::now();

    // Segment boundaries: sources of extended edges.
    std::set<int> boundary_set{0, graph.numNodes() - 1};
    for (const GraphEdge &e : graph.edges()) {
        if (e.dst > e.src + 1)
            boundary_set.insert(e.src);
    }
    const std::vector<int> boundaries(boundary_set.begin(),
                                      boundary_set.end());

    // Solve each segment, then fold left with Eq. 13 merges.
    std::vector<Segment> segments;
    for (std::size_t b = 0; b + 1 < boundaries.size(); ++b)
        segments.push_back(
            solveSegment(ctx, boundaries[b], boundaries[b + 1]));

    Mat total = segments[0].C;
    int total_a = segments[0].a;
    std::vector<Merge> merges;
    for (std::size_t s = 1; s < segments.size(); ++s) {
        const Segment &right = segments[s];
        const int b = right.a;
        // Edges crossing the merge point must span the merged range.
        for (const GraphEdge &e : graph.edges()) {
            if (e.src < b && e.dst > b) {
                PRIMEPAR_ASSERT(e.src == total_a && e.dst == right.c,
                                "crossing edge ", e.src, " -> ", e.dst,
                                " not alignable with merge at ", b);
            }
        }
        Mat e_cross;
        const bool has_cross = ctx.edgeCost(total_a, right.c, e_cross);

        Mat merged(total.rows, right.C.cols, kInf);
        Merge rec;
        rec.a = total_a;
        rec.b = b;
        rec.c = right.c;
        rec.argB = ArgMat(total.rows, right.C.cols);
        // Same row-independence argument as in solveSegment.
        parallelFor(ctx.pool, static_cast<std::size_t>(total.rows),
                    [&](std::size_t row) {
            const int i = static_cast<int>(row);
            for (int pb = 0; pb < total.cols; ++pb) {
                const double left =
                    total.at(i, pb) - ctx.cat(b).intraCost[pb];
                for (int k = 0; k < right.C.cols; ++k) {
                    const double val = left + right.C.at(pb, k);
                    if (val < merged.at(i, k)) {
                        merged.at(i, k) = val;
                        rec.argB.at(i, k) = pb;
                    }
                }
            }
            if (has_cross) {
                for (int k = 0; k < right.C.cols; ++k)
                    merged.at(i, k) += e_cross.at(i, k);
            }
        });
        total = std::move(merged);
        merges.push_back(std::move(rec));
    }

    // Boundary selection. For stacked layers the tail node's state
    // must tile onto the head node's state of the next layer; head and
    // tail have structurally aligned spaces (same dims), so restrict
    // the choice to aligned pairs and combine layer costs exactly.
    const NodeCatalog &head = ctx.cat(0);
    const NodeCatalog &tail = ctx.cat(graph.numNodes() - 1);

    int best_p0 = 0, best_pl = 0;
    double best_layer = kInf, best_total = kInf;
    if (opts.numLayers <= 1 || graph.numNodes() == 1) {
        for (int i = 0; i < total.rows; ++i) {
            for (int k = 0; k < total.cols; ++k) {
                if (total.at(i, k) < best_layer) {
                    best_layer = total.at(i, k);
                    best_p0 = i;
                    best_pl = k;
                }
            }
        }
        best_total = best_layer;
    } else {
        // Alignment map: tail seq index -> head seq index.
        std::map<std::vector<PartitionStep>, int> head_by_steps;
        for (int i = 0; i < head.size(); ++i)
            head_by_steps[head.seqs[i].steps()] = i;
        for (int k = 0; k < tail.size(); ++k) {
            const auto it = head_by_steps.find(tail.seqs[k].steps());
            if (it == head_by_steps.end())
                continue;
            const int i = it->second;
            const double layer = total.at(i, k);
            const double stacked =
                opts.numLayers * layer -
                (opts.numLayers - 1) * head.intraCost[i];
            if (stacked < best_total) {
                best_total = stacked;
                best_layer = layer;
                best_p0 = i;
                best_pl = k;
            }
        }
        PRIMEPAR_ASSERT(best_total < kInf,
                        "no aligned head/tail boundary state found");
    }

    // Reconstruction: walk merges right-to-left, then each segment.
    std::vector<int> choice(graph.numNodes(), -1);
    choice[0] = best_p0;
    choice[graph.numNodes() - 1] = best_pl;
    {
        int right_state = best_pl;
        for (int m = static_cast<int>(merges.size()) - 1; m >= 0; --m) {
            const int pb = merges[m].argB.at(best_p0, right_state);
            choice[merges[m].b] = pb;
            right_state = pb;
        }
    }
    for (const Segment &seg : segments) {
        const int pa = choice[seg.a];
        int pnext = choice[seg.c];
        PRIMEPAR_ASSERT(pa >= 0 && pnext >= 0,
                        "segment boundary unresolved");
        for (int j = seg.c - 1; j > seg.a; --j) {
            pnext = seg.args[j - seg.a - 1].at(pa, pnext);
            choice[j] = pnext;
        }
    }

    for (int n = 0; n < graph.numNodes(); ++n) {
        PRIMEPAR_ASSERT(choice[n] >= 0, "node ", n, " unresolved");
        result.strategies.push_back(ctx.cat(n).seqs[choice[n]]);
    }
    result.layerCost = best_layer;
    result.totalCost = best_total;
    result.dpMs = msSince(t2);
    result.optimizationMs = msSince(t0);
    return result;
}

DpResult
bruteForceOptimize(const CompGraph &graph, const CostModel &cost,
                   const SpaceOptions &space, CatalogCache *cache,
                   int num_threads)
{
    const auto t0 = Clock::now();
    DpResult result;

    ThreadPool pool(num_threads);
    DpContext ctx{graph, cost, &pool, {}, {}, {}};
    CatalogBuildStats cat_stats;
    ctx.catalogs = buildAllNodeCatalogs(graph, cost, space, &pool, cache,
                                        &cat_stats);
    result.catalogsBuilt = cat_stats.built;
    result.catalogCacheHits = cat_stats.cacheHits;
    result.catalogMs = msSince(t0);
    const auto t1 = Clock::now();
    ctx.buildTables();
    result.edgeTableMs = msSince(t1);

    const auto t2 = Clock::now();
    std::vector<int> idx(graph.numNodes(), 0), best;
    double best_cost = kInf;
    while (true) {
        double c = 0.0;
        for (int n = 0; n < graph.numNodes(); ++n)
            c += ctx.cat(n).intraCost[idx[n]];
        for (std::size_t e = 0; e < ctx.tables.size(); ++e) {
            c += ctx.tables[e].at(idx[graph.edges()[e].src],
                                  idx[graph.edges()[e].dst]);
        }
        if (c < best_cost) {
            best_cost = c;
            best = idx;
        }
        int n = graph.numNodes() - 1;
        for (; n >= 0; --n) {
            if (++idx[n] < ctx.cat(n).size())
                break;
            idx[n] = 0;
        }
        if (n < 0)
            break;
    }

    for (int n = 0; n < graph.numNodes(); ++n)
        result.strategies.push_back(ctx.cat(n).seqs[best[n]]);
    result.layerCost = best_cost;
    result.totalCost = best_cost;
    result.dpMs = msSince(t2);
    result.optimizationMs = msSince(t0);
    return result;
}

DpResult
replanForSurvivors(const CompGraph &graph, int surviving_devices,
                   DpOptions opts)
{
    PRIMEPAR_ASSERT(surviving_devices >= 1,
                    "cannot re-plan for an empty device grid");
    const ClusterTopology topo =
        ClusterTopology::paperCluster(surviving_devices);
    const CostModel cost(topo, profileModels(topo));
    SegmentedDpOptimizer dp(graph, cost, std::move(opts));
    return dp.optimize();
}

} // namespace primepar
