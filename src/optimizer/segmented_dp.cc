#include "segmented_dp.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "cost/profiler.hh"
#include "runtime/metrics.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "topology/cluster.hh"

namespace primepar {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** One merge record: [a,b] + [b,c] -> [a,c]. */
struct Merge
{
    int a = 0, b = 0, c = 0;
    ArgMat argB; ///< best p_b per (p_a, p_c)
};

struct DpContext
{
    DpContext(const CompGraph &graph_in, const CostModel &cost_in,
              ThreadPool *pool_in)
        : graph(graph_in), cost(cost_in), pool(pool_in)
    {}

    const CompGraph &graph;
    const CostModel &cost;
    ThreadPool *pool = nullptr;
    std::vector<std::shared_ptr<const NodeCatalog>> catalogs;

    /**
     * Surviving sequence indices per node, ascending. Bellman
     * matrices, edge tables and argmins all work in *positions* into
     * these lists; because positions preserve the original sequence
     * order, every first-index tie-break resolves exactly as in the
     * exhaustive planner and the final plans stay byte-identical.
     */
    std::vector<std::vector<std::int32_t>> cand;
    /** Gathered intra cost per candidate position. */
    std::vector<std::vector<double>> intra;

    std::vector<EdgeCostTable> tables; // parallel to graph.edges()
    /** (src, dst) -> indices into tables, built once; edgeCost() is
     *  an O(log V) lookup instead of a full edge-list rescan. */
    std::map<std::pair<int, int>, std::vector<std::size_t>> edgeIndex;

    /** Layer-space pruning threshold: states whose partial cost plus
     *  the admissible completion bound exceed it are provably off
     *  every optimal plan. kInf = no pruning (legacy behavior). */
    double ubLayer = kInf;
    /** Run-scoped cross-edge traffic memo (pruned path only; the
     *  legacy baseline stays untouched). */
    TrafficMemo trafficMemo;
    /** Prefix sums of per-node minimum candidate intra cost, for the
     *  completion bound. */
    std::vector<double> minPrefix;
    /** Route class-pair traffic through the grid-indexed fast path. */
    bool fastTraffic = false;
    /** Bellman/merge entries proven out and set to kInf. */
    std::int64_t statesPruned = 0;

    const NodeCatalog &
    cat(int node) const
    {
        return *catalogs[node];
    }
    int
    candSize(int node) const
    {
        return static_cast<int>(cand[node].size());
    }
    double
    intraOf(int node, int p) const
    {
        return intra[node][p];
    }

    /** Candidate lists = the full catalogs (exhaustive mode). */
    void
    initAllCandidates()
    {
        cand.resize(catalogs.size());
        for (std::size_t n = 0; n < catalogs.size(); ++n) {
            cand[n].resize(catalogs[n]->size());
            for (int s = 0; s < catalogs[n]->size(); ++s)
                cand[n][s] = s;
        }
    }

    /** Gather per-position intra costs and the min-prefix sums. Call
     *  after the candidate lists are final. */
    void
    finishCandidates()
    {
        const std::size_t num_nodes = catalogs.size();
        intra.resize(num_nodes);
        minPrefix.assign(num_nodes + 1, 0.0);
        for (std::size_t n = 0; n < num_nodes; ++n) {
            PRIMEPAR_ASSERT(!cand[n].empty(), "node ", n,
                            " lost every candidate");
            intra[n].resize(cand[n].size());
            double mn = kInf;
            for (std::size_t p = 0; p < cand[n].size(); ++p) {
                intra[n][p] = catalogs[n]->intraCost[cand[n][p]];
                mn = std::min(mn, intra[n][p]);
            }
            minPrefix[n + 1] = minPrefix[n] + mn;
        }
    }

    /** Admissible completion bound: minimum candidate intra cost
     *  summed over every node outside [a, j]. */
    double
    outsideMin(int a, int j) const
    {
        return minPrefix.back() - (minPrefix[j + 1] - minPrefix[a]);
    }

    /** Build tables for the non-skipped edges (parallel) and the
     *  (src, dst) adjacency index. @p skip (optional, per edge) marks
     *  edges interior to cache-served segments — their tables are
     *  never read, so construction is elided entirely. */
    void
    buildTables(const std::vector<char> *skip = nullptr)
    {
        const auto &edges = graph.edges();
        tables.resize(edges.size());
        parallelFor(pool, edges.size(), [&](std::size_t e) {
            if (skip && (*skip)[e])
                return;
            EdgeTableOptions topts;
            topts.srcCandidates = &cand[edges[e].src];
            topts.dstCandidates = &cand[edges[e].dst];
            topts.fastTraffic = fastTraffic;
            if (fastTraffic)
                topts.memo = &trafficMemo;
            if (ubLayer < kInf) {
                // Same admissible bound as the per-node slack filter,
                // with both endpoints fixed: a pair costing more than
                // this is on no optimal plan, so its traffic need not
                // be priced at all.
                const int s = edges[e].src, d = edges[e].dst;
                topts.pairBudget =
                    ubLayer -
                    (minPrefix.back() -
                     (minPrefix[s + 1] - minPrefix[s]) -
                     (minPrefix[d + 1] - minPrefix[d]));
            }
            tables[e] = buildEdgeCostTable(graph, edges[e],
                                           cat(edges[e].src),
                                           cat(edges[e].dst), cost, pool,
                                           topts);
        });
        for (std::size_t e = 0; e < edges.size(); ++e) {
            if (skip && (*skip)[e])
                continue;
            edgeIndex[{edges[e].src, edges[e].dst}].push_back(e);
        }
    }

    /** Sum of the cost tables of all edges src -> dst (inf-free). */
    bool
    edgeCost(int src, int dst, Mat &out) const
    {
        const auto it = edgeIndex.find({src, dst});
        if (it == edgeIndex.end())
            return false;
        bool found = false;
        for (const std::size_t e : it->second) {
            const EdgeCostTable &table = tables[e];
            if (!found) {
                out = Mat(table.srcSize, table.dstSize);
                found = true;
            } else {
                PRIMEPAR_ASSERT(
                    table.srcSize == out.rows &&
                        table.dstSize == out.cols,
                    "parallel edges ", src, " -> ", dst,
                    " have mismatched cost tables: ", table.srcSize,
                    "x", table.dstSize, " vs ", out.rows, "x",
                    out.cols);
            }
            for (int i = 0; i < out.rows; ++i)
                for (int j = 0; j < out.cols; ++j)
                    out.at(i, j) += table.at(i, j);
        }
        return found;
    }
};

/**
 * Mark every entry above @p threshold as unreachable. Such an entry's
 * partial cost plus the admissible completion bound already exceeds
 * the pilot upper bound, so no plan through it can be optimal — and
 * since every state on an optimal plan keeps its exact value and its
 * first-index argmin, the surviving computation is byte-identical to
 * the unpruned one (DESIGN.md Sec. 11).
 */
void
pruneStates(DpContext &ctx, Mat &m, double threshold)
{
    if (!(threshold < kInf))
        return;
    std::vector<std::int64_t> per_row(m.rows, 0);
    parallelFor(ctx.pool, static_cast<std::size_t>(m.rows),
                [&](std::size_t row) {
        const int r = static_cast<int>(row);
        std::int64_t n = 0;
        for (int c = 0; c < m.cols; ++c) {
            double &v = m.at(r, c);
            if (v > threshold && v < kInf) {
                v = kInf;
                ++n;
            }
        }
        per_row[row] = n;
    });
    for (const std::int64_t n : per_row)
        ctx.statesPruned += n;
}

/** Run the Bellman recurrences within segment [a, c] (Eqs. 11-12). */
DpSegment
solveSegment(DpContext &ctx, int a, int c)
{
    DpSegment seg;
    seg.a = a;
    seg.c = c;

    PRIMEPAR_ASSERT(c > a, "degenerate segment");

    // Init over [a, a+1].
    Mat e01;
    const bool has01 = ctx.edgeCost(a, a + 1, e01);
    seg.C = Mat(ctx.candSize(a), ctx.candSize(a + 1));
    parallelFor(ctx.pool, static_cast<std::size_t>(seg.C.rows),
                [&](std::size_t i) {
        const int row = static_cast<int>(i);
        for (int j = 0; j < seg.C.cols; ++j) {
            seg.C.at(row, j) = ctx.intraOf(a, row) +
                               ctx.intraOf(a + 1, j) +
                               (has01 ? e01.at(row, j) : 0.0);
        }
    });
    pruneStates(ctx, seg.C, ctx.ubLayer - ctx.outsideMin(a, a + 1));

    for (int next = a + 2; next <= c; ++next) {
        const int j = next - 1;
        // Assumptions 1-2: every in-edge of `next` originating inside
        // this segment comes from j or a (edges from before the
        // segment are accounted for at merge time, Eq. 13).
        for (const GraphEdge *e : ctx.graph.inEdges(next)) {
            PRIMEPAR_ASSERT(e->src < a || e->src == j || e->src == a,
                            "segment assumption violated: edge ",
                            e->src, " -> ", e->dst,
                            " inside segment [", a, ", ", c, "]");
        }
        Mat e_chain, e_skip;
        const bool has_chain = ctx.edgeCost(j, next, e_chain);
        const bool has_skip = a != j && ctx.edgeCost(a, next, e_skip);

        const int next_size = ctx.candSize(next);
        Mat next_c(seg.C.rows, next_size, kInf);
        ArgMat arg(seg.C.rows, next_size);
        // Rows are independent (row pa reads row pa of seg.C, writes
        // row pa of next_c/arg); the argmin over pj stays a serial
        // loop inside one row, so ties break identically at any
        // thread count. Pruned predecessor states (kInf) can never
        // win the strict < and are skipped outright.
        parallelFor(ctx.pool, static_cast<std::size_t>(seg.C.rows),
                    [&](std::size_t row) {
            const int pa = static_cast<int>(row);
            for (int pj = 0; pj < seg.C.cols; ++pj) {
                const double base = seg.C.at(pa, pj);
                if (base == kInf)
                    continue;
                for (int pn = 0; pn < next_size; ++pn) {
                    const double val =
                        base +
                        (has_chain ? e_chain.at(pj, pn) : 0.0);
                    if (val < next_c.at(pa, pn)) {
                        next_c.at(pa, pn) = val;
                        arg.at(pa, pn) = pj;
                    }
                }
            }
            // Terms independent of p_j (Eq. 12's n_{j+1} and e').
            for (int pn = 0; pn < next_size; ++pn) {
                next_c.at(pa, pn) +=
                    ctx.intraOf(next, pn) +
                    (has_skip ? e_skip.at(pa, pn) : 0.0);
            }
        });
        seg.C = std::move(next_c);
        seg.args.push_back(std::move(arg));
        pruneStates(ctx, seg.C, ctx.ubLayer - ctx.outsideMin(a, next));
    }
    return seg;
}

/** Segment boundaries: sources of extended edges plus both ends. */
std::vector<int>
segmentBoundaries(const CompGraph &graph)
{
    std::set<int> boundary_set{0, graph.numNodes() - 1};
    for (const GraphEdge &e : graph.edges()) {
        if (e.dst > e.src + 1)
            boundary_set.insert(e.src);
    }
    return {boundary_set.begin(), boundary_set.end()};
}

/** Outcome of the Bellman + merge + selection core (positions). */
struct CoreOutcome
{
    std::vector<int> choice; ///< candidate position per node
    double layerCost = kInf;
    double totalCost = kInf;
    int segmentCacheHits = 0;
};

/**
 * Solve all segments (or adopt cache-served ones), fold the merges,
 * select the boundary state, reconstruct. The candidate lists, edge
 * tables, and pruning threshold all live in @p ctx.
 */
CoreOutcome
runCore(DpContext &ctx, const DpOptions &opts,
        const std::vector<int> &boundaries,
        const std::vector<std::shared_ptr<const DpSegment>> *presolved,
        CatalogCache *seg_store, const std::vector<std::string> *seg_keys)
{
    CoreOutcome out;
    const CompGraph &graph = ctx.graph;

    std::vector<std::shared_ptr<const DpSegment>> segments;
    for (std::size_t b = 0; b + 1 < boundaries.size(); ++b) {
        if (presolved && (*presolved)[b]) {
            segments.push_back((*presolved)[b]);
            ++out.segmentCacheHits;
            continue;
        }
        auto seg = std::make_shared<DpSegment>(
            solveSegment(ctx, boundaries[b], boundaries[b + 1]));
        std::shared_ptr<const DpSegment> stored = std::move(seg);
        if (seg_store && seg_keys)
            stored = seg_store->insertSegment((*seg_keys)[b], stored);
        segments.push_back(std::move(stored));
    }

    Mat total = segments[0]->C;
    const int total_a = segments[0]->a;
    std::vector<Merge> merges;
    for (std::size_t s = 1; s < segments.size(); ++s) {
        const DpSegment &right = *segments[s];
        const int b = right.a;
        // Edges crossing the merge point must span the merged range.
        for (const GraphEdge &e : graph.edges()) {
            if (e.src < b && e.dst > b) {
                PRIMEPAR_ASSERT(e.src == total_a && e.dst == right.c,
                                "crossing edge ", e.src, " -> ", e.dst,
                                " not alignable with merge at ", b);
            }
        }
        Mat e_cross;
        const bool has_cross = ctx.edgeCost(total_a, right.c, e_cross);

        Mat merged(total.rows, right.C.cols, kInf);
        Merge rec;
        rec.a = total_a;
        rec.b = b;
        rec.c = right.c;
        rec.argB = ArgMat(total.rows, right.C.cols);
        // Same row-independence argument as in solveSegment.
        parallelFor(ctx.pool, static_cast<std::size_t>(total.rows),
                    [&](std::size_t row) {
            const int i = static_cast<int>(row);
            for (int pb = 0; pb < total.cols; ++pb) {
                if (total.at(i, pb) == kInf)
                    continue;
                const double left =
                    total.at(i, pb) - ctx.intraOf(b, pb);
                for (int k = 0; k < right.C.cols; ++k) {
                    const double val = left + right.C.at(pb, k);
                    if (val < merged.at(i, k)) {
                        merged.at(i, k) = val;
                        rec.argB.at(i, k) = pb;
                    }
                }
            }
            if (has_cross) {
                for (int k = 0; k < right.C.cols; ++k)
                    merged.at(i, k) += e_cross.at(i, k);
            }
        });
        total = std::move(merged);
        merges.push_back(std::move(rec));
        pruneStates(ctx, total,
                    ctx.ubLayer - ctx.outsideMin(total_a, right.c));
    }

    // Boundary selection. For stacked layers the tail node's state
    // must tile onto the head node's state of the next layer; head and
    // tail have structurally aligned spaces (same dims), so restrict
    // the choice to aligned pairs and combine layer costs exactly.
    const int last = graph.numNodes() - 1;

    int best_p0 = 0, best_pl = 0;
    double best_layer = kInf, best_total = kInf;
    if (opts.numLayers <= 1 || graph.numNodes() == 1) {
        for (int i = 0; i < total.rows; ++i) {
            for (int k = 0; k < total.cols; ++k) {
                if (total.at(i, k) < best_layer) {
                    best_layer = total.at(i, k);
                    best_p0 = i;
                    best_pl = k;
                }
            }
        }
        best_total = best_layer;
    } else {
        // Alignment map: tail position -> head position.
        std::map<std::vector<PartitionStep>, int> head_by_steps;
        for (int i = 0; i < ctx.candSize(0); ++i)
            head_by_steps[ctx.cat(0).seqs[ctx.cand[0][i]].steps()] = i;
        for (int k = 0; k < ctx.candSize(last); ++k) {
            const auto it = head_by_steps.find(
                ctx.cat(last).seqs[ctx.cand[last][k]].steps());
            if (it == head_by_steps.end())
                continue;
            const int i = it->second;
            const double layer = total.at(i, k);
            const double stacked =
                opts.numLayers * layer -
                (opts.numLayers - 1) * ctx.intraOf(0, i);
            if (stacked < best_total) {
                best_total = stacked;
                best_layer = layer;
                best_p0 = i;
                best_pl = k;
            }
        }
        PRIMEPAR_ASSERT(best_total < kInf,
                        "no aligned head/tail boundary state found",
                        " (with beamWidth > 0, increase the beam)");
    }

    // Reconstruction: walk merges right-to-left, then each segment.
    std::vector<int> choice(graph.numNodes(), -1);
    choice[0] = best_p0;
    choice[last] = best_pl;
    {
        int right_state = best_pl;
        for (int m = static_cast<int>(merges.size()) - 1; m >= 0; --m) {
            const int pb = merges[m].argB.at(best_p0, right_state);
            choice[merges[m].b] = pb;
            right_state = pb;
        }
    }
    for (const auto &segp : segments) {
        const DpSegment &seg = *segp;
        const int pa = choice[seg.a];
        int pnext = choice[seg.c];
        PRIMEPAR_ASSERT(pa >= 0 && pnext >= 0,
                        "segment boundary unresolved");
        for (int j = seg.c - 1; j > seg.a; --j) {
            pnext = seg.args[j - seg.a - 1].at(pa, pnext);
            choice[j] = pnext;
        }
    }
    for (int n = 0; n < graph.numNodes(); ++n)
        PRIMEPAR_ASSERT(choice[n] >= 0, "node ", n, " unresolved");

    out.choice = std::move(choice);
    out.layerCost = best_layer;
    out.totalCost = best_total;
    return out;
}

/** Top-@p k catalog positions by intra cost (ties: lower index),
 *  returned ascending so first-index tie-breaks are preserved. */
std::vector<std::int32_t>
topKByIntra(const NodeCatalog &cat, int k)
{
    std::vector<std::int32_t> idx(cat.seqs.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<std::int32_t>(i);
    if (k <= 0 || cat.size() <= k)
        return idx;
    std::sort(idx.begin(), idx.end(),
              [&](std::int32_t a, std::int32_t b) {
                  return cat.intraCost[a] < cat.intraCost[b] ||
                         (cat.intraCost[a] == cat.intraCost[b] &&
                          a < b);
              });
    idx.resize(k);
    std::sort(idx.begin(), idx.end());
    return idx;
}

/**
 * Pilot candidate lists: the top pilotWidth positions per node. For
 * stacked layers the head/tail lists are drawn from *aligned pairs*
 * (cheapest combined intra first) so the pilot's boundary selection
 * always finds a feasible stacked state when the full space has one.
 */
void
pilotCandidates(DpContext &pilot, const DpOptions &opts)
{
    const int num_nodes = pilot.graph.numNodes();
    const int width = std::max(1, opts.pilotWidth);
    pilot.cand.resize(num_nodes);
    for (int n = 0; n < num_nodes; ++n)
        pilot.cand[n] = topKByIntra(pilot.cat(n), width);

    if (opts.numLayers > 1 && num_nodes > 1) {
        const NodeCatalog &head = pilot.cat(0);
        const NodeCatalog &tail = pilot.cat(num_nodes - 1);
        std::map<std::vector<PartitionStep>, int> head_by_steps;
        for (int i = 0; i < head.size(); ++i)
            head_by_steps[head.seqs[i].steps()] = i;
        struct Pair
        {
            double score;
            std::int32_t k, i;
        };
        std::vector<Pair> pairs;
        for (int k = 0; k < tail.size(); ++k) {
            const auto it = head_by_steps.find(tail.seqs[k].steps());
            if (it == head_by_steps.end())
                continue;
            pairs.push_back(
                Pair{head.intraCost[it->second] + tail.intraCost[k],
                     static_cast<std::int32_t>(k),
                     static_cast<std::int32_t>(it->second)});
        }
        if (!pairs.empty()) {
            std::sort(pairs.begin(), pairs.end(),
                      [](const Pair &a, const Pair &b) {
                          return a.score < b.score ||
                                 (a.score == b.score && a.k < b.k);
                      });
            if (static_cast<int>(pairs.size()) > width)
                pairs.resize(width);
            std::vector<std::int32_t> heads, tails;
            for (const Pair &p : pairs) {
                heads.push_back(p.i);
                tails.push_back(p.k);
            }
            std::sort(heads.begin(), heads.end());
            heads.erase(std::unique(heads.begin(), heads.end()),
                        heads.end());
            std::sort(tails.begin(), tails.end());
            tails.erase(std::unique(tails.begin(), tails.end()),
                        tails.end());
            pilot.cand[0] = std::move(heads);
            pilot.cand[num_nodes - 1] = std::move(tails);
        }
        // No aligned pairs: keep the top-K lists; runCore raises the
        // same no-aligned-state error the exhaustive planner would.
    }
}

void
appendEdgeStructure(std::ostringstream &os, const CompGraph &graph,
                    const GraphEdge &e, int base)
{
    os << 'e' << (e.src - base) << ',' << (e.dst - base) << ','
       << e.dstTensor << ':';
    for (const int d : e.dimMap)
        os << d << '.';
    os << ':';
    for (const std::int64_t s : graph.transferSizes(e))
        os << s << ',';
    os << ';';
}

void
appendCandidates(std::ostringstream &os,
                 const std::vector<std::int32_t> &cl)
{
    const std::uint64_t n = cl.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    os.write(reinterpret_cast<const char *>(cl.data()),
             static_cast<std::streamsize>(cl.size() *
                                          sizeof(std::int32_t)));
}

/** Cache key of one solved segment: member catalogs (via catalogKey,
 *  which covers the space options and the cost fingerprint), the
 *  surviving candidate lists in full, and the interior edge
 *  structure. */
std::string
segmentKey(const DpContext &ctx, const SpaceOptions &space, int a, int c)
{
    const int num_bits = ctx.cost.topology().numBits();
    std::ostringstream os;
    os << "seg;";
    for (int n = a; n <= c; ++n) {
        os << catalogKey(ctx.graph.node(n), num_bits, space,
                         ctx.cost.fingerprint())
           << '#';
        appendCandidates(os, ctx.cand[n]);
    }
    for (const GraphEdge &e : ctx.graph.edges()) {
        if (e.src >= a && e.dst <= c)
            appendEdgeStructure(os, ctx.graph, e, a);
    }
    return os.str();
}

/** Cache key of a whole optimization run. */
std::string
planKey(const CompGraph &graph, const CostModel &cost,
        const SpaceOptions &space, const DpOptions &opts)
{
    const int num_bits = cost.topology().numBits();
    std::ostringstream os;
    os << "plan;" << opts.numLayers << ';'
       << (opts.pruneDominated ? 1 : 0) << ';' << opts.beamWidth << ';'
       << opts.pilotWidth << ';';
    for (int n = 0; n < graph.numNodes(); ++n) {
        os << catalogKey(graph.node(n), num_bits, space,
                         cost.fingerprint())
           << '#';
    }
    for (const GraphEdge &e : graph.edges())
        appendEdgeStructure(os, graph, e, 0);
    return os.str();
}

void
recordMetrics(MetricsRegistry *m, const DpResult &r)
{
    if (!m)
        return;
    m->add("planner.catalogs_built", r.catalogsBuilt);
    m->add("planner.catalog_cache_hits", r.catalogCacheHits);
    m->add("planner.candidates_total", r.candidatesTotal);
    m->add("planner.candidates_kept", r.candidatesKept);
    m->add("planner.states_pruned", r.statesPruned);
    m->add("planner.segment_cache_hits", r.segmentCacheHits);
    m->add("planner.plan_cache_hits", r.planCacheHit ? 1 : 0);
    m->add("planner.truncated", r.truncated ? 1 : 0);
    m->observe("planner.catalog_ms", r.catalogMs);
    m->observe("planner.pilot_ms", r.pilotMs);
    m->observe("planner.edge_table_ms", r.edgeTableMs);
    m->observe("planner.dp_ms", r.dpMs);
    m->observe("planner.optimization_ms", r.optimizationMs);
    m->observe("planner.gap_pct", r.gapPct);
    m->observe("planner.lower_bound_us", r.lowerBoundUs);
}

} // namespace

std::string
planCacheKey(const CompGraph &graph, const CostModel &cost,
             const DpOptions &opts)
{
    SpaceOptions space = opts.space;
    if (opts.beamWidth > 0)
        space.candidateBudget = opts.beamWidth;
    return planKey(graph, cost, space, opts);
}

SegmentedDpOptimizer::SegmentedDpOptimizer(const CompGraph &graph_in,
                                           const CostModel &cost_in,
                                           DpOptions opts_in)
    : graph(graph_in), cost(cost_in), opts(std::move(opts_in))
{}

DpResult
SegmentedDpOptimizer::optimize()
{
    const auto t0 = Clock::now();
    DpResult result;

    ThreadPool pool(opts.numThreads);

    SpaceOptions space = opts.space;
    if (opts.beamWidth > 0)
        space.candidateBudget = opts.beamWidth;

    if (opts.catalogCache && opts.metrics)
        opts.catalogCache->setMetrics(opts.metrics);

    // Whole-plan memoization (pruning modes only: the legacy path
    // stays the untouched timing baseline).
    CatalogCache *cache =
        opts.pruneDominated ? opts.catalogCache.get() : nullptr;
    std::string plan_key;
    if (cache) {
        plan_key = planKey(graph, cost, space, opts);
        if (const auto hit = cache->findPlan(plan_key)) {
            result.strategies = hit->strategies;
            result.layerCost = hit->layerCost;
            result.totalCost = hit->totalCost;
            result.candidatesTotal = hit->candidatesTotal;
            result.candidatesKept = hit->candidatesKept;
            result.truncated = hit->truncated;
            result.lowerBoundUs = hit->lowerBoundUs;
            result.gapPct = hit->gapPct;
            result.planCacheHit = true;
            // A plan hit subsumes per-node catalog reuse: every node
            // was served from the cache without being rebuilt.
            result.catalogCacheHits = graph.numNodes();
            result.optimizationMs = msSince(t0);
            recordMetrics(opts.metrics, result);
            return result;
        }
    }

    DpContext ctx(graph, cost, &pool);
    CatalogBuildStats cat_stats;
    ctx.catalogs = buildAllNodeCatalogs(graph, cost, space, &pool,
                                        opts.catalogCache.get(),
                                        &cat_stats);
    result.catalogsBuilt = cat_stats.built;
    result.catalogCacheHits = cat_stats.cacheHits;
    result.catalogMs = msSince(t0);

    const int num_nodes = graph.numNodes();
    for (int n = 0; n < num_nodes; ++n) {
        result.candidatesTotal += ctx.cat(n).size();
        result.truncated = result.truncated || ctx.cat(n).truncated;
    }

    const std::vector<int> boundaries = segmentBoundaries(graph);

    // Pilot pass: a fast DP over each node's best-intra candidates.
    // Its (feasible, hence valid) cost upper-bounds the optimum and
    // drives both the sequence slack filter and the Bellman state
    // bound below.
    const auto t_pilot = Clock::now();
    double ub_layer = kInf;
    if (opts.pruneDominated && num_nodes > 1) {
        DpContext pilot(graph, cost, &pool);
        pilot.catalogs = ctx.catalogs;
        pilot.fastTraffic = true;
        pilotCandidates(pilot, opts);
        pilot.finishCandidates();
        pilot.buildTables();
        const CoreOutcome po =
            runCore(pilot, opts, boundaries, nullptr, nullptr, nullptr);
        // Layer-space threshold. For stacked layers, a layer cost L_c
        // participates in a better-than-UB plan only if
        // numLayers*L_c - (numLayers-1)*headIntra <= UB for some
        // feasible head intra, so relax with the maximum head intra.
        double hmax = 0.0;
        if (opts.numLayers > 1) {
            hmax = *std::max_element(ctx.cat(0).intraCost.begin(),
                                     ctx.cat(0).intraCost.end());
        }
        ub_layer = (po.totalCost + (opts.numLayers - 1) * hmax) /
                   opts.numLayers;
        // Rounding guard: the slack/bound tests below recompute sums
        // in a different association order than the DP that produced
        // the bound, so exact ties can land 1 ulp on the wrong side
        // and prune the optimum itself. A small relative inflation
        // keeps pruning strictly conservative (it can only retain
        // extra candidates, never drop one the exhaustive planner
        // would pick).
        ub_layer += 1e-9 * std::max(1.0, std::abs(ub_layer));
    }
    result.pilotMs = msSince(t_pilot);

    // Candidate lists: slack-filter each node's sequences against the
    // upper bound (a sequence whose intra cost alone pushes the best
    // completable plan past the UB can appear in no optimal plan).
    ctx.cand.resize(num_nodes);
    if (ub_layer < kInf) {
        std::vector<double> min_full(num_nodes, kInf);
        double total_min = 0.0;
        for (int n = 0; n < num_nodes; ++n) {
            min_full[n] =
                *std::min_element(ctx.cat(n).intraCost.begin(),
                                  ctx.cat(n).intraCost.end());
            total_min += min_full[n];
        }
        for (int n = 0; n < num_nodes; ++n) {
            const double slack =
                ub_layer - (total_min - min_full[n]);
            const NodeCatalog &cat = ctx.cat(n);
            for (int s = 0; s < cat.size(); ++s) {
                if (cat.intraCost[s] <= slack)
                    ctx.cand[n].push_back(s);
            }
        }
        // Stacked layers only ever select aligned head/tail pairs, so
        // unaligned boundary candidates are dead weight: drop them
        // (plans are unaffected; tables shrink).
        if (opts.numLayers > 1 && num_nodes > 1) {
            const int last = num_nodes - 1;
            std::set<std::vector<PartitionStep>> head_steps,
                tail_steps;
            for (const std::int32_t s : ctx.cand[0])
                head_steps.insert(ctx.cat(0).seqs[s].steps());
            for (const std::int32_t s : ctx.cand[last])
                tail_steps.insert(ctx.cat(last).seqs[s].steps());
            const auto aligned_only =
                [&](std::vector<std::int32_t> &cl, int node,
                    const std::set<std::vector<PartitionStep>> &other) {
                    std::vector<std::int32_t> kept;
                    for (const std::int32_t s : cl) {
                        if (other.count(ctx.cat(node).seqs[s].steps()))
                            kept.push_back(s);
                    }
                    if (!kept.empty())
                        cl = std::move(kept);
                };
            aligned_only(ctx.cand[0], 0, tail_steps);
            aligned_only(ctx.cand[last], last, head_steps);
        }
    } else {
        ctx.initAllCandidates();
    }
    ctx.finishCandidates();
    ctx.ubLayer = ub_layer;
    ctx.fastTraffic = opts.pruneDominated;
    for (int n = 0; n < num_nodes; ++n)
        result.candidatesKept += ctx.candSize(n);

    // Segment memoization: cache-served segments skip both their
    // Bellman pass and the construction of every interior edge table.
    std::vector<std::string> seg_keys;
    std::vector<std::shared_ptr<const DpSegment>> presolved;
    std::vector<char> skip_edges;
    if (cache) {
        const std::size_t num_segments = boundaries.size() - 1;
        seg_keys.resize(num_segments);
        presolved.resize(num_segments);
        skip_edges.assign(graph.edges().size(), 0);
        for (std::size_t s = 0; s < num_segments; ++s) {
            seg_keys[s] = segmentKey(ctx, space, boundaries[s],
                                     boundaries[s + 1]);
            presolved[s] = cache->findSegment(seg_keys[s]);
            if (!presolved[s])
                continue;
            const auto &edges = graph.edges();
            for (std::size_t e = 0; e < edges.size(); ++e) {
                if (edges[e].src >= boundaries[s] &&
                    edges[e].dst <= boundaries[s + 1])
                    skip_edges[e] = 1;
            }
        }
    }

    const auto t1 = Clock::now();
    ctx.buildTables(skip_edges.empty() ? nullptr : &skip_edges);
    result.edgeTableMs = msSince(t1);

    const auto t2 = Clock::now();
    const CoreOutcome core =
        runCore(ctx, opts, boundaries,
                presolved.empty() ? nullptr : &presolved, cache,
                seg_keys.empty() ? nullptr : &seg_keys);
    result.segmentCacheHits = core.segmentCacheHits;
    result.statesPruned = ctx.statesPruned;
    for (int n = 0; n < num_nodes; ++n) {
        result.strategies.push_back(
            ctx.cat(n).seqs[ctx.cand[n][core.choice[n]]]);
    }
    result.layerCost = core.layerCost;
    result.totalCost = core.totalCost;
    result.dpMs = msSince(t2);

    // Gap certification. Untruncated runs are provably optimal over
    // the materialized (= full) space: gap exactly 0. Truncated runs
    // are bounded below by summing, per node, the compute floor (for
    // truncated spaces) or the exact catalog minimum.
    if (!result.truncated) {
        result.lowerBoundUs = result.layerCost;
        result.gapPct = 0.0;
    } else {
        double lb = 0.0;
        for (int n = 0; n < num_nodes; ++n) {
            const NodeCatalog &cat = ctx.cat(n);
            const double mn =
                *std::min_element(cat.intraCost.begin(),
                                  cat.intraCost.end());
            lb += cat.truncated
                      ? std::min(mn, cost.computeFloorUs(graph.node(n)))
                      : mn;
        }
        result.lowerBoundUs = lb;
        result.gapPct =
            result.layerCost > 0.0
                ? std::max(0.0, (result.layerCost - lb) /
                                    result.layerCost * 100.0)
                : 0.0;
    }

    if (cache) {
        auto entry = std::make_shared<PlanCacheEntry>();
        entry->strategies = result.strategies;
        entry->layerCost = result.layerCost;
        entry->totalCost = result.totalCost;
        entry->candidatesTotal = result.candidatesTotal;
        entry->candidatesKept = result.candidatesKept;
        entry->truncated = result.truncated;
        entry->lowerBoundUs = result.lowerBoundUs;
        entry->gapPct = result.gapPct;
        cache->insertPlan(plan_key, std::move(entry));
    }

    result.optimizationMs = msSince(t0);
    recordMetrics(opts.metrics, result);
    return result;
}

DpResult
bruteForceOptimize(const CompGraph &graph, const CostModel &cost,
                   const SpaceOptions &space, CatalogCache *cache,
                   int num_threads)
{
    const auto t0 = Clock::now();
    DpResult result;

    ThreadPool pool(num_threads);
    DpContext ctx(graph, cost, &pool);
    CatalogBuildStats cat_stats;
    ctx.catalogs = buildAllNodeCatalogs(graph, cost, space, &pool, cache,
                                        &cat_stats);
    result.catalogsBuilt = cat_stats.built;
    result.catalogCacheHits = cat_stats.cacheHits;
    result.catalogMs = msSince(t0);
    const auto t1 = Clock::now();
    ctx.initAllCandidates();
    ctx.finishCandidates();
    ctx.buildTables();
    result.edgeTableMs = msSince(t1);

    const auto t2 = Clock::now();
    std::vector<int> idx(graph.numNodes(), 0), best;
    double best_cost = kInf;
    while (true) {
        double c = 0.0;
        for (int n = 0; n < graph.numNodes(); ++n)
            c += ctx.cat(n).intraCost[idx[n]];
        for (std::size_t e = 0; e < ctx.tables.size(); ++e) {
            c += ctx.tables[e].at(idx[graph.edges()[e].src],
                                  idx[graph.edges()[e].dst]);
        }
        if (c < best_cost) {
            best_cost = c;
            best = idx;
        }
        int n = graph.numNodes() - 1;
        for (; n >= 0; --n) {
            if (++idx[n] < ctx.cat(n).size())
                break;
            idx[n] = 0;
        }
        if (n < 0)
            break;
    }

    for (int n = 0; n < graph.numNodes(); ++n) {
        result.strategies.push_back(ctx.cat(n).seqs[best[n]]);
        result.candidatesTotal += ctx.cat(n).size();
    }
    result.candidatesKept = result.candidatesTotal;
    result.layerCost = best_cost;
    result.totalCost = best_cost;
    result.lowerBoundUs = best_cost;
    result.dpMs = msSince(t2);
    result.optimizationMs = msSince(t0);
    return result;
}

DpResult
replanForSurvivors(const CompGraph &graph, int surviving_devices,
                   DpOptions opts)
{
    PRIMEPAR_ASSERT(surviving_devices >= 1,
                    "cannot re-plan for an empty device grid");
    const ClusterTopology topo =
        ClusterTopology::paperCluster(surviving_devices);
    const CostModel cost(topo, profileModels(topo));
    SegmentedDpOptimizer dp(graph, cost, std::move(opts));
    return dp.optimize();
}

} // namespace primepar
