#include "catalog.hh"

#include <algorithm>
#include <unordered_map>

#include "catalog_cache.hh"
#include "support/logging.hh"

namespace primepar {

namespace {

/** Fill plans[s] / intraCost[s] for every sequence of @p catalog, in
 *  parallel over the sequences (each index writes its own slot). */
void
evaluateCatalog(NodeCatalog &catalog, const OpSpec &op,
                const CostModel &cost, int num_bits, ThreadPool *pool)
{
    catalog.plans.resize(catalog.seqs.size());
    catalog.intraCost.resize(catalog.seqs.size());
    parallelFor(pool, catalog.seqs.size(), [&](std::size_t s) {
        catalog.plans[s] =
            std::make_unique<OpPlan>(op, catalog.seqs[s], num_bits);
        catalog.intraCost[s] =
            cost.intraCost(*catalog.plans[s]).weighted;
    });
}

} // namespace

NodeCatalog
buildNodeCatalog(const CompGraph &graph, int node, const CostModel &cost,
                 const SpaceOptions &opts, ThreadPool *pool)
{
    const OpSpec &op = graph.node(node);
    NodeCatalog catalog;
    catalog.node = node;
    catalog.seqs =
        enumerateSequences(op, cost.topology().numBits(), opts);
    evaluateCatalog(catalog, op, cost, cost.topology().numBits(), pool);
    return catalog;
}

std::vector<std::shared_ptr<const NodeCatalog>>
buildAllNodeCatalogs(const CompGraph &graph, const CostModel &cost,
                     const SpaceOptions &opts, ThreadPool *pool,
                     CatalogCache *cache, CatalogBuildStats *stats)
{
    const int num_bits = cost.topology().numBits();
    const int num_nodes = graph.numNodes();

    // Group nodes by structural key (first-appearance order, so the
    // result is independent of threading).
    std::vector<std::string> keys(num_nodes);
    for (int i = 0; i < num_nodes; ++i) {
        keys[i] = catalogKey(graph.node(i), num_bits, opts,
                             cost.fingerprint());
    }
    std::vector<int> representative;
    std::unordered_map<std::string, int> unique_of;
    std::vector<int> unique_idx(num_nodes);
    for (int i = 0; i < num_nodes; ++i) {
        const auto [it, inserted] = unique_of.emplace(
            keys[i], static_cast<int>(representative.size()));
        if (inserted)
            representative.push_back(i);
        unique_idx[i] = it->second;
    }

    // Resolve against the cache; list what must be built.
    const int num_unique = static_cast<int>(representative.size());
    std::vector<std::shared_ptr<const NodeCatalog>> unique(num_unique);
    std::vector<int> to_build;
    for (int u = 0; u < num_unique; ++u) {
        if (cache) {
            if (auto hit = cache->find(keys[representative[u]])) {
                unique[u] = std::move(hit);
                continue;
            }
        }
        to_build.push_back(u);
    }

    // Enumerate sequences serially (cheap), then evaluate every
    // (catalog, sequence) pair through one flat parallel loop so even
    // a graph with few distinct nodes saturates the pool.
    std::vector<std::shared_ptr<NodeCatalog>> fresh(to_build.size());
    std::vector<std::size_t> offset(to_build.size() + 1, 0);
    for (std::size_t b = 0; b < to_build.size(); ++b) {
        const int node = representative[to_build[b]];
        auto catalog = std::make_shared<NodeCatalog>();
        catalog->node = node;
        catalog->seqs =
            enumerateSequences(graph.node(node), num_bits, opts);
        catalog->plans.resize(catalog->seqs.size());
        catalog->intraCost.resize(catalog->seqs.size());
        offset[b + 1] = offset[b] + catalog->seqs.size();
        fresh[b] = std::move(catalog);
    }
    parallelFor(pool, offset.back(), [&](std::size_t w) {
        const std::size_t b =
            static_cast<std::size_t>(
                std::upper_bound(offset.begin(), offset.end(), w) -
                offset.begin()) -
            1;
        NodeCatalog &catalog = *fresh[b];
        const std::size_t s = w - offset[b];
        const OpSpec &op = graph.node(catalog.node);
        catalog.plans[s] =
            std::make_unique<OpPlan>(op, catalog.seqs[s], num_bits);
        catalog.intraCost[s] =
            cost.intraCost(*catalog.plans[s]).weighted;
    });

    for (std::size_t b = 0; b < to_build.size(); ++b) {
        std::shared_ptr<const NodeCatalog> catalog = std::move(fresh[b]);
        if (cache) {
            catalog = cache->insert(keys[representative[to_build[b]]],
                                    std::move(catalog));
        }
        unique[to_build[b]] = std::move(catalog);
    }

    std::vector<std::shared_ptr<const NodeCatalog>> result(num_nodes);
    for (int i = 0; i < num_nodes; ++i)
        result[i] = unique[unique_idx[i]];
    if (stats) {
        stats->built = static_cast<int>(to_build.size());
        stats->cacheHits = num_nodes - stats->built;
    }
    return result;
}

namespace {

/** Layout-class assignment: unique boundary layouts and per-seq ids. */
struct LayoutClasses
{
    std::vector<TensorLayout> classes;
    std::vector<int> classOf; ///< per sequence
};

/** Byte-serialize a device-box set for hashed class lookup (the boxes
 *  of all candidate layouts of one edge endpoint have identical shape,
 *  so the flat stream is unambiguous). */
std::string
boxKey(const std::vector<std::vector<SliceRange>> &device_box)
{
    std::string key;
    std::size_t ranges = 0;
    for (const auto &box : device_box)
        ranges += box.size();
    key.reserve(sizeof(std::int64_t) * (2 * ranges + 1));
    const auto append = [&key](std::int64_t v) {
        key.append(reinterpret_cast<const char *>(&v), sizeof(v));
    };
    append(static_cast<std::int64_t>(device_box.size()));
    for (const auto &box : device_box) {
        for (const SliceRange &r : box) {
            append(r.start);
            append(r.end);
        }
    }
    return key;
}

LayoutClasses
classify(const OpSpec &op, const NodeCatalog &catalog,
         const TensorRef &ref, Phase phase, bool at_end,
         const EdgeDimMap &map,
         const std::vector<std::int64_t> &sizes, ThreadPool *pool)
{
    // Boundary layouts of all sequences (parallel, one slot each),
    // then a serial hashed dedup in sequence order.
    std::vector<TensorLayout> layouts(catalog.size());
    parallelFor(pool, layouts.size(), [&](std::size_t s) {
        const DsiTable &dsi = catalog.plans[s]->dsi;
        const int t = at_end ? dsi.steps() - 1 : 0;
        layouts[s] = layoutOf(op, dsi, ref, phase, t, map, sizes);
    });

    LayoutClasses result;
    std::unordered_map<std::string, int> seen;
    seen.reserve(layouts.size());
    result.classOf.reserve(catalog.size());
    for (int s = 0; s < catalog.size(); ++s) {
        auto [it, inserted] = seen.emplace(
            boxKey(layouts[s].deviceBox),
            static_cast<int>(result.classes.size()));
        if (inserted)
            result.classes.push_back(std::move(layouts[s]));
        result.classOf.push_back(it->second);
    }
    return result;
}

} // namespace

EdgeCostTable
buildEdgeCostTable(const CompGraph &graph, const GraphEdge &edge,
                   const NodeCatalog &src, const NodeCatalog &dst,
                   const CostModel &cost, ThreadPool *pool)
{
    const OpSpec &producer = graph.node(edge.src);
    const OpSpec &consumer = graph.node(edge.dst);
    const auto sizes = graph.transferSizes(edge);

    EdgeDimMap producer_map = edge.dimMap;
    EdgeDimMap consumer_map;
    for (int d : consumer.tensors[edge.dstTensor].dims)
        consumer_map.push_back(d);

    // Boundary layouts, per class.
    const auto have_fwd =
        classify(producer, src, {producer.outputTensor, false},
                 Phase::Forward, true, producer_map, sizes, pool);
    const auto need_fwd =
        classify(consumer, dst, {edge.dstTensor, false}, Phase::Forward,
                 false, consumer_map, sizes, pool);
    const auto have_bwd =
        classify(consumer, dst, {edge.dstTensor, true}, Phase::Backward,
                 true, consumer_map, sizes, pool);
    const auto need_bwd =
        classify(producer, src, {producer.outputTensor, true},
                 Phase::Backward, false, producer_map, sizes, pool);

    // Link-class-aware traffic per class pair. Sources are prepared
    // (deduplicated boxes) once per class, so each pair evaluation is
    // a tight intersection loop. Pairs are independent slots, run in
    // parallel over the flattened (have, need) index.
    auto traffic_table = [&](const LayoutClasses &have,
                             const LayoutClasses &need) {
        std::vector<CostModel::PreparedSource> prepared(
            have.classes.size());
        parallelFor(pool, prepared.size(), [&](std::size_t h) {
            prepared[h] = CostModel::prepareSource(have.classes[h]);
        });
        std::vector<CostModel::TrafficSplit> table(
            have.classes.size() * need.classes.size());
        parallelFor(pool, table.size(), [&](std::size_t idx) {
            const std::size_t h = idx / need.classes.size();
            const std::size_t n = idx % need.classes.size();
            table[idx] = cost.trafficSplit(prepared[h], need.classes[n]);
        });
        return table;
    };
    const auto fwd_traffic = traffic_table(have_fwd, need_fwd);
    const auto bwd_traffic = traffic_table(have_bwd, need_bwd);

    EdgeCostTable table;
    table.edge = &edge;
    table.srcSize = src.size();
    table.dstSize = dst.size();
    table.cost.resize(static_cast<std::size_t>(src.size()) * dst.size());

    const double bpe = consumer.bytesPerElement;
    parallelFor(pool, static_cast<std::size_t>(src.size()),
                [&](std::size_t ps) {
        const int hf = have_fwd.classOf[ps];
        const int nb = need_bwd.classOf[ps];
        for (int pd = 0; pd < dst.size(); ++pd) {
            const int nf = need_fwd.classOf[pd];
            const int hb = have_bwd.classOf[pd];
            const auto &f =
                fwd_traffic[hf * need_fwd.classes.size() + nf];
            const auto &b =
                bwd_traffic[hb * need_bwd.classes.size() + nb];
            table.cost[ps * dst.size() + pd] =
                static_cast<float>(cost.redistLatencyUs(
                    static_cast<double>(f.intraNode + b.intraNode) *
                        bpe,
                    static_cast<double>(f.interNode + b.interNode) *
                        bpe));
        }
    });
    return table;
}

} // namespace primepar
