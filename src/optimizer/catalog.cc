#include "catalog.hh"

#include <algorithm>
#include <unordered_map>

#include "catalog_cache.hh"
#include "support/logging.hh"

namespace primepar {

namespace {

/** Fill plans[s] / intraCost[s] for every sequence of @p catalog, in
 *  parallel over the sequences (each index writes its own slot). */
void
evaluateCatalog(NodeCatalog &catalog, const OpSpec &op,
                const CostModel &cost, int num_bits, ThreadPool *pool)
{
    catalog.plans.resize(catalog.seqs.size());
    catalog.intraCost.resize(catalog.seqs.size());
    parallelFor(pool, catalog.seqs.size(), [&](std::size_t s) {
        catalog.plans[s] =
            std::make_unique<OpPlan>(op, catalog.seqs[s], num_bits);
        catalog.intraCost[s] =
            cost.intraCost(*catalog.plans[s]).weighted;
    });
}

/** Enumeration over-collects this factor past the budget, so the
 *  final keep-best cut runs on *evaluated* intra costs rather than the
 *  structural surrogate score alone. */
constexpr int kBeamOvercollect = 4;

SpaceOptions
enumerationOptions(const SpaceOptions &opts)
{
    SpaceOptions e = opts;
    if (e.candidateBudget > 0)
        e.candidateBudget *= kBeamOvercollect;
    return e;
}

/** Keep the @p budget cheapest sequences by evaluated intra cost
 *  (ties: lower index), preserving the original sequence order. */
void
trimToBudget(NodeCatalog &catalog, int budget)
{
    if (budget <= 0 || catalog.size() <= budget)
        return;
    std::vector<int> idx(catalog.seqs.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<int>(i);
    std::sort(idx.begin(), idx.end(), [&](int a, int b) {
        return catalog.intraCost[a] < catalog.intraCost[b] ||
               (catalog.intraCost[a] == catalog.intraCost[b] && a < b);
    });
    idx.resize(budget);
    std::sort(idx.begin(), idx.end());

    std::vector<PartitionSeq> seqs;
    std::vector<std::unique_ptr<OpPlan>> plans;
    std::vector<double> intra;
    seqs.reserve(idx.size());
    plans.reserve(idx.size());
    intra.reserve(idx.size());
    for (int i : idx) {
        seqs.push_back(std::move(catalog.seqs[i]));
        plans.push_back(std::move(catalog.plans[i]));
        intra.push_back(catalog.intraCost[i]);
    }
    catalog.seqs = std::move(seqs);
    catalog.plans = std::move(plans);
    catalog.intraCost = std::move(intra);
    catalog.truncated = true;
}

} // namespace

NodeCatalog
buildNodeCatalog(const CompGraph &graph, int node, const CostModel &cost,
                 const SpaceOptions &opts, ThreadPool *pool)
{
    const OpSpec &op = graph.node(node);
    NodeCatalog catalog;
    catalog.node = node;
    EnumerationInfo info;
    catalog.seqs = enumerateSequences(op, cost.topology().numBits(),
                                      enumerationOptions(opts), &info);
    catalog.spaceSize = info.totalSequences;
    catalog.truncated = info.truncated;
    evaluateCatalog(catalog, op, cost, cost.topology().numBits(), pool);
    trimToBudget(catalog, opts.candidateBudget);
    return catalog;
}

std::vector<std::shared_ptr<const NodeCatalog>>
buildAllNodeCatalogs(const CompGraph &graph, const CostModel &cost,
                     const SpaceOptions &opts, ThreadPool *pool,
                     CatalogCache *cache, CatalogBuildStats *stats)
{
    const int num_bits = cost.topology().numBits();
    const int num_nodes = graph.numNodes();

    // Group nodes by structural key (first-appearance order, so the
    // result is independent of threading).
    std::vector<std::string> keys(num_nodes);
    for (int i = 0; i < num_nodes; ++i) {
        keys[i] = catalogKey(graph.node(i), num_bits, opts,
                             cost.fingerprint());
    }
    std::vector<int> representative;
    std::unordered_map<std::string, int> unique_of;
    std::vector<int> unique_idx(num_nodes);
    for (int i = 0; i < num_nodes; ++i) {
        const auto [it, inserted] = unique_of.emplace(
            keys[i], static_cast<int>(representative.size()));
        if (inserted)
            representative.push_back(i);
        unique_idx[i] = it->second;
    }

    // Resolve against the cache; list what must be built.
    const int num_unique = static_cast<int>(representative.size());
    std::vector<std::shared_ptr<const NodeCatalog>> unique(num_unique);
    std::vector<int> to_build;
    for (int u = 0; u < num_unique; ++u) {
        if (cache) {
            if (auto hit = cache->find(keys[representative[u]])) {
                unique[u] = std::move(hit);
                continue;
            }
        }
        to_build.push_back(u);
    }

    // Enumerate sequences serially (cheap), then evaluate every
    // (catalog, sequence) pair through one flat parallel loop so even
    // a graph with few distinct nodes saturates the pool.
    std::vector<std::shared_ptr<NodeCatalog>> fresh(to_build.size());
    std::vector<std::size_t> offset(to_build.size() + 1, 0);
    const SpaceOptions enum_opts = enumerationOptions(opts);
    for (std::size_t b = 0; b < to_build.size(); ++b) {
        const int node = representative[to_build[b]];
        auto catalog = std::make_shared<NodeCatalog>();
        catalog->node = node;
        EnumerationInfo info;
        catalog->seqs = enumerateSequences(graph.node(node), num_bits,
                                           enum_opts, &info);
        catalog->spaceSize = info.totalSequences;
        catalog->truncated = info.truncated;
        catalog->plans.resize(catalog->seqs.size());
        catalog->intraCost.resize(catalog->seqs.size());
        offset[b + 1] = offset[b] + catalog->seqs.size();
        fresh[b] = std::move(catalog);
    }
    parallelFor(pool, offset.back(), [&](std::size_t w) {
        const std::size_t b =
            static_cast<std::size_t>(
                std::upper_bound(offset.begin(), offset.end(), w) -
                offset.begin()) -
            1;
        NodeCatalog &catalog = *fresh[b];
        const std::size_t s = w - offset[b];
        const OpSpec &op = graph.node(catalog.node);
        catalog.plans[s] =
            std::make_unique<OpPlan>(op, catalog.seqs[s], num_bits);
        catalog.intraCost[s] =
            cost.intraCost(*catalog.plans[s]).weighted;
    });

    for (std::size_t b = 0; b < to_build.size(); ++b) {
        trimToBudget(*fresh[b], opts.candidateBudget);
        std::shared_ptr<const NodeCatalog> catalog = std::move(fresh[b]);
        if (cache) {
            catalog = cache->insert(keys[representative[to_build[b]]],
                                    std::move(catalog));
        }
        unique[to_build[b]] = std::move(catalog);
    }

    std::vector<std::shared_ptr<const NodeCatalog>> result(num_nodes);
    for (int i = 0; i < num_nodes; ++i)
        result[i] = unique[unique_idx[i]];
    if (stats) {
        stats->built = static_cast<int>(to_build.size());
        stats->cacheHits = num_nodes - stats->built;
    }
    return result;
}

namespace {

/** Layout-class assignment: unique boundary layouts and per-seq ids. */
struct LayoutClasses
{
    std::vector<TensorLayout> classes;
    std::vector<int> classOf; ///< per sequence
};

/** Byte-serialize a device-box set for hashed class lookup (the boxes
 *  of all candidate layouts of one edge endpoint have identical shape,
 *  so the flat stream is unambiguous). */
std::string
boxKey(const std::vector<std::vector<SliceRange>> &device_box)
{
    std::string key;
    std::size_t ranges = 0;
    for (const auto &box : device_box)
        ranges += box.size();
    key.reserve(sizeof(std::int64_t) * (2 * ranges + 1));
    const auto append = [&key](std::int64_t v) {
        key.append(reinterpret_cast<const char *>(&v), sizeof(v));
    };
    append(static_cast<std::int64_t>(device_box.size()));
    for (const auto &box : device_box) {
        for (const SliceRange &r : box) {
            append(r.start);
            append(r.end);
        }
    }
    return key;
}

LayoutClasses
classify(const OpSpec &op, const NodeCatalog &catalog,
         const std::vector<std::int32_t> *cand, const TensorRef &ref,
         Phase phase, bool at_end, const EdgeDimMap &map,
         const std::vector<std::int64_t> &sizes, ThreadPool *pool)
{
    // Boundary layouts of all candidate positions (parallel, one slot
    // each), then a serial hashed dedup in position order.
    const std::size_t count =
        cand ? cand->size() : static_cast<std::size_t>(catalog.size());
    std::vector<TensorLayout> layouts(count);
    parallelFor(pool, layouts.size(), [&](std::size_t p) {
        const std::size_t s =
            cand ? static_cast<std::size_t>((*cand)[p]) : p;
        const DsiTable &dsi = catalog.plans[s]->dsi;
        const int t = at_end ? dsi.steps() - 1 : 0;
        layouts[p] = layoutOf(op, dsi, ref, phase, t, map, sizes);
    });

    LayoutClasses result;
    std::unordered_map<std::string, int> seen;
    seen.reserve(layouts.size());
    result.classOf.reserve(count);
    for (std::size_t p = 0; p < count; ++p) {
        auto [it, inserted] = seen.emplace(
            boxKey(layouts[p].deviceBox),
            static_cast<int>(result.classes.size()));
        if (inserted)
            result.classes.push_back(std::move(layouts[p]));
        result.classOf.push_back(it->second);
    }
    return result;
}

} // namespace

EdgeCostTable
buildEdgeCostTable(const CompGraph &graph, const GraphEdge &edge,
                   const NodeCatalog &src, const NodeCatalog &dst,
                   const CostModel &cost, ThreadPool *pool,
                   const EdgeTableOptions &topts)
{
    const OpSpec &producer = graph.node(edge.src);
    const OpSpec &consumer = graph.node(edge.dst);
    const auto sizes = graph.transferSizes(edge);

    EdgeDimMap producer_map = edge.dimMap;
    EdgeDimMap consumer_map;
    for (int d : consumer.tensors[edge.dstTensor].dims)
        consumer_map.push_back(d);

    // Boundary layouts, per class, over the candidate positions.
    const auto have_fwd = classify(producer, src, topts.srcCandidates,
                                   {producer.outputTensor, false},
                                   Phase::Forward, true, producer_map,
                                   sizes, pool);
    const auto need_fwd = classify(consumer, dst, topts.dstCandidates,
                                   {edge.dstTensor, false},
                                   Phase::Forward, false, consumer_map,
                                   sizes, pool);
    const auto have_bwd = classify(consumer, dst, topts.dstCandidates,
                                   {edge.dstTensor, true},
                                   Phase::Backward, true, consumer_map,
                                   sizes, pool);
    const auto need_bwd = classify(producer, src, topts.srcCandidates,
                                   {producer.outputTensor, true},
                                   Phase::Backward, false, producer_map,
                                   sizes, pool);

    const int src_count = topts.srcCandidates
                              ? static_cast<int>(topts.srcCandidates->size())
                              : src.size();
    const int dst_count = topts.dstCandidates
                              ? static_cast<int>(topts.dstCandidates->size())
                              : dst.size();

    // Joint dominance bound (see EdgeTableOptions::pairBudget): a
    // class pair is evaluated iff at least one of its sequence pairs
    // can still be on an optimal plan — i.e. the per-class intra
    // minima fit the budget. Per-sequence entries over the budget are
    // priced +inf below without ever computing their traffic.
    const bool budgeted =
        topts.pairBudget < std::numeric_limits<double>::infinity();
    std::vector<double> intra_src(src_count), intra_dst(dst_count);
    if (budgeted) {
        for (int p = 0; p < src_count; ++p)
            intra_src[p] = src.intraCost[topts.srcCandidates
                                             ? (*topts.srcCandidates)[p]
                                             : p];
        for (int p = 0; p < dst_count; ++p)
            intra_dst[p] = dst.intraCost[topts.dstCandidates
                                             ? (*topts.dstCandidates)[p]
                                             : p];
    }
    const auto class_min = [&](const LayoutClasses &lc,
                               const std::vector<double> &intra) {
        std::vector<double> mins(
            lc.classes.size(), std::numeric_limits<double>::infinity());
        for (std::size_t p = 0; p < lc.classOf.size(); ++p)
            mins[lc.classOf[p]] = std::min(mins[lc.classOf[p]], intra[p]);
        return mins;
    };

    // Link-class-aware traffic per class pair. Sources are prepared
    // (deduplicated boxes, plus the grid index on the fast path) once
    // per class, so each pair evaluation is a tight intersection loop.
    // Pairs are independent slots, run in parallel over the flattened
    // (have, need) index. Both paths produce identical integers.
    auto traffic_table = [&](const LayoutClasses &have,
                             const LayoutClasses &need,
                             const std::vector<double> &have_intra,
                             const std::vector<double> &need_intra) {
        std::vector<CostModel::TrafficSplit> table(
            have.classes.size() * need.classes.size());
        std::vector<double> have_min, need_min;
        if (budgeted) {
            have_min = class_min(have, have_intra);
            need_min = class_min(need, need_intra);
        }
        const auto hopeless = [&](std::size_t idx) {
            if (!budgeted)
                return false;
            const std::size_t h = idx / need.classes.size();
            const std::size_t n = idx % need.classes.size();
            return have_min[h] + need_min[n] > topts.pairBudget;
        };

        // Cross-edge memo: resolve already-priced geometry pairs up
        // front; only the leftovers hit the traffic evaluators.
        std::vector<std::string> have_keys, need_keys;
        std::vector<char> memoized(table.size(), 0);
        if (topts.memo) {
            const auto length_prefixed = [](const std::string &k) {
                const std::int64_t len =
                    static_cast<std::int64_t>(k.size());
                std::string out(reinterpret_cast<const char *>(&len),
                                sizeof(len));
                out += k;
                return out;
            };
            have_keys.reserve(have.classes.size());
            for (const auto &c : have.classes)
                have_keys.push_back(length_prefixed(boxKey(c.deviceBox)));
            need_keys.reserve(need.classes.size());
            for (const auto &c : need.classes)
                need_keys.push_back(length_prefixed(boxKey(c.deviceBox)));
            std::lock_guard<std::mutex> lock(topts.memo->mutex);
            for (std::size_t idx = 0; idx < table.size(); ++idx) {
                if (hopeless(idx))
                    continue;
                const auto it = topts.memo->map.find(
                    have_keys[idx / need.classes.size()] +
                    need_keys[idx % need.classes.size()]);
                if (it != topts.memo->map.end()) {
                    table[idx] = it->second;
                    memoized[idx] = 1;
                }
            }
        }
        const auto resolved = [&](std::size_t idx) {
            return hopeless(idx) || memoized[idx];
        };
        // Classes whose every pair is already resolved need no
        // prepared source/need structures at all.
        std::vector<char> have_used(have.classes.size(), 0);
        std::vector<char> need_used(need.classes.size(), 0);
        for (std::size_t idx = 0; idx < table.size(); ++idx) {
            if (resolved(idx))
                continue;
            have_used[idx / need.classes.size()] = 1;
            need_used[idx % need.classes.size()] = 1;
        }
        const auto publish = [&]() {
            if (!topts.memo)
                return;
            std::lock_guard<std::mutex> lock(topts.memo->mutex);
            for (std::size_t idx = 0; idx < table.size(); ++idx) {
                if (hopeless(idx) || memoized[idx])
                    continue;
                topts.memo->map.emplace(
                    have_keys[idx / need.classes.size()] +
                        need_keys[idx % need.classes.size()],
                    table[idx]);
            }
        };
        if (topts.fastTraffic) {
            std::vector<CostModel::PreparedSourceGrid> grids(
                have.classes.size());
            parallelFor(pool, grids.size(), [&](std::size_t h) {
                if (have_used[h])
                    grids[h] = cost.prepareSourceGrid(have.classes[h]);
            });
            std::vector<CostModel::PreparedNeed> needs(
                need.classes.size());
            parallelFor(pool, needs.size(), [&](std::size_t n) {
                if (need_used[n])
                    needs[n] = cost.prepareNeed(need.classes[n]);
            });
            parallelFor(pool, table.size(), [&](std::size_t idx) {
                if (resolved(idx))
                    return;
                const std::size_t h = idx / need.classes.size();
                const std::size_t n = idx % need.classes.size();
                table[idx] = cost.trafficSplitFast(grids[h], needs[n]);
            });
        } else {
            std::vector<CostModel::PreparedSource> prepared(
                have.classes.size());
            parallelFor(pool, prepared.size(), [&](std::size_t h) {
                if (have_used[h])
                    prepared[h] =
                        CostModel::prepareSource(have.classes[h]);
            });
            parallelFor(pool, table.size(), [&](std::size_t idx) {
                if (resolved(idx))
                    return;
                const std::size_t h = idx / need.classes.size();
                const std::size_t n = idx % need.classes.size();
                table[idx] =
                    cost.trafficSplit(prepared[h], need.classes[n]);
            });
        }
        publish();
        return table;
    };
    const auto fwd_traffic =
        traffic_table(have_fwd, need_fwd, intra_src, intra_dst);
    const auto bwd_traffic =
        traffic_table(have_bwd, need_bwd, intra_dst, intra_src);

    EdgeCostTable table;
    table.edge = &edge;
    table.srcSize = src_count;
    table.dstSize = dst_count;
    table.cost.resize(static_cast<std::size_t>(src_count) * dst_count);

    const double bpe = consumer.bytesPerElement;
    parallelFor(pool, static_cast<std::size_t>(src_count),
                [&](std::size_t ps) {
        const int hf = have_fwd.classOf[ps];
        const int nb = need_bwd.classOf[ps];
        for (int pd = 0; pd < dst_count; ++pd) {
            if (budgeted &&
                intra_src[ps] + intra_dst[pd] > topts.pairBudget) {
                table.cost[ps * dst_count + pd] =
                    std::numeric_limits<float>::infinity();
                continue;
            }
            const int nf = need_fwd.classOf[pd];
            const int hb = have_bwd.classOf[pd];
            const auto &f =
                fwd_traffic[hf * need_fwd.classes.size() + nf];
            const auto &b =
                bwd_traffic[hb * need_bwd.classes.size() + nb];
            table.cost[ps * dst_count + pd] =
                static_cast<float>(cost.redistLatencyUs(
                    static_cast<double>(f.intraNode + b.intraNode) *
                        bpe,
                    static_cast<double>(f.interNode + b.interNode) *
                        bpe));
        }
    });
    return table;
}

} // namespace primepar
