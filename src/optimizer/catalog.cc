#include "catalog.hh"

#include <map>

#include "support/logging.hh"

namespace primepar {

NodeCatalog
buildNodeCatalog(const CompGraph &graph, int node, const CostModel &cost,
                 const SpaceOptions &opts)
{
    const OpSpec &op = graph.node(node);
    NodeCatalog catalog;
    catalog.node = node;
    catalog.seqs =
        enumerateSequences(op, cost.topology().numBits(), opts);
    catalog.plans.reserve(catalog.seqs.size());
    catalog.intraCost.reserve(catalog.seqs.size());
    for (const auto &seq : catalog.seqs) {
        catalog.plans.push_back(std::make_unique<OpPlan>(
            op, seq, cost.topology().numBits()));
        catalog.intraCost.push_back(
            cost.intraCost(*catalog.plans.back()).weighted);
    }
    return catalog;
}

namespace {

/** Layout-class assignment: unique boundary layouts and per-seq ids. */
struct LayoutClasses
{
    std::vector<TensorLayout> classes;
    std::vector<int> classOf; ///< per sequence
};

LayoutClasses
classify(const OpSpec &op, const NodeCatalog &catalog,
         const TensorRef &ref, Phase phase, bool at_end,
         const EdgeDimMap &map,
         const std::vector<std::int64_t> &sizes)
{
    LayoutClasses result;
    std::map<std::vector<std::vector<SliceRange>>, int> seen;
    result.classOf.reserve(catalog.size());
    for (int s = 0; s < catalog.size(); ++s) {
        const DsiTable &dsi = catalog.plans[s]->dsi;
        const int t = at_end ? dsi.steps() - 1 : 0;
        TensorLayout layout = layoutOf(op, dsi, ref, phase, t, map, sizes);
        auto [it, inserted] =
            seen.emplace(layout.deviceBox, static_cast<int>(
                                               result.classes.size()));
        if (inserted)
            result.classes.push_back(std::move(layout));
        result.classOf.push_back(it->second);
    }
    return result;
}

} // namespace

EdgeCostTable
buildEdgeCostTable(const CompGraph &graph, const GraphEdge &edge,
                   const NodeCatalog &src, const NodeCatalog &dst,
                   const CostModel &cost)
{
    const OpSpec &producer = graph.node(edge.src);
    const OpSpec &consumer = graph.node(edge.dst);
    const auto sizes = graph.transferSizes(edge);

    EdgeDimMap producer_map = edge.dimMap;
    EdgeDimMap consumer_map;
    for (int d : consumer.tensors[edge.dstTensor].dims)
        consumer_map.push_back(d);

    // Boundary layouts, per class.
    const auto have_fwd =
        classify(producer, src, {producer.outputTensor, false},
                 Phase::Forward, true, producer_map, sizes);
    const auto need_fwd =
        classify(consumer, dst, {edge.dstTensor, false}, Phase::Forward,
                 false, consumer_map, sizes);
    const auto have_bwd =
        classify(consumer, dst, {edge.dstTensor, true}, Phase::Backward,
                 true, consumer_map, sizes);
    const auto need_bwd =
        classify(producer, src, {producer.outputTensor, true},
                 Phase::Backward, false, producer_map, sizes);

    // Link-class-aware traffic per class pair. Sources are prepared
    // (deduplicated boxes) once per class, so each pair evaluation is
    // a tight intersection loop.
    auto traffic_table = [&](const LayoutClasses &have,
                             const LayoutClasses &need) {
        std::vector<CostModel::PreparedSource> prepared;
        prepared.reserve(have.classes.size());
        for (const auto &h : have.classes)
            prepared.push_back(CostModel::prepareSource(h));
        std::vector<CostModel::TrafficSplit> table(
            have.classes.size() * need.classes.size());
        for (std::size_t h = 0; h < have.classes.size(); ++h) {
            for (std::size_t n = 0; n < need.classes.size(); ++n) {
                table[h * need.classes.size() + n] =
                    cost.trafficSplit(prepared[h], need.classes[n]);
            }
        }
        return table;
    };
    const auto fwd_traffic = traffic_table(have_fwd, need_fwd);
    const auto bwd_traffic = traffic_table(have_bwd, need_bwd);

    EdgeCostTable table;
    table.edge = &edge;
    table.srcSize = src.size();
    table.dstSize = dst.size();
    table.cost.resize(static_cast<std::size_t>(src.size()) * dst.size());

    const double bpe = consumer.bytesPerElement;
    for (int ps = 0; ps < src.size(); ++ps) {
        const int hf = have_fwd.classOf[ps];
        const int nb = need_bwd.classOf[ps];
        for (int pd = 0; pd < dst.size(); ++pd) {
            const int nf = need_fwd.classOf[pd];
            const int hb = have_bwd.classOf[pd];
            const auto &f =
                fwd_traffic[hf * need_fwd.classes.size() + nf];
            const auto &b =
                bwd_traffic[hb * need_bwd.classes.size() + nb];
            table.cost[static_cast<std::size_t>(ps) * dst.size() + pd] =
                static_cast<float>(cost.redistLatencyUs(
                    static_cast<double>(f.intraNode + b.intraNode) *
                        bpe,
                    static_cast<double>(f.interNode + b.interNode) *
                        bpe));
        }
    }
    return table;
}

} // namespace primepar
