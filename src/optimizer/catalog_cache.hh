/**
 * @file
 * Memoization of node catalogs across structurally identical operators.
 *
 * Transformer models repeat the same operator structures many times —
 * the two layernorms and the two residual adds of one block are
 * already identical, and cluster-search loops re-plan the same graph
 * against many configurations. A catalog depends only on the
 * *structure* of the operator (dims, tensors, passes — not its name),
 * the device-id bit count, the space options, and the cost model's
 * parameter fingerprint, so catalogs are shared through a thread-safe
 * cache keyed by exactly those inputs.
 */

#ifndef PRIMEPAR_OPTIMIZER_CATALOG_CACHE_HH
#define PRIMEPAR_OPTIMIZER_CATALOG_CACHE_HH

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "catalog.hh"
#include "dp_core.hh"

namespace primepar {

class MetricsRegistry;

/**
 * Serialize everything a catalog's contents depend on: the structural
 * fields of @p op (names excluded — "ln1" and "ln2" share), the bit
 * count, the space options, and @p cost_fingerprint
 * (CostModel::fingerprint()).
 */
std::string catalogKey(const OpSpec &op, int num_bits,
                       const SpaceOptions &opts,
                       const std::string &cost_fingerprint);

/**
 * Thread-safe shared-ownership store for the planner's memoizable
 * artifacts. Three keyspaces share one instance:
 *   - node catalogs (catalogKey);
 *   - solved segment Bellman matrices (the planner's segment keys,
 *     which serialize the member catalogs' keys, the surviving
 *     candidate lists, and the interior edge structure) under a byte
 *     budget — matrices at large device counts are the dominant
 *     memory cost;
 *   - whole-plan results (graph-level keys).
 * Entries are immutable once inserted; concurrent inserts under the
 * same key keep the first entry (later callers adopt it), so all
 * holders share one object.
 */
class CatalogCache
{
  public:
    /** Look up a catalog; nullptr when absent. Counts hit/miss. */
    std::shared_ptr<const NodeCatalog> find(const std::string &key);

    /** Insert under @p key; returns the resident entry (the existing
     *  one if another thread won the race). */
    std::shared_ptr<const NodeCatalog>
    insert(const std::string &key,
           std::shared_ptr<const NodeCatalog> catalog);

    /** Number of distinct catalogs stored. */
    std::size_t size() const;
    /** find() calls that returned an entry. */
    std::size_t hits() const;
    /** find() calls that returned nullptr. */
    std::size_t misses() const;

    /** Look up a solved segment; nullptr when absent. A hit marks the
     *  entry most-recently-used. */
    std::shared_ptr<const DpSegment> findSegment(const std::string &key);

    /**
     * Insert a solved segment under the byte budget, evicting
     * least-recently-used entries to make room (a long-lived plan
     * server must keep caching its *current* hot keys, not the first
     * keys it ever saw). A segment larger than the whole budget is
     * rejected — still returned for use, just not resident. Eviction
     * and rejection counts surface through segmentEvictions() /
     * segmentRejections() and, when a registry is attached, the
     * planner.cache_evicted / planner.cache_rejected counters.
     */
    std::shared_ptr<const DpSegment>
    insertSegment(const std::string &key,
                  std::shared_ptr<const DpSegment> segment);

    /** Cap on resident segment bytes (default 512 MiB). Shrinking it
     *  below the resident size evicts LRU entries immediately. */
    void setSegmentByteBudget(std::size_t bytes);
    std::size_t segmentBytes() const;
    std::size_t segmentHits() const;
    std::size_t segmentMisses() const;
    /** Segments displaced to make room for newer ones. */
    std::size_t segmentEvictions() const;
    /** Segments never stored because they alone exceed the budget. */
    std::size_t segmentRejections() const;

    /** Optional sink for planner.cache_evicted / planner.cache_rejected
     *  counters (not owned; may be nullptr). */
    void setMetrics(MetricsRegistry *m);

    /** Look up a whole-plan result; nullptr when absent. */
    std::shared_ptr<const PlanCacheEntry> findPlan(const std::string &key);

    /** Insert a whole-plan result (first insert wins). */
    std::shared_ptr<const PlanCacheEntry>
    insertPlan(const std::string &key,
               std::shared_ptr<const PlanCacheEntry> plan);

    std::size_t planHits() const;
    std::size_t planMisses() const;

  private:
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const NodeCatalog>>
        entries;
    std::size_t hitCount = 0;
    std::size_t missCount = 0;

    /** Resident segment plus its position in the LRU order. */
    struct SegmentSlot
    {
        std::shared_ptr<const DpSegment> segment;
        std::size_t bytes = 0;
        std::list<std::string>::iterator lruPos;
    };
    void evictSegmentsLocked(std::size_t needed);

    std::unordered_map<std::string, SegmentSlot> segments;
    /** Keys from most- to least-recently used. */
    std::list<std::string> segmentLru;
    std::size_t segmentByteBudget = std::size_t{512} << 20;
    std::size_t segmentByteCount = 0;
    std::size_t segmentHitCount = 0;
    std::size_t segmentMissCount = 0;
    std::size_t segmentEvictCount = 0;
    std::size_t segmentRejectCount = 0;
    MetricsRegistry *metrics = nullptr;

    std::unordered_map<std::string, std::shared_ptr<const PlanCacheEntry>>
        plans;
    std::size_t planHitCount = 0;
    std::size_t planMissCount = 0;
};

} // namespace primepar

#endif // PRIMEPAR_OPTIMIZER_CATALOG_CACHE_HH
