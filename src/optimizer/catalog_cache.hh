/**
 * @file
 * Memoization of node catalogs across structurally identical operators.
 *
 * Transformer models repeat the same operator structures many times —
 * the two layernorms and the two residual adds of one block are
 * already identical, and cluster-search loops re-plan the same graph
 * against many configurations. A catalog depends only on the
 * *structure* of the operator (dims, tensors, passes — not its name),
 * the device-id bit count, the space options, and the cost model's
 * parameter fingerprint, so catalogs are shared through a thread-safe
 * cache keyed by exactly those inputs.
 */

#ifndef PRIMEPAR_OPTIMIZER_CATALOG_CACHE_HH
#define PRIMEPAR_OPTIMIZER_CATALOG_CACHE_HH

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "catalog.hh"

namespace primepar {

/**
 * Serialize everything a catalog's contents depend on: the structural
 * fields of @p op (names excluded — "ln1" and "ln2" share), the bit
 * count, the space options, and @p cost_fingerprint
 * (CostModel::fingerprint()).
 */
std::string catalogKey(const OpSpec &op, int num_bits,
                       const SpaceOptions &opts,
                       const std::string &cost_fingerprint);

/**
 * Thread-safe shared-ownership catalog store. Entries are immutable
 * once inserted; concurrent inserts under the same key keep the first
 * entry (last caller adopts it), so all holders share one catalog.
 */
class CatalogCache
{
  public:
    /** Look up a catalog; nullptr when absent. Counts hit/miss. */
    std::shared_ptr<const NodeCatalog> find(const std::string &key);

    /** Insert under @p key; returns the resident entry (the existing
     *  one if another thread won the race). */
    std::shared_ptr<const NodeCatalog>
    insert(const std::string &key,
           std::shared_ptr<const NodeCatalog> catalog);

    /** Number of distinct catalogs stored. */
    std::size_t size() const;
    /** find() calls that returned an entry. */
    std::size_t hits() const;
    /** find() calls that returned nullptr. */
    std::size_t misses() const;

  private:
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const NodeCatalog>>
        entries;
    std::size_t hitCount = 0;
    std::size_t missCount = 0;
};

} // namespace primepar

#endif // PRIMEPAR_OPTIMIZER_CATALOG_CACHE_HH
