/**
 * @file
 * Per-node strategy catalogs and per-edge cost tables.
 *
 * The segmented DP works over, for every node, the enumerated
 * partition space with precomputed intra-operator costs, and for every
 * edge, a dense (producer-seq x consumer-seq) table of inter-operator
 * costs. Edge tables are built over *layout classes*: many sequences
 * induce the same boundary distribution of the transferred tensor, so
 * traffic is evaluated once per class pair instead of once per
 * sequence pair.
 */

#ifndef PRIMEPAR_OPTIMIZER_CATALOG_HH
#define PRIMEPAR_OPTIMIZER_CATALOG_HH

#include <memory>
#include <vector>

#include "cost/cost_model.hh"
#include "graph/graph.hh"
#include "partition/space.hh"

namespace primepar {

/** The strategy space of one node with cached evaluation artifacts. */
struct NodeCatalog
{
    int node = -1;
    std::vector<PartitionSeq> seqs;
    std::vector<std::unique_ptr<OpPlan>> plans;
    /** Eq. 7 weighted intra cost per sequence. */
    std::vector<double> intraCost;

    int size() const { return static_cast<int>(seqs.size()); }
};

/** Build the catalog of a node under the given space options. */
NodeCatalog buildNodeCatalog(const CompGraph &graph, int node,
                             const CostModel &cost,
                             const SpaceOptions &opts);

/** Dense inter-operator cost table of one edge. */
struct EdgeCostTable
{
    const GraphEdge *edge = nullptr;
    int srcSize = 0;
    int dstSize = 0;
    std::vector<float> cost; ///< [srcSeq * dstSize + dstSeq], us

    double
    at(int src_seq, int dst_seq) const
    {
        return cost[static_cast<std::size_t>(src_seq) * dstSize +
                    dst_seq];
    }
};

/**
 * Build the cost table of @p edge: forward + backward redistribution
 * traffic (Eq. 9) through the fitted redistribution latency model.
 */
EdgeCostTable buildEdgeCostTable(const CompGraph &graph,
                                 const GraphEdge &edge,
                                 const NodeCatalog &src,
                                 const NodeCatalog &dst,
                                 const CostModel &cost);

} // namespace primepar

#endif // PRIMEPAR_OPTIMIZER_CATALOG_HH
