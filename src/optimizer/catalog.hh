/**
 * @file
 * Per-node strategy catalogs and per-edge cost tables.
 *
 * The segmented DP works over, for every node, the enumerated
 * partition space with precomputed intra-operator costs, and for every
 * edge, a dense (producer-seq x consumer-seq) table of inter-operator
 * costs. Edge tables are built over *layout classes*: many sequences
 * induce the same boundary distribution of the transferred tensor, so
 * traffic is evaluated once per class pair instead of once per
 * sequence pair.
 *
 * Construction is embarrassingly parallel (one output slot per
 * sequence / class pair / sequence pair) and accepts an optional
 * ThreadPool; results are identical at any thread count. Catalogs of
 * structurally identical nodes are shared via CatalogCache (see
 * catalog_cache.hh).
 */

#ifndef PRIMEPAR_OPTIMIZER_CATALOG_HH
#define PRIMEPAR_OPTIMIZER_CATALOG_HH

#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.hh"
#include "graph/graph.hh"
#include "partition/space.hh"
#include "support/parallel.hh"

namespace primepar {

class CatalogCache;

/** The strategy space of one node with cached evaluation artifacts. */
struct NodeCatalog
{
    /** The node this catalog was built for. When the catalog is shared
     *  through a CatalogCache this is the *first* node that needed it
     *  (all sharers are structurally identical). */
    int node = -1;
    std::vector<PartitionSeq> seqs;
    std::vector<std::unique_ptr<OpPlan>> plans;
    /** Eq. 7 weighted intra cost per sequence. */
    std::vector<double> intraCost;
    /** Leaves of the full partition space (>= seqs.size()). */
    std::size_t spaceSize = 0;
    /** True iff SpaceOptions::candidateBudget dropped sequences: the
     *  catalog is an approximate cover of the space and downstream
     *  results must report a cost gap. */
    bool truncated = false;

    int size() const { return static_cast<int>(seqs.size()); }
};

/** Build the catalog of a node under the given space options. */
NodeCatalog buildNodeCatalog(const CompGraph &graph, int node,
                             const CostModel &cost,
                             const SpaceOptions &opts,
                             ThreadPool *pool = nullptr);

/** Outcome counters of a buildAllNodeCatalogs call. */
struct CatalogBuildStats
{
    /** Catalogs actually constructed. */
    int built = 0;
    /** Nodes served by an existing catalog (same-graph duplicate or
     *  CatalogCache entry from an earlier run). */
    int cacheHits = 0;
};

/**
 * Build (or fetch) the catalogs of every node of @p graph. Nodes with
 * identical structural keys share one catalog; @p cache (optional)
 * extends the sharing across optimizer invocations. Plan and cost
 * evaluation is flattened over all (node, sequence) pairs and run on
 * @p pool (optional).
 */
std::vector<std::shared_ptr<const NodeCatalog>>
buildAllNodeCatalogs(const CompGraph &graph, const CostModel &cost,
                     const SpaceOptions &opts, ThreadPool *pool = nullptr,
                     CatalogCache *cache = nullptr,
                     CatalogBuildStats *stats = nullptr);

/** Dense inter-operator cost table of one edge. */
struct EdgeCostTable
{
    const GraphEdge *edge = nullptr;
    int srcSize = 0;
    int dstSize = 0;
    std::vector<float> cost; ///< [srcSeq * dstSize + dstSeq], us

    double
    at(int src_seq, int dst_seq) const
    {
        return cost[static_cast<std::size_t>(src_seq) * dstSize +
                    dst_seq];
    }
};

/**
 * Cross-edge memo of class-pair traffic splits. Traffic depends only
 * on the two boundary device-box geometries and the topology, so
 * edges carrying identically-shaped tensors (most of a transformer
 * block) ask the same questions — one run-scoped memo answers them
 * once. Thread-safe; a duplicate concurrent computation stores the
 * same integers, so results stay deterministic.
 */
struct TrafficMemo
{
    std::mutex mutex;
    std::unordered_map<std::string, CostModel::TrafficSplit> map;
};

/** Table-construction knobs (all defaults = the legacy behavior). */
struct EdgeTableOptions
{
    /**
     * Restrict the table to these sequence indices of the endpoint
     * catalogs (ascending; nullptr = all). Rows/columns are *candidate
     * positions*: at(p_s, p_d) prices srcCandidates[p_s] against
     * dstCandidates[p_d]. The segmented DP passes its dominance-pruned
     * survivor lists here, shrinking table work quadratically.
     */
    const std::vector<std::int32_t> *srcCandidates = nullptr;
    const std::vector<std::int32_t> *dstCandidates = nullptr;
    /** Evaluate class-pair traffic through the grid-indexed fast path
     *  (CostModel::trafficSplitFast) — exact, bit-identical values. */
    bool fastTraffic = false;
    /**
     * Joint dominance bound: a sequence pair whose summed intra cost
     * exceeds this is on no optimal plan (the planner passes its pilot
     * upper bound minus the best completion of the remaining nodes),
     * so its traffic is never evaluated and its entry is set to +inf.
     * +inf (the default) evaluates every pair.
     */
    double pairBudget = std::numeric_limits<double>::infinity();
    /** Optional cross-edge traffic memo (see TrafficMemo). */
    TrafficMemo *memo = nullptr;
};

/**
 * Build the cost table of @p edge: forward + backward redistribution
 * traffic (Eq. 9) through the fitted redistribution latency model.
 */
EdgeCostTable buildEdgeCostTable(const CompGraph &graph,
                                 const GraphEdge &edge,
                                 const NodeCatalog &src,
                                 const NodeCatalog &dst,
                                 const CostModel &cost,
                                 ThreadPool *pool = nullptr,
                                 const EdgeTableOptions &topts = {});

} // namespace primepar

#endif // PRIMEPAR_OPTIMIZER_CATALOG_HH
