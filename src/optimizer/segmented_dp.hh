/**
 * @file
 * Segmented dynamic programming optimizer (paper Sec. 5).
 *
 * The transformer computation graph is not a chain: residual and V
 * edges skip nodes, which breaks plain left-to-right DP (Assumptions
 * 1-2 of the paper). The graph is therefore cut into *segments* at the
 * source nodes of extended (skip) edges; within each segment the
 * Bellman recurrences of Eqs. 11-12 apply, and segments are merged via
 * Eqs. 13-14 (subtracting the shared boundary node's intra cost and
 * adding the skip edge spanning the merge). Identical stacked layers
 * are combined by recursive doubling in log(#layers) merges.
 *
 * The planner itself is parallel: catalog construction, edge-table
 * evaluation and the Bellman/merge row loops run on a ThreadPool with
 * one output slot per index, so results are bit-identical at any
 * thread count (see support/parallel.hh). Catalogs of structurally
 * identical nodes are shared, optionally across invocations through a
 * caller-supplied CatalogCache.
 *
 * Large topologies are handled by three composable layers (DESIGN.md
 * Sec. 11): exact dominance pruning driven by a pilot upper bound
 * (DpOptions::pruneDominated — byte-identical results, order-of-
 * magnitude faster), an explicitly approximate beam over each
 * operator's space with a certified cost gap (DpOptions::beamWidth),
 * and memoization of pruned catalogs, solved segments, and whole plans
 * in the CatalogCache.
 */

#ifndef PRIMEPAR_OPTIMIZER_SEGMENTED_DP_HH
#define PRIMEPAR_OPTIMIZER_SEGMENTED_DP_HH

#include <memory>
#include <vector>

#include "catalog.hh"
#include "catalog_cache.hh"

namespace primepar {

class MetricsRegistry;

/** Options of one optimization run. */
struct DpOptions
{
    /** Per-operator space options (PSquare on/off, excluded dims). */
    SpaceOptions space;
    /** Stacked identical layers to optimize for. */
    int numLayers = 1;
    /** Planner threads; 0 = hardware concurrency. Any value yields
     *  bit-identical strategies and costs. */
    int numThreads = 0;
    /** Optional catalog store shared across runs (and with
     *  bruteForceOptimize). nullptr still deduplicates identical
     *  nodes within the run. With pruning enabled it additionally
     *  memoizes solved segments and whole plans. */
    std::shared_ptr<CatalogCache> catalogCache;

    /**
     * Exact dominance pruning. A cheap pilot DP over each node's
     * best-intra candidates yields an upper bound; sequences and
     * Bellman states provably unable to beat it are dropped, and edge
     * tables are built over the survivors through the grid-indexed
     * traffic fast path. The result — strategies and all costs — is
     * byte-identical to the exhaustive planner at any thread count
     * (see DESIGN.md for the proof); false selects the legacy
     * exhaustive path, kept as the A/B baseline.
     */
    bool pruneDominated = true;

    /**
     * 0 = exact over the full space. > 0 enables the explicitly
     * approximate big-topology mode: each operator keeps only this
     * many candidate sequences (the best by evaluated intra cost among
     * a structurally preselected 4x pool), and the result reports a
     * certified optimality gap (DpResult::gapPct). This is what makes
     * 512-4096-device planning tractable — the full per-operator space
     * there has 10^5-10^8 sequences.
     */
    int beamWidth = 0;

    /** Candidates per node in the pruning pilot pass. Any value >= 1
     *  is exact; larger finds tighter bounds sooner, smaller is
     *  cheaper. */
    int pilotWidth = 24;

    /** Optional sink for planner counters and phase timings
     *  ("planner.*" names); may be nullptr. */
    MetricsRegistry *metrics = nullptr;
};

/** Result of an optimization run. */
struct DpResult
{
    /** Chosen partition sequence per graph node (one layer). */
    std::vector<PartitionSeq> strategies;
    /** Optimal single-layer cost C_{0,last} (Eq. 10), us. */
    double layerCost = 0.0;
    /** Stacked-model cost over numLayers (recursive merging), us. */
    double totalCost = 0.0;
    /** Wall-clock optimization time, ms. */
    double optimizationMs = 0.0;

    /** Per-phase planner timings (sum <= optimizationMs), ms. */
    double catalogMs = 0.0;   ///< catalog construction / cache lookup
    double pilotMs = 0.0;     ///< pruning pilot (upper-bound) pass
    double edgeTableMs = 0.0; ///< edge cost tables
    double dpMs = 0.0;        ///< Bellman + merge + reconstruction

    /** Catalogs built vs nodes served from a shared catalog. */
    int catalogsBuilt = 0;
    int catalogCacheHits = 0;

    /** Materialized sequences summed over nodes, before and after
     *  dominance pruning (equal when pruning is off). */
    std::int64_t candidatesTotal = 0;
    std::int64_t candidatesKept = 0;
    /** Bellman/merge states proven unable to reach a plan within the
     *  pilot upper bound and skipped. */
    std::int64_t statesPruned = 0;

    /** True iff beamWidth truncated at least one operator's space —
     *  only then can the result be suboptimal. */
    bool truncated = false;
    /** Certified lower bound on the achievable layer cost, us. Equals
     *  layerCost when the result is provably optimal. */
    double lowerBoundUs = 0.0;
    /** Certified relative suboptimality bound of layerCost, percent.
     *  Exactly 0 when the result is provably optimal. */
    double gapPct = 0.0;

    /** Segments of this run served from the cache's segment store. */
    int segmentCacheHits = 0;
    /** Whole result served from the cache's plan store. */
    bool planCacheHit = false;
};

/** The optimizer: builds catalogs and tables, runs the segmented DP. */
class SegmentedDpOptimizer
{
  public:
    SegmentedDpOptimizer(const CompGraph &graph, const CostModel &cost,
                         DpOptions opts);

    /** Run the full optimization. */
    DpResult optimize();

  private:
    const CompGraph &graph;
    const CostModel &cost;
    DpOptions opts;
};

/**
 * Exhaustive reference: minimize Eq. 10 by enumerating all strategy
 * combinations. Exponential — for validating the DP on small graphs.
 * @p cache may share catalogs with SegmentedDpOptimizer runs;
 * @p num_threads parallelizes catalog/table construction (the
 * enumeration itself stays serial — it is the reference).
 */
DpResult bruteForceOptimize(const CompGraph &graph, const CostModel &cost,
                            const SpaceOptions &space,
                            CatalogCache *cache = nullptr,
                            int num_threads = 1);

/**
 * Cache key of a whole optimization run — the key
 * CatalogCache::findPlan and the persistent plan store share. Covers
 * every input the resulting plan depends on: the structural operator
 * signatures (via catalogKey, which folds in the device-bit count,
 * the space options, and CostModel::fingerprint()), the edge
 * structure, and the planner options that change the search
 * (numLayers, pruning, beam, pilot width).
 */
std::string planCacheKey(const CompGraph &graph, const CostModel &cost,
                         const DpOptions &opts);

/**
 * Re-plan after permanent device failures: build the paper cluster of
 * @p surviving_devices (a power of two), profile its latency models,
 * and run the segmented DP for the shrunken grid. This is the recovery
 * entry the fault-tolerant runtime calls when a 2^n grid degrades to
 * 2^(n-1) survivors.
 */
DpResult replanForSurvivors(const CompGraph &graph, int surviving_devices,
                            DpOptions opts = {});

} // namespace primepar

#endif // PRIMEPAR_OPTIMIZER_SEGMENTED_DP_HH
