#include "redistribution.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace primepar {

std::int64_t
TensorLayout::boxVolume(std::int64_t device) const
{
    std::int64_t v = 1;
    for (const auto &r : deviceBox[device])
        v *= r.length();
    return v;
}

TensorLayout
layoutOf(const OpSpec &op, const DsiTable &dsi, const TensorRef &ref,
         Phase phase, int t, const EdgeDimMap &dim_map,
         const std::vector<std::int64_t> &transfer_sizes)
{
    PRIMEPAR_ASSERT(dim_map.size() == transfer_sizes.size(),
                    "edge dim map size mismatch");
    for (int op_dim : dim_map) {
        if (op_dim < 0)
            continue;
        const auto &dims = op.tensors[ref.tensor].dims;
        PRIMEPAR_ASSERT(std::find(dims.begin(), dims.end(), op_dim) !=
                            dims.end(),
                        "edge maps transfer dim onto dim ", op_dim,
                        " absent from tensor ", op.refName(ref), " of ",
                        op.name);
    }
    TensorLayout layout;
    layout.dimSizes = transfer_sizes;
    layout.deviceBox.resize(dsi.numDevices());

    for (std::int64_t dev = 0; dev < dsi.numDevices(); ++dev) {
        auto &box = layout.deviceBox[dev];
        box.reserve(dim_map.size());
        for (std::size_t i = 0; i < dim_map.size(); ++i) {
            const int op_dim = dim_map[i];
            if (op_dim < 0) {
                box.push_back({0, transfer_sizes[i]});
                continue;
            }
            // Rescale the op-dim slice into transfer-dim units: slice
            // j of s slices covers [j/s, (j+1)/s) of the dimension.
            // Floor-based boundaries tile the dim exactly even when
            // the transfer size is not divisible by the slice count
            // (e.g. 112 heads over 32 ways).
            const std::int64_t s = dsi.sliceCount(op_dim);
            const std::int64_t idx = dsi.value(phase, dev, t, op_dim);
            const std::int64_t start = idx * transfer_sizes[i] / s;
            const std::int64_t end = (idx + 1) * transfer_sizes[i] / s;
            box.push_back({start, end});
        }
    }
    return layout;
}

RedistPlan
planRedistribution(const TensorLayout &have, const TensorLayout &need,
                   const ClusterTopology *topo)
{
    PRIMEPAR_ASSERT(have.numDevices() == need.numDevices(),
                    "layout device count mismatch");
    PRIMEPAR_ASSERT(have.dimSizes == need.dimSizes,
                    "layout dim size mismatch");

    // Group source devices by identical box (replicas).
    std::map<std::vector<SliceRange>, std::vector<std::int64_t>> classes;
    for (std::int64_t dev = 0; dev < have.numDevices(); ++dev)
        classes[have.deviceBox[dev]].push_back(dev);

    RedistPlan plan;
    for (std::int64_t dst = 0; dst < need.numDevices(); ++dst) {
        const auto &need_box = need.deviceBox[dst];
        for (const auto &[src_box, holders] : classes) {
            std::vector<SliceRange> region;
            std::int64_t volume = 1;
            bool empty = false;
            region.reserve(need_box.size());
            for (std::size_t d = 0; d < need_box.size(); ++d) {
                const std::int64_t s =
                    std::max(need_box[d].start, src_box[d].start);
                const std::int64_t e =
                    std::min(need_box[d].end, src_box[d].end);
                if (e <= s) {
                    empty = true;
                    break;
                }
                region.push_back({s, e});
                volume *= e - s;
            }
            if (empty)
                continue;

            // Local if this device holds the source box itself.
            bool local = false;
            for (std::int64_t h : holders) {
                if (h == dst) {
                    local = true;
                    break;
                }
            }
            if (local) {
                plan.localElements += volume;
                continue;
            }

            // Prefer a same-node replica when topology is known.
            std::int64_t src = holders.front();
            if (topo) {
                for (std::int64_t h : holders) {
                    if (topo->sameNode(h, dst)) {
                        src = h;
                        break;
                    }
                }
            }
            plan.transfers.push_back(
                {src, dst, std::move(region), volume});
            plan.totalElements += volume;
        }
    }
    return plan;
}

} // namespace primepar
