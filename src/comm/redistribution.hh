/**
 * @file
 * Inter-operator tensor redistribution (paper Sec. 4.2, Eqs. 8-9).
 *
 * When the output of operator n1 feeds operator n2 and the two are
 * partitioned differently, every device must fetch the part of its
 * n2-input that its local n1-output does not cover. Distributions are
 * axis-aligned boxes derived from the boundary DSIs (last temporal
 * step of n1, first temporal step of n2); distinct producer boxes are
 * pairwise disjoint and tile the tensor, so the fetch decomposes
 * exactly into box intersections.
 */

#ifndef PRIMEPAR_COMM_REDISTRIBUTION_HH
#define PRIMEPAR_COMM_REDISTRIBUTION_HH

#include <cstdint>
#include <vector>

#include "partition/dsi.hh"
#include "partition/op_spec.hh"
#include "topology/cluster.hh"

namespace primepar {

/**
 * Placement of a logical (transfer) tensor across devices: one box per
 * device, in transfer-tensor coordinates.
 */
struct TensorLayout
{
    std::vector<std::int64_t> dimSizes;           ///< transfer dims
    std::vector<std::vector<SliceRange>> deviceBox; ///< per device

    std::int64_t numDevices() const
    {
        return static_cast<std::int64_t>(deviceBox.size());
    }

    /** Element volume of one device's box. */
    std::int64_t boxVolume(std::int64_t device) const;
};

/**
 * Mapping from the dims of the transfer tensor onto the dims of the
 * holding operator. Entry i gives the op-dim index corresponding to
 * transfer dim i, or -1 if the op does not split that dim (the device
 * then holds the full range of it). Dimension *sizes* may differ
 * between the two operators (e.g. the fused QKV output dim maps onto
 * the head dim); slice boundaries are rescaled proportionally, which
 * is exact for the power-of-two slice counts PrimePar produces.
 */
using EdgeDimMap = std::vector<int>;

/**
 * Build the layout of a transfer tensor with dims @p transfer_sizes as
 * held by operator @p op under @p dsi, reading tensor @p ref at
 * (@p phase, @p t). @p dim_map maps transfer dims to op dims.
 */
TensorLayout layoutOf(const OpSpec &op, const DsiTable &dsi,
                      const TensorRef &ref, Phase phase, int t,
                      const EdgeDimMap &dim_map,
                      const std::vector<std::int64_t> &transfer_sizes);

/** One box moved from one device to another. */
struct BlockTransfer
{
    std::int64_t src = -1;
    std::int64_t dst = -1;
    std::vector<SliceRange> region;
    std::int64_t elements = 0;
};

/** A complete redistribution plan between two layouts. */
struct RedistPlan
{
    std::vector<BlockTransfer> transfers;
    /** Total elements moved across all devices (Eq. 9 numerator). */
    std::int64_t totalElements = 0;
    /** Elements that stayed local (the intersection term of Eq. 9). */
    std::int64_t localElements = 0;
};

/**
 * Plan the redistribution turning layout @p have into layout @p need.
 *
 * For each destination device the needed box is intersected with the
 * distinct source boxes; intersections held locally cost nothing,
 * others become transfers. When @p topo is given, replicated source
 * boxes are fetched from a same-node holder when possible.
 */
RedistPlan planRedistribution(const TensorLayout &have,
                              const TensorLayout &need,
                              const ClusterTopology *topo = nullptr);

} // namespace primepar

#endif // PRIMEPAR_COMM_REDISTRIBUTION_HH
