#include "spmd_executor.hh"

#include <algorithm>

#include "errors.hh"
#include "support/logging.hh"
#include "tensor/einsum.hh"
#include "tensor/ops.hh"

namespace primepar {

SpmdOpExecutor::SpmdOpExecutor(OpSpec op_in, PartitionSeq seq_in,
                               int num_bits, bool overlap_comm,
                               DeviceSpan owned)
    : op(std::move(op_in)), seq(std::move(seq_in)),
      dsiTable(op, seq, num_bits), overlapComm(overlap_comm),
      ownedSpan(owned)
{
    PRIMEPAR_ASSERT(ownedSpan.all() ||
                        (ownedSpan.first >= 0 && ownedSpan.count > 0 &&
                         ownedSpan.first + ownedSpan.count <=
                             dsiTable.numDevices()),
                    "owned device span [", ownedSpan.first, ", ",
                    ownedSpan.first + ownedSpan.count,
                    ") out of range for ", dsiTable.numDevices(),
                    " devices");
    for (std::size_t p = 0; p < op.passes.size(); ++p)
        passComms.push_back(
            derivePassComm(op, seq, dsiTable, static_cast<int>(p)));
}

std::string
SpmdOpExecutor::refKey(const TensorRef &ref) const
{
    return op.refName(ref);
}

void
SpmdOpExecutor::setHealth(RuntimeHealth *h, GuardOptions g)
{
    health = h;
    guard = g;
    ownedGuard = h ? std::make_unique<GuardObserver>(h, g) : nullptr;
    rebuildObserverChain();
}

void
SpmdOpExecutor::addObserver(RuntimeObserver *o)
{
    if (o)
        userObservers.push_back(o);
    rebuildObserverChain();
}

void
SpmdOpExecutor::clearObservers()
{
    userObservers.clear();
    rebuildObserverChain();
}

void
SpmdOpExecutor::rebuildObserverChain()
{
    observers.clear();
    for (RuntimeObserver *o : userObservers)
        observers.add(o);
    if (ownedGuard)
        observers.add(ownedGuard.get());
}

std::vector<std::int64_t>
SpmdOpExecutor::tupleAt(const TensorRef &ref, Phase phase,
                        std::int64_t dev, int t) const
{
    std::vector<std::int64_t> tuple;
    for (int d : op.tensors[ref.tensor].dims)
        tuple.push_back(dsiTable.value(phase, dev, t, d));
    return tuple;
}

Tensor
SpmdOpExecutor::sliceFor(const TensorRef &ref, const Tensor &full,
                         Phase phase, std::int64_t dev, int t) const
{
    const auto &dims = op.tensors[ref.tensor].dims;
    std::vector<std::int64_t> starts, extents;
    for (int d : dims) {
        const SliceRange r = dsiTable.sliceRange(phase, dev, t, d);
        starts.push_back(r.start);
        extents.push_back(r.length());
    }
    return full.slice(starts, extents);
}

void
SpmdOpExecutor::scatter(const TensorRef &ref, const Tensor &full,
                        Phase phase, int t)
{
    TensorStore store(dsiTable.numDevices());
    const bool tracing = observed();
    const std::string label =
        tracing ? op.name + " scatter " + refKey(ref) : std::string();
    // Each device fills only its own slot; sliceFor/tupleAt are pure
    // reads of the DSI table. onSpan is declared concurrency-safe.
    // Every rank gets its partition tuple; only owned ranks pay for
    // the data slice (the sharded span skips the rest).
    parallelFor(pool, static_cast<std::size_t>(dsiTable.numDevices()),
                [&](std::size_t dev) {
                    const auto d = static_cast<std::int64_t>(dev);
                    const double t0 = tracing ? observerNowUs() : 0.0;
                    if (ownsDev(d))
                        store[dev].data =
                            sliceFor(ref, full, phase, d, t);
                    store[dev].tuple = tupleAt(ref, phase, d, t);
                    if (tracing)
                        observers.onSpan(d, SpanKind::Redist, label, t0,
                                         observerNowUs());
                });
    stores[refKey(ref)] = std::move(store);
}

Tensor
SpmdOpExecutor::gather(const TensorRef &ref) const
{
    const auto it = stores.find(refKey(ref));
    PRIMEPAR_ASSERT(it != stores.end(), "gather of absent tensor ",
                    refKey(ref));
    const TensorStore &store = it->second;

    Shape shape;
    for (int d : op.tensors[ref.tensor].dims)
        shape.push_back(op.dims[d].size);
    Tensor full(shape);

    const auto &dims = op.tensors[ref.tensor].dims;
    std::vector<std::int64_t> extents;
    for (std::size_t i = 0; i < dims.size(); ++i)
        extents.push_back(dsiTable.sliceExtent(dims[i]));
    Shape slice_shape(extents.begin(), extents.end());

    // Non-owned ranks have no local data: their slices arrive over
    // the transport's "gather" channel in one all-gather. Every
    // participant walks the ranks in the same ascending order — the
    // owner multicasts each slice to one representative rank per peer
    // span, everyone else receives exactly once — so the pairwise
    // wire order matches on both ends of every socket. The channel
    // pins the identity codec (tcp_transport), keeping the gathered
    // bytes equal to the owner's, i.e. to a replicated run's.
    const std::vector<DeviceSpan> peers =
        (!ownedSpan.all() && transport) ? transport->peerSpans()
                                        : std::vector<DeviceSpan>{};
    for (std::int64_t dev = 0; dev < dsiTable.numDevices(); ++dev) {
        std::vector<std::int64_t> starts;
        for (std::size_t i = 0; i < dims.size(); ++i)
            starts.push_back(store[dev].tuple[i] * extents[i]);
        if (ownsDev(dev)) {
            full.assignSlice(starts, store[dev].data);
            for (const DeviceSpan &peer : peers) {
                if (peer.owns(dev) || peer.count <= 0)
                    continue;
                TransferTag tag;
                tag.tensor = refKey(ref);
                tag.channel = "gather";
                tag.phase = Phase::Forward;
                tag.temporalStep = 0;
                tag.sender = dev;
                tag.receiver = peer.first;
                Tensor scratch;
                transport->transferInto(tag, store[dev].data, scratch);
            }
        } else {
            PRIMEPAR_ASSERT(transport, "gather of non-owned device ",
                            dev, " without a transport");
            TransferTag tag;
            tag.tensor = refKey(ref);
            tag.channel = "gather";
            tag.phase = Phase::Forward;
            tag.temporalStep = 0;
            tag.sender = dev;
            tag.receiver = ownedFirst();
            Tensor slice(slice_shape);
            transport->transferInto(tag, Tensor{}, slice);
            full.assignSlice(starts, slice);
        }
    }
    return full;
}

Shape
SpmdOpExecutor::fullShape(const TensorRef &ref) const
{
    Shape shape;
    for (int d : op.tensors[ref.tensor].dims)
        shape.push_back(op.dims[d].size);
    return shape;
}

void
SpmdOpExecutor::applyShifts(const std::vector<ShiftSet> &shifts,
                            Phase phase, int to_t, const char *channel)
{
    const bool tracing = observed();
    for (const ShiftSet &set : shifts) {
        auto it = stores.find(refKey(set.tensor));
        PRIMEPAR_ASSERT(it != stores.end(), "shift of absent tensor ",
                        refKey(set.tensor));
        TensorStore &store = it->second;
        const std::string label =
            tracing ? std::string(channel) + " " + refKey(set.tensor)
                    : std::string();
        // Double buffering: all sends read the pre-shift state. (With
        // a sharded span the snapshot deep-copies only the owned
        // slots — the rest carry empty data and a tuple.)
        const TensorStore snapshot = store;
        for (const Transfer &tr : set.transfers) {
            const double t0 = tracing ? observerNowUs() : 0.0;
            const bool send_local = ownsDev(tr.sender);
            const bool recv_local = ownsDev(tr.receiver);
            if (transport && (send_local || recv_local)) {
                TransferTag tag;
                tag.tensor = refKey(set.tensor);
                tag.channel = channel;
                tag.phase = phase;
                tag.temporalStep = to_t;
                tag.sender = tr.sender;
                tag.receiver = tr.receiver;
                if (send_local && !recv_local) {
                    // Wire send only: the delivered copy materializes
                    // on the owning peer, not here.
                    Tensor scratch;
                    const TransferReceipt receipt =
                        transport->transferInto(
                            tag, snapshot[tr.sender].data, scratch);
                    commStats.wireBytes += receipt.wireBytes;
                } else {
                    // Local or wire receive; an empty payload tells
                    // the transport to take the byte count from the
                    // (same-extent) destination slot.
                    const Tensor empty;
                    const Tensor &payload =
                        send_local ? snapshot[tr.sender].data : empty;
                    const TransferReceipt receipt =
                        transport->transferInto(
                            tag, payload, store[tr.receiver].data);
                    commStats.wireBytes += receipt.wireBytes;
                }
                store[tr.receiver].tuple = snapshot[tr.sender].tuple;
            } else if (!transport) {
                store[tr.receiver] = snapshot[tr.sender];
            } else {
                // Neither endpoint is owned: the values move between
                // two other workers; only the tuple advances here.
                store[tr.receiver].tuple = snapshot[tr.sender].tuple;
            }
            if (tracing)
                observers.onSpan(tr.receiver, SpanKind::Ring, label, t0,
                                 observerNowUs());
        }
        commStats.ringElements +=
            set.elementsPerTransfer *
            static_cast<std::int64_t>(set.transfers.size());
    }
}

void
SpmdOpExecutor::postRingShifts(RingBatch &batch,
                               const std::vector<ShiftSet> &shifts,
                               Phase phase, int to_t)
{
    const bool tracing = observed();
    for (const ShiftSet &set : shifts) {
        const std::string key = refKey(set.tensor);
        const auto it = stores.find(key);
        PRIMEPAR_ASSERT(it != stores.end(), "shift of absent tensor ",
                        key);
        TensorStore &store = it->second;
        const std::string label =
            tracing ? "ring " + key : std::string();
        for (const Transfer &tr : set.transfers) {
            PendingRecv recv;
            recv.set = &set;
            recv.src = &store[tr.sender].data;
            recv.receiver = tr.receiver;
            recv.label = label;
            // The pre-shift tuple, captured now: the store slots are
            // not rewritten until the commit, so this is the same
            // snapshot semantics as the synchronous path — without
            // the snapshot's deep copy of the whole store.
            recv.tuple = store[tr.sender].tuple;
            const bool send_local = ownsDev(tr.sender);
            const bool recv_local = ownsDev(tr.receiver);
            // Sharded span: a transfer touching no owned endpoint is
            // a tuple-only update; a send-only transfer keeps its
            // staged tensor as wire scratch and never commits it.
            recv.doTransfer = send_local || recv_local;
            recv.commitData = recv_local;
            if (recv_local && !send_local)
                // Pre-size the staging buffer: the wire receive takes
                // its expected byte count from the destination, and
                // ring slices share the receiver slot's extents.
                recv.staged = Tensor(store[tr.receiver].data.shape());
            if (transport) {
                recv.tag.tensor = key;
                recv.tag.channel = "ring";
                recv.tag.phase = phase;
                recv.tag.temporalStep = to_t;
                recv.tag.sender = tr.sender;
                recv.tag.receiver = tr.receiver;
            }
            batch.recvs.push_back(std::move(recv));
        }
        batch.elements +=
            set.elementsPerTransfer *
            static_cast<std::int64_t>(set.transfers.size());
    }

    // One task for the whole step's ring traffic: the transport sees
    // the same serial transfer order as the synchronous path, just on
    // the comm thread instead of between compute sections. A transfer
    // fault escapes the task and resurfaces at the wait() inside
    // commitRingShifts() — within the same step journal.
    commWorker.post([this, &batch, tracing] {
        for (PendingRecv &recv : batch.recvs) {
            const double t0 = tracing ? observerNowUs() : 0.0;
            if (transport && recv.doTransfer) {
                const TransferReceipt receipt = transport->transferInto(
                    recv.tag, *recv.src, recv.staged);
                batch.wireBytes += receipt.wireBytes;
            } else if (!transport) {
                recv.staged = *recv.src;
            }
            if (tracing)
                observers.onSpan(recv.receiver, SpanKind::Ring,
                                 recv.label, t0, observerNowUs());
        }
    });
}

void
SpmdOpExecutor::commitRingShifts(RingBatch &batch)
{
    // The join: rethrows a posted-ahead transfer's fault into the
    // step journal before any staged value becomes visible, so a
    // rollback re-executes exactly this step. The RingJoin span is
    // the exposed (un-hidden) part of the posted transfer time —
    // what overlapStats() charges against the overlap budget.
    const bool tracing = observed();
    const double t0 = tracing ? observerNowUs() : 0.0;
    commWorker.wait();
    if (tracing)
        observers.onSpan(0, SpanKind::RingJoin, "ring join", t0,
                         observerNowUs());
    for (PendingRecv &recv : batch.recvs) {
        TensorStore &store = stores.at(refKey(recv.set->tensor));
        if (recv.commitData)
            store[recv.receiver].data = std::move(recv.staged);
        store[recv.receiver].tuple = std::move(recv.tuple);
    }
    commStats.ringElements += batch.elements;
    commStats.wireBytes += batch.wireBytes;
}

void
SpmdOpExecutor::runJournaled(const std::function<void()> &body)
{
    if (!(transport && transport->faultTolerant())) {
        body();
        return;
    }
    // Bounded in-flight log: one temporal step's worth of mutable
    // device state. A transfer whose retry budget is exhausted unwinds
    // here; the step is rolled back and re-executed from the journal.
    constexpr int kMaxStepRetries = 3;
    for (int tries = 0;; ++tries) {
        auto stores_journal = stores;
        auto aux_journal = aux;
        const CommStats stats_journal = commStats;
        try {
            body();
            return;
        } catch (const TransientFaultError &err) {
            if (tries >= kMaxStepRetries)
                throw;
            stores = std::move(stores_journal);
            aux = std::move(aux_journal);
            commStats = stats_journal;
            if (health) {
                ++health->stepRollbacks;
                health->recordEvent(
                    {FaultKind::None,
                     std::string("temporal step rolled back after: ") +
                         err.what(),
                     err.tensor, err.step, err.sender, err.receiver,
                     tries});
            }
            observers.onRollback(err.step);
        }
    }
}

Tensor
SpmdOpExecutor::computeLocal(const PassSpec &pass, std::int64_t dev,
                             int t)
{
    (void)t;
    auto slot = [&](const TensorRef &ref) -> const Tensor & {
        const auto it = stores.find(refKey(ref));
        PRIMEPAR_ASSERT(it != stores.end(), "operand ", refKey(ref),
                        " missing on device ", dev);
        return it->second[dev].data;
    };
    auto operand_by_grad = [&](bool grad) -> const TensorRef & {
        for (const TensorRef &ref : pass.operands) {
            if (ref.grad == grad)
                return ref;
        }
        PRIMEPAR_PANIC("pass has no operand with grad=", grad, " in op ",
                       op.name);
    };

    Shape out_shape;
    for (int d : op.tensors[pass.output.tensor].dims)
        out_shape.push_back(dsiTable.sliceExtent(d));
    Tensor partial(out_shape);

    if (op.kind == "linear" || op.kind == "matmul") {
        PRIMEPAR_ASSERT(pass.operands.size() == 2,
                        "contraction pass needs two operands");
        const TensorRef &a = pass.operands[0];
        const TensorRef &b = pass.operands[1];
        contractProduct(slot(a), op.tensors[a.tensor].dims, slot(b),
                        op.tensors[b.tensor].dims, partial,
                        op.tensors[pass.output.tensor].dims);
        return partial;
    }
    if (op.kind == "add") {
        if (pass.phase == Phase::Forward) {
            partial = slot(pass.operands[0]);
            partial.add(slot(pass.operands[1]));
        } else {
            partial = slot(pass.operands[0]); // gradient pass-through
        }
        return partial;
    }
    if (op.kind == "elementwise") {
        const bool is_gelu = op.name.find("gelu") != std::string::npos;
        const bool is_relu = op.name.find("relu") != std::string::npos;
        if (pass.phase == Phase::Forward) {
            const Tensor &x = slot(pass.operands[0]);
            partial = is_gelu ? gelu(x) : is_relu ? relu(x) : x;
        } else {
            const Tensor &dy = slot(operand_by_grad(true));
            const Tensor &x = slot(operand_by_grad(false));
            partial = is_gelu   ? geluBackward(x, dy)
                      : is_relu ? reluBackward(x, dy)
                                : dy;
        }
        return partial;
    }
    if (op.kind == "softmax") {
        if (pass.phase == Phase::Forward) {
            partial = softmaxLastDim(slot(pass.operands[0]));
        } else {
            partial = softmaxBackward(slot(operand_by_grad(false)),
                                      slot(operand_by_grad(true)));
        }
        return partial;
    }
    if (op.kind == "layernorm") {
        // The normalized dimension must be whole on each device (its
        // partitioned execution is cost-model-only).
        PRIMEPAR_ASSERT(dsiTable.sliceCount(op.normalizedDim) == 1,
                        "SpmdOpExecutor requires the normalized dim "
                        "of ",
                        op.name, " to be unpartitioned");
        const TensorRef input_ref{0, false};
        const TensorRef gamma_ref{1, false};
        if (pass.phase == Phase::Forward) {
            const Tensor &x = slot(input_ref);
            const Tensor &gamma = slot(gamma_ref);
            const Tensor beta(gamma.shape());
            const LayerNormResult res =
                layerNormForward(x, gamma, beta);
            // Stores were pre-sized serially in runPass(); only this
            // device's slot is written here (parallel-safe).
            aux.at("ln_mean")[dev].data = res.mean;
            aux.at("ln_inv")[dev].data = res.inv_std;
            return res.output;
        }
        if (pass.phase == Phase::Backward) {
            const Tensor &x = slot(input_ref);
            const Tensor &gamma = slot(gamma_ref);
            const Tensor &dy = slot(operand_by_grad(true));
            LayerNormResult fwd;
            PRIMEPAR_ASSERT(aux.count("ln_mean") &&
                                aux.at("ln_mean")[dev].data.numel() > 0,
                            "layernorm backward before forward");
            fwd.mean = aux.at("ln_mean")[dev].data;
            fwd.inv_std = aux.at("ln_inv")[dev].data;
            LayerNormGrads grads =
                layerNormBackward(x, fwd, gamma, dy);
            aux.at("ln_dgamma")[dev].data = std::move(grads.d_gamma);
            return grads.d_input;
        }
        // Gradient: the gamma gradient cached during backward.
        PRIMEPAR_ASSERT(aux.count("ln_dgamma") &&
                            aux.at("ln_dgamma")[dev].data.numel() > 0,
                        "layernorm gradient before backward");
        return aux.at("ln_dgamma")[dev].data;
    }
    PRIMEPAR_PANIC("SpmdOpExecutor does not execute kind ", op.kind);
}

void
SpmdOpExecutor::runPass(int pass_index,
                        const std::map<std::string, Tensor> &inputs)
{
    const PassSpec &pass = op.passes[pass_index];
    const PassComm &comm = passComms[pass_index];
    const int steps = dsiTable.steps();
    const bool tracing = observed();

    // Pre-size auxiliary stores before any parallel region: a lazy
    // resize inside computeLocal would be a structural data race once
    // devices run concurrently.
    if (op.kind == "layernorm" && !aux.count("ln_mean")) {
        aux["ln_mean"].resize(dsiTable.numDevices());
        aux["ln_inv"].resize(dsiTable.numDevices());
        aux["ln_dgamma"].resize(dsiTable.numDevices());
    }

    // Position operands: scatter on first use; otherwise the stashed
    // distribution must already align (operational feature 3).
    for (const TensorRef &ref : pass.operands) {
        const std::string key = refKey(ref);
        if (!stores.count(key)) {
            const auto it = inputs.find(key);
            if (it == inputs.end())
                throw InputError(op.name, phaseName(pass.phase), key,
                                 fullShape(ref), {});
            if (it->second.shape() != fullShape(ref))
                throw InputError(op.name, phaseName(pass.phase), key,
                                 fullShape(ref), it->second.shape());
            scatter(ref, it->second, pass.phase, 0);
            continue;
        }
        for (std::int64_t dev = 0; dev < dsiTable.numDevices(); ++dev) {
            PRIMEPAR_ASSERT(
                stores[key][dev].tuple ==
                    tupleAt(ref, pass.phase, dev, 0),
                "stashed tensor ", key, " misaligned entering ",
                phaseName(pass.phase), " on device ", dev,
                " (feature 3 violated)");
        }
    }

    // Fresh zero accumulators tagged with the step-0 output block.
    Shape acc_shape;
    for (int d : op.tensors[pass.output.tensor].dims)
        acc_shape.push_back(dsiTable.sliceExtent(d));
    TensorStore acc(dsiTable.numDevices());
    parallelFor(pool, static_cast<std::size_t>(dsiTable.numDevices()),
                [&](std::size_t dev) {
                    const auto d = static_cast<std::int64_t>(dev);
                    if (ownsDev(d))
                        acc[dev].data = Tensor(acc_shape);
                    acc[dev].tuple =
                        tupleAt(pass.output, pass.phase, d, 0);
                });
    const std::string out_key = refKey(pass.output);
    stores[out_key] = std::move(acc);

    for (int t = 0; t < steps; ++t) {
        // A rollback restores the whole store map, so the output store
        // must be re-looked-up inside each (re-)execution of the step.
        runJournaled([&] {
            TensorStore &out_store = stores.at(out_key);
            if (t > 0 && !comm.accShifts[t - 1].empty()) {
                applyShifts(comm.accShifts[t - 1], pass.phase, t,
                            "acc");
            }
            // After any migration the accumulator must sit on the
            // block this device owns at step t.
            for (std::int64_t dev = 0; dev < dsiTable.numDevices();
                 ++dev) {
                PRIMEPAR_ASSERT(
                    out_store[dev].tuple ==
                        tupleAt(pass.output, pass.phase, dev, t),
                    "accumulator misplaced at step ", t);
            }
            // Post the ring shifts toward step t+1 *before* compute:
            // they move operand tensors this step only reads, so the
            // sends and the blocked GEMMs overlap, with the receives
            // parked in staging buffers until the barrier. The step
            // shifts never move the pass output (accumulator moves
            // are accShifts), which is what makes the overlap legal.
            RingBatch batch;
            const bool posted =
                overlapComm && !comm.stepShifts[t].empty();
            if (posted) {
                for (const ShiftSet &set : comm.stepShifts[t])
                    PRIMEPAR_ASSERT(refKey(set.tensor) != out_key,
                                    "step shift of the pass output");
                postRingShifts(batch, comm.stepShifts[t], pass.phase,
                               t + 1);
            }
            // The per-device sub-operators of this temporal step are
            // independent: each device reads only already-positioned
            // operand slots and accumulates into its own accumulator.
            const std::string compute_label =
                tracing ? op.name + " " + phaseName(pass.phase) + " t" +
                              std::to_string(t)
                        : std::string();
            try {
                // Only owned ranks compute: a sharded span's other
                // ranks run on their owning workers.
                parallelFor(
                    pool, static_cast<std::size_t>(ownedCount()),
                    [&](std::size_t idx) {
                        const std::int64_t d =
                            ownedFirst() +
                            static_cast<std::int64_t>(idx);
                        const double t0 =
                            tracing ? observerNowUs() : 0.0;
                        const Tensor partial =
                            computeLocal(pass, d, t);
                        out_store[d].data.add(partial);
                        if (tracing)
                            observers.onSpan(d, SpanKind::Compute,
                                             compute_label, t0,
                                             observerNowUs());
                    });
            } catch (...) {
                // Never unwind past an in-flight batch — the batch
                // storage dies with this frame. The compute error
                // outranks whatever the comm worker ran into.
                if (posted) {
                    try {
                        commWorker.wait();
                    } catch (...) {
                    }
                }
                throw;
            }
            if (posted)
                commitRingShifts(batch);
            else if (!comm.stepShifts[t].empty())
                applyShifts(comm.stepShifts[t], pass.phase, t + 1,
                            "ring");
        });
    }

    // Grouped all-reduce of partial sums (conventional partitions).
    if (comm.allReduce.has_value()) {
        const AllReduceSpec &spec = *comm.allReduce;
        runJournaled([&] {
            TensorStore &out_store = stores.at(out_key);
            for (const DeviceGroup &group : spec.groups) {
                if (group.size() < 2)
                    continue;
                const double g0 = tracing ? observerNowUs() : 0.0;
                const std::int64_t leader = group[0];
                const bool leader_local = ownsDev(leader);
                for (std::size_t i = 1; i < group.size(); ++i)
                    PRIMEPAR_ASSERT(out_store[group[i]].tuple ==
                                        out_store[leader].tuple,
                                    "all-reduce group block mismatch");
                // Reduce to the group leader with a fixed order, then
                // broadcast — each hop is a tracked transfer. A
                // sharded span takes part only in the hops that touch
                // an owned rank; the members are still walked in the
                // same ascending order on every worker, so the
                // leader's owner adds the partials in exactly the
                // order a replicated run would.
                Tensor sum;
                if (leader_local)
                    sum = out_store[leader].data;
                for (std::size_t i = 1; i < group.size(); ++i) {
                    const std::int64_t member = group[i];
                    const bool member_local = ownsDev(member);
                    if (!transport) {
                        sum.add(out_store[member].data);
                        continue;
                    }
                    if (!leader_local && !member_local)
                        continue;
                    TransferTag tag;
                    tag.tensor = out_key;
                    tag.channel = "allreduce";
                    tag.phase = pass.phase;
                    tag.temporalStep = steps;
                    tag.sender = member;
                    tag.receiver = leader;
                    if (leader_local) {
                        Tensor recv;
                        if (!member_local)
                            recv = Tensor(
                                out_store[leader].data.shape());
                        const Tensor empty;
                        const Tensor &payload =
                            member_local ? out_store[member].data
                                         : empty;
                        commStats.wireBytes +=
                            transport->transferInto(tag, payload, recv)
                                .wireBytes;
                        sum.add(recv);
                    } else {
                        // Only the member is owned here: wire-send
                        // its partial to the leader's owner.
                        Tensor scratch;
                        commStats.wireBytes +=
                            transport
                                ->transferInto(
                                    tag, out_store[member].data,
                                    scratch)
                                .wireBytes;
                    }
                }
                for (std::size_t i = 0; i < group.size(); ++i) {
                    const std::int64_t member = group[i];
                    const bool member_local = ownsDev(member);
                    if (!transport) {
                        out_store[member].data = sum;
                        continue;
                    }
                    if (i == 0) {
                        if (leader_local)
                            out_store[leader].data = sum;
                        continue;
                    }
                    if (!leader_local && !member_local)
                        continue;
                    TransferTag tag;
                    tag.tensor = out_key;
                    tag.channel = "allreduce";
                    tag.phase = pass.phase;
                    tag.temporalStep = steps;
                    tag.sender = leader;
                    tag.receiver = member;
                    if (leader_local && member_local) {
                        commStats.wireBytes +=
                            transport
                                ->transferInto(
                                    tag, sum, out_store[member].data)
                                .wireBytes;
                    } else if (leader_local) {
                        Tensor scratch;
                        commStats.wireBytes +=
                            transport->transferInto(tag, sum, scratch)
                                .wireBytes;
                    } else {
                        // Only the member is owned: receive the
                        // reduced sum into its slot.
                        const Tensor empty;
                        commStats.wireBytes +=
                            transport
                                ->transferInto(
                                    tag, empty, out_store[member].data)
                                .wireBytes;
                    }
                }
                commStats.allReduceElements +=
                    spec.elementsPerDevice *
                    static_cast<std::int64_t>(group.size() - 1);
                if (tracing)
                    observers.onSpan(group[0], SpanKind::AllReduce,
                                     out_key + " allreduce", g0,
                                     observerNowUs());
            }
            ++commStats.allReduceCount;
        });
    }

    // Phase boundary: every pass output — an activation (Forward), an
    // input gradient (Backward), or a weight gradient (Gradient) — is
    // announced to the observers. The numeric anomaly guard (a
    // GuardObserver installed by setHealth) scans it here; emitted
    // from this serial section, so event order is deterministic.
    if (observed()) {
        const TensorStore &out_store = stores.at(out_key);
        for (std::int64_t dev = ownedFirst();
             dev < ownedFirst() + ownedCount(); ++dev) {
            observers.onTensorProduced(op.name + "." + out_key +
                                           "@dev" + std::to_string(dev),
                                       trainStep, out_store[dev].data);
        }
    }
}

void
SpmdOpExecutor::reset()
{
    stores.clear();
    aux.clear();
    commStats = CommVolume{};
}

void
SpmdOpExecutor::runPhase(Phase phase,
                         const std::map<std::string, Tensor> &inputs)
{
    for (std::size_t p = 0; p < op.passes.size(); ++p) {
        if (op.passes[p].phase == phase)
            runPass(static_cast<int>(p), inputs);
    }
}

bool
SpmdOpExecutor::hasTensor(const std::string &name) const
{
    return stores.count(name) > 0;
}

Tensor
SpmdOpExecutor::gatherByName(const std::string &name) const
{
    for (std::size_t t = 0; t < op.tensors.size(); ++t) {
        for (bool grad : {false, true}) {
            const TensorRef ref{static_cast<int>(t), grad};
            if (refKey(ref) == name) {
                return gather(ref);
            }
        }
    }
    PRIMEPAR_PANIC("operator ", op.name, " has no tensor named ", name);
}

TrainStepResult
SpmdOpExecutor::run(const std::map<std::string, Tensor> &inputs)
{
    reset();

    for (std::size_t p = 0; p < op.passes.size(); ++p)
        runPass(static_cast<int>(p), inputs);

    TrainStepResult result;
    result.output = gather({op.outputTensor, false});
    const TensorRef d_input{op.inputTensor, true};
    if (stores.count(refKey(d_input)))
        result.d_input = gather(d_input);
    for (const auto &pass : op.passes) {
        if (pass.output.grad && pass.output.tensor != op.inputTensor &&
            op.tensors[pass.output.tensor].isParameter) {
            result.d_weight = gather(pass.output);
        }
    }
    return result;
}

Tensor
SpmdOpExecutor::sgdUpdateAndGather(double lr)
{
    // Find the parameter and its gradient stores.
    int param = -1;
    for (std::size_t t = 0; t < op.tensors.size(); ++t) {
        if (op.tensors[t].isParameter)
            param = static_cast<int>(t);
    }
    PRIMEPAR_ASSERT(param >= 0, "operator ", op.name,
                    " has no parameter");
    const std::string wkey = refKey({param, false});
    const std::string gkey = refKey({param, true});
    PRIMEPAR_ASSERT(stores.count(wkey) && stores.count(gkey),
                    "run() must precede sgdUpdateAndGather()");

    TensorStore &w = stores[wkey];
    const TensorStore &g = stores[gkey];
    for (std::int64_t dev = 0; dev < dsiTable.numDevices(); ++dev) {
        // The update is local only if W and dW ended co-located —
        // exactly the paper's feature-3 weight alignment.
        PRIMEPAR_ASSERT(w[dev].tuple == g[dev].tuple,
                        "W/dW misaligned on device ", dev,
                        "; local SGD update impossible");
        if (!ownsDev(dev))
            continue;
        Tensor scaled = g[dev].data;
        scaled.scale(static_cast<float>(-lr));
        w[dev].data.add(scaled);
    }
    return gather({param, false});
}

TrainStepResult
referenceTrainStep(const OpSpec &op,
                   const std::map<std::string, Tensor> &inputs)
{
    // A single emulated device with the empty partition sequence runs
    // the unpartitioned computation through the same machinery.
    SpmdOpExecutor single(op, PartitionSeq{}, 0);
    return single.run(inputs);
}

} // namespace primepar
