/**
 * @file
 * Functional SPMD execution of whole computation graphs.
 *
 * Drives one training iteration of a multi-operator graph — forward
 * in topological order, backward and gradient in reverse — with every
 * operator partitioned by its own sequence on the same emulated
 * device set. Activations and gradients flow along the graph edges
 * (with optional per-edge tensor transforms for fused-dimension
 * boundaries like QKV-split and head reshapes), gradients of
 * multi-consumer tensors accumulate, and the final results must match
 * single-device training — the graph-level completion of the per-op
 * equivalence proof.
 */

#ifndef PRIMEPAR_RUNTIME_GRAPH_EXECUTOR_HH
#define PRIMEPAR_RUNTIME_GRAPH_EXECUTOR_HH

#include <functional>
#include <map>
#include <memory>

#include "graph/graph.hh"
#include "options.hh"
#include "spmd_executor.hh"

namespace primepar {

/** Value-level transforms applied on an edge (both default identity). */
struct EdgeTransform
{
    /** Producer-output -> consumer-input coordinates (e.g. slice the
     *  Q third of the fused QKV output and reshape to heads). */
    std::function<Tensor(const Tensor &)> forward;
    /** Consumer-input-gradient -> producer-output-gradient
     *  *contribution* (summed with other consumers' contributions). */
    std::function<Tensor(const Tensor &)> backward;
};

/** External inputs of one training iteration. */
struct GraphIO
{
    /** Data fed to the graph's first node (its input tensor). */
    Tensor input;
    /** Parameters keyed "<node name>.<tensor name>" (e.g. "qkv.W"). */
    std::map<std::string, Tensor> params;
    /** Upstream gradient of the final node's output. */
    Tensor d_output;
};

/** Gathered results of one training iteration. */
struct GraphResult
{
    Tensor output;
    Tensor d_input;
    /** Parameter gradients keyed like GraphIO::params. */
    std::map<std::string, Tensor> d_params;
};

/** The graph-level SPMD executor. */
class SpmdGraphExecutor
{
  public:
    /**
     * @param graph computation graph (chain plus skip edges)
     * @param strategies one partition sequence per node
     * @param num_bits device-id bit count (2^n emulated devices)
     * @param num_threads worker threads for per-device sub-operator
     *        execution: 0 = all hardware threads, 1 = serial. Results
     *        are bit-identical at every setting (see
     *        SpmdOpExecutor::setThreadPool).
     * @param overlap_comm overlap ring communication with compute on
     *        every node's executor (construction-time; see
     *        ExecutionOptions::overlapComm).
     * @param owned device ranks this process materializes data for
     *        (default: all — replicated execution; see
     *        ExecutionOptions::ownedDevices).
     */
    SpmdGraphExecutor(const CompGraph &graph,
                      std::vector<PartitionSeq> strategies,
                      int num_bits, int num_threads = 1,
                      bool overlap_comm = true, DeviceSpan owned = {});

    /** Same, configured by the unified RuntimeOptions (numBits and
     *  the execution section are consumed here; transport / fault /
     *  checkpoint sections are the caller's to wire). */
    SpmdGraphExecutor(const CompGraph &graph,
                      std::vector<PartitionSeq> strategies,
                      const RuntimeOptions &options);

    /** Install a transform on the edge @p src -> @p dst (tensor
     *  @p dst_tensor of the consumer). */
    void setEdgeTransform(int src, int dst, int dst_tensor,
                          EdgeTransform transform);

    /** Run one full training iteration. */
    GraphResult run(const GraphIO &io);

    /** Sum of per-op communication counters of the last run. */
    CommVolume stats() const;

    /** Route every node's inter-device transfers through @p t (not
     *  owned; nullptr restores direct in-process copies). */
    void setTransport(Transport *t);

    /** Record detections and numeric-anomaly findings of every node
     *  into @p h (not owned). */
    void setHealth(RuntimeHealth *h, GuardOptions g = GuardOptions{});

    /** Attach @p o (not owned) to every node's executor; it receives
     *  spans, tensor-produced and rollback events of the whole graph. */
    void addObserver(RuntimeObserver *o);

    /** Stamp subsequent transfers with train step @p s. */
    void beginStep(std::int64_t s);

  private:
    std::string edgeKey(const GraphEdge &e) const;
    /** Gradient of node @p n's output: external or accumulated from
     *  consumers. */
    Tensor outputGradient(int n, const GraphIO &io,
                          const std::map<std::string, Tensor> &grads);

    const CompGraph &graph;
    /** Shared worker pool for every node's executor (null = serial). */
    std::unique_ptr<ThreadPool> pool;
    std::vector<std::unique_ptr<SpmdOpExecutor>> execs;
    std::map<std::string, EdgeTransform> transforms;
};

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_GRAPH_EXECUTOR_HH
