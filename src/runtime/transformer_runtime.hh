/**
 * @file
 * Edge transforms for functionally executing the transformer block.
 *
 * The Fig. 6 block graph carries two kinds of fused-dimension
 * boundaries that need real tensor rearrangement at execution time:
 * the fused QKV output splits into per-head Q / K / V operands, and
 * the attention context merges heads back into the hidden dimension.
 * This module installs those transforms on a SpmdGraphExecutor.
 */

#ifndef PRIMEPAR_RUNTIME_TRANSFORMER_RUNTIME_HH
#define PRIMEPAR_RUNTIME_TRANSFORMER_RUNTIME_HH

#include "graph/transformer.hh"
#include "graph_executor.hh"

namespace primepar {

/** Install the QKV-split and head-merge transforms for a block built
 *  by buildTransformerBlock(cfg, batch). */
void installTransformerBlockTransforms(SpmdGraphExecutor &exec,
                                       const ModelConfig &cfg,
                                       std::int64_t batch);

/**
 * Random parameters for every node of a transformer block, keyed as
 * GraphIO::params expects ("qkv.W", "ln1.G", ...).
 */
std::map<std::string, Tensor>
randomBlockParams(const CompGraph &graph, Rng &rng);

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_TRANSFORMER_RUNTIME_HH
