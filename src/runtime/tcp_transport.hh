/**
 * @file
 * The multi-process transport: sharded SPMD over real sockets.
 *
 * ## Execution model
 *
 * Every worker process runs the *same* deterministic training step —
 * batches are a pure function of (seed, step) — and each worker *owns*
 * a contiguous device range (DistWorld). A transfer whose endpoints
 * are owned by the same worker is delegated to an internal
 * InProcessTransport. A transfer whose endpoints are owned by
 * *different* workers really crosses TCP: the sender's owner encodes
 * and ships the payload, the receiver's owner delivers the wire bytes
 * as authoritative (it does not shortcut to a local copy — that is
 * what makes the checksums, sequence numbers and generation fencing
 * load-bearing, and the bit-identical-to-InProcess acceptance test a
 * real test).
 *
 * Two modes share this wire protocol (DistOptions::sharded):
 *
 *   - **Sharded** (default): each worker materializes tensor data only
 *     for its owned ranks (Transport::ownedDevices narrows the
 *     executors' span), so per-worker resident memory scales ~1/W.
 *     Transfers between two remote workers do not involve this
 *     process at all; gathers of full tensors all-gather the
 *     non-local slices over the codec-exempt "gather" channel, so
 *     gathered bytes equal the owners' exactly.
 *
 *   - **Replicated** (sharded = false): all 2^n emulated devices
 *     exist in every process; workers owning neither endpoint of a
 *     transfer replay it locally (codec round-trip included) so all
 *     replicas stay bit-identical. Costs W× the memory of sharded
 *     but keeps every gather local.
 *
 * ## Lockstep rollback
 *
 * Transfers are issued serially in the same global order by every
 * worker, so each wire transfer is a rendezvous of exactly two
 * processes. The wire sequence number per peer pair advances only on
 * acknowledged delivery, identically on both ends. When one side
 * exhausts its retry budget it best-effort sends an Abort frame and
 * throws TransientFaultError; its peer either sees the Abort (and
 * throws too) or times out into the same error. Both roll the temporal
 * step back through the executor journal and re-issue the identical
 * transfer sequence, so the wire seqs realign without negotiation.
 *
 * ## Failure escalation
 *
 *   socket timeout / closed / NACK .. retry (jittered exp. backoff)
 *   retry budget exhausted .......... Abort + TransientFaultError
 *   reconnect budget exhausted ...... DeviceFailedError(peer device)
 *   stale generation (either side) .. FencedWorkerError / Ack(Fenced)
 *
 * so SpmdOpExecutor's journal rollback and BlockTrainer's
 * degrade-and-restore drive recovery across processes unchanged.
 */

#ifndef PRIMEPAR_RUNTIME_TCP_TRANSPORT_HH
#define PRIMEPAR_RUNTIME_TCP_TRANSPORT_HH

#include <map>
#include <memory>

#include "net.hh"
#include "options.hh"
#include "support/json.hh"
#include "transport.hh"

namespace primepar {

/** One worker's placement in the distributed job. */
struct WorkerInfo
{
    std::int64_t worker = 0;
    std::string host = "127.0.0.1";
    int port = 0;             ///< the worker's data-plane listener
    std::int64_t firstDevice = 0;
    std::int64_t numDevices = 0;
};

/**
 * The distributed job's world: who participates, which contiguous
 * device range each worker owns, and the generation number that fences
 * superseded processes. Serialized over the control plane as JSON.
 */
struct DistWorld
{
    std::uint64_t generation = 0;
    std::int64_t myWorker = 0; ///< local only; not serialized
    int numBits = 0;           ///< 2^numBits devices in this generation
    std::vector<WorkerInfo> workers; ///< ascending worker id

    /** Owning worker of @p device; -1 when unplaced. */
    std::int64_t ownerOf(std::int64_t device) const;

    const WorkerInfo *find(std::int64_t worker) const;

    JsonValue toJson() const;
    /** Parse; myWorker is left at 0 for the caller to fill. Throws
     *  InputError on a malformed document. */
    static DistWorld fromJson(const JsonValue &v);

    /** Contiguous placement of 2^bits devices over @p workers (their
     *  first/numDevice fields are overwritten in id order). */
    static void placeDevices(std::vector<WorkerInfo> &workers, int bits);
};

/**
 * Transport implementation over TCP (see file comment). Not
 * thread-safe by design: the executors issue transfers one at a time,
 * which is also what makes the global transfer order a lockstep
 * rendezvous.
 */
class TcpTransport : public Transport
{
  public:
    /**
     * @p listener is the worker's data-plane listener (not owned; it
     * outlives transport rebuilds so the port registered with the
     * coordinator stays valid across re-plans).
     */
    TcpTransport(TransportOptions opts, DistOptions dist,
                 DistWorld world, NetListener *listener,
                 std::shared_ptr<FaultInjector> injector = nullptr,
                 RuntimeHealth *health = nullptr);
    ~TcpTransport() override;

    TransferReceipt transferInto(const TransferTag &tag,
                                 const Tensor &payload,
                                 Tensor &dst) override;

    /**
     * Advance the step counter; also where a scheduled
     * `kill@step=S:dev=<worker>` fault fires — the process exits
     * immediately (std::_Exit), modeling abrupt worker death.
     */
    void beginStep(std::int64_t step) override;

    /** Real sockets can always fail: journaling is always on. */
    bool faultTolerant() const override { return true; }

    void setHealth(RuntimeHealth *h) override;
    void setObserver(RuntimeObserver *o) override;

    /** Sharded mode (DistOptions::sharded, default): the local
     *  worker's contiguous DistWorld slice — the executors then
     *  materialize tensor data only for those ranks. Replicated mode
     *  (sharded = false) reports the all-devices span, restoring full
     *  lockstep replication. */
    DeviceSpan ownedDevices() const override;

    /** The other alive workers' placement slices in world order
     *  (empty in replicated mode). */
    std::vector<DeviceSpan> peerSpans() const override;

    const DistWorld &world() const { return world_; }

  private:
    NetSocket &ensurePeer(std::int64_t peer, const TransferTag &tag);
    void dropPeer(std::int64_t peer);
    /** Deliver by local replay (sender-owner and non-participants):
     *  codec round-trip so every replica matches the wire decode. */
    TransferReceipt localReplay(const Tensor &payload, Tensor &dst,
                                const char *channel);
    TransferReceipt sendWire(const TransferTag &tag,
                             const Tensor &payload, Tensor &dst,
                             std::int64_t peer);
    TransferReceipt recvWire(const TransferTag &tag,
                             const Tensor &payload, Tensor &dst,
                             std::int64_t peer);
    void throwFenced(std::uint64_t theirGeneration);

    TransportOptions opts;
    DistOptions dist;
    DistWorld world_;
    NetListener *listener;
    std::shared_ptr<FaultInjector> injector;
    RuntimeHealth *health = nullptr;
    RuntimeObserver *observer = nullptr;
    std::int64_t trainStep = 0;
    /** Per-peer wire sequence, advanced on acknowledged delivery. */
    std::map<std::int64_t, std::uint64_t> wireSeq;
    std::map<std::int64_t, NetSocket> conns;
    /** Accepted-but-unexpected connections, keyed by Hello sender. */
    std::map<std::int64_t, NetSocket> stash;
    std::map<std::int64_t, bool> everConnected;
    /** Local replicas of remote-owned transfers route through this so
     *  classic injected faults behave identically in every process. */
    std::unique_ptr<InProcessTransport> inner;
};

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_TCP_TRANSPORT_HH
