/**
 * @file
 * Fault-tolerant training driver over the SPMD graph executor.
 *
 * BlockTrainer runs transformer-block training steps end to end:
 * per-step seeded batches, a probe loss, SGD with momentum, periodic
 * checkpoints, and — the point of this module — recovery. Transient
 * transport faults are absorbed below it (retries, step rollbacks); a
 * *permanent* device failure surfaces as DeviceFailedError, which the
 * trainer answers by degrading the device grid from 2^n to 2^(n-1),
 * re-planning the partition strategies for the survivors, and
 * restoring from the last checkpoint. Batches are a pure function of
 * (seed, step), so a resumed or degraded run replays the exact loss
 * trajectory of the uninterrupted one.
 */

#ifndef PRIMEPAR_RUNTIME_TRAINER_HH
#define PRIMEPAR_RUNTIME_TRAINER_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint.hh"
#include "errors.hh"
#include "fault.hh"
#include "graph/transformer.hh"
#include "graph_executor.hh"
#include "observer.hh"
#include "options.hh"
#include "transport.hh"

namespace primepar {

/** Everything configuring a BlockTrainer: the training hyperparameters
 *  here, every runtime knob in the nested RuntimeOptions. */
struct TrainerOptions
{
    ModelConfig model;
    std::int64_t batch = 2;
    double lr = 1e-2;
    double momentum = 0.9;
    /** Seeds parameter init and the per-step batches. */
    std::uint64_t seed = 1234;

    /** Devices, threading, transport, faults, guard, checkpointing —
     *  the unified runtime configuration (options.hh). */
    RuntimeOptions runtime;

    /**
     * Strategy provider for (re-)planning on a given grid size; null
     * uses defaultBlockPlan(). The example wires the segmented-DP
     * optimizer in here — the runtime library itself stays independent
     * of the optimizer layer.
     */
    std::function<std::vector<PartitionSeq>(const CompGraph &, int)>
        replanner;

    /**
     * Transport provider for (re-)building the executor. Every
     * transport the trainer ever uses comes through here — the
     * constructor installs an InProcessTransport factory over
     * runtime.transport when this is null, so BlockTrainer itself
     * never special-cases transport kinds. The multi-process worker
     * wires a TcpTransport factory in here: it is called with the
     * grid size being built and, on a rebuild after a permanent
     * device failure, the error that caused it (null on the first
     * build) — which lets the factory consult the coordinator about
     * the failed device's owner and return a transport for the new
     * world. The injector and health sink passed in are the trainer's
     * own, so fault accounting stays unified across rebuilds. The
     * returned transport's ownedDevices() span is forwarded into the
     * executors, so a sharded transport automatically narrows what
     * this process materializes.
     */
    std::function<std::unique_ptr<Transport>(
        int bits, const DeviceFailedError *cause,
        std::shared_ptr<FaultInjector> injector,
        RuntimeHealth *health)>
        transportFactory;
};

/** Outcome of one completed training step. */
struct StepStats
{
    std::int64_t step = 0;
    double loss = 0.0;
};

/** Per-node default strategies: PSquare(1) on spatial-temporal-capable
 *  ops when bits allow, conventional by-dim splits elsewhere. */
std::vector<PartitionSeq> defaultBlockPlan(const CompGraph &graph,
                                           int bits);

/** Fault-tolerant training loop over one transformer block. */
class BlockTrainer
{
  public:
    explicit BlockTrainer(TrainerOptions opts);
    ~BlockTrainer();

    /**
     * Run (and, on permanent device failure, recover and re-run) one
     * training step. Throws DeviceFailedError only once the replan
     * budget is exhausted.
     */
    StepStats trainStep();

    /** Snapshot the current parameters / optimizer state / step. */
    Checkpoint checkpoint() const;

    /** Write checkpoint() to options().checkpointPath. */
    void saveCheckpointNow();

    /** Adopt @p ck as the current training state. */
    void restoreFrom(const Checkpoint &ck);

    /** Load options().runtime.checkpoint.path and restoreFrom() it. */
    void resumeFromCheckpointFile();

    /**
     * Re-plan for a 2^(newBits) grid and rebuild the executor and
     * transport at the *current* training state — the elastic-re-join
     * counterpart of the degrade path: where degradeAndRestore shrinks
     * the grid and rolls back to a checkpoint, resyncTo adopts a new
     * (typically restored) world without touching parameters or the
     * step counter. The transport factory is invoked with a null
     * cause.
     */
    void resyncTo(int newBits);

    /**
     * Attach an observer (not owned) to the whole training stack: it
     * receives step begin/end and checkpoint events from the trainer,
     * spans / tensor-produced / rollback events from the executors,
     * and transfer / fault events from the transport — surviving
     * executor rebuilds after grid degradation.
     */
    void addObserver(RuntimeObserver *o);

    RuntimeHealth &health() { return health_; }
    const TrainerOptions &options() const { return opts; }
    std::int64_t step() const { return step_; }
    /** Communication volume of the most recent training step — raw
     *  ring/all-reduce elements plus post-codec bytes on the wire, so
     *  callers can print the compression ratio per run. */
    CommVolume lastStepComm() const { return exec->stats(); }
    /** Current grid size in bits (shrinks after a device failure). */
    int deviceBits() const { return bits_; }

  private:
    GraphIO makeBatch(std::int64_t step) const;
    /** @p cause is the device failure that forced this rebuild (null
     *  on the first build) — forwarded to the transport factory. */
    void buildExecutor(const DeviceFailedError *cause = nullptr);
    void applyUpdate(const std::map<std::string, Tensor> &d_params);
    void degradeAndRestore(const DeviceFailedError &err);

    TrainerOptions opts;
    CompGraph graph;
    std::vector<PartitionSeq> strategies;
    int bits_ = 0;
    std::int64_t step_ = 0;
    int replansDone = 0;
    bool checkpointOnDisk = false;

    std::map<std::string, Tensor> params;
    std::map<std::string, Tensor> velocity;

    RuntimeHealth health_;
    /** All attached observers; wired as one chain into the executor
     *  and transport on every (re)build. */
    ObserverChain observers_;
    std::shared_ptr<FaultInjector> injector;
    std::unique_ptr<Transport> transport;
    std::unique_ptr<SpmdGraphExecutor> exec;
};

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_TRAINER_HH
