/**
 * @file
 * Runtime metrics: named counters and latency histograms.
 *
 * MetricsRegistry is the quantitative side of the observability layer:
 * counters for deterministic facts (bytes moved per channel, transfer
 * counts, retries, rollbacks, anomalies, checkpoint saves) and
 * histograms for wall-clock measurements (per-channel transfer time,
 * span durations, step latency percentiles). Counters are exact and
 * thread-count-invariant — the same plan produces identical totals at
 * any executor thread count (tested); histograms record timings, which
 * legitimately vary.
 *
 * snapshotJson() renders the whole registry (plus the global buffer
 * pool's hit-rate counters) as a `primepar-metrics-v1` document,
 * which `primepar_train --metrics-out` writes per run.
 */

#ifndef PRIMEPAR_RUNTIME_METRICS_HH
#define PRIMEPAR_RUNTIME_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "observer.hh"
#include "support/json.hh"

namespace primepar {

/**
 * Log2-bucketed histogram of non-negative values (microseconds by
 * convention): bucket i holds values in [2^(i-1), 2^i).
 */
class Histogram
{
  public:
    void record(double value);

    std::int64_t count() const { return n; }
    double sum() const { return total; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return hi; }
    double mean() const { return n ? total / n : 0.0; }

    /** Approximate percentile (0..100) by within-bucket
     *  interpolation. */
    double percentile(double p) const;

    JsonValue toJson() const;

  private:
    static constexpr int kBuckets = 64;
    std::int64_t buckets[kBuckets] = {};
    std::int64_t n = 0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/** Thread-safe registry of named counters and histograms. */
class MetricsRegistry
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void add(const std::string &name, std::int64_t delta = 1);

    /** Record @p value into histogram @p name (creating it). */
    void observe(const std::string &name, double value);

    /** Current counter value (0 when absent). */
    std::int64_t counter(const std::string &name) const;

    /** Copy of the counter map (for tests / reports). */
    std::map<std::string, std::int64_t> counters() const;

    /** Histogram lookup; nullptr when absent. Pointer stays valid for
     *  the registry's lifetime (histograms are never removed). */
    const Histogram *histogram(const std::string &name) const;

    /**
     * The full registry as a `primepar-metrics-v1` JSON document,
     * including the global BufferPool counters and derived hit rate.
     */
    JsonValue snapshotJson() const;

    void reset();

  private:
    mutable std::mutex mu;
    std::map<std::string, std::int64_t> counterMap;
    std::map<std::string, Histogram> histogramMap;
};

/**
 * Routes observer callbacks into a MetricsRegistry (not owned).
 *
 * Counter schema (all deterministic):
 *   steps
 *   transport.transfers[.<channel>]   transport.bytes[.<channel>]
 *   transport.wire_bytes[.<channel>]  (post-codec bytes on the wire)
 *   faults.detected  faults.<kind>    executor.rollbacks
 *   anomalies.scans                   checkpoint.saves / .restores
 *   spans.<kind>
 *   dist.workers_up  dist.workers_lost  (multi-process runs)
 * Histograms (timing, thread-count-dependent):
 *   step.latency_us   transport.transfer_us.<channel>   span_us.<kind>
 */
class MetricsObserver : public RuntimeObserver
{
  public:
    explicit MetricsObserver(MetricsRegistry *registry)
        : reg(registry)
    {}

    void onStepEnd(std::int64_t step, double wall_us) override;
    void onSpan(std::int64_t device, SpanKind kind,
                const std::string &label, double start_us,
                double end_us) override;
    void onTransfer(const TransferTag &tag, std::int64_t bytes,
                    std::int64_t wire_bytes, int attempts,
                    double wall_us) override;
    void onFault(const FaultEvent &event) override;
    void onRollback(std::int64_t step) override;
    void onTensorProduced(const std::string &name, std::int64_t step,
                          const Tensor &t) override;
    void onCheckpoint(bool save, std::int64_t step,
                      double wall_us) override;
    void onWorkerUp(std::int64_t worker,
                    std::uint64_t generation) override;
    void onWorkerLost(std::int64_t worker, std::uint64_t generation,
                      const std::string &reason) override;

  private:
    MetricsRegistry *reg;
};

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_METRICS_HH
