/**
 * @file
 * Structured runtime error types.
 *
 * The functional executor used to abort on any malformed input or
 * failed transfer. At production scale failures are the steady state,
 * so errors that a caller can meaningfully react to — a missing or
 * misshaped input, an exhausted transfer retry budget, a permanently
 * failed device, a corrupted checkpoint — are thrown as typed
 * exceptions carrying the full diagnosis. PRIMEPAR_PANIC remains
 * reserved for internal invariant violations (PrimePar bugs).
 */

#ifndef PRIMEPAR_RUNTIME_ERRORS_HH
#define PRIMEPAR_RUNTIME_ERRORS_HH

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace primepar {

/** Base of every recoverable runtime error. */
class RuntimeError : public std::runtime_error
{
  public:
    explicit RuntimeError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail {

inline std::string
shapeToString(const std::vector<std::int64_t> &shape)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < shape.size(); ++i)
        os << (i ? ", " : "") << shape[i];
    os << "]";
    return os.str();
}

} // namespace detail

/**
 * A required input tensor is missing or has the wrong shape. Names the
 * operator, phase, tensor, and expected vs. actual shape so the caller
 * can fix the feed instead of reading a stack trace.
 */
class InputError : public RuntimeError
{
  public:
    /** Free-form variant for rejecting malformed caller input outside
     *  the executor — e.g. CLI argument validation ("--devices must be
     *  a power of two"). Field members stay empty. */
    explicit InputError(const std::string &msg) : RuntimeError(msg) {}

    InputError(std::string op_name, std::string phase,
               std::string tensor_name,
               std::vector<std::int64_t> expected,
               std::vector<std::int64_t> actual)
        : RuntimeError(format(op_name, phase, tensor_name, expected,
                              actual)),
          op(std::move(op_name)), phase(std::move(phase)),
          tensor(std::move(tensor_name)),
          expectedShape(std::move(expected)),
          actualShape(std::move(actual))
    {}

    std::string op;
    std::string phase;
    std::string tensor;
    std::vector<std::int64_t> expectedShape;
    /** Empty when the tensor was absent altogether. */
    std::vector<std::int64_t> actualShape;

  private:
    static std::string
    format(const std::string &op, const std::string &phase,
           const std::string &tensor,
           const std::vector<std::int64_t> &expected,
           const std::vector<std::int64_t> &actual)
    {
        std::ostringstream os;
        os << "op '" << op << "' (" << phase << "): ";
        if (actual.empty()) {
            os << "missing input tensor '" << tensor
               << "' (expected shape "
               << detail::shapeToString(expected) << ")";
        } else {
            os << "input tensor '" << tensor << "' has shape "
               << detail::shapeToString(actual) << " but '" << op
               << "' requires " << detail::shapeToString(expected);
        }
        return os.str();
    }
};

/** Base of transport-layer failures; carries the transfer identity. */
class TransportError : public RuntimeError
{
  public:
    TransportError(const std::string &msg, std::string tensor_name,
                   std::int64_t sender_dev, std::int64_t receiver_dev,
                   std::int64_t train_step)
        : RuntimeError(msg), tensor(std::move(tensor_name)),
          sender(sender_dev), receiver(receiver_dev), step(train_step)
    {}

    std::string tensor;
    std::int64_t sender;
    std::int64_t receiver;
    std::int64_t step;
};

/**
 * A transfer kept failing transiently until the retry budget ran out.
 * The executor reacts by rolling the temporal step back and
 * re-executing it from the journal.
 */
class TransientFaultError : public TransportError
{
  public:
    using TransportError::TransportError;
};

/** A device failed permanently; the runtime must degrade the grid. */
class DeviceFailedError : public TransportError
{
  public:
    DeviceFailedError(const std::string &msg, std::string tensor_name,
                      std::int64_t sender_dev, std::int64_t receiver_dev,
                      std::int64_t train_step, std::int64_t failed_dev)
        : TransportError(msg, std::move(tensor_name), sender_dev,
                         receiver_dev, train_step),
          device(failed_dev)
    {}

    std::int64_t device;
};

/** A checkpoint file could not be written, read, or validated. */
class CheckpointError : public RuntimeError
{
  public:
    using RuntimeError::RuntimeError;
};

/**
 * This worker's generation is stale: the coordinator has moved the job
 * past it (it was declared dead and the survivors re-planned). The only
 * correct reaction is to stop participating immediately — a fenced
 * zombie writing into a resumed run would corrupt it.
 */
class FencedWorkerError : public RuntimeError
{
  public:
    FencedWorkerError(const std::string &msg, std::uint64_t mine,
                      std::uint64_t current)
        : RuntimeError(msg), myGeneration(mine),
          currentGeneration(current)
    {}

    std::uint64_t myGeneration;
    std::uint64_t currentGeneration;
};

/**
 * Process exit codes for the CLI tools, so a supervisor can tell
 * "retry the same invocation" from "the job is misconfigured" from
 * "the cluster shrank". Documented in primepar_train --help and the
 * README.
 */
namespace exitcode {

constexpr int Ok = 0;
constexpr int Internal = 1;   ///< unexpected exception / PrimePar bug
constexpr int Usage = 2;      ///< InputError: bad flags or feeds
constexpr int Transient = 3;  ///< TransientFaultError escaped: retryable
constexpr int DeviceLost = 4; ///< DeviceFailedError: grid shrank fatally
constexpr int Checkpoint = 5; ///< CheckpointError: state unusable
constexpr int Fenced = 6;     ///< FencedWorkerError: superseded zombie

/**
 * Map the in-flight exception to its exit code. Call from inside a
 * catch block; most-derived types are tested first.
 */
inline int
forCurrentException()
{
    try {
        throw;
    } catch (const FencedWorkerError &) {
        return Fenced;
    } catch (const DeviceFailedError &) {
        return DeviceLost;
    } catch (const TransientFaultError &) {
        return Transient;
    } catch (const CheckpointError &) {
        return Checkpoint;
    } catch (const InputError &) {
        return Usage;
    } catch (...) {
        return Internal;
    }
}

} // namespace exitcode

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_ERRORS_HH
