#include "observer.hh"

#include <chrono>

namespace primepar {

double
observerNowUs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration<double, std::micro>(Clock::now() -
                                                     epoch)
        .count();
}

TracingObserver::TracingObserver() : baseUs(observerNowUs()) {}

void
TracingObserver::onSpan(std::int64_t device, SpanKind kind,
                        const std::string &label, double start_us,
                        double end_us)
{
    std::lock_guard<std::mutex> lock(mu);
    trace.add(device, kind, label, start_us - baseUs,
              end_us - baseUs);
}

void
TracingObserver::onCheckpoint(bool save, std::int64_t step,
                              double wall_us)
{
    const double now = observerNowUs();
    std::lock_guard<std::mutex> lock(mu);
    // Checkpoints are whole-grid operations; device -1 is the
    // conventional "runtime" row in the exported timeline.
    trace.add(-1, SpanKind::Checkpoint,
              std::string(save ? "checkpoint save" : "checkpoint "
                                                     "restore") +
                  "@step" + std::to_string(step),
              now - wall_us - baseUs, now - baseUs);
}

Trace
TracingObserver::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return trace;
}

OverlapStats
TracingObserver::overlapStats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return primepar::overlapStats(trace);
}

void
TracingObserver::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    trace.clear();
    baseUs = observerNowUs();
}

void
GuardObserver::onTensorProduced(const std::string &name,
                                std::int64_t step, const Tensor &t)
{
    if (!health || !opts.enabled)
        return;
    // The scan itself is read-only; RuntimeHealth mutation needs the
    // lock because pass outputs materialize on worker threads.
    std::lock_guard<std::mutex> lock(mu);
    guardTensor(*health, opts, name, step, t);
}

} // namespace primepar
