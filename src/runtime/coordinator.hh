/**
 * @file
 * The distributed job's control plane: coordinator and worker client.
 *
 * One Coordinator process accepts a fixed number of worker
 * registrations, assigns worker ids, places the 2^n emulated devices
 * contiguously onto the workers (DistWorld), and broadcasts the
 * resulting world plus an opaque job document in a "welcome" response.
 * From then on every worker keeps one persistent control connection:
 *
 *   Heartbeat ........ liveness beacon every DistOptions::heartbeatMs
 *   Ctrl "step" ...... per-step loss report (fire and forget)
 *   Ctrl "suspect" ... "my transfer to worker W keeps failing" —
 *                      blocks until the coordinator has decided W's
 *                      fate, answers with the current world
 *   Ctrl "world" ..... plain world fetch (re-sync after fencing)
 *   Ctrl "done" ...... this worker finished its steps
 *
 * Death is detected two ways: the worker's control connection closes
 * (immediate), or heartbeatMissLimit consecutive beacon periods pass
 * without one (timeout). Either way the coordinator bumps the
 * generation, drops one device bit (mirroring BlockTrainer's
 * 2^n -> 2^(n-1) degradation), re-places the surviving devices over
 * the surviving workers, and lets survivors pick the new world up
 * through their next "suspect" call. Frames from older generations are
 * fenced at the data plane (tcp_transport.hh), so a zombie declared
 * dead by mistake cannot corrupt the resumed run.
 *
 * Loss reports are recorded from the lowest-id reporting worker per
 * step; a differing loss from another worker in the same generation is
 * counted as a divergence (the SPMD replicas must agree bit-for-bit).
 */

#ifndef PRIMEPAR_RUNTIME_COORDINATOR_HH
#define PRIMEPAR_RUNTIME_COORDINATOR_HH

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net.hh"
#include "options.hh"
#include "support/json.hh"
#include "tcp_transport.hh"

namespace primepar {

class RuntimeObserver;

/** Coordinator configuration. */
struct CoordinatorOptions
{
    int numWorkers = 2;
    /** Initial grid: 2^numBits devices over the workers. */
    int numBits = 2;
    /** Control-plane listen port (0 = ephemeral). */
    int port = 0;
    DistOptions dist;
    /** Opaque job document broadcast verbatim in every welcome (the
     *  example puts the model/optimizer/fault configuration here, so
     *  workers need nothing but the coordinator's address). */
    JsonValue job;
};

/** The control-plane server. start() binds; run() drives the job. */
class Coordinator
{
  public:
    explicit Coordinator(CoordinatorOptions opts);
    ~Coordinator();

    /** Bind the control listener; port() is valid afterwards. */
    void start();
    int port() const;

    /**
     * Accept registrations, broadcast welcomes, then serve the
     * control plane until every live worker reported done (returns 0)
     * or every worker died (returns 1).
     */
    int run();

    /** Per-step losses recorded so far (authoritative reporter). */
    std::map<std::int64_t, double> losses() const;
    std::uint64_t generation() const;
    int workersLost() const;
    /** Same-generation loss mismatches between replicas. */
    int divergences() const;

    /** Receives onWorkerUp / onWorkerLost (not owned). */
    void setObserver(RuntimeObserver *o) { observer = o; }

  private:
    struct WorkerState;

    void readerLoop(WorkerState &w);
    void markDead(std::int64_t worker, const std::string &reason);
    JsonValue handleSuspect(WorkerState &from, std::int64_t suspected);
    JsonValue currentWorldJson();
    bool finished();

    CoordinatorOptions opts;
    RuntimeObserver *observer = nullptr;
    NetListener listener;

    mutable std::mutex mu;
    std::condition_variable cv;
    std::uint64_t generation_ = 0;
    int bits_ = 0;
    std::vector<WorkerInfo> placed; ///< live workers' placement
    std::vector<std::unique_ptr<WorkerState>> workers;
    std::map<std::int64_t, double> lossByStep;
    std::map<std::int64_t, std::int64_t> lossReporter;
    /** Generation each loss was reported under: replays after a
     *  degrade overwrite instead of counting as divergence. */
    std::map<std::int64_t, std::uint64_t> lossGen;
    int lost = 0;
    int diverged = 0;
    std::atomic<bool> stopping{false};
};

/**
 * The worker side of the control plane: one persistent connection,
 * a background heartbeat thread, and blocking RPCs. Not thread-safe
 * except for the internal heartbeat thread (writes are serialized by
 * a send mutex; only RPC calls ever read the socket).
 */
class CoordinatorClient
{
  public:
    explicit CoordinatorClient(DistOptions dist = {});
    ~CoordinatorClient();

    /** Dial the coordinator; throws RuntimeError on failure. */
    void connect(const std::string &host, int port);

    /**
     * Register this worker's data-plane listener port; blocks until
     * every worker registered and returns the welcome document
     * ({"worker": id, "world": {...}, "job": {...}}).
     */
    JsonValue registerWorker(int dataPort);

    void startHeartbeats(int periodMs);
    void stopHeartbeats();

    /** Fire-and-forget per-step loss report. */
    void reportStep(std::int64_t step, double loss);

    /**
     * Report that transfers to @p suspected keep failing; blocks
     * until the coordinator decided its fate and returns the current
     * world (generation tells whether a re-plan happened).
     */
    DistWorld suspect(std::int64_t suspected);

    /** Fetch the current world without accusing anyone. */
    DistWorld fetchWorld();

    /** This worker finished training. */
    void done(std::int64_t finalStep, double finalLoss);

    std::int64_t workerId() const { return myId; }
    std::uint64_t generation() const { return generation_; }

  private:
    void send(const WireFrame &f);
    /** Send Ctrl @p verb, await CtrlResp @p respVerb (null: same). */
    JsonValue rpc(const char *verb, const JsonValue &body,
                  int deadline_ms, const char *respVerb = nullptr);

    DistOptions dist;
    NetSocket sock;
    std::mutex sendMu;
    std::thread heartbeatThread;
    std::atomic<bool> stopHb{false};
    std::int64_t myId = -1;
    std::uint64_t generation_ = 0;
};

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_COORDINATOR_HH
