/**
 * @file
 * The distributed job's control plane: coordinator and worker client.
 *
 * One Coordinator process accepts a fixed number of worker
 * registrations, assigns worker ids, places the 2^n emulated devices
 * contiguously onto the workers (DistWorld), and broadcasts the
 * resulting world plus an opaque job document in a "welcome" response.
 * From then on every worker keeps one persistent control connection:
 *
 *   Heartbeat ........ liveness beacon every DistOptions::heartbeatMs
 *   Ctrl "step" ...... per-step loss report; the ack carries the
 *                      pause barrier during a pending re-join
 *   Ctrl "suspect" ... "my transfer to worker W keeps failing" —
 *                      blocks until the coordinator has decided W's
 *                      fate, answers with the current world
 *   Ctrl "resync" .... survivor parked at the re-join barrier; blocks
 *                      until the restored world is fenced
 *   Ctrl "world" ..... plain world fetch (re-sync after fencing)
 *   Ctrl "done" ...... this worker finished its steps
 *
 * Death is detected two ways: the worker's control connection closes
 * (immediate), or heartbeatMissLimit consecutive beacon periods pass
 * without one (timeout). Either way the coordinator bumps the
 * generation, drops one device bit (mirroring BlockTrainer's
 * 2^n -> 2^(n-1) degradation), re-places the surviving devices over
 * the surviving workers, and lets survivors pick the new world up
 * through their next "suspect" call. Frames from older generations are
 * fenced at the data plane (tcp_transport.hh), so a zombie declared
 * dead by mistake cannot corrupt the resumed run.
 *
 * ## Elastic re-join
 *
 * With CoordinatorOptions::allowRejoin, a degraded job grows back: a
 * fresh `primepar_worker --connect` registering after a loss becomes a
 * *pending* rejoiner. The coordinator picks the resume barrier
 * R = (highest reported step) + 2 — every survivor is guaranteed to
 * still report some step s <= R-1 and therefore sees `pause_at: R` in
 * a step ack before executing step R. Each survivor then checkpoints
 * at exactly step R and parks in a blocking "resync" RPC; when the
 * last one arrives the coordinator flips: generation++, the grid grows
 * back one bit (capped at the original), devices are re-placed over
 * survivors + rejoiner, the rejoiner's deferred welcome ships with
 * `resume_step` and `restore_from` (a survivor id whose step-R
 * checkpoint snapshot it loads), and the parked survivors wake into
 * the restored world. Training resumes at step R on the full grid,
 * bit-identical to a never-degraded run restored from the same
 * checkpoint.
 *
 * Loss reports are recorded from the lowest-id reporting worker per
 * step; a differing loss from another worker in the same generation is
 * counted as a divergence (the SPMD replicas must agree bit-for-bit).
 */

#ifndef PRIMEPAR_RUNTIME_COORDINATOR_HH
#define PRIMEPAR_RUNTIME_COORDINATOR_HH

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net.hh"
#include "options.hh"
#include "support/json.hh"
#include "tcp_transport.hh"

namespace primepar {

class RuntimeObserver;

/** Coordinator configuration. */
struct CoordinatorOptions
{
    int numWorkers = 2;
    /** Initial grid: 2^numBits devices over the workers. */
    int numBits = 2;
    /** Control-plane listen port (0 = ephemeral). */
    int port = 0;
    DistOptions dist;
    /** Accept late registrations into a degraded generation and grow
     *  the grid back (see file comment). Requires the workers to keep
     *  checkpoint history so the rejoiner has state to restore. */
    bool allowRejoin = false;
    /** Opaque job document broadcast verbatim in every welcome (the
     *  example puts the model/optimizer/fault configuration here, so
     *  workers need nothing but the coordinator's address). */
    JsonValue job;
};

/** Coordinator's answer to a per-step loss report. */
struct StepAck
{
    std::uint64_t generation = 0;
    /** Step the worker must pause at for a pending re-join (checkpoint
     *  + "resync" before executing it); -1 = keep going. */
    std::int64_t pauseAt = -1;
};

/** The control-plane server. start() binds; run() drives the job. */
class Coordinator
{
  public:
    explicit Coordinator(CoordinatorOptions opts);
    ~Coordinator();

    /** Bind the control listener; port() is valid afterwards. */
    void start();
    int port() const;

    /**
     * Accept registrations, broadcast welcomes, then serve the
     * control plane until every live worker reported done (returns 0)
     * or every worker died (returns 1).
     */
    int run();

    /** Per-step losses recorded so far (authoritative reporter). */
    std::map<std::int64_t, double> losses() const;
    std::uint64_t generation() const;
    int workersLost() const;
    /** Same-generation loss mismatches between replicas. */
    int divergences() const;

    /** Receives onWorkerUp / onWorkerLost (not owned). */
    void setObserver(RuntimeObserver *o) { observer = o; }

  private:
    struct WorkerState;

    void readerLoop(WorkerState &w);
    void markDead(std::int64_t worker, const std::string &reason);
    JsonValue handleSuspect(WorkerState &from, std::int64_t suspected);
    /** Park @p from at the re-join barrier; the last survivor to park
     *  performs the flip (see file comment). Returns the world to
     *  answer with. */
    JsonValue handleResync(WorkerState &from);
    /** Poll the listener for a late registration (allowRejoin only). */
    void tryAcceptRejoin();
    JsonValue currentWorldJson();
    bool finished();

    CoordinatorOptions opts;
    RuntimeObserver *observer = nullptr;
    NetListener listener;

    mutable std::mutex mu;
    std::condition_variable cv;
    std::uint64_t generation_ = 0;
    int bits_ = 0;
    int origBits_ = 0;
    /** Highest step any worker reported so far (-1 = none). */
    std::int64_t maxStep_ = -1;
    /** Worker id of the pending rejoiner (-1 = none). */
    std::int64_t pendingRejoin_ = -1;
    /** Resume barrier R of the pending re-join (-1 = none). */
    std::int64_t resumeStep_ = -1;
    std::vector<WorkerInfo> placed; ///< live workers' placement
    std::vector<std::unique_ptr<WorkerState>> workers;
    std::map<std::int64_t, double> lossByStep;
    std::map<std::int64_t, std::int64_t> lossReporter;
    /** Generation each loss was reported under: replays after a
     *  degrade overwrite instead of counting as divergence. */
    std::map<std::int64_t, std::uint64_t> lossGen;
    int lost = 0;
    int diverged = 0;
    std::atomic<bool> stopping{false};
};

/**
 * The worker side of the control plane: one persistent connection,
 * a background heartbeat thread, and blocking RPCs. Not thread-safe
 * except for the internal heartbeat thread (writes are serialized by
 * a send mutex; only RPC calls ever read the socket).
 */
class CoordinatorClient
{
  public:
    explicit CoordinatorClient(DistOptions dist = {});
    ~CoordinatorClient();

    /** Dial the coordinator; throws RuntimeError on failure. */
    void connect(const std::string &host, int port);

    /**
     * Register this worker's data-plane listener port; blocks until
     * every worker registered and returns the welcome document
     * ({"worker": id, "world": {...}, "job": {...}}).
     */
    JsonValue registerWorker(int dataPort);

    void startHeartbeats(int periodMs);
    void stopHeartbeats();

    /** Per-step loss report; the ack carries the pause barrier of a
     *  pending re-join (StepAck::pauseAt). */
    StepAck reportStep(std::int64_t step, double loss);

    /**
     * Park at the re-join barrier after checkpointing at @p step;
     * blocks until the coordinator fenced the restored world (or gave
     * up on the rejoiner) and returns it.
     */
    DistWorld resync(std::int64_t step);

    /**
     * Report that transfers to @p suspected keep failing; blocks
     * until the coordinator decided its fate and returns the current
     * world (generation tells whether a re-plan happened).
     */
    DistWorld suspect(std::int64_t suspected);

    /** Fetch the current world without accusing anyone. */
    DistWorld fetchWorld();

    /** This worker finished training. */
    void done(std::int64_t finalStep, double finalLoss);

    std::int64_t workerId() const { return myId; }
    std::uint64_t generation() const { return generation_; }

  private:
    void send(const WireFrame &f);
    /** Send Ctrl @p verb, await CtrlResp @p respVerb (null: same). */
    JsonValue rpc(const char *verb, const JsonValue &body,
                  int deadline_ms, const char *respVerb = nullptr);

    DistOptions dist;
    NetSocket sock;
    std::mutex sendMu;
    std::thread heartbeatThread;
    std::atomic<bool> stopHb{false};
    std::int64_t myId = -1;
    std::uint64_t generation_ = 0;
};

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_COORDINATOR_HH
