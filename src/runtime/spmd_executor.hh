/**
 * @file
 * Functional SPMD execution of partitioned operators.
 *
 * This executor emulates the 2^n devices of a PrimePar deployment and
 * *really runs* the partitioned training step on dense tensors: it
 * scatters tensors according to the DSIs, executes each device's
 * sub-operators over the temporal steps, performs the derived ring
 * shifts, accumulator migrations, transition shifts and grouped
 * all-reduces, and gathers the results.
 *
 * Its purpose is to prove — not assume — that every partition sequence
 * in PrimePar's space (including the novel P_{2^k x 2^k}) computes
 * bit-identical results to single-device training, and that phase
 * alignment holds operationally (a stashed tensor is reused without
 * any repositioning; the executor asserts this at phase entry).
 *
 * Substitution note (DESIGN.md): this replaces the paper's CUDA/MPI
 * runtime. Transfers move tensor values between emulated device
 * stores; byte counters record exactly the traffic a real deployment
 * would issue.
 */

#ifndef PRIMEPAR_RUNTIME_SPMD_EXECUTOR_HH
#define PRIMEPAR_RUNTIME_SPMD_EXECUTOR_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault.hh"
#include "observer.hh"
#include "transport.hh"

#include "partition/alignment.hh"
#include "partition/comm_pattern.hh"
#include "partition/dsi.hh"
#include "partition/op_spec.hh"
#include "partition/partition_step.hh"
#include "support/parallel.hh"
#include "tensor/tensor.hh"

namespace primepar {

/** Gathered results of one partitioned training step. */
struct TrainStepResult
{
    Tensor output;   ///< forward output O
    Tensor d_input;  ///< input gradient dI
    Tensor d_weight; ///< parameter gradient dW (empty if no parameter)
};

/** Communication volume observed during execution. */
struct CommVolume
{
    std::int64_t ringElements = 0;      ///< ring shift traffic
    std::int64_t allReduceElements = 0; ///< summed all-reduce payloads
    int allReduceCount = 0;             ///< number of grouped all-reduces
    /** Post-codec bytes that actually crossed the transport (all
     *  channels). 4 bytes per element when no codec is configured;
     *  0 when transfers are direct in-process copies (no transport —
     *  there is no wire). */
    std::int64_t wireBytes = 0;

    /** Raw fp32 bytes of the counted communication volume. Note the
     *  all-reduce convention: allReduceElements counts each reduce's
     *  payload once, while the wire carries gather + broadcast hops,
     *  so with all-reduce traffic this undercounts the per-transfer
     *  raw sum (RuntimeHealth::bytesMoved is that exact sum). */
    std::int64_t
    rawBytes() const
    {
        return 4 * (ringElements + allReduceElements);
    }
};

/** Pre-overlap-PR name; same struct. */
using CommStats = CommVolume;

/**
 * Executes the full Forward / Backward / Gradient cycle of one
 * operator under a partition sequence on emulated devices.
 */
class SpmdOpExecutor
{
  public:
    /**
     * @param op operator (kinds: linear, matmul, add, elementwise,
     *           softmax)
     * @param seq partition sequence over 2^num_bits devices
     * @param num_bits device-id bit count
     * @param overlap_comm overlap ring communication with compute on a
     *        dedicated comm worker (construction-time; see
     *        ExecutionOptions::overlapComm). The ring shifts toward
     *        step t+1 are posted while step t's sub-operators run,
     *        receiving into recycled staging buffers swapped in at the
     *        step barrier; bit-identical to the synchronous path, and
     *        a fault during a posted-ahead transfer rolls back exactly
     *        this step. Off = strictly step-synchronous transfers.
     * @param owned device ranks this process materializes tensor data
     *        for. The default span owns every rank (replicated); a
     *        narrowed span (sharded multi-process execution) keeps the
     *        partition tuples of all 2^n devices but allocates data,
     *        journal snapshots and staging buffers only inside the
     *        span — non-local transfer endpoints then require a
     *        Transport (setTransport) that can reach their owners.
     */
    SpmdOpExecutor(OpSpec op, PartitionSeq seq, int num_bits,
                   bool overlap_comm = true, DeviceSpan owned = {});

    /**
     * Run one training step.
     *
     * @param inputs full (unpartitioned) tensors keyed by name: every
     *        forward operand (e.g. "I", "W") plus "dO", the upstream
     *        gradient of the output.
     */
    TrainStepResult run(const std::map<std::string, Tensor> &inputs);

    /**
     * Run only the passes of one phase (graph-level training
     * interleaves phases across operators). Inputs are scattered on
     * first use; stashed tensors persist across calls until reset().
     */
    void runPhase(Phase phase,
                  const std::map<std::string, Tensor> &inputs);

    /** Drop all device state (stashes, outputs) and counters. */
    void reset();

    /** True if tensor @p name (e.g. "O", "dI") is materialized. */
    bool hasTensor(const std::string &name) const;

    /** Gather a materialized tensor (by refName, e.g. "dW"). */
    Tensor gatherByName(const std::string &name) const;

    /** Apply W <- W - lr * dW locally on every device (no comm), then
     *  gather the updated parameter. Valid after run(). */
    Tensor sgdUpdateAndGather(double lr);

    /** Traffic counters of the last run(). */
    const CommVolume &stats() const { return commStats; }

    const DsiTable &dsi() const { return dsiTable; }

    /**
     * Execute per-device sub-operators on @p pool (nullptr = serial;
     * not owned). Every device writes only its own slots and ring
     * shifts / all-reduces remain serial barriers with a fixed
     * reduction order, so results are bit-identical at any thread
     * count.
     */
    void setThreadPool(ThreadPool *pool_in) { pool = pool_in; }

    /**
     * Route all inter-device transfers (ring shifts, accumulator
     * migrations, transition shifts, all-reduce gathers/broadcasts)
     * through @p t (not owned; nullptr = direct in-process copies).
     * When the transport is fault tolerant, each temporal step runs
     * inside a bounded journal so an exhausted transfer retry rolls
     * the step back and re-executes it instead of aborting.
     */
    void setTransport(Transport *t) { transport = t; }

    /**
     * Record transport detections and numeric-anomaly guard findings
     * into @p h (not owned). Implemented on the observer API: this
     * installs an internal GuardObserver that scans every pass output
     * — activations, input gradients, weight gradients — for
     * NaN/Inf/explosions at its phase boundary.
     */
    void setHealth(RuntimeHealth *h, GuardOptions g = GuardOptions{});

    /**
     * Attach an observer (not owned; may be called several times, all
     * attached observers see every event). The executor emits
     * per-device Compute spans, Ring / AllReduce / Redist transfer
     * spans, onTensorProduced for every pass output, and onRollback.
     * With no observers attached the instrumentation points reduce to
     * one branch each.
     */
    void addObserver(RuntimeObserver *o);

    /** Detach all externally attached observers (the internal guard
     *  installed by setHealth stays). */
    void clearObservers();

    /** Stamp subsequent transfers / guard findings with train step
     *  @p s (forwards to the transport when one is attached). */
    void
    beginStep(std::int64_t s)
    {
        trainStep = s;
        if (transport)
            transport->beginStep(s);
    }

  private:
    struct DeviceSlot
    {
        Tensor data;
        std::vector<std::int64_t> tuple; ///< slice indices per op dim
    };

    /** Per-device storage of one logical tensor. */
    using TensorStore = std::vector<DeviceSlot>;

    /** One posted-ahead ring receive: the payload lands in a staging
     *  tensor (recycled pool storage) while compute runs and is
     *  swapped into the store at the step barrier. */
    struct PendingRecv
    {
        const ShiftSet *set = nullptr;
        const Tensor *src = nullptr; ///< live sender slot (read-only)
        std::int64_t receiver = 0;
        TransferTag tag;  ///< used only with a transport
        std::string label; ///< Ring span label (empty untraced)
        Tensor staged;
        std::vector<std::int64_t> tuple;
        /** Issue a transport call for this transfer (false when the
         *  sharded span owns neither endpoint: tuple-only update). */
        bool doTransfer = true;
        /** Swap staged data into the receiver slot at the commit
         *  (false when the receiver is not owned: the staged tensor
         *  was only the send-side scratch). */
        bool commitData = true;
    };

    /** Everything in flight on the comm worker for one temporal
     *  step. wireBytes is written by the worker and read after the
     *  join (synchronized by SerialWorker's wait()). */
    struct RingBatch
    {
        std::vector<PendingRecv> recvs;
        std::int64_t elements = 0;
        std::int64_t wireBytes = 0;
    };

    std::string refKey(const TensorRef &ref) const;
    void scatter(const TensorRef &ref, const Tensor &full, Phase phase,
                 int t);
    Tensor gather(const TensorRef &ref) const;
    std::vector<std::int64_t> tupleAt(const TensorRef &ref, Phase phase,
                                      std::int64_t dev, int t) const;
    Tensor sliceFor(const TensorRef &ref, const Tensor &full,
                    Phase phase, std::int64_t dev, int t) const;
    void applyShifts(const std::vector<ShiftSet> &shifts, Phase phase,
                     int to_t, const char *channel);
    /** Fill @p batch (whose storage must outlive the join) and post
     *  its transfers to the comm worker. Sends read live operand
     *  stores — legal because the overlapped compute only reads them
     *  — and receives stay out of the stores until
     *  commitRingShifts(). */
    void postRingShifts(RingBatch &batch,
                        const std::vector<ShiftSet> &shifts,
                        Phase phase, int to_t);
    /** Join the comm worker (rethrowing any transfer fault into the
     *  step journal) and swap the staged receives into the stores. */
    void commitRingShifts(RingBatch &batch);
    void runPass(int pass_index,
                 const std::map<std::string, Tensor> &inputs);
    Tensor computeLocal(const PassSpec &pass, std::int64_t dev, int t);
    /** Full (unpartitioned) shape of the tensor behind @p ref. */
    Shape fullShape(const TensorRef &ref) const;
    /**
     * Run @p body once, or — when the transport is fault tolerant —
     * inside a journal of the mutable device state (stores, aux,
     * counters) that is restored and retried when a transfer's retry
     * budget is exhausted mid-step.
     */
    void runJournaled(const std::function<void()> &body);
    /** Rebuild the fan-out chain from user observers + owned guard. */
    void rebuildObserverChain();
    /** True when any observer (user or internal guard) is attached. */
    bool observed() const { return !observers.empty(); }

    /** Sharded-span helpers. The replicated default span owns every
     *  rank, so these collapse to [0, numDevices). */
    bool ownsDev(std::int64_t dev) const { return ownedSpan.owns(dev); }
    std::int64_t
    ownedFirst() const
    {
        return ownedSpan.all() ? 0 : ownedSpan.first;
    }
    std::int64_t
    ownedCount() const
    {
        return ownedSpan.all() ? dsiTable.numDevices() : ownedSpan.count;
    }

    OpSpec op;
    PartitionSeq seq;
    DsiTable dsiTable;
    std::vector<PassComm> passComms;
    std::map<std::string, TensorStore> stores;
    CommVolume commStats;
    /** Stashed layernorm/softmax style auxiliaries per device. All
     *  entries are pre-sized serially in runPass() before any parallel
     *  region, so computeLocal() only touches its own device's slot. */
    std::map<std::string, TensorStore> aux;
    ThreadPool *pool = nullptr;
    Transport *transport = nullptr;
    const bool overlapComm;
    /** Ranks whose tensor data this process materializes; default =
     *  all (replicated). Partition tuples stay global either way. */
    const DeviceSpan ownedSpan;
    /** The dedicated communication thread (lazily started). Only one
     *  batch is ever in flight; every serial transfer section runs
     *  strictly after the preceding join, so the transport still sees
     *  a serial, deterministic transfer order. */
    SerialWorker commWorker;
    RuntimeHealth *health = nullptr;
    GuardOptions guard;
    /** Fan-out target of every instrumentation point. */
    ObserverChain observers;
    std::vector<RuntimeObserver *> userObservers;
    /** The migrated NaN/Inf guard, owned, installed by setHealth. */
    std::unique_ptr<GuardObserver> ownedGuard;
    std::int64_t trainStep = 0;
};

/**
 * Reference single-device training step for the same operator; the
 * executor's results must match this exactly (up to float summation
 * order tolerance).
 */
TrainStepResult referenceTrainStep(const OpSpec &op,
                                   const std::map<std::string, Tensor>
                                       &inputs);

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_SPMD_EXECUTOR_HH
