#include "codec.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "errors.hh"
#include "support/logging.hh"

namespace primepar {

namespace {

/** Words per pack/int8 block. One block is small enough to stay in
 *  L1 across the two passes (OR scan, then emit) and large enough to
 *  amortize the 2-byte header below 2% overhead. */
constexpr std::int64_t kBlockWords = 128;

inline std::uint32_t
loadWord(const float *p)
{
    std::uint32_t w;
    std::memcpy(&w, p, sizeof w);
    return w;
}

inline void
storeWord(float *p, std::uint32_t w)
{
    std::memcpy(p, &w, sizeof w);
}

inline int
countTrailingZeros(std::uint32_t x)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctz(x);
#else
    int c = 0;
    while (!(x & 1)) {
        x >>= 1;
        ++c;
    }
    return c;
#endif
}

inline int
countLeadingZeros(std::uint32_t x)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_clz(x);
#else
    int c = 0;
    while (!(x & 0x80000000u)) {
        x <<= 1;
        ++c;
    }
    return c;
#endif
}

// ---------------------------------------------------------------- Pack

/**
 * Stream layout: per block of up to kBlockWords fp32 words, a 2-byte
 * header (bit width, right shift) followed by ceil(count*width/8)
 * payload bytes. width/shift come from the OR of the block's raw
 * words: every word in the block is fully described by bits
 * [shift, shift+width). All-zero blocks are header-only.
 */
std::size_t
packEncode(const float *src, std::int64_t n, std::uint8_t *dst)
{
    std::uint8_t *out = dst;
    for (std::int64_t base = 0; base < n; base += kBlockWords) {
        const std::int64_t count = std::min(kBlockWords, n - base);
        const float *blk = src + base;

        std::uint32_t or_all = 0;
        for (std::int64_t i = 0; i < count; ++i)
            or_all |= loadWord(blk + i);

        int shift = 0, width = 0;
        if (or_all) {
            shift = countTrailingZeros(or_all);
            width = 32 - countLeadingZeros(or_all) - shift;
        }
        *out++ = static_cast<std::uint8_t>(width);
        *out++ = static_cast<std::uint8_t>(shift);

        if (width == 0)
            continue;
        // Byte-aligned widths cover the common cases (bf16-rounded
        // data is width 16, int8-ish width 8, incompressible 32) with
        // loops the compiler vectorizes; odd widths go through a
        // 64-bit accumulator bit stream.
        if (width == 32) {
            for (std::int64_t i = 0; i < count; ++i) {
                const std::uint32_t v = loadWord(blk + i) >> shift;
                std::memcpy(out + 4 * i, &v, 4);
            }
            out += 4 * count;
        } else if (width == 24) {
            for (std::int64_t i = 0; i < count; ++i) {
                const std::uint32_t v = loadWord(blk + i) >> shift;
                out[3 * i + 0] = static_cast<std::uint8_t>(v);
                out[3 * i + 1] = static_cast<std::uint8_t>(v >> 8);
                out[3 * i + 2] = static_cast<std::uint8_t>(v >> 16);
            }
            out += 3 * count;
        } else if (width == 16) {
            for (std::int64_t i = 0; i < count; ++i) {
                const std::uint16_t v = static_cast<std::uint16_t>(
                    loadWord(blk + i) >> shift);
                std::memcpy(out + 2 * i, &v, 2);
            }
            out += 2 * count;
        } else if (width == 8) {
            for (std::int64_t i = 0; i < count; ++i)
                out[i] = static_cast<std::uint8_t>(loadWord(blk + i) >>
                                                   shift);
            out += count;
        } else {
            std::uint64_t acc = 0;
            int nbits = 0;
            for (std::int64_t i = 0; i < count; ++i) {
                const std::uint64_t v = loadWord(blk + i) >> shift;
                acc |= v << nbits;
                nbits += width;
                while (nbits >= 8) {
                    *out++ = static_cast<std::uint8_t>(acc);
                    acc >>= 8;
                    nbits -= 8;
                }
            }
            if (nbits)
                *out++ = static_cast<std::uint8_t>(acc);
        }
    }
    return static_cast<std::size_t>(out - dst);
}

void
packDecode(const std::uint8_t *src, std::size_t bytes, float *dst,
           std::int64_t n)
{
    const std::uint8_t *in = src;
    const std::uint8_t *end = src + bytes;
    for (std::int64_t base = 0; base < n; base += kBlockWords) {
        const std::int64_t count = std::min(kBlockWords, n - base);
        float *blk = dst + base;
        PRIMEPAR_ASSERT(in + 2 <= end, "pack stream truncated");
        const int width = in[0];
        const int shift = in[1];
        in += 2;
        PRIMEPAR_ASSERT(width >= 0 && width <= 32 && shift >= 0 &&
                            shift + width <= 32,
                        "pack header corrupt: width=", width,
                        " shift=", shift);
        if (width == 0) {
            for (std::int64_t i = 0; i < count; ++i)
                blk[i] = 0.0f;
            continue;
        }
        const std::size_t payload =
            (static_cast<std::size_t>(count) * width + 7) / 8;
        PRIMEPAR_ASSERT(in + payload <= end, "pack stream truncated");
        if (width == 32) {
            for (std::int64_t i = 0; i < count; ++i) {
                std::uint32_t v;
                std::memcpy(&v, in + 4 * i, 4);
                storeWord(blk + i, v << shift);
            }
        } else if (width == 24) {
            for (std::int64_t i = 0; i < count; ++i) {
                const std::uint32_t v =
                    static_cast<std::uint32_t>(in[3 * i + 0]) |
                    (static_cast<std::uint32_t>(in[3 * i + 1]) << 8) |
                    (static_cast<std::uint32_t>(in[3 * i + 2]) << 16);
                storeWord(blk + i, v << shift);
            }
        } else if (width == 16) {
            for (std::int64_t i = 0; i < count; ++i) {
                std::uint16_t v;
                std::memcpy(&v, in + 2 * i, 2);
                storeWord(blk + i,
                          static_cast<std::uint32_t>(v) << shift);
            }
        } else if (width == 8) {
            for (std::int64_t i = 0; i < count; ++i)
                storeWord(blk + i,
                          static_cast<std::uint32_t>(in[i]) << shift);
        } else {
            std::uint64_t acc = 0;
            int nbits = 0;
            const std::uint8_t *p = in;
            const std::uint32_t mask = (1u << width) - 1u;
            for (std::int64_t i = 0; i < count; ++i) {
                while (nbits < width) {
                    acc |= static_cast<std::uint64_t>(*p++) << nbits;
                    nbits += 8;
                }
                storeWord(blk + i,
                          (static_cast<std::uint32_t>(acc) & mask)
                              << shift);
                acc >>= width;
                nbits -= width;
            }
        }
        in += payload;
    }
    PRIMEPAR_ASSERT(in == end, "pack stream has ",
                    static_cast<std::int64_t>(end - in),
                    " trailing bytes");
}

// ---------------------------------------------------------------- Bf16

inline std::uint16_t
bf16FromFloat(std::uint32_t u)
{
    if ((u & 0x7fffffffu) > 0x7f800000u) // NaN: keep it quiet, keep it NaN
        return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
    // Round to nearest even on the dropped 16 mantissa bits.
    const std::uint32_t rounded = u + 0x7fffu + ((u >> 16) & 1u);
    return static_cast<std::uint16_t>(rounded >> 16);
}

std::size_t
bf16Encode(const float *src, std::int64_t n, std::uint8_t *dst)
{
    for (std::int64_t i = 0; i < n; ++i) {
        const std::uint16_t v = bf16FromFloat(loadWord(src + i));
        std::memcpy(dst + 2 * i, &v, 2);
    }
    return static_cast<std::size_t>(2 * n);
}

void
bf16Decode(const std::uint8_t *src, std::size_t bytes, float *dst,
           std::int64_t n)
{
    PRIMEPAR_ASSERT(bytes == static_cast<std::size_t>(2 * n),
                    "bf16 stream size mismatch");
    for (std::int64_t i = 0; i < n; ++i) {
        std::uint16_t v;
        std::memcpy(&v, src + 2 * i, 2);
        storeWord(dst + i, static_cast<std::uint32_t>(v) << 16);
    }
}

// ---------------------------------------------------------------- Int8

/** Per block: a 4-byte fp32 scale (maxAbs/127) then one int8 per
 *  value. Quantization is round-half-away-from-zero, clamped. */
std::size_t
int8Encode(const float *src, std::int64_t n, std::uint8_t *dst)
{
    std::uint8_t *out = dst;
    for (std::int64_t base = 0; base < n; base += kBlockWords) {
        const std::int64_t count = std::min(kBlockWords, n - base);
        const float *blk = src + base;
        float max_abs = 0.0f;
        for (std::int64_t i = 0; i < count; ++i)
            max_abs = std::max(max_abs, std::fabs(blk[i]));
        const float scale = max_abs / 127.0f;
        std::memcpy(out, &scale, 4);
        out += 4;
        const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
        for (std::int64_t i = 0; i < count; ++i) {
            const float scaled = blk[i] * inv;
            int q = static_cast<int>(scaled >= 0.0f ? scaled + 0.5f
                                                    : scaled - 0.5f);
            q = std::max(-127, std::min(127, q));
            out[i] = static_cast<std::uint8_t>(
                static_cast<std::int8_t>(q));
        }
        out += count;
    }
    return static_cast<std::size_t>(out - dst);
}

void
int8Decode(const std::uint8_t *src, std::size_t bytes, float *dst,
           std::int64_t n)
{
    const std::uint8_t *in = src;
    const std::uint8_t *end = src + bytes;
    for (std::int64_t base = 0; base < n; base += kBlockWords) {
        const std::int64_t count = std::min(kBlockWords, n - base);
        PRIMEPAR_ASSERT(in + 4 + count <= end,
                        "int8 stream truncated");
        float scale;
        std::memcpy(&scale, in, 4);
        in += 4;
        for (std::int64_t i = 0; i < count; ++i)
            dst[base + i] =
                static_cast<float>(static_cast<std::int8_t>(in[i])) *
                scale;
        in += count;
    }
    PRIMEPAR_ASSERT(in == end, "int8 stream has ",
                    static_cast<std::int64_t>(end - in),
                    " trailing bytes");
}

std::int64_t
blockCount(std::int64_t n)
{
    return (n + kBlockWords - 1) / kBlockWords;
}

} // namespace

const char *
codecKindName(CodecKind kind)
{
    switch (kind) {
    case CodecKind::None:
        return "none";
    case CodecKind::Pack:
        return "pack";
    case CodecKind::Bf16:
        return "bf16";
    case CodecKind::Int8:
        return "int8";
    }
    return "?";
}

CodecKind
parseCodecKind(const std::string &name)
{
    if (name == "none")
        return CodecKind::None;
    if (name == "pack")
        return CodecKind::Pack;
    if (name == "bf16")
        return CodecKind::Bf16;
    if (name == "int8")
        return CodecKind::Int8;
    throw RuntimeError("unknown codec '" + name +
                       "' (expected none|pack|bf16|int8)");
}

bool
codecLossless(CodecKind kind)
{
    return kind == CodecKind::None || kind == CodecKind::Pack;
}

CodecKind
CodecConfig::forChannel(const char *channel) const
{
    const std::string c = channel ? channel : "";
    if (c == "ring")
        return ring;
    if (c == "acc")
        return acc;
    if (c == "allreduce")
        return allreduce;
    return CodecKind::None;
}

bool
CodecConfig::any() const
{
    return ring != CodecKind::None || acc != CodecKind::None ||
           allreduce != CodecKind::None;
}

CodecConfig
CodecConfig::parse(const std::string &text)
{
    CodecConfig config;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string token = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
            const CodecKind kind = parseCodecKind(token);
            config.ring = config.acc = config.allreduce = kind;
            continue;
        }
        const std::string channel = token.substr(0, eq);
        const CodecKind kind = parseCodecKind(token.substr(eq + 1));
        if (channel == "ring")
            config.ring = kind;
        else if (channel == "acc")
            config.acc = kind;
        else if (channel == "allreduce")
            config.allreduce = kind;
        else
            throw RuntimeError(
                "unknown codec channel '" + channel +
                "' (expected ring|acc|allreduce)");
    }
    return config;
}

std::string
CodecConfig::toString() const
{
    return std::string("ring=") + codecKindName(ring) +
           ",acc=" + codecKindName(acc) +
           ",allreduce=" + codecKindName(allreduce);
}

std::size_t
codecBound(CodecKind kind, std::int64_t n)
{
    PRIMEPAR_ASSERT(n >= 0, "negative element count");
    switch (kind) {
    case CodecKind::None:
        return static_cast<std::size_t>(4 * n);
    case CodecKind::Pack:
        // 2-byte header per block + at most the raw words.
        return static_cast<std::size_t>(2 * blockCount(n) + 4 * n);
    case CodecKind::Bf16:
        return static_cast<std::size_t>(2 * n);
    case CodecKind::Int8:
        return static_cast<std::size_t>(4 * blockCount(n) + n);
    }
    PRIMEPAR_PANIC("unhandled codec kind");
}

std::size_t
codecEncode(CodecKind kind, const float *src, std::int64_t n,
            std::uint8_t *dst)
{
    switch (kind) {
    case CodecKind::Pack:
        return packEncode(src, n, dst);
    case CodecKind::Bf16:
        return bf16Encode(src, n, dst);
    case CodecKind::Int8:
        return int8Encode(src, n, dst);
    case CodecKind::None:
        break;
    }
    PRIMEPAR_PANIC("codecEncode called with kind None");
}

void
codecDecode(CodecKind kind, const std::uint8_t *src, std::size_t bytes,
            float *dst, std::int64_t n)
{
    switch (kind) {
    case CodecKind::Pack:
        packDecode(src, bytes, dst, n);
        return;
    case CodecKind::Bf16:
        bf16Decode(src, bytes, dst, n);
        return;
    case CodecKind::Int8:
        int8Decode(src, bytes, dst, n);
        return;
    case CodecKind::None:
        break;
    }
    PRIMEPAR_PANIC("codecDecode called with kind None");
}

} // namespace primepar
