/**
 * @file
 * Versioned, checksummed training checkpoints.
 *
 * A checkpoint captures everything needed to resume training
 * bit-identically: the step counter, the parameter tensors, and the
 * optimizer state tensors (momentum). The on-disk format is
 *
 *   magic "PPCKPT01" | u32 version | u64 payload bytes
 *   payload: u64 step, then the two tensor maps
 *            (u64 count, entries of name / rank / dims / float data)
 *   u64 FNV-64 checksum of the payload
 *
 * Loads validate magic, version, sizes, and the checksum, and throw
 * CheckpointError with a precise diagnosis on any mismatch — a
 * truncated or bit-flipped checkpoint is rejected, never silently
 * resumed from. Saves write to `<path>.tmp` and rename, so a crash
 * mid-save cannot destroy the previous checkpoint.
 */

#ifndef PRIMEPAR_RUNTIME_CHECKPOINT_HH
#define PRIMEPAR_RUNTIME_CHECKPOINT_HH

#include <cstdint>
#include <map>
#include <string>

#include "tensor/tensor.hh"

namespace primepar {

/** Resumable training state. */
struct Checkpoint
{
    std::uint64_t step = 0;
    /** Parameters keyed "<node>.<tensor>" (GraphIO::params keys). */
    std::map<std::string, Tensor> params;
    /** Optimizer state (momentum velocities), keyed like params. */
    std::map<std::string, Tensor> optState;
};

/** Serialize @p ck to @p path; throws CheckpointError on I/O failure. */
void saveCheckpoint(const std::string &path, const Checkpoint &ck);

/** Load and validate @p path; throws CheckpointError when the file is
 *  missing, truncated, version-mismatched, or fails its checksum. */
Checkpoint loadCheckpoint(const std::string &path);

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_CHECKPOINT_HH
