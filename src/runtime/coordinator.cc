#include "coordinator.hh"

#include <algorithm>
#include <chrono>

#include "errors.hh"
#include "fault.hh"
#include "observer.hh"
#include "support/logging.hh"

namespace primepar {

namespace {

std::int64_t
steadyMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<std::uint8_t>
jsonBytes(const JsonValue &v)
{
    const std::string s = v.toString();
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

JsonValue
parsePayload(const WireFrame &f)
{
    if (f.payload.empty())
        return JsonValue::object();
    return parseJson(
        std::string(f.payload.begin(), f.payload.end()));
}

WireFrame
ctrlFrame(FrameType type, const char *verb, std::int64_t sender,
          std::uint64_t generation, const JsonValue &body)
{
    WireFrame f;
    f.type = type;
    f.tensor = verb;
    f.sender = sender;
    f.generation = generation;
    f.payload = jsonBytes(body);
    f.checksum = checksumBytes(f.payload.data(), f.payload.size());
    return f;
}

} // namespace

// ---------------------------------------------------------------------------
// Coordinator

struct Coordinator::WorkerState
{
    std::int64_t id = 0;
    NetSocket conn;
    std::string host = "127.0.0.1";
    int dataPort = 0;
    std::int64_t lastSeenMs = 0;
    bool alive = true;
    bool done = false;
    /** Reader blocked in a suspect decision: the liveness monitor must
     *  not hold missing heartbeats against this worker's *own* reader
     *  being busy (heartbeats still arrive, its thread just isn't
     *  consuming them until the RPC completes). */
    bool inRpc = false;
    /** Registered into a degraded generation, welcome deferred until
     *  the re-join flip; excluded from liveness, placement and
     *  finished() until then. */
    bool rejoining = false;
    /** Parked in a "resync" RPC at the re-join barrier. */
    bool resyncing = false;
    double finalLoss = 0.0;
    std::thread reader;
};

Coordinator::Coordinator(CoordinatorOptions opts_in)
    : opts(std::move(opts_in)), bits_(opts.numBits),
      origBits_(opts.numBits)
{
    PRIMEPAR_ASSERT(opts.numWorkers >= 1, "coordinator needs workers");
    PRIMEPAR_ASSERT((1 << bits_) >= opts.numWorkers,
                    "more workers (", opts.numWorkers,
                    ") than devices (", 1 << bits_, ")");
}

Coordinator::~Coordinator()
{
    stopping = true;
    for (auto &w : workers)
        if (w && w->reader.joinable())
            w->reader.join();
}

void
Coordinator::start()
{
    listener.open(opts.port);
}

int
Coordinator::port() const
{
    return listener.port();
}

JsonValue
Coordinator::currentWorldJson()
{
    // mu held by caller.
    DistWorld w;
    w.generation = generation_;
    w.numBits = bits_;
    w.workers = placed;
    return w.toJson();
}

int
Coordinator::run()
{
    PRIMEPAR_ASSERT(listener.valid(), "start() before run()");

    // Registration barrier: every worker dials in, sends a "register"
    // Ctrl frame with its data-plane listener port, and blocks until
    // all of them did — only then does anyone learn the world.
    const std::int64_t barrier_deadline =
        steadyMs() + std::max(10000, opts.dist.connectTimeoutMs * 10);
    while (static_cast<int>(workers.size()) < opts.numWorkers) {
        const int remain =
            static_cast<int>(barrier_deadline - steadyMs());
        if (remain <= 0) {
            PRIMEPAR_INFORM("coordinator: only ", workers.size(),
                            " of ", opts.numWorkers,
                            " workers registered in time");
            return 1;
        }
        NetSocket conn = listener.accept(std::min(remain, 250));
        if (!conn.valid())
            continue;
        WireFrame f;
        if (readFrame(conn, f, opts.dist.connectTimeoutMs) !=
                IoResult::Ok ||
            f.type != FrameType::Ctrl || f.tensor != "register") {
            continue; // stray connection; drop it
        }
        auto w = std::make_unique<WorkerState>();
        w->id = static_cast<std::int64_t>(workers.size());
        w->conn = std::move(conn);
        w->lastSeenMs = steadyMs();
        const JsonValue body = parsePayload(f);
        if (const JsonValue *p = body.find("port"))
            w->dataPort = static_cast<int>(p->asNumber());
        if (const JsonValue *h = body.find("host"))
            w->host = h->asString();
        workers.push_back(std::move(w));
    }

    {
        std::lock_guard<std::mutex> lock(mu);
        placed.clear();
        for (const auto &w : workers) {
            WorkerInfo info;
            info.worker = w->id;
            info.host = w->host;
            info.port = w->dataPort;
            placed.push_back(info);
        }
        DistWorld::placeDevices(placed, bits_);
    }

    // Welcome everyone; from here on, a connection is a liveness lease.
    for (auto &w : workers) {
        JsonValue welcome = JsonValue::object();
        welcome.set("worker", JsonValue(w->id));
        {
            std::lock_guard<std::mutex> lock(mu);
            welcome.set("world", currentWorldJson());
        }
        welcome.set("job", opts.job);
        if (writeFrame(w->conn,
                       ctrlFrame(FrameType::CtrlResp, "welcome", -1,
                                 generation_, welcome),
                       opts.dist.transferDeadlineMs) !=
            IoResult::Ok) {
            PRIMEPAR_INFORM("coordinator: worker ", w->id,
                            " vanished before welcome");
            markDead(w->id, "closed before welcome");
        }
        if (observer)
            observer->onWorkerUp(w->id, generation_);
        PRIMEPAR_INFORM("coordinator: worker ", w->id, " up (",
                        w->host, ":", w->dataPort, ")");
    }

    for (auto &w : workers)
        w->reader = std::thread([this, &w_ref = *w] {
            readerLoop(w_ref);
        });

    // Liveness monitor: heartbeat staleness beyond the miss budget is
    // a death sentence, same as a closed connection but slower.
    const std::int64_t stale_ms =
        static_cast<std::int64_t>(opts.dist.heartbeatMs) *
        opts.dist.heartbeatMissLimit;
    int rc = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu);
            if (cv.wait_for(
                    lock,
                    std::chrono::milliseconds(opts.dist.heartbeatMs),
                    [this] { return finished(); }))
                break;
            const std::int64_t now = steadyMs();
            std::vector<std::int64_t> stale;
            for (const auto &w : workers)
                if (w->alive && !w->done && !w->inRpc &&
                    now - w->lastSeenMs > stale_ms)
                    stale.push_back(w->id);
            lock.unlock();
            for (std::int64_t id : stale)
                markDead(id, "heartbeat timeout");
        }
        tryAcceptRejoin();
        std::lock_guard<std::mutex> lock(mu);
        if (finished())
            break;
        bool any_alive = false;
        for (const auto &w : workers)
            any_alive = any_alive || (w->alive && !w->rejoining);
        if (!any_alive) {
            PRIMEPAR_INFORM("coordinator: all workers lost; "
                            "job failed");
            rc = 1;
            break;
        }
    }

    stopping = true;
    cv.notify_all();
    for (auto &w : workers)
        if (w->reader.joinable())
            w->reader.join();
    return rc;
}

bool
Coordinator::finished()
{
    // mu held by caller.
    bool any_alive = false;
    for (const auto &w : workers) {
        if (!w->alive || w->rejoining)
            continue;
        any_alive = true;
        if (!w->done)
            return false;
    }
    return any_alive;
}

void
Coordinator::tryAcceptRejoin()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!opts.allowRejoin || lost == 0 || pendingRejoin_ >= 0)
            return;
    }
    NetSocket conn = listener.accept(10);
    if (!conn.valid())
        return;
    WireFrame f;
    if (readFrame(conn, f, opts.dist.connectTimeoutMs) !=
            IoResult::Ok ||
        f.type != FrameType::Ctrl || f.tensor != "register") {
        return; // stray connection; drop it
    }
    auto w = std::make_unique<WorkerState>();
    w->conn = std::move(conn);
    w->lastSeenMs = steadyMs();
    w->rejoining = true;
    const JsonValue body = parsePayload(f);
    if (const JsonValue *p = body.find("port"))
        w->dataPort = static_cast<int>(p->asNumber());
    if (const JsonValue *h = body.find("host"))
        w->host = h->asString();
    std::int64_t id;
    std::int64_t barrier;
    {
        std::lock_guard<std::mutex> lock(mu);
        id = static_cast<std::int64_t>(workers.size());
        w->id = id;
        pendingRejoin_ = id;
        // Every survivor still reports some step s <= R-1 (the
        // highest step anyone *reported* trails the highest step
        // anyone *executes* by at most one), so each sees the pause
        // barrier in a step ack before executing step R.
        resumeStep_ = maxStep_ + 2;
        barrier = resumeStep_;
        workers.push_back(std::move(w));
    }
    PRIMEPAR_INFORM("coordinator: worker ", id,
                    " registered for re-join; pausing survivors at "
                    "step ",
                    barrier);
    cv.notify_all();
}

void
Coordinator::readerLoop(WorkerState &w)
{
    while (!stopping) {
        WireFrame f;
        const IoResult r =
            readFrame(w.conn, f, opts.dist.heartbeatMs * 2);
        if (stopping)
            return;
        if (r == IoResult::Timeout)
            continue; // monitor thread judges staleness
        if (r == IoResult::Closed || r == IoResult::Malformed) {
            bool was_done;
            {
                std::lock_guard<std::mutex> lock(mu);
                was_done = w.done;
            }
            // A worker that said "done" closing its connection is a
            // clean exit, not a death.
            if (!was_done)
                markDead(w.id, r == IoResult::Closed
                                   ? "connection closed"
                                   : "malformed control frame");
            return;
        }

        {
            std::lock_guard<std::mutex> lock(mu);
            w.lastSeenMs = steadyMs();
        }
        if (f.type == FrameType::Heartbeat)
            continue;
        if (f.type != FrameType::Ctrl)
            continue;

        if (f.tensor == "step") {
            const JsonValue body = parsePayload(f);
            const std::int64_t step = static_cast<std::int64_t>(body.at("step").asNumber());
            const double loss = body.at("loss").asNumber();
            JsonValue ack = JsonValue::object();
            {
                std::lock_guard<std::mutex> lock(mu);
                maxStep_ = std::max(maxStep_, step);
                auto it = lossByStep.find(step);
                if (it == lossByStep.end() ||
                    f.generation > lossGen[step]) {
                    // First report, or a replay on the degraded grid
                    // (whose losses legitimately differ): (over)write.
                    lossByStep[step] = loss;
                    lossReporter[step] = w.id;
                    lossGen[step] = f.generation;
                } else if (f.generation == lossGen[step] &&
                           it->second != loss) {
                    // Replicas must agree bit-for-bit within a
                    // generation. Keep the lowest-id reporter's value.
                    ++diverged;
                    PRIMEPAR_INFORM(
                        "coordinator: step ", step,
                        " loss divergence: worker ",
                        lossReporter[step], " says ", it->second,
                        ", worker ", w.id, " says ", loss);
                    if (w.id < lossReporter[step]) {
                        it->second = loss;
                        lossReporter[step] = w.id;
                    }
                }
                ack.set("pause_at",
                        JsonValue(pendingRejoin_ >= 0 ? resumeStep_
                                                      : -1));
            }
            if (writeFrame(w.conn,
                           ctrlFrame(FrameType::CtrlResp, "step", -1,
                                     generation_, ack),
                           opts.dist.transferDeadlineMs) !=
                IoResult::Ok) {
                markDead(w.id, "closed during step ack");
                return;
            }
        } else if (f.tensor == "resync") {
            const JsonValue world = handleResync(w);
            JsonValue resp = JsonValue::object();
            resp.set("world", world);
            if (writeFrame(w.conn,
                           ctrlFrame(FrameType::CtrlResp, "resync",
                                     -1, generation_, resp),
                           opts.dist.transferDeadlineMs) !=
                IoResult::Ok) {
                markDead(w.id, "closed during resync reply");
                return;
            }
        } else if (f.tensor == "suspect") {
            const JsonValue body = parsePayload(f);
            const std::int64_t suspected =
                static_cast<std::int64_t>(body.at("worker").asNumber());
            const JsonValue world = handleSuspect(w, suspected);
            JsonValue resp = JsonValue::object();
            resp.set("world", world);
            if (writeFrame(w.conn,
                           ctrlFrame(FrameType::CtrlResp, "suspect",
                                     -1, generation_, resp),
                           opts.dist.transferDeadlineMs) !=
                IoResult::Ok) {
                markDead(w.id, "closed during suspect reply");
                return;
            }
        } else if (f.tensor == "world") {
            JsonValue resp = JsonValue::object();
            {
                std::lock_guard<std::mutex> lock(mu);
                resp.set("world", currentWorldJson());
            }
            if (writeFrame(w.conn,
                           ctrlFrame(FrameType::CtrlResp, "world",
                                     -1, generation_, resp),
                           opts.dist.transferDeadlineMs) !=
                IoResult::Ok) {
                markDead(w.id, "closed during world reply");
                return;
            }
        } else if (f.tensor == "done") {
            const JsonValue body = parsePayload(f);
            {
                std::lock_guard<std::mutex> lock(mu);
                w.done = true;
                if (const JsonValue *l = body.find("loss"))
                    w.finalLoss = l->asNumber();
            }
            PRIMEPAR_INFORM("coordinator: worker ", w.id, " done");
            cv.notify_all();
        }
    }
}

void
Coordinator::markDead(std::int64_t worker, const std::string &reason)
{
    std::uint64_t gen_after = 0;
    {
        std::lock_guard<std::mutex> lock(mu);
        WorkerState *w = nullptr;
        for (auto &cand : workers)
            if (cand->id == worker)
                w = cand.get();
        if (!w || !w->alive)
            return;
        w->alive = false;
        if (w->rejoining) {
            // A pending rejoiner dying costs nothing: it never held
            // devices. Un-block the survivors' pause barrier.
            if (pendingRejoin_ == w->id) {
                pendingRejoin_ = -1;
                resumeStep_ = -1;
            }
            cv.notify_all();
            return;
        }
        ++lost;
        ++generation_;
        bits_ = std::max(0, bits_ - 1);
        gen_after = generation_;

        // Survivors keep their ids; devices are renumbered densely
        // over them, mirroring BlockTrainer's degrade path.
        placed.clear();
        for (const auto &cand : workers) {
            if (!cand->alive || cand->rejoining)
                continue;
            WorkerInfo info;
            info.worker = cand->id;
            info.host = cand->host;
            info.port = cand->dataPort;
            placed.push_back(info);
        }
        if (!placed.empty())
            DistWorld::placeDevices(placed, bits_);
    }
    PRIMEPAR_INFORM("coordinator: worker ", worker, " lost (",
                    reason, "); generation now ", gen_after, ", ",
                    1 << bits_, " devices on ", placed.size(),
                    " workers");
    if (observer)
        observer->onWorkerLost(worker, gen_after, reason);
    cv.notify_all();
}

JsonValue
Coordinator::handleSuspect(WorkerState &from, std::int64_t suspected)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        from.inRpc = true;
    }
    // Block until the accusation resolves: either the suspected
    // worker's death is confirmed (its connection closed, or its
    // heartbeats went stale) or it proves alive by outliving the miss
    // budget from *now* — transient network trouble between two live
    // workers must not kill anyone.
    const std::int64_t budget_ms =
        static_cast<std::int64_t>(opts.dist.heartbeatMs) *
        opts.dist.heartbeatMissLimit;
    const std::int64_t deadline = steadyMs() + 2 * budget_ms;
    bool confirmed = false;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu);
            WorkerState *s = nullptr;
            for (auto &cand : workers)
                if (cand->id == suspected)
                    s = cand.get();
            if (!s || !s->alive) {
                confirmed = true; // already dead (or never existed)
                break;
            }
            if (steadyMs() - s->lastSeenMs > budget_ms) {
                lock.unlock();
                markDead(suspected, "suspected by worker " +
                                        std::to_string(from.id) +
                                        " + heartbeat stale");
                confirmed = true;
                break;
            }
            if (steadyMs() >= deadline)
                break; // heartbeats kept flowing: not guilty
            cv.wait_for(lock, std::chrono::milliseconds(
                                  opts.dist.heartbeatMs));
        }
        if (stopping)
            break;
    }
    std::lock_guard<std::mutex> lock(mu);
    from.inRpc = false;
    from.lastSeenMs = steadyMs();
    if (!confirmed)
        PRIMEPAR_INFORM("coordinator: worker ", from.id,
                        " suspected worker ", suspected,
                        " but its heartbeats are healthy");
    return currentWorldJson();
}

JsonValue
Coordinator::handleResync(WorkerState &from)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        from.inRpc = true;
        from.resyncing = true;
    }
    cv.notify_all();
    const std::int64_t budget_ms =
        static_cast<std::int64_t>(opts.dist.heartbeatMs) *
        opts.dist.heartbeatMissLimit;
    const std::int64_t deadline = steadyMs() + 2 * budget_ms;

    // Park until the flip (or its abandonment). The last survivor to
    // arrive performs the flip itself; everyone else wakes on the
    // generation bump.
    WorkerState *rj = nullptr;
    JsonValue welcome;
    std::int64_t rstep = -1;
    std::int64_t abandoned = -1;
    int bits_after = 0;
    std::size_t placed_after = 0;
    {
        std::unique_lock<std::mutex> lock(mu);
        const std::uint64_t entry_gen = generation_;
        for (;;) {
            if (stopping || pendingRejoin_ < 0 ||
                generation_ != entry_gen)
                break;
            bool all_parked = true;
            for (const auto &cand : workers)
                if (cand->alive && !cand->done && !cand->rejoining &&
                    !cand->resyncing)
                    all_parked = false;
            if (all_parked) {
                for (auto &cand : workers)
                    if (cand->id == pendingRejoin_)
                        rj = cand.get();
                PRIMEPAR_ASSERT(rj != nullptr,
                                "pending rejoiner vanished from the "
                                "worker table");
                // The flip: one generation, one bit back (capped at
                // the original grid), devices re-placed over
                // survivors + rejoiner in id order.
                ++generation_;
                bits_ = std::min(origBits_, bits_ + 1);
                rj->rejoining = false;
                rj->lastSeenMs = steadyMs();
                placed.clear();
                for (const auto &cand : workers) {
                    if (!cand->alive || cand->rejoining)
                        continue;
                    WorkerInfo info;
                    info.worker = cand->id;
                    info.host = cand->host;
                    info.port = cand->dataPort;
                    placed.push_back(info);
                }
                DistWorld::placeDevices(placed, bits_);
                // The rejoiner restores the lowest-id survivor's
                // step-R checkpoint snapshot.
                std::int64_t donor = -1;
                for (const auto &cand : workers)
                    if (cand->alive && !cand->done &&
                        cand->id != rj->id && donor < 0)
                        donor = cand->id;
                welcome = JsonValue::object();
                welcome.set("worker", JsonValue(rj->id));
                welcome.set("world", currentWorldJson());
                welcome.set("job", opts.job);
                welcome.set("resume_step", JsonValue(resumeStep_));
                welcome.set("restore_from", JsonValue(donor));
                rstep = resumeStep_;
                bits_after = bits_;
                placed_after = placed.size();
                pendingRejoin_ = -1;
                resumeStep_ = -1;
                for (auto &cand : workers)
                    cand->resyncing = false;
                break;
            }
            if (steadyMs() >= deadline) {
                abandoned = pendingRejoin_;
                break;
            }
            cv.wait_for(lock, std::chrono::milliseconds(
                                  opts.dist.heartbeatMs));
        }
        from.inRpc = false;
        from.resyncing = false;
        from.lastSeenMs = steadyMs();
    }
    cv.notify_all();

    if (abandoned >= 0) {
        // The barrier never completed (rejoiner or a survivor gone):
        // give up on the rejoiner and resume on the degraded grid.
        markDead(abandoned, "re-join barrier timeout");
    } else if (rj) {
        // Deferred welcome: the rejoiner has been blocked in its
        // registration RPC since tryAcceptRejoin().
        if (writeFrame(rj->conn,
                       ctrlFrame(FrameType::CtrlResp, "welcome", -1,
                                 generation_, welcome),
                       opts.dist.transferDeadlineMs) ==
            IoResult::Ok) {
            rj->reader = std::thread([this, &w_ref = *rj] {
                readerLoop(w_ref);
            });
            PRIMEPAR_INFORM("coordinator: worker ", rj->id,
                            " re-joined; generation now ",
                            generation(), ", ", 1 << bits_after,
                            " devices on ", placed_after,
                            " workers; resuming at step ", rstep);
            if (observer)
                observer->onWorkerUp(rj->id, generation());
        } else {
            markDead(rj->id, "closed before re-join welcome");
        }
    }

    std::lock_guard<std::mutex> lock(mu);
    return currentWorldJson();
}

std::map<std::int64_t, double>
Coordinator::losses() const
{
    std::lock_guard<std::mutex> lock(mu);
    return lossByStep;
}

std::uint64_t
Coordinator::generation() const
{
    std::lock_guard<std::mutex> lock(mu);
    return generation_;
}

int
Coordinator::workersLost() const
{
    std::lock_guard<std::mutex> lock(mu);
    return lost;
}

int
Coordinator::divergences() const
{
    std::lock_guard<std::mutex> lock(mu);
    return diverged;
}

// ---------------------------------------------------------------------------
// CoordinatorClient

CoordinatorClient::CoordinatorClient(DistOptions dist_in)
    : dist(dist_in)
{}

CoordinatorClient::~CoordinatorClient()
{
    stopHeartbeats();
}

void
CoordinatorClient::connect(const std::string &host, int port)
{
    sock = netConnect(host, port, dist.connectTimeoutMs);
    if (!sock.valid())
        throw RuntimeError("cannot reach coordinator at " + host +
                           ":" + std::to_string(port));
}

void
CoordinatorClient::send(const WireFrame &f)
{
    std::lock_guard<std::mutex> lock(sendMu);
    if (writeFrame(sock, f, dist.transferDeadlineMs) != IoResult::Ok)
        throw RuntimeError("lost connection to coordinator");
}

JsonValue
CoordinatorClient::rpc(const char *verb, const JsonValue &body,
                       int deadline_ms, const char *respVerb)
{
    send(ctrlFrame(FrameType::Ctrl, verb, myId, generation_, body));
    if (!respVerb)
        respVerb = verb;
    // Responses only ever arrive as answers to requests, in order, so
    // the caller of the RPC is always the rightful reader.
    WireFrame resp;
    for (;;) {
        const IoResult r = readFrame(sock, resp, deadline_ms);
        if (r != IoResult::Ok)
            throw RuntimeError(std::string("coordinator rpc '") +
                               verb + "' failed: " +
                               ioResultName(r));
        if (resp.type == FrameType::CtrlResp &&
            resp.tensor == respVerb)
            break;
    }
    return parsePayload(resp);
}

JsonValue
CoordinatorClient::registerWorker(int dataPort)
{
    JsonValue body = JsonValue::object();
    body.set("port", JsonValue(static_cast<std::int64_t>(dataPort)));
    // The barrier waits for every worker, so be generous.
    const JsonValue welcome =
        rpc("register", body,
            std::max(10000, dist.connectTimeoutMs * 10), "welcome");
    myId = static_cast<std::int64_t>(welcome.at("worker").asNumber());
    // A rejoiner's welcome arrives from a later generation; adopt it.
    generation_ = 0;
    if (const JsonValue *w = welcome.find("world"))
        generation_ = DistWorld::fromJson(*w).generation;
    return welcome;
}

void
CoordinatorClient::startHeartbeats(int periodMs)
{
    stopHb = false;
    heartbeatThread = std::thread([this, periodMs] {
        while (!stopHb) {
            WireFrame hb;
            hb.type = FrameType::Heartbeat;
            hb.sender = myId;
            hb.generation = generation_;
            {
                std::lock_guard<std::mutex> lock(sendMu);
                if (writeFrame(sock, hb,
                               dist.transferDeadlineMs) !=
                    IoResult::Ok)
                    return; // coordinator gone; the main thread
                            // finds out on its next RPC
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(periodMs));
        }
    });
}

void
CoordinatorClient::stopHeartbeats()
{
    stopHb = true;
    if (heartbeatThread.joinable())
        heartbeatThread.join();
}

StepAck
CoordinatorClient::reportStep(std::int64_t step, double loss)
{
    JsonValue body = JsonValue::object();
    body.set("step", JsonValue(step));
    body.set("loss", JsonValue(loss));
    const JsonValue resp =
        rpc("step", body,
            2 * dist.heartbeatMs * dist.heartbeatMissLimit + 5000);
    StepAck ack;
    ack.generation = generation_;
    if (const JsonValue *p = resp.find("pause_at"))
        ack.pauseAt = static_cast<std::int64_t>(p->asNumber());
    return ack;
}

DistWorld
CoordinatorClient::resync(std::int64_t step)
{
    JsonValue body = JsonValue::object();
    body.set("step", JsonValue(step));
    // The coordinator may hold the barrier for 2x the miss budget.
    const int deadline =
        4 * dist.heartbeatMs * dist.heartbeatMissLimit + 5000;
    const JsonValue resp = rpc("resync", body, deadline);
    DistWorld w = DistWorld::fromJson(resp.at("world"));
    w.myWorker = myId;
    generation_ = w.generation;
    return w;
}

DistWorld
CoordinatorClient::suspect(std::int64_t suspected)
{
    JsonValue body = JsonValue::object();
    body.set("worker", JsonValue(suspected));
    // The coordinator may spend 2x the miss budget deciding.
    const int deadline =
        4 * dist.heartbeatMs * dist.heartbeatMissLimit + 5000;
    const JsonValue resp = rpc("suspect", body, deadline);
    DistWorld w = DistWorld::fromJson(resp.at("world"));
    w.myWorker = myId;
    generation_ = w.generation;
    return w;
}

DistWorld
CoordinatorClient::fetchWorld()
{
    const JsonValue resp =
        rpc("world", JsonValue::object(),
            2 * dist.heartbeatMs * dist.heartbeatMissLimit + 5000);
    DistWorld w = DistWorld::fromJson(resp.at("world"));
    w.myWorker = myId;
    generation_ = w.generation;
    return w;
}

void
CoordinatorClient::done(std::int64_t finalStep, double finalLoss)
{
    JsonValue body = JsonValue::object();
    body.set("step", JsonValue(finalStep));
    body.set("loss", JsonValue(finalLoss));
    send(ctrlFrame(FrameType::Ctrl, "done", myId, generation_, body));
}

} // namespace primepar
