#include "trainer.hh"

#include <utility>

#include "support/logging.hh"
#include "support/rng.hh"
#include "transformer_runtime.hh"

namespace primepar {

std::vector<PartitionSeq>
defaultBlockPlan(const CompGraph &graph, int bits)
{
    std::vector<PartitionSeq> plan;
    plan.reserve(static_cast<std::size_t>(graph.numNodes()));
    for (int n = 0; n < graph.numNodes(); ++n) {
        const OpSpec &op = graph.node(n);
        PartitionSeq seq;
        if (bits >= 2 && op.psquare.has_value())
            seq.push(PartitionStep::pSquare(1));

        auto dimByName = [&](const char *name) -> int {
            for (std::size_t d = 0; d < op.dims.size(); ++d) {
                if (op.dims[d].name == name)
                    return static_cast<int>(d);
            }
            return -1;
        };
        std::vector<int> preferred;
        auto prefer = [&](int d) {
            if (d < 0)
                return;
            for (int have : preferred) {
                if (have == d)
                    return;
            }
            preferred.push_back(d);
        };
        prefer(dimByName("B"));
        if (op.kind == "matmul" || op.kind == "softmax")
            prefer(dimByName("Hd"));
        prefer(dimByName("M"));
        for (std::size_t d = 0; d < op.dims.size(); ++d)
            prefer(static_cast<int>(d));

        // Greedy fill of the remaining bits: first preferred dim whose
        // additional halving the operator still validates.
        while (seq.numBits() < bits) {
            bool placed = false;
            for (int d : preferred) {
                PartitionSeq trial = seq;
                trial.push(PartitionStep::byDim(d));
                if (trial.validate(op).empty()) {
                    seq = std::move(trial);
                    placed = true;
                    break;
                }
            }
            PRIMEPAR_ASSERT(placed,
                            "defaultBlockPlan: no partitionable dim of ",
                            op.name, " can consume bit ", seq.numBits(),
                            " of ", bits);
        }
        plan.push_back(std::move(seq));
    }
    return plan;
}

BlockTrainer::BlockTrainer(TrainerOptions opts_in)
    : opts(std::move(opts_in)),
      graph(buildTransformerBlock(opts.model, opts.batch))
{
    bits_ = opts.runtime.numBits;
    strategies = opts.replanner ? opts.replanner(graph, bits_)
                                : defaultBlockPlan(graph, bits_);
    if (opts.runtime.faults.enabled())
        injector = std::make_shared<FaultInjector>(opts.runtime.faults);
    if (!opts.transportFactory) {
        // Uniform construction path: in-process training is just the
        // default factory, not a special case in buildExecutor.
        opts.transportFactory =
            [topts = opts.runtime.transport](
                int, const DeviceFailedError *,
                std::shared_ptr<FaultInjector> inj,
                RuntimeHealth *h) -> std::unique_ptr<Transport> {
            return std::make_unique<InProcessTransport>(topts, inj, h);
        };
    }
    Rng rng(opts.seed | 1);
    params = randomBlockParams(graph, rng);
    buildExecutor();
}

BlockTrainer::~BlockTrainer() = default;

void
BlockTrainer::buildExecutor(const DeviceFailedError *cause)
{
    // A fresh transport per (re-)build: a degraded grid renumbers the
    // devices, so the old dead-set must not carry over. The injector
    // *is* shared, so scheduled faults keep their consumed budget.
    // Built before the executors: their device span is the transport's.
    transport = opts.transportFactory(bits_, cause, injector, &health_);
    RuntimeOptions rt = opts.runtime;
    rt.numBits = bits_;
    rt.execution.ownedDevices = transport->ownedDevices();
    exec = std::make_unique<SpmdGraphExecutor>(graph, strategies, rt);
    installTransformerBlockTransforms(*exec, opts.model, opts.batch);
    transport->setHealth(&health_);
    exec->setTransport(transport.get());
    exec->setHealth(&health_, opts.runtime.guard);
    // One chain serves the whole stack; its address is stable, so
    // observers attached later still reach the rebuilt executor.
    exec->addObserver(&observers_);
    transport->setObserver(&observers_);
}

void
BlockTrainer::addObserver(RuntimeObserver *o)
{
    observers_.add(o);
}

GraphIO
BlockTrainer::makeBatch(std::int64_t step) const
{
    // Batches are a pure function of (seed, step): a resumed run
    // regenerates the exact inputs of the interrupted one.
    Rng rng((opts.seed ^ (0x9e3779b97f4a7c15ull *
                          static_cast<std::uint64_t>(step + 1))) |
            1);
    const Shape shape{opts.batch, opts.model.seqLength,
                      opts.model.hiddenSize};
    GraphIO io;
    io.input = Tensor::random(shape, rng);
    io.d_output = Tensor::random(shape, rng);
    io.params = params;
    return io;
}

void
BlockTrainer::applyUpdate(const std::map<std::string, Tensor> &d_params)
{
    for (const auto &[name, grad] : d_params) {
        auto wit = params.find(name);
        PRIMEPAR_ASSERT(wit != params.end(),
                        "gradient for unknown parameter ", name);
        Tensor &w = wit->second;
        auto vit = velocity.find(name);
        if (vit == velocity.end())
            vit = velocity.emplace(name, Tensor(w.shape())).first;
        Tensor &v = vit->second;
        v.scale(static_cast<float>(opts.momentum));
        Tensor scaled = grad;
        scaled.scale(static_cast<float>(-opts.lr));
        v.add(scaled);
        w.add(v);
    }
}

StepStats
BlockTrainer::trainStep()
{
    for (;;) {
        const std::int64_t s = step_;
        try {
            const bool watched = !observers_.empty();
            const double t0 = watched ? observerNowUs() : 0.0;
            if (watched)
                observers_.onStepBegin(s);
            const GraphIO io = makeBatch(s);
            exec->beginStep(s);
            const GraphResult res = exec->run(io);

            // Probe loss: <O, dO> / numel — cheap, deterministic, and
            // sensitive to any perturbation of output or parameters.
            double loss = 0.0;
            const float *o = res.output.data();
            const float *g = io.d_output.data();
            const std::int64_t numel = res.output.numel();
            for (std::int64_t i = 0; i < numel; ++i)
                loss += static_cast<double>(o[i]) *
                        static_cast<double>(g[i]);
            loss /= static_cast<double>(numel);

            applyUpdate(res.d_params);
            ++step_;
            if (watched)
                observers_.onStepEnd(s, observerNowUs() - t0);
            const CheckpointOptions &ck = opts.runtime.checkpoint;
            if (!ck.path.empty() && ck.every > 0 &&
                step_ % ck.every == 0) {
                saveCheckpointNow();
            }
            return {s, loss};
        } catch (const DeviceFailedError &err) {
            if (replansDone >= opts.runtime.checkpoint.maxReplans ||
                bits_ <= 0)
                throw;
            degradeAndRestore(err);
        }
    }
}

Checkpoint
BlockTrainer::checkpoint() const
{
    Checkpoint ck;
    ck.step = static_cast<std::uint64_t>(step_);
    ck.params = params;
    ck.optState = velocity;
    return ck;
}

void
BlockTrainer::saveCheckpointNow()
{
    PRIMEPAR_ASSERT(!opts.runtime.checkpoint.path.empty(),
                    "no checkpoint path configured");
    const bool watched = !observers_.empty();
    const double t0 = watched ? observerNowUs() : 0.0;
    const Checkpoint ck = checkpoint();
    saveCheckpoint(opts.runtime.checkpoint.path, ck);
    if (opts.runtime.checkpoint.keepHistory)
        saveCheckpoint(opts.runtime.checkpoint.path + ".s" +
                           std::to_string(step_),
                       ck);
    checkpointOnDisk = true;
    if (watched)
        observers_.onCheckpoint(true, step_, observerNowUs() - t0);
}

void
BlockTrainer::restoreFrom(const Checkpoint &ck)
{
    step_ = static_cast<std::int64_t>(ck.step);
    params = ck.params;
    velocity = ck.optState;
}

void
BlockTrainer::resumeFromCheckpointFile()
{
    const bool watched = !observers_.empty();
    const double t0 = watched ? observerNowUs() : 0.0;
    restoreFrom(loadCheckpoint(opts.runtime.checkpoint.path));
    checkpointOnDisk = true;
    if (watched)
        observers_.onCheckpoint(false, step_, observerNowUs() - t0);
}

void
BlockTrainer::resyncTo(int newBits)
{
    PRIMEPAR_ASSERT(newBits >= 0, "resyncTo: negative grid bits");
    ++health_.replans;
    bits_ = newBits;
    strategies = opts.replanner ? opts.replanner(graph, bits_)
                                : defaultBlockPlan(graph, bits_);
    buildExecutor(nullptr);
}

void
BlockTrainer::degradeAndRestore(const DeviceFailedError &err)
{
    ++replansDone;
    ++health_.replans;
    bits_ -= 1;
    health_.recordEvent(
        {FaultKind::DeviceFail,
         "device " + std::to_string(err.device) +
             " lost permanently; re-planning for the surviving 2^" +
             std::to_string(bits_) + " grid",
         err.tensor, err.step, err.sender, err.receiver, 0});
    PRIMEPAR_INFORM("device ", err.device, " failed; degrading to 2^",
                    bits_, " devices and restoring last checkpoint");

    strategies = opts.replanner ? opts.replanner(graph, bits_)
                                : defaultBlockPlan(graph, bits_);
    if (checkpointOnDisk && !opts.runtime.checkpoint.path.empty()) {
        resumeFromCheckpointFile();
        ++health_.checkpointRestores;
    } else {
        // Nothing durable yet: cold-restart from the initial state —
        // seeded, so the trajectory is still reproducible.
        Rng rng(opts.seed | 1);
        params = randomBlockParams(graph, rng);
        velocity.clear();
        step_ = 0;
    }
    buildExecutor(&err);
}

} // namespace primepar
