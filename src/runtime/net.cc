#include "net.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "errors.hh"
#include "support/logging.hh"

namespace primepar {

namespace {

constexpr std::uint32_t kFrameMagic = 0x50504631u; // "PPF1"
constexpr std::size_t kHeaderBytes = 80;
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 31;
constexpr std::uint32_t kMaxNameBytes = 4096;

/** Monotonic milliseconds for deadline arithmetic. */
std::int64_t
nowMs()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return ts.tv_sec * 1000 + ts.tv_nsec / 1000000;
}

/** Wait until @p fd is readable; false on timeout/error. */
bool
waitReadable(int fd, int deadline_ms)
{
    struct pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, deadline_ms < 0 ? -1 : deadline_ms);
    return r > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR));
}

/** Wait until @p fd is writable; false on timeout/error. */
bool
waitWritable(int fd, int deadline_ms)
{
    struct pollfd pfd{fd, POLLOUT, 0};
    const int r = ::poll(&pfd, 1, deadline_ms < 0 ? -1 : deadline_ms);
    return r > 0 && (pfd.revents & (POLLOUT | POLLHUP | POLLERR));
}

template <typename T>
void
put(std::vector<std::uint8_t> &buf, T v)
{
    const std::uint8_t *p = reinterpret_cast<const std::uint8_t *>(&v);
    buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T
get(const std::uint8_t *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

/** Read exactly @p n bytes before the deadline. */
IoResult
readExact(int fd, std::uint8_t *out, std::size_t n,
          std::int64_t deadline_at)
{
    std::size_t got = 0;
    while (got < n) {
        const std::int64_t left = deadline_at - nowMs();
        if (left <= 0)
            return IoResult::Timeout;
        if (!waitReadable(fd, static_cast<int>(left)))
            return IoResult::Timeout;
        const ssize_t r = ::recv(fd, out + got, n - got, 0);
        if (r == 0)
            return IoResult::Closed;
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            return IoResult::Closed;
        }
        got += static_cast<std::size_t>(r);
    }
    return IoResult::Ok;
}

/**
 * Write exactly @p n bytes before the deadline. A peer that stops
 * draining its receive buffer (a stalled or wedged process) makes
 * send() block / return EAGAIN forever; the deadline bounds that the
 * same way readExact bounds a silent sender, so the caller maps the
 * outcome onto the fault taxonomy instead of hanging.
 */
IoResult
writeExact(int fd, const std::uint8_t *data, std::size_t n,
           std::int64_t deadline_at)
{
    std::size_t sent = 0;
    while (sent < n) {
        const std::int64_t left = deadline_at - nowMs();
        if (left <= 0)
            return IoResult::Timeout;
        if (!waitWritable(fd, static_cast<int>(left)))
            return IoResult::Timeout;
        const ssize_t r = ::send(fd, data + sent, n - sent,
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return IoResult::Closed;
        }
        sent += static_cast<std::size_t>(r);
    }
    return IoResult::Ok;
}

} // namespace

const char *
ioResultName(IoResult r)
{
    switch (r) {
    case IoResult::Ok:
        return "ok";
    case IoResult::Timeout:
        return "timeout";
    case IoResult::Closed:
        return "closed";
    case IoResult::Malformed:
        return "malformed";
    }
    return "?";
}

void
NetSocket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
NetListener::open(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw RuntimeError(std::string("socket(): ") +
                           std::strerror(errno));
    NetSocket s(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throw RuntimeError(std::string("bind(127.0.0.1:") +
                           std::to_string(port) +
                           "): " + std::strerror(errno));
    if (::listen(fd, 64) != 0)
        throw RuntimeError(std::string("listen(): ") +
                           std::strerror(errno));
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0)
        throw RuntimeError(std::string("getsockname(): ") +
                           std::strerror(errno));
    boundPort = ntohs(addr.sin_port);
    sock = std::move(s);
}

NetSocket
NetListener::accept(int deadline_ms)
{
    PRIMEPAR_ASSERT(sock.valid(), "accept on closed listener");
    if (!waitReadable(sock.fd(), deadline_ms))
        return NetSocket();
    const int fd = ::accept(sock.fd(), nullptr, nullptr);
    if (fd < 0)
        return NetSocket();
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return NetSocket(fd);
}

NetSocket
netConnect(const std::string &host, int port, int deadline_ms)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return NetSocket();
    NetSocket s(fd);
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        return NetSocket();

    // Non-blocking connect so the deadline is honored.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(
        fd, reinterpret_cast<struct sockaddr *>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS)
        return NetSocket();
    if (rc != 0) {
        struct pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, deadline_ms) <= 0)
            return NetSocket();
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0)
            return NetSocket();
    }
    ::fcntl(fd, F_SETFL, flags);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return s;
}

std::vector<std::uint8_t>
encodeFrame(const WireFrame &f)
{
    PRIMEPAR_ASSERT(f.channel.size() <= kMaxNameBytes &&
                        f.tensor.size() <= kMaxNameBytes,
                    "frame name too long");
    std::vector<std::uint8_t> buf;
    buf.reserve(kHeaderBytes + f.channel.size() + f.tensor.size() +
                f.payload.size());
    put<std::uint32_t>(buf, kFrameMagic);
    put<std::uint8_t>(buf, static_cast<std::uint8_t>(f.type));
    put<std::uint8_t>(buf, 0); // flags (reserved)
    put<std::uint16_t>(buf,
                       static_cast<std::uint16_t>(f.channel.size()));
    put<std::uint64_t>(buf, f.generation);
    put<std::uint64_t>(buf, f.seq);
    put<std::int64_t>(buf, f.trainStep);
    put<std::uint32_t>(buf, f.phase);
    put<std::uint32_t>(buf, f.temporalStep);
    put<std::int64_t>(buf, f.sender);
    put<std::int64_t>(buf, f.receiver);
    put<std::uint32_t>(buf,
                       static_cast<std::uint32_t>(f.tensor.size()));
    put<std::uint32_t>(buf, static_cast<std::uint32_t>(f.status));
    put<std::uint64_t>(buf,
                       static_cast<std::uint64_t>(f.payload.size()));
    put<std::uint64_t>(buf, f.checksum);
    PRIMEPAR_ASSERT(buf.size() == kHeaderBytes,
                    "frame header layout drifted");
    buf.insert(buf.end(), f.channel.begin(), f.channel.end());
    buf.insert(buf.end(), f.tensor.begin(), f.tensor.end());
    buf.insert(buf.end(), f.payload.begin(), f.payload.end());
    return buf;
}

IoResult
writeFrame(NetSocket &sock, const WireFrame &f, int deadline_ms,
           std::int64_t truncate_to)
{
    if (!sock.valid())
        return IoResult::Closed;
    const std::vector<std::uint8_t> bytes = encodeFrame(f);
    std::size_t n = bytes.size();
    if (truncate_to >= 0 &&
        static_cast<std::size_t>(truncate_to) < n)
        n = static_cast<std::size_t>(truncate_to);
    const IoResult r =
        writeExact(sock.fd(), bytes.data(), n, nowMs() + deadline_ms);
    if (r != IoResult::Ok)
        return r;
    // A deliberately truncated frame (NetTruncate fault) is a send
    // failure from the caller's point of view: the peer can never
    // consume it.
    return n == bytes.size() ? IoResult::Ok : IoResult::Closed;
}

IoResult
readFrame(NetSocket &sock, WireFrame &out, int deadline_ms)
{
    if (!sock.valid())
        return IoResult::Closed;
    const std::int64_t deadline_at = nowMs() + deadline_ms;
    std::uint8_t hdr[kHeaderBytes];
    IoResult r = readExact(sock.fd(), hdr, kHeaderBytes, deadline_at);
    if (r != IoResult::Ok)
        return r;
    if (get<std::uint32_t>(hdr) != kFrameMagic)
        return IoResult::Malformed;
    out.type = static_cast<FrameType>(get<std::uint8_t>(hdr + 4));
    const std::uint16_t channel_len = get<std::uint16_t>(hdr + 6);
    out.generation = get<std::uint64_t>(hdr + 8);
    out.seq = get<std::uint64_t>(hdr + 16);
    out.trainStep = get<std::int64_t>(hdr + 24);
    out.phase = get<std::uint32_t>(hdr + 32);
    out.temporalStep = get<std::uint32_t>(hdr + 36);
    out.sender = get<std::int64_t>(hdr + 40);
    out.receiver = get<std::int64_t>(hdr + 48);
    const std::uint32_t tensor_len = get<std::uint32_t>(hdr + 56);
    out.status = static_cast<FrameStatus>(get<std::uint32_t>(hdr + 60));
    const std::uint64_t payload_len = get<std::uint64_t>(hdr + 64);
    out.checksum = get<std::uint64_t>(hdr + 72);
    if (channel_len > kMaxNameBytes || tensor_len > kMaxNameBytes ||
        payload_len > kMaxPayloadBytes)
        return IoResult::Malformed;

    std::vector<std::uint8_t> names(channel_len + tensor_len);
    if (!names.empty()) {
        r = readExact(sock.fd(), names.data(), names.size(),
                      deadline_at);
        if (r != IoResult::Ok)
            return r;
    }
    out.channel.assign(names.begin(), names.begin() + channel_len);
    out.tensor.assign(names.begin() + channel_len, names.end());
    out.payload.resize(payload_len);
    if (payload_len > 0) {
        r = readExact(sock.fd(), out.payload.data(), payload_len,
                      deadline_at);
        if (r != IoResult::Ok)
            return r;
    }
    return IoResult::Ok;
}

} // namespace primepar
