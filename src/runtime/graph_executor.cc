#include "graph_executor.hh"

#include "errors.hh"
#include "support/logging.hh"

namespace primepar {

SpmdGraphExecutor::SpmdGraphExecutor(const CompGraph &graph_in,
                                     std::vector<PartitionSeq> strategies,
                                     int num_bits, int num_threads,
                                     bool overlap_comm, DeviceSpan owned)
    : graph(graph_in)
{
    PRIMEPAR_ASSERT(static_cast<int>(strategies.size()) ==
                        graph.numNodes(),
                    "one strategy per node required");
    const int threads = resolveNumThreads(num_threads);
    if (threads > 1)
        pool = std::make_unique<ThreadPool>(threads);
    execs.reserve(graph.numNodes());
    for (int n = 0; n < graph.numNodes(); ++n) {
        execs.push_back(std::make_unique<SpmdOpExecutor>(
            graph.node(n), strategies[n], num_bits, overlap_comm,
            owned));
        execs.back()->setThreadPool(pool.get());
    }
}

SpmdGraphExecutor::SpmdGraphExecutor(const CompGraph &graph_in,
                                     std::vector<PartitionSeq> strategies,
                                     const RuntimeOptions &options)
    : SpmdGraphExecutor(graph_in, std::move(strategies),
                        options.numBits, options.execution.numThreads,
                        options.execution.overlapComm,
                        options.execution.ownedDevices)
{
}

void
SpmdGraphExecutor::setTransport(Transport *t)
{
    for (auto &e : execs)
        e->setTransport(t);
}

void
SpmdGraphExecutor::setHealth(RuntimeHealth *h, GuardOptions g)
{
    for (auto &e : execs)
        e->setHealth(h, g);
}

void
SpmdGraphExecutor::addObserver(RuntimeObserver *o)
{
    for (auto &e : execs)
        e->addObserver(o);
}

void
SpmdGraphExecutor::beginStep(std::int64_t s)
{
    for (auto &e : execs)
        e->beginStep(s);
}

std::string
SpmdGraphExecutor::edgeKey(const GraphEdge &e) const
{
    return std::to_string(e.src) + ">" + std::to_string(e.dst) + ":" +
           std::to_string(e.dstTensor);
}

void
SpmdGraphExecutor::setEdgeTransform(int src, int dst, int dst_tensor,
                                    EdgeTransform transform)
{
    for (const GraphEdge &e : graph.edges()) {
        if (e.src == src && e.dst == dst && e.dstTensor == dst_tensor) {
            transforms[edgeKey(e)] = std::move(transform);
            return;
        }
    }
    PRIMEPAR_PANIC("no edge ", src, " -> ", dst, " tensor ", dst_tensor);
}

GraphResult
SpmdGraphExecutor::run(const GraphIO &io)
{
    const int nodes = graph.numNodes();
    for (auto &e : execs)
        e->reset();

    // Gathered forward outputs live only until their last consumer
    // has scattered them (the op executors stash every operand as
    // device slices on first use, so the backward sweep never needs
    // the full copies again). Keeping full-size boundary tensors for
    // the whole step would defeat sharding: every worker — not just
    // the slices' owners — would hold them at peak.
    std::vector<Tensor> outputs(nodes);
    std::vector<Shape> out_shapes(nodes);
    std::vector<int> pending_consumers(nodes);
    for (int n = 0; n < nodes; ++n)
        pending_consumers[n] =
            static_cast<int>(graph.outEdges(n).size());

    // Forward sweep.
    for (int n = 0; n < nodes; ++n) {
        const OpSpec &op = graph.node(n);
        std::map<std::string, Tensor> inputs;

        for (const GraphEdge *e : graph.inEdges(n)) {
            const std::string key = op.tensors[e->dstTensor].name;
            const auto it = transforms.find(edgeKey(*e));
            if (it != transforms.end() && it->second.forward) {
                inputs[key] = it->second.forward(outputs[e->src]);
            } else {
                inputs[key] = outputs[e->src];
            }
        }
        if (graph.inEdges(n).empty()) {
            inputs[op.tensors[op.inputTensor].name] = io.input;
        }
        for (std::size_t t = 0; t < op.tensors.size(); ++t) {
            if (!op.tensors[t].isParameter)
                continue;
            const std::string pkey =
                op.name + "." + op.tensors[t].name;
            const auto it = io.params.find(pkey);
            if (it == io.params.end()) {
                Shape expected;
                for (int d : op.tensors[t].dims)
                    expected.push_back(op.dims[d].size);
                throw InputError(op.name, "Forward", pkey, expected,
                                 {});
            }
            inputs[op.tensors[t].name] = it->second;
        }

        execs[n]->runPhase(Phase::Forward, inputs);
        outputs[n] = execs[n]->gatherByName(
            op.tensors[op.outputTensor].name);
        out_shapes[n] = outputs[n].shape();
        // The operands are stashed as device slices now; release the
        // full copies (and any producer output every consumer has
        // scattered) so per-worker peak memory tracks owned slices.
        inputs.clear();
        for (const GraphEdge *e : graph.inEdges(n)) {
            if (--pending_consumers[e->src] == 0 &&
                e->src != nodes - 1)
                outputs[e->src] = Tensor();
        }
    }

    // Backward + gradient sweep; gradients accumulate per producer.
    GraphResult result;
    result.output = outputs[nodes - 1];

    for (int n = nodes - 1; n >= 0; --n) {
        const OpSpec &op = graph.node(n);

        // Assemble dO_n.
        Tensor grad;
        if (n == nodes - 1) {
            grad = io.d_output;
        } else {
            grad = Tensor(out_shapes[n]);
            bool any = false;
            for (const GraphEdge *e : graph.outEdges(n)) {
                const OpSpec &consumer = graph.node(e->dst);
                const std::string gname =
                    "d" + consumer.tensors[e->dstTensor].name;
                PRIMEPAR_ASSERT(execs[e->dst]->hasTensor(gname),
                                "consumer ", consumer.name,
                                " produced no gradient ", gname);
                Tensor g = execs[e->dst]->gatherByName(gname);
                const auto it = transforms.find(edgeKey(*e));
                if (it != transforms.end() && it->second.backward)
                    g = it->second.backward(g);
                grad.add(g);
                any = true;
            }
            PRIMEPAR_ASSERT(any, "node ", op.name,
                            " has no gradient consumers");
        }
        // Every forward operand is already stashed as device slices;
        // only the incoming gradient is new.
        std::map<std::string, Tensor> inputs;
        inputs["d" + op.tensors[op.outputTensor].name] =
            std::move(grad);
        execs[n]->runPhase(Phase::Backward, inputs);
        execs[n]->runPhase(Phase::Gradient, inputs);

        for (std::size_t t = 0; t < op.tensors.size(); ++t) {
            if (!op.tensors[t].isParameter)
                continue;
            const std::string gname = "d" + op.tensors[t].name;
            if (execs[n]->hasTensor(gname)) {
                result.d_params[op.name + "." + op.tensors[t].name] =
                    execs[n]->gatherByName(gname);
            }
        }
    }

    const OpSpec &first = graph.node(0);
    const std::string din = "d" + first.tensors[first.inputTensor].name;
    if (execs[0]->hasTensor(din))
        result.d_input = execs[0]->gatherByName(din);
    return result;
}

CommVolume
SpmdGraphExecutor::stats() const
{
    CommVolume total;
    for (const auto &e : execs) {
        total.ringElements += e->stats().ringElements;
        total.allReduceElements += e->stats().allReduceElements;
        total.allReduceCount += e->stats().allReduceCount;
        total.wireBytes += e->stats().wireBytes;
    }
    return total;
}

} // namespace primepar
