#include "tcp_transport.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "errors.hh"
#include "observer.hh"
#include "support/logging.hh"
#include "tensor/buffer_pool.hh"

namespace primepar {

namespace {

std::string
transferContext(const TransferTag &tag)
{
    std::ostringstream os;
    os << tag.channel << " transfer of '" << tag.tensor << "' "
       << tag.sender << "->" << tag.receiver << " ("
       << phaseName(tag.phase) << " t=" << tag.temporalStep
       << ", train step " << tag.trainStep << ")";
    return os.str();
}

void
sleepUs(double us)
{
    if (us > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::micro>(us));
    }
}

/** Per-channel wire codec, with the sharded all-gather pinned to the
 *  identity codec: a gathered slice must reproduce the owner's bytes
 *  exactly (the owner keeps its local copy un-decoded), or a lossy
 *  codec would make sharded gathers diverge from replicated ones. */
CodecKind
wireCodec(const TransportOptions &opts, const std::string &channel)
{
    if (channel == "gather")
        return CodecKind::None;
    return opts.codec.forChannel(channel.c_str());
}

} // namespace

// ---------------------------------------------------------------------
// DistWorld
// ---------------------------------------------------------------------

std::int64_t
DistWorld::ownerOf(std::int64_t device) const
{
    for (const WorkerInfo &w : workers) {
        if (device >= w.firstDevice &&
            device < w.firstDevice + w.numDevices)
            return w.worker;
    }
    return -1;
}

const WorkerInfo *
DistWorld::find(std::int64_t worker) const
{
    for (const WorkerInfo &w : workers) {
        if (w.worker == worker)
            return &w;
    }
    return nullptr;
}

void
DistWorld::placeDevices(std::vector<WorkerInfo> &workers, int bits)
{
    PRIMEPAR_ASSERT(!workers.empty(), "placing devices on no workers");
    const std::int64_t devices = std::int64_t{1} << bits;
    const std::int64_t n = static_cast<std::int64_t>(workers.size());
    const std::int64_t base = devices / n;
    const std::int64_t rem = devices % n;
    std::int64_t cursor = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        workers[static_cast<std::size_t>(i)].firstDevice = cursor;
        workers[static_cast<std::size_t>(i)].numDevices =
            base + (i < rem ? 1 : 0);
        cursor += workers[static_cast<std::size_t>(i)].numDevices;
    }
}

JsonValue
DistWorld::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("generation", static_cast<std::int64_t>(generation));
    doc.set("numBits", numBits);
    JsonValue arr = JsonValue::array();
    for (const WorkerInfo &w : workers) {
        JsonValue jw = JsonValue::object();
        jw.set("worker", w.worker);
        jw.set("host", w.host);
        jw.set("port", w.port);
        jw.set("firstDevice", w.firstDevice);
        jw.set("numDevices", w.numDevices);
        arr.push(std::move(jw));
    }
    doc.set("workers", std::move(arr));
    return doc;
}

DistWorld
DistWorld::fromJson(const JsonValue &v)
{
    try {
        DistWorld world;
        world.generation = static_cast<std::uint64_t>(
            v.at("generation").asNumber());
        world.numBits =
            static_cast<int>(v.at("numBits").asNumber());
        for (const JsonValue &jw : v.at("workers").items()) {
            WorkerInfo w;
            w.worker = static_cast<std::int64_t>(
                jw.at("worker").asNumber());
            w.host = jw.at("host").asString();
            w.port = static_cast<int>(jw.at("port").asNumber());
            w.firstDevice = static_cast<std::int64_t>(
                jw.at("firstDevice").asNumber());
            w.numDevices = static_cast<std::int64_t>(
                jw.at("numDevices").asNumber());
            world.workers.push_back(std::move(w));
        }
        return world;
    } catch (const JsonError &e) {
        throw InputError(std::string("malformed world document: ") +
                         e.what());
    }
}

// ---------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------

TcpTransport::TcpTransport(TransportOptions opts_in, DistOptions dist_in,
                           DistWorld world_in, NetListener *listener_in,
                           std::shared_ptr<FaultInjector> injector_in,
                           RuntimeHealth *health_in)
    : opts(opts_in), dist(dist_in), world_(std::move(world_in)),
      listener(listener_in), injector(std::move(injector_in)),
      health(health_in)
{
    PRIMEPAR_ASSERT(listener != nullptr && listener->valid(),
                    "TcpTransport needs a bound listener");
    PRIMEPAR_ASSERT(world_.find(world_.myWorker) != nullptr,
                    "worker ", world_.myWorker,
                    " is not part of the world");
    inner = std::make_unique<InProcessTransport>(opts, injector, health);
}

TcpTransport::~TcpTransport() = default;

void
TcpTransport::setHealth(RuntimeHealth *h)
{
    health = h;
    inner->setHealth(h);
}

void
TcpTransport::setObserver(RuntimeObserver *o)
{
    observer = o;
    inner->setObserver(o);
}

void
TcpTransport::beginStep(std::int64_t step)
{
    trainStep = step;
    inner->beginStep(step);
    if (injector &&
        injector->consumeWorkerKill(step, world_.myWorker)) {
        PRIMEPAR_INFORM("worker ", world_.myWorker,
                        ": scheduled kill at step ", step,
                        " — exiting abruptly");
        std::_Exit(137);
    }
}

void
TcpTransport::throwFenced(std::uint64_t theirGeneration)
{
    throw FencedWorkerError(
        "worker " + std::to_string(world_.myWorker) +
            " fenced: its generation " +
            std::to_string(world_.generation) +
            " was superseded by generation " +
            std::to_string(theirGeneration) +
            " — a re-planned job is running without it",
        world_.generation, theirGeneration);
}

void
TcpTransport::dropPeer(std::int64_t peer)
{
    auto it = conns.find(peer);
    if (it != conns.end())
        conns.erase(it);
}

NetSocket &
TcpTransport::ensurePeer(std::int64_t peer, const TransferTag &tag)
{
    auto it = conns.find(peer);
    if (it != conns.end() && it->second.valid())
        return it->second;

    const WorkerInfo *info = world_.find(peer);
    PRIMEPAR_ASSERT(info != nullptr, "unknown peer worker ", peer);
    const bool initiator = world_.myWorker < peer;
    const int budget = std::max(1, dist.reconnectAttempts);

    for (int attempt = 0; attempt < budget; ++attempt) {
        if (attempt > 0) {
            sleepUs(retryBackoffUs(
                opts, static_cast<std::uint64_t>(peer) + 0x77, attempt - 1));
        }
        NetSocket s;
        if (initiator) {
            s = netConnect(info->host, info->port,
                           dist.connectTimeoutMs);
            if (!s.valid())
                continue;
            WireFrame hello;
            hello.type = FrameType::Hello;
            hello.generation = world_.generation;
            hello.sender = world_.myWorker;
            hello.receiver = peer;
            if (writeFrame(s, hello, dist.connectTimeoutMs) !=
                IoResult::Ok)
                continue;
            WireFrame ack;
            if (readFrame(s, ack, dist.connectTimeoutMs) !=
                    IoResult::Ok ||
                ack.type != FrameType::HelloAck)
                continue;
            if (ack.status == FrameStatus::Fenced)
                throwFenced(ack.generation);
            if (ack.status != FrameStatus::Ok)
                continue;
        } else {
            auto st = stash.find(peer);
            if (st != stash.end()) {
                s = std::move(st->second);
                stash.erase(st);
            } else {
                s = listener->accept(dist.connectTimeoutMs);
                if (!s.valid())
                    continue;
                WireFrame hello;
                if (readFrame(s, hello, dist.connectTimeoutMs) !=
                        IoResult::Ok ||
                    hello.type != FrameType::Hello)
                    continue;
                if (hello.generation > world_.generation)
                    throwFenced(hello.generation);
                WireFrame ack;
                ack.type = FrameType::HelloAck;
                ack.generation = world_.generation;
                ack.sender = world_.myWorker;
                ack.receiver = hello.sender;
                if (hello.generation < world_.generation) {
                    // A zombie from a superseded generation: tell it
                    // so, then refuse the connection.
                    ack.status = FrameStatus::Fenced;
                    if (health) {
                        ++health->fencedFrames;
                        health->recordEvent(
                            {FaultKind::None,
                             "fenced stale-generation worker " +
                                 std::to_string(hello.sender),
                             tag.tensor, tag.trainStep, hello.sender,
                             world_.myWorker, attempt});
                    }
                    writeFrame(s, ack, dist.connectTimeoutMs);
                    continue;
                }
                ack.status = FrameStatus::Ok;
                if (writeFrame(s, ack, dist.connectTimeoutMs) !=
                    IoResult::Ok)
                    continue;
                if (hello.sender != peer) {
                    // A different peer dialed first; keep its
                    // handshaken connection for when it is needed.
                    stash[hello.sender] = std::move(s);
                    continue;
                }
            }
        }
        if (health && everConnected[peer])
            ++health->reconnects;
        everConnected[peer] = true;
        conns[peer] = std::move(s);
        return conns[peer];
    }

    // The peer would not talk to us within the reconnect budget:
    // treat its endpoint device as permanently failed so the trainer
    // degrades the grid.
    const std::int64_t peerDevice =
        world_.ownerOf(tag.sender) == peer ? tag.sender : tag.receiver;
    const FaultEvent event{
        FaultKind::DeviceFail,
        "worker " + std::to_string(peer) + " unreachable after " +
            std::to_string(budget) + " connect attempts",
        tag.tensor, tag.trainStep, tag.sender, tag.receiver, 0};
    if (health) {
        ++health->deviceFailures;
        ++health->workersLost;
        health->recordEvent(event);
    }
    if (observer) {
        observer->onFault(event);
        observer->onWorkerLost(peer, world_.generation,
                               "unreachable: connect budget exhausted");
    }
    throw DeviceFailedError(
        "worker " + std::to_string(peer) +
            " (owner of device " + std::to_string(peerDevice) +
            ") is unreachable during " + transferContext(tag),
        tag.tensor, tag.sender, tag.receiver, tag.trainStep,
        peerDevice);
}

TransferReceipt
TcpTransport::localReplay(const Tensor &payload, Tensor &dst,
                          const char *channel)
{
    const CodecKind codec = wireCodec(opts, channel);
    const std::size_t payload_bytes =
        static_cast<std::size_t>(payload.numel()) * sizeof(float);
    if (dst.shape() != payload.shape())
        dst = Tensor::uninitialized(payload.shape());
    if (codec == CodecKind::None) {
        std::memcpy(dst.data(), payload.data(), payload_bytes);
        return {static_cast<std::int64_t>(payload_bytes),
                static_cast<std::int64_t>(payload_bytes)};
    }
    // Codec round-trip so every replica matches what the real
    // receiver decodes from the wire bytes.
    Workspace scratch(static_cast<std::int64_t>(
        (codecBound(codec, payload.numel()) + 3) / 4));
    std::uint8_t *const wire =
        reinterpret_cast<std::uint8_t *>(scratch.data());
    const std::size_t wire_bytes =
        codecEncode(codec, payload.data(), payload.numel(), wire);
    codecDecode(codec, wire, wire_bytes, dst.data(), payload.numel());
    return {static_cast<std::int64_t>(payload_bytes),
            static_cast<std::int64_t>(wire_bytes)};
}

TransferReceipt
TcpTransport::transferInto(const TransferTag &tag_in,
                           const Tensor &payload, Tensor &dst)
{
    TransferTag tag = tag_in;
    tag.trainStep = trainStep;
    const std::int64_t senderOwner = world_.ownerOf(tag.sender);
    const std::int64_t receiverOwner = world_.ownerOf(tag.receiver);
    PRIMEPAR_ASSERT(senderOwner >= 0 && receiverOwner >= 0,
                    "transfer endpoints ", tag.sender, "->",
                    tag.receiver, " outside the placed device range");

    if (senderOwner == receiverOwner) {
        if (dist.sharded && senderOwner != world_.myWorker) {
            // Sharded: a transfer internal to another worker does not
            // involve this process (the executor's span-aware paths
            // should not even issue it — this is the safe no-op).
            return {};
        }
        // Both endpoints live on one worker: delegate to the
        // in-process transport.
        return inner->transferInto(tag_in, payload, dst);
    }
    if (world_.myWorker == senderOwner)
        return sendWire(tag, payload, dst, receiverOwner);
    if (world_.myWorker == receiverOwner)
        return recvWire(tag, payload, dst, senderOwner);
    if (dist.sharded) {
        // Sharded: the two owners move the bytes between themselves.
        return {};
    }
    return localReplay(payload, dst, tag.channel);
}

DeviceSpan
TcpTransport::ownedDevices() const
{
    if (!dist.sharded)
        return {};
    const WorkerInfo *me = world_.find(world_.myWorker);
    PRIMEPAR_ASSERT(me != nullptr, "worker ", world_.myWorker,
                    " is not part of the world");
    return {me->firstDevice, me->numDevices};
}

std::vector<DeviceSpan>
TcpTransport::peerSpans() const
{
    std::vector<DeviceSpan> spans;
    if (!dist.sharded)
        return spans;
    for (const WorkerInfo &w : world_.workers) {
        if (w.worker == world_.myWorker || w.numDevices <= 0)
            continue;
        spans.push_back({w.firstDevice, w.numDevices});
    }
    return spans;
}

TransferReceipt
TcpTransport::sendWire(const TransferTag &tag, const Tensor &payload,
                       Tensor &dst, std::int64_t peer)
{
    const double t0 = observer ? observerNowUs() : 0.0;
    const CodecKind codec = wireCodec(opts, tag.channel);
    const std::size_t payload_bytes =
        static_cast<std::size_t>(payload.numel()) * sizeof(float);
    Workspace scratch(
        codec != CodecKind::None
            ? static_cast<std::int64_t>(
                  (codecBound(codec, payload.numel()) + 3) / 4)
            : 0);

    auto recordFault = [&](FaultKind kind,
                           std::int64_t RuntimeHealth::*counter,
                           const char *detail, int attempt) {
        const FaultEvent event{kind, detail, tag.tensor, tag.trainStep,
                               tag.sender, tag.receiver, attempt};
        if (health) {
            ++(health->*counter);
            health->recordEvent(event);
        }
        if (observer)
            observer->onFault(event);
    };

    for (int attempt = 0; attempt < opts.maxAttempts; ++attempt) {
        if (attempt > 0) {
            if (health)
                ++health->retries;
            sleepUs(retryBackoffUs(opts, wireSeq[peer], attempt - 1));
        }
        const FaultKind net =
            injector ? injector->decideNet(tag, attempt)
                     : FaultKind::None;
        if (net == FaultKind::NetDrop) {
            recordFault(net, &RuntimeHealth::dropsDetected,
                        "injected connection drop before send",
                        attempt);
            dropPeer(peer);
            continue;
        }

        WireFrame f;
        f.type = FrameType::Data;
        f.generation = world_.generation;
        f.seq = wireSeq[peer];
        f.trainStep = tag.trainStep;
        f.phase = static_cast<std::uint32_t>(tag.phase);
        f.temporalStep = static_cast<std::uint32_t>(tag.temporalStep);
        f.sender = tag.sender;
        f.receiver = tag.receiver;
        f.channel = tag.channel;
        f.tensor = tag.tensor;
        if (codec != CodecKind::None) {
            std::uint8_t *const wire =
                reinterpret_cast<std::uint8_t *>(scratch.data());
            const std::size_t wire_bytes = codecEncode(
                codec, payload.data(), payload.numel(), wire);
            f.payload.assign(wire, wire + wire_bytes);
        } else {
            const std::uint8_t *raw =
                reinterpret_cast<const std::uint8_t *>(payload.data());
            f.payload.assign(raw, raw + payload_bytes);
        }
        f.checksum = checksumBytes(f.payload.data(), f.payload.size());

        if (net == FaultKind::NetDelay) {
            recordFault(net, &RuntimeHealth::stragglers,
                        "injected link stall before send", attempt);
            if (health)
                health->simulatedDelayUs += 8.0 * opts.backoffUs;
            sleepUs(8.0 * opts.backoffUs);
        }

        std::int64_t truncate_to = -1;
        if (net == FaultKind::NetTruncate) {
            truncate_to = static_cast<std::int64_t>(
                              80 + f.channel.size() + f.tensor.size() +
                              f.payload.size()) /
                          2;
        }

        NetSocket &s = ensurePeer(peer, tag);
        const IoResult wrote = writeFrame(
            s, f, dist.transferDeadlineMs, truncate_to);
        if (net == FaultKind::NetTruncate) {
            recordFault(net, &RuntimeHealth::dropsDetected,
                        "injected truncated frame", attempt);
            dropPeer(peer);
            continue;
        }
        if (wrote != IoResult::Ok) {
            recordFault(FaultKind::NetDrop,
                        &RuntimeHealth::dropsDetected,
                        "send failed: connection lost", attempt);
            dropPeer(peer);
            continue;
        }

        // Await the acknowledgement for this seq.
        bool nextAttempt = false;
        while (!nextAttempt) {
            WireFrame ack;
            const IoResult r =
                readFrame(s, ack, dist.transferDeadlineMs);
            if (r != IoResult::Ok) {
                recordFault(FaultKind::NetDrop,
                            &RuntimeHealth::dropsDetected,
                            r == IoResult::Timeout
                                ? "ack deadline passed"
                                : "connection lost awaiting ack",
                            attempt);
                dropPeer(peer);
                nextAttempt = true;
                break;
            }
            if (ack.type == FrameType::Abort) {
                if (ack.seq >= wireSeq[peer]) {
                    // The peer rolled its step back; do the same so
                    // both re-issue the identical transfer sequence.
                    throw TransientFaultError(
                        "peer worker " + std::to_string(peer) +
                            " aborted at seq " +
                            std::to_string(ack.seq) + " during " +
                            transferContext(tag),
                        tag.tensor, tag.sender, tag.receiver,
                        tag.trainStep);
                }
                continue; // stale abort
            }
            if (ack.type != FrameType::Ack) {
                dropPeer(peer);
                nextAttempt = true;
                break;
            }
            if (ack.status == FrameStatus::Fenced)
                throwFenced(ack.generation);
            if (ack.seq != f.seq)
                continue; // stale ack of an earlier seq
            if (ack.status == FrameStatus::Reject) {
                recordFault(FaultKind::Corrupt,
                            &RuntimeHealth::corruptionsDetected,
                            "receiver rejected frame (NACK)", attempt);
                nextAttempt = true;
                break;
            }

            // Acknowledged delivery: advance the pair seq. In
            // replicated mode, also fill the local replica from the
            // exact bytes that crossed the wire; in sharded mode the
            // receiver is the only process materializing this value
            // and @p dst is just the caller's scratch.
            ++wireSeq[peer];
            if (!dist.sharded) {
                if (dst.shape() != payload.shape())
                    dst = Tensor::uninitialized(payload.shape());
                if (codec != CodecKind::None) {
                    codecDecode(codec, f.payload.data(),
                                f.payload.size(), dst.data(),
                                payload.numel());
                } else {
                    std::memcpy(dst.data(), f.payload.data(),
                                payload_bytes);
                }
            }
            const TransferReceipt receipt{
                static_cast<std::int64_t>(payload_bytes),
                static_cast<std::int64_t>(f.payload.size())};
            if (health) {
                ++health->transfers;
                health->bytesMoved += receipt.rawBytes;
                health->bytesOnWire += receipt.wireBytes;
            }
            if (observer)
                observer->onTransfer(tag, receipt.rawBytes,
                                     receipt.wireBytes, attempt + 1,
                                     observerNowUs() - t0);
            return receipt;
        }
    }

    // Budget exhausted: tell the peer we are rolling back (best
    // effort — if the frame is lost, the peer's own deadline lands it
    // in the same TransientFaultError), then escalate.
    auto it = conns.find(peer);
    if (it != conns.end() && it->second.valid()) {
        WireFrame abort;
        abort.type = FrameType::Abort;
        abort.generation = world_.generation;
        abort.seq = wireSeq[peer];
        abort.sender = world_.myWorker;
        abort.receiver = peer;
        writeFrame(it->second, abort, dist.transferDeadlineMs);
    }
    throw TransientFaultError(
        "wire retry budget (" + std::to_string(opts.maxAttempts) +
            " attempts) exhausted for " + transferContext(tag),
        tag.tensor, tag.sender, tag.receiver, tag.trainStep);
}

TransferReceipt
TcpTransport::recvWire(const TransferTag &tag, const Tensor &payload,
                       Tensor &dst, std::int64_t peer)
{
    const double t0 = observer ? observerNowUs() : 0.0;
    const CodecKind codec = wireCodec(opts, tag.channel);
    // Sharded receives pass an empty payload (this process has no
    // local copy of the sender's value); the pre-sized destination
    // then defines the expected element count.
    const std::int64_t elems =
        payload.numel() > 0 ? payload.numel() : dst.numel();
    PRIMEPAR_ASSERT(elems > 0, "wire receive with no sized "
                               "destination for ",
                    tag.tensor);
    const std::size_t payload_bytes =
        static_cast<std::size_t>(elems) * sizeof(float);

    auto recordFault = [&](FaultKind kind,
                           std::int64_t RuntimeHealth::*counter,
                           const char *detail, int attempt) {
        const FaultEvent event{kind, detail, tag.tensor, tag.trainStep,
                               tag.sender, tag.receiver, attempt};
        if (health) {
            ++(health->*counter);
            health->recordEvent(event);
        }
        if (observer)
            observer->onFault(event);
    };

    auto sendAck = [&](NetSocket &s, std::uint64_t seq,
                       FrameStatus status) {
        WireFrame ack;
        ack.type = FrameType::Ack;
        ack.status = status;
        ack.generation = world_.generation;
        ack.seq = seq;
        ack.sender = world_.myWorker;
        ack.receiver = peer;
        if (writeFrame(s, ack, dist.transferDeadlineMs) !=
            IoResult::Ok)
            dropPeer(peer);
    };

    for (int attempt = 0; attempt < opts.maxAttempts; ++attempt) {
        NetSocket &s = ensurePeer(peer, tag);
        WireFrame f;
        const IoResult r = readFrame(s, f, dist.transferDeadlineMs);
        if (r == IoResult::Timeout) {
            recordFault(FaultKind::Drop,
                        &RuntimeHealth::dropsDetected,
                        "transfer deadline passed (dropped?)",
                        attempt);
            continue;
        }
        if (r != IoResult::Ok) {
            recordFault(FaultKind::NetDrop,
                        &RuntimeHealth::dropsDetected,
                        r == IoResult::Closed
                            ? "connection closed mid-transfer"
                            : "malformed frame on the wire",
                        attempt);
            dropPeer(peer);
            continue;
        }
        if (f.type == FrameType::Abort) {
            if (f.seq >= wireSeq[peer]) {
                throw TransientFaultError(
                    "peer worker " + std::to_string(peer) +
                        " aborted at seq " + std::to_string(f.seq) +
                        " during " + transferContext(tag),
                    tag.tensor, tag.sender, tag.receiver,
                    tag.trainStep);
            }
            --attempt; // stale abort does not consume the budget
            continue;
        }
        if (f.type != FrameType::Data)
            continue;

        if (f.generation < world_.generation) {
            if (health)
                ++health->fencedFrames;
            sendAck(s, f.seq, FrameStatus::Fenced);
            continue;
        }
        if (f.generation > world_.generation)
            throwFenced(f.generation);

        if (f.seq < wireSeq[peer]) {
            // Duplicate of an already delivered frame (the ack was
            // lost with the connection): re-acknowledge, idempotent.
            sendAck(s, f.seq, FrameStatus::Ok);
            --attempt;
            continue;
        }
        const bool headerOk =
            f.seq == wireSeq[peer] && f.trainStep == tag.trainStep &&
            f.phase == static_cast<std::uint32_t>(tag.phase) &&
            f.temporalStep ==
                static_cast<std::uint32_t>(tag.temporalStep) &&
            f.sender == tag.sender && f.receiver == tag.receiver &&
            f.tensor == tag.tensor && f.channel == tag.channel;
        if (!headerOk) {
            recordFault(FaultKind::Corrupt,
                        &RuntimeHealth::headerMismatches,
                        "frame header does not match the expected "
                        "transfer",
                        attempt);
            sendAck(s, f.seq, FrameStatus::Reject);
            continue;
        }
        if (checksumBytes(f.payload.data(), f.payload.size()) !=
            f.checksum) {
            recordFault(FaultKind::Corrupt,
                        &RuntimeHealth::corruptionsDetected,
                        "payload checksum mismatch", attempt);
            sendAck(s, f.seq, FrameStatus::Reject);
            continue;
        }
        if (codec == CodecKind::None &&
            f.payload.size() != payload_bytes) {
            recordFault(FaultKind::Corrupt,
                        &RuntimeHealth::headerMismatches,
                        "payload size does not match the tensor",
                        attempt);
            sendAck(s, f.seq, FrameStatus::Reject);
            continue;
        }

        // Verified: the wire bytes are authoritative — deliver them,
        // not any local copy. An empty payload (sharded) keeps the
        // caller's pre-sized destination shape.
        if (payload.numel() > 0 && dst.shape() != payload.shape())
            dst = Tensor::uninitialized(payload.shape());
        if (codec != CodecKind::None) {
            codecDecode(codec, f.payload.data(), f.payload.size(),
                        dst.data(), elems);
        } else {
            std::memcpy(dst.data(), f.payload.data(), payload_bytes);
        }
        sendAck(s, f.seq, FrameStatus::Ok);
        ++wireSeq[peer];
        const TransferReceipt receipt{
            static_cast<std::int64_t>(payload_bytes),
            static_cast<std::int64_t>(f.payload.size())};
        if (health) {
            ++health->transfers;
            health->bytesMoved += receipt.rawBytes;
            health->bytesOnWire += receipt.wireBytes;
        }
        if (observer)
            observer->onTransfer(tag, receipt.rawBytes,
                                 receipt.wireBytes, attempt + 1,
                                 observerNowUs() - t0);
        return receipt;
    }

    auto it = conns.find(peer);
    if (it != conns.end() && it->second.valid()) {
        WireFrame abort;
        abort.type = FrameType::Abort;
        abort.generation = world_.generation;
        abort.seq = wireSeq[peer];
        abort.sender = world_.myWorker;
        abort.receiver = peer;
        writeFrame(it->second, abort, dist.transferDeadlineMs);
    }
    throw TransientFaultError(
        "wire receive budget (" + std::to_string(opts.maxAttempts) +
            " attempts) exhausted for " + transferContext(tag),
        tag.tensor, tag.sender, tag.receiver, tag.trainStep);
}

} // namespace primepar
