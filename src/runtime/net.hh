/**
 * @file
 * Minimal POSIX socket layer for the distributed runtime.
 *
 * Everything the TcpTransport and the Coordinator put on a wire is one
 * *frame*: a fixed 80-byte header (magic, type, generation, seq, the
 * TransferTag identity fields, payload length, payload checksum)
 * followed by two short strings (channel, tensor/verb) and the payload
 * bytes. Length-prefixed framing over a byte stream means a truncated
 * or half-open connection is always *detected* — a read either yields
 * a complete frame, times out, or reports the stream closed — and the
 * caller maps each outcome onto the existing fault taxonomy instead of
 * hanging.
 *
 * All reads and writes take a deadline (poll + recv / poll + send).
 * The protocol never has both ends of a connection blocked writing to
 * each other (data frames are acknowledged one at a time), but a
 * stalled peer that stops draining its receive buffer would otherwise
 * wedge a sender forever — the write deadline turns that into a
 * Timeout the caller maps onto the transient-fault path. Byte order is
 * host order: the emulated cluster spans processes on one
 * architecture, and the header magic doubles as an endianness check.
 */

#ifndef PRIMEPAR_RUNTIME_NET_HH
#define PRIMEPAR_RUNTIME_NET_HH

#include <cstdint>
#include <string>
#include <vector>

namespace primepar {

/** Outcome of one socket operation with a deadline. */
enum class IoResult { Ok, Timeout, Closed, Malformed };

const char *ioResultName(IoResult r);

/** RAII file-descriptor wrapper (move-only). */
class NetSocket
{
  public:
    NetSocket() = default;
    explicit NetSocket(int fd_in) : fd_(fd_in) {}
    ~NetSocket() { close(); }

    NetSocket(NetSocket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    NetSocket &
    operator=(NetSocket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    NetSocket(const NetSocket &) = delete;
    NetSocket &operator=(const NetSocket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

  private:
    int fd_ = -1;
};

/** Listening TCP socket bound to 127.0.0.1 (port 0 = ephemeral). */
class NetListener
{
  public:
    NetListener() = default;

    /** Bind + listen; throws RuntimeError on failure. */
    void open(int port = 0);

    bool valid() const { return sock.valid(); }
    /** The actually bound port (after open). */
    int port() const { return boundPort; }

    /** Accept one connection within @p deadline_ms; an invalid socket
     *  means the deadline passed. */
    NetSocket accept(int deadline_ms);

  private:
    NetSocket sock;
    int boundPort = 0;
};

/** Connect to host:port within @p deadline_ms; invalid on failure. */
NetSocket netConnect(const std::string &host, int port,
                     int deadline_ms);

/** Frame types of the distributed runtime's single wire format. */
enum class FrameType : std::uint8_t {
    Hello = 1,     ///< data-plane handshake (sender = worker id)
    HelloAck = 2,  ///< handshake accepted
    Data = 3,      ///< one tensor transfer (payload = encoded bytes)
    Ack = 4,       ///< answer to Data (status field)
    Heartbeat = 5, ///< worker liveness beacon (control plane)
    Ctrl = 6,      ///< control request (tensor = verb, payload = JSON)
    CtrlResp = 7,  ///< control response (tensor = verb, payload = JSON)
    Abort = 8,     ///< "I am rolling this step back" (seq = where)
};

/** Ack / handshake status codes. */
enum class FrameStatus : std::uint32_t {
    Ok = 0,
    Reject = 1, ///< frame verification failed, retransmit
    Fenced = 2, ///< your generation is stale — stop participating
};

/**
 * One wire frame. Data frames carry the full TransferTag identity so
 * the receiver verifies *what* arrived against what it expects, not
 * just that bytes arrived; control frames reuse `tensor` as the verb
 * and `payload` as a JSON body.
 */
struct WireFrame
{
    FrameType type = FrameType::Data;
    FrameStatus status = FrameStatus::Ok;
    std::uint64_t generation = 0;
    std::uint64_t seq = 0;
    std::int64_t trainStep = 0;
    std::uint32_t phase = 0;
    std::uint32_t temporalStep = 0;
    std::int64_t sender = 0;   ///< device id (worker id on ctrl plane)
    std::int64_t receiver = 0; ///< device id
    std::string channel;
    std::string tensor;
    std::uint64_t checksum = 0; ///< of payload bytes
    std::vector<std::uint8_t> payload;
};

/** Serialize @p f into its wire bytes. */
std::vector<std::uint8_t> encodeFrame(const WireFrame &f);

/** Default bound on one frame write when the caller has no tighter
 *  deadline — large enough for any healthy peer, finite so a stalled
 *  one cannot wedge a sender forever. */
constexpr int kDefaultWriteDeadlineMs = 30000;

/**
 * Write one frame within @p deadline_ms. Timeout means the peer
 * stopped draining its receive buffer before the frame fit (a stalled
 * process — the write-side analogue of a silent sender); Closed covers
 * socket errors. @p truncate_to, when >= 0, deliberately stops after
 * that many bytes of the encoding (the NetTruncate fault: the receiver
 * must detect the short frame when the connection closes, never
 * consume it) and reports Closed.
 */
IoResult writeFrame(NetSocket &sock, const WireFrame &f,
                    int deadline_ms = kDefaultWriteDeadlineMs,
                    std::int64_t truncate_to = -1);

/**
 * Read one complete frame within @p deadline_ms. Malformed means the
 * stream produced bytes that cannot be a frame (bad magic, insane
 * lengths) — the connection is unusable and should be dropped.
 */
IoResult readFrame(NetSocket &sock, WireFrame &out, int deadline_ms);

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_NET_HH
