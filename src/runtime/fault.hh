/**
 * @file
 * Fault taxonomy, deterministic fault injection, and runtime health.
 *
 * PrimePar's spatial-temporal primitive makes every training step a
 * long chain of per-step ring shifts and grouped all-reduces, so the
 * runtime must *verify* its communication substrate rather than assume
 * it. This module provides:
 *
 *  - the fault taxonomy (drop, corrupt, delay/straggler, permanent
 *    device failure) and a parseable FaultSpec combining per-kind
 *    probabilities with an explicit (step, device) schedule;
 *  - FaultInjector, a seedable injector whose probabilistic decisions
 *    are a pure hash of (seed, transfer identity, attempt), so a fault
 *    pattern replays identically at any thread count;
 *  - RuntimeHealth, the structured report every detection, retry,
 *    rollback, and numeric anomaly funnels into;
 *  - the numeric anomaly guard: a cheap NaN/Inf/explosion scan applied
 *    to activations and gradients at phase boundaries.
 */

#ifndef PRIMEPAR_RUNTIME_FAULT_HH
#define PRIMEPAR_RUNTIME_FAULT_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "partition/op_spec.hh"
#include "tensor/tensor.hh"

namespace primepar {

/**
 * What can go wrong with one transfer. The first group is the classic
 * in-process taxonomy; the Net* group models socket-level faults that
 * only the distributed TcpTransport can enact (a dropped connection, a
 * stalled link, a frame cut short mid-write), and WorkerKill makes a
 * whole worker process exit abruptly so liveness detection and
 * survivor re-planning are exercised for real.
 */
enum class FaultKind {
    None,
    Drop,
    Corrupt,
    Delay,
    DeviceFail,
    NetDrop,     ///< close the connection before sending
    NetDelay,    ///< stall the send past the transfer deadline budget
    NetTruncate, ///< write a partial frame, then close
    WorkerKill,  ///< the owning worker process exits immediately
};

const char *faultKindName(FaultKind kind);

/** Identity of one transfer attempt, as seen by the transport. */
struct TransferTag
{
    std::string tensor;         ///< logical tensor name ("W", "dO"...)
    const char *channel = "";   ///< "ring" | "acc" | "allreduce"
    Phase phase = Phase::Forward;
    int temporalStep = 0;       ///< t within the pass
    std::int64_t sender = 0;
    std::int64_t receiver = 0;
    std::int64_t trainStep = 0; ///< stamped by the transport
};

/** One explicitly scheduled fault. */
struct ScheduledFault
{
    FaultKind kind = FaultKind::None;
    /** Training step to fire at; -1 matches any step. */
    std::int64_t step = -1;
    /** Device (sender or receiver) to hit; -1 matches any device. */
    std::int64_t device = -1;
    /** Matching transfer attempts left to hit. Setting this to the
     *  transport's retry budget forces a step rollback; the default 1
     *  is absorbed by an in-transport retry. */
    int fires = 1;
};

/** Complete fault-injection configuration. */
struct FaultSpec
{
    double dropProb = 0.0;
    double corruptProb = 0.0;
    double delayProb = 0.0;
    /** Socket-level probabilities, enacted by the wire *sender* only
     *  (so the deterministic decision is made exactly once per
     *  attempt, by one process). No-ops on InProcessTransport. */
    double netDropProb = 0.0;
    double netDelayProb = 0.0;
    double netTruncateProb = 0.0;
    std::uint64_t seed = 0x5eedf417ull;
    std::vector<ScheduledFault> schedule;

    /** True if any fault can ever fire. */
    bool enabled() const;

    /**
     * Parse a --fault-spec string, e.g.
     *   "drop=0.01,corrupt=0.005,delay=0.02,seed=7"
     *   "netdrop=0.01,nettrunc=0.005,netdelay=0.02"
     *   "fail@step=3:dev=2"  "corrupt@step=5:dev=1:fires=4"
     *   "kill@step=4:dev=1"  (dev = worker id, distributed runs only)
     * Comma-separated tokens; `kind@key=value:key=value` schedules a
     * fault, plain `key=value` sets a probability or the seed.
     * Throws InputError on malformed input.
     */
    static FaultSpec parse(const std::string &text);

    std::string toString() const;
};

/**
 * Deterministic, seedable fault source consulted by the transport for
 * every transfer attempt. Probabilistic decisions are pure hashes;
 * scheduled faults consume their `fires` budget in transfer order
 * (transfers happen in the executor's serial barrier sections, so the
 * order — and therefore the injected pattern — is deterministic).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {}

    /** Decide the fate of one transfer attempt (classic kinds). */
    FaultKind decide(const TransferTag &tag, int attempt);

    /**
     * Decide the socket-level fate of one wire transfer attempt.
     * Called by the TcpTransport *sender* only, exactly once per
     * attempt, so scheduled net-fault budgets are consumed by the one
     * process that enacts them. Returns None or a Net* kind.
     */
    FaultKind decideNet(const TransferTag &tag, int attempt);

    /**
     * True if a scheduled `kill@step=S:dev=W` fault matches (and
     * consumes its budget). Checked by each worker at the start of a
     * training step against its own worker id.
     */
    bool consumeWorkerKill(std::int64_t step, std::int64_t worker);

    const FaultSpec &spec() const { return spec_; }

  private:
    FaultSpec spec_;
};

/** Counters of NaN/Inf/explosion detections. */
struct AnomalyCounts
{
    std::int64_t nan = 0;
    std::int64_t inf = 0;
    std::int64_t explosion = 0;

    std::int64_t total() const { return nan + inf + explosion; }
};

/** One noteworthy event, kept in RuntimeHealth's bounded log. */
struct FaultEvent
{
    FaultKind kind = FaultKind::None;
    std::string detail;
    std::string tensor;
    std::int64_t step = 0;
    std::int64_t sender = -1;
    std::int64_t receiver = -1;
    int attempt = 0;
};

/**
 * Structured health report of one runtime instance. Every transport
 * detection, retry, rollback, device failure, checkpoint restore and
 * numeric anomaly is recorded here; `report()` renders the summary the
 * acceptance criteria ask for.
 */
class RuntimeHealth
{
  public:
    // Transport counters.
    std::int64_t transfers = 0;
    std::int64_t bytesMoved = 0;
    std::int64_t bytesOnWire = 0; ///< post-codec bytes (== bytesMoved raw)
    std::int64_t dropsDetected = 0;
    std::int64_t corruptionsDetected = 0;  ///< payload checksum mismatch
    std::int64_t headerMismatches = 0;     ///< seq/step tag mismatch
    std::int64_t stragglers = 0;
    std::int64_t retries = 0;
    double simulatedDelayUs = 0.0;

    // Distributed-transport counters.
    std::int64_t reconnects = 0;     ///< successful re-dials
    std::int64_t fencedFrames = 0;   ///< frames rejected as stale-gen

    // Recovery counters.
    std::int64_t stepRollbacks = 0;
    std::int64_t deviceFailures = 0;
    std::int64_t replans = 0;
    std::int64_t checkpointRestores = 0;
    std::int64_t workersLost = 0;

    AnomalyCounts anomalies;

    /** Append to the bounded event log (oldest entries evicted). */
    void recordEvent(FaultEvent event);

    const std::deque<FaultEvent> &events() const { return log; }

    /** True if nothing bad — detected fault, anomaly, failure — ever
     *  happened. Detected-and-recovered faults clear this too: the
     *  caller distinguishes "survived faults" from "saw none". */
    bool allClear() const;

    /** Human-readable multi-line summary. */
    std::string report() const;

    void reset() { *this = RuntimeHealth{}; }

  private:
    std::deque<FaultEvent> log;
    std::size_t maxEvents = 256;
};

/** Numeric anomaly guard configuration. */
struct GuardOptions
{
    bool enabled = true;
    /** |x| beyond this counts as an explosion. */
    float explosionThreshold = 1e6f;
};

/**
 * Scan @p t for NaN/Inf/explosions; record findings into @p health
 * under @p name. Returns true when the tensor is clean.
 */
bool guardTensor(RuntimeHealth &health, const GuardOptions &opts,
                 const std::string &name, std::int64_t step,
                 const Tensor &t);

/**
 * Fast 64-bit checksum over a byte range: eight additive 64-bit lanes
 * (TCP-style, so the hot loop vectorizes to near-memcpy throughput)
 * mixed through an FNV avalanche. Order-insensitive within a lane —
 * transfer ordering is protected by the message header tags, not the
 * payload checksum. Any single corrupted word is always detected.
 */
std::uint64_t checksumBytes(const void *data, std::size_t bytes);

/**
 * Copy @p bytes from @p src to @p dst and return the checksum of the
 * copied bytes in one fused pass — same result as checksumBytes(src),
 * but the data is only read from memory once. This is the transport's
 * send path: a separate checksum pass over a multi-megabyte payload
 * would double its memory traffic.
 */
std::uint64_t checksumCopyBytes(void *dst, const void *src,
                                std::size_t bytes);

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_FAULT_HH
