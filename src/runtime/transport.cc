#include "transport.hh"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "errors.hh"
#include "observer.hh"
#include "support/logging.hh"
#include "tensor/buffer_pool.hh"

namespace primepar {

namespace {

/** The wire framing of one in-process message. The payload itself is
 *  materialized directly in the receiver's buffer. */
struct Message
{
    std::uint64_t seq = 0;
    std::int64_t trainStep = 0;
    int phase = 0;
    int temporalStep = 0;
    std::uint64_t checksum = 0;
};

std::string
transferContext(const TransferTag &tag)
{
    std::ostringstream os;
    os << tag.channel << " transfer of '" << tag.tensor << "' "
       << tag.sender << "->" << tag.receiver << " ("
       << phaseName(tag.phase) << " t=" << tag.temporalStep
       << ", train step " << tag.trainStep << ")";
    return os.str();
}

} // namespace

double
retryBackoffUs(const TransportOptions &opts, std::uint64_t streamId,
               int attempt)
{
    if (opts.backoffUs <= 0.0 || attempt < 0)
        return 0.0;
    // splitmix64 of (seed, stream, attempt) -> jitter in [0.5, 1.0).
    std::uint64_t x =
        opts.backoffJitterSeed ^ (streamId * 0x9e3779b97f4a7c15ull) ^
        (static_cast<std::uint64_t>(attempt) + 1);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    const double jitter =
        0.5 + 0.5 * (static_cast<double>(x >> 11) / 9007199254740992.0);
    const int exp = attempt < 30 ? attempt : 30;
    const double wait =
        opts.backoffUs * static_cast<double>(1u << exp) * jitter;
    return opts.backoffCapUs > 0.0 ? std::min(wait, opts.backoffCapUs)
                                   : wait;
}

InProcessTransport::InProcessTransport(
    TransportOptions opts_in, std::shared_ptr<FaultInjector> injector_in,
    RuntimeHealth *health_in)
    : opts(opts_in), injector(std::move(injector_in)), health(health_in)
{
    PRIMEPAR_ASSERT(opts.maxAttempts >= 1,
                    "transport needs at least one attempt");
}

TransferReceipt
InProcessTransport::transferInto(const TransferTag &tag_in,
                                 const Tensor &payload, Tensor &dst)
{
    TransferTag tag = tag_in;
    tag.trainStep = trainStep;
    const CodecKind codec = opts.codec.forChannel(tag.channel);

    auto failDevice = [&](std::int64_t device) -> void {
        dead.insert(device);
        const FaultEvent event{FaultKind::DeviceFail,
                               "permanent device failure", tag.tensor,
                               tag.trainStep, tag.sender, tag.receiver,
                               0};
        if (health) {
            ++health->deviceFailures;
            health->recordEvent(event);
        }
        if (observer)
            observer->onFault(event);
        throw DeviceFailedError(
            "device " + std::to_string(device) +
                " failed permanently during " + transferContext(tag),
            tag.tensor, tag.sender, tag.receiver, tag.trainStep,
            device);
    };

    if (dead.count(tag.sender))
        failDevice(tag.sender);
    if (dead.count(tag.receiver))
        failDevice(tag.receiver);

    const std::size_t payload_bytes =
        static_cast<std::size_t>(payload.numel()) * sizeof(float);
    const double t0 = observer ? observerNowUs() : 0.0;

    // Pooled scratch holding the encoded stream when this channel has
    // a codec; the steady state recycles the same buffer every step.
    Workspace scratch(
        codec != CodecKind::None
            ? static_cast<std::int64_t>(
                  (codecBound(codec, payload.numel()) + 3) / 4)
            : 0);
    std::uint8_t *const wire =
        reinterpret_cast<std::uint8_t *>(scratch.data());
    std::size_t wire_bytes = payload_bytes;

    for (int attempt = 0; attempt < opts.maxAttempts; ++attempt) {
        const FaultKind fault =
            injector ? injector->decide(tag, attempt) : FaultKind::None;

        auto recordFault = [&](std::int64_t RuntimeHealth::*counter,
                               const char *detail) {
            const FaultEvent event{fault, detail, tag.tensor,
                                   tag.trainStep, tag.sender,
                                   tag.receiver, attempt};
            if (health) {
                ++(health->*counter);
                if (attempt + 1 < opts.maxAttempts) {
                    ++health->retries;
                    health->simulatedDelayUs +=
                        retryBackoffUs(opts, nextSeq, attempt);
                }
                health->recordEvent(event);
            }
            if (observer)
                observer->onFault(event);
        };

        if (fault == FaultKind::DeviceFail) {
            // The fault hits whichever endpoint the schedule named;
            // default to the sender for probability-driven failures.
            failDevice(tag.sender);
        }
        if (fault == FaultKind::Drop) {
            // The message never arrives; the receiver times out.
            recordFault(&RuntimeHealth::dropsDetected,
                        "transfer timed out (dropped)");
            continue;
        }

        // Build the message. Codec-free path: one payload copy into
        // the receiver's buffer (exactly what the transport-free path
        // performed) plus the header; the send checksum is computed
        // inside the copy pass, so the payload is read from memory
        // once, not twice, and a same-shape destination recycles its
        // storage. Codec path: encode into the wire scratch — the
        // encoded bytes are the message body, so they are what gets
        // checksummed, corrupted, verified, and only then decoded.
        Message msg;
        msg.seq = nextSeq;
        msg.trainStep = tag.trainStep;
        msg.phase = static_cast<int>(tag.phase);
        msg.temporalStep = tag.temporalStep;
        if (codec != CodecKind::None) {
            // Re-encoded per attempt so a corrupted retry starts from
            // pristine bytes; extra attempts only occur under injected
            // faults.
            wire_bytes = codecEncode(codec, payload.data(),
                                     payload.numel(), wire);
            if (opts.checksums)
                msg.checksum = checksumBytes(wire, wire_bytes);
        } else if (opts.checksums) {
            if (dst.shape() != payload.shape())
                dst = Tensor::uninitialized(payload.shape());
            msg.checksum = checksumCopyBytes(
                dst.data(), payload.data(), payload_bytes);
        } else {
            dst = payload;
        }

        if (fault == FaultKind::Delay) {
            // Straggler: delivery succeeds but late. Track the delay;
            // the simulator's FaultSimModel mirrors it in latency.
            const FaultEvent event{fault, "straggling transfer",
                                   tag.tensor, tag.trainStep,
                                   tag.sender, tag.receiver, attempt};
            if (health) {
                ++health->stragglers;
                health->simulatedDelayUs += 8.0 * opts.backoffUs;
                health->recordEvent(event);
            }
            if (observer)
                observer->onFault(event);
        } else if (fault == FaultKind::Corrupt) {
            // Corrupt either the payload or the header tags — the low
            // hash bit picks which, so both detection paths run. With
            // a codec the *encoded* bytes are flipped: detection must
            // work on what the wire actually carries.
            const bool header = (msg.seq ^ static_cast<std::uint64_t>(
                                               attempt)) & 1;
            if (header || payload_bytes == 0 ||
                (codec != CodecKind::None && wire_bytes == 0)) {
                msg.trainStep ^= 0x40;
                msg.seq ^= 0x1000;
            } else if (codec != CodecKind::None) {
                wire[msg.seq % wire_bytes] ^= 0x2a;
            } else {
                const std::int64_t victim =
                    static_cast<std::int64_t>(msg.seq) % dst.numel();
                dst.data()[victim] += 1.0f;
            }
        }

        // ---- Delivery-side verification ----
        if (opts.checksums) {
            if (msg.trainStep != tag.trainStep || msg.seq != nextSeq ||
                msg.phase != static_cast<int>(tag.phase) ||
                msg.temporalStep != tag.temporalStep) {
                recordFault(&RuntimeHealth::headerMismatches,
                            "stale or misordered message rejected");
                continue;
            }
            const std::uint64_t got =
                codec != CodecKind::None
                    ? checksumBytes(wire, wire_bytes)
                    : checksumBytes(dst.data(), payload_bytes);
            if (got != msg.checksum) {
                recordFault(&RuntimeHealth::corruptionsDetected,
                            "payload checksum mismatch");
                continue;
            }
        }

        // Verified frame: unpack the encoded stream into the
        // receiver's buffer (every element is written, so recycled
        // pool storage needs no zeroing).
        if (codec != CodecKind::None) {
            if (dst.shape() != payload.shape())
                dst = Tensor::uninitialized(payload.shape());
            codecDecode(codec, wire, wire_bytes, dst.data(),
                        payload.numel());
        }

        // Emulated wire time: latency plus serialization of the
        // post-codec bytes. Spent as a real sleep — a link's
        // in-flight time costs no host CPU, which is precisely the
        // window the async executor's compute can fill.
        if (opts.linkLatencyUs > 0.0 || opts.linkBytesPerUs > 0.0) {
            double us = std::max(0.0, opts.linkLatencyUs);
            if (opts.linkBytesPerUs > 0.0)
                us += static_cast<double>(wire_bytes) /
                      opts.linkBytesPerUs;
            if (us > 0.0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::micro>(us));
            }
        }

        ++nextSeq;
        const TransferReceipt receipt{
            static_cast<std::int64_t>(payload_bytes),
            static_cast<std::int64_t>(wire_bytes)};
        if (health) {
            ++health->transfers;
            health->bytesMoved += receipt.rawBytes;
            health->bytesOnWire += receipt.wireBytes;
        }
        if (observer)
            observer->onTransfer(tag, receipt.rawBytes,
                                 receipt.wireBytes, attempt + 1,
                                 observerNowUs() - t0);
        return receipt;
    }

    throw TransientFaultError(
        "retry budget (" + std::to_string(opts.maxAttempts) +
            " attempts) exhausted for " + transferContext(tag),
        tag.tensor, tag.sender, tag.receiver, tag.trainStep);
}

} // namespace primepar
