#include "transport.hh"

#include <sstream>

#include "errors.hh"
#include "observer.hh"
#include "support/logging.hh"

namespace primepar {

namespace {

/** The wire framing of one in-process message. The payload itself is
 *  materialized directly in the receiver's buffer. */
struct Message
{
    std::uint64_t seq = 0;
    std::int64_t trainStep = 0;
    int phase = 0;
    int temporalStep = 0;
    std::uint64_t checksum = 0;
};

std::string
transferContext(const TransferTag &tag)
{
    std::ostringstream os;
    os << tag.channel << " transfer of '" << tag.tensor << "' "
       << tag.sender << "->" << tag.receiver << " ("
       << phaseName(tag.phase) << " t=" << tag.temporalStep
       << ", train step " << tag.trainStep << ")";
    return os.str();
}

} // namespace

InProcessTransport::InProcessTransport(
    TransportOptions opts_in, std::shared_ptr<FaultInjector> injector_in,
    RuntimeHealth *health_in)
    : opts(opts_in), injector(std::move(injector_in)), health(health_in)
{
    PRIMEPAR_ASSERT(opts.maxAttempts >= 1,
                    "transport needs at least one attempt");
}

void
InProcessTransport::transferInto(const TransferTag &tag_in,
                                 const Tensor &payload, Tensor &dst)
{
    TransferTag tag = tag_in;
    tag.trainStep = trainStep;

    auto failDevice = [&](std::int64_t device) -> void {
        dead.insert(device);
        const FaultEvent event{FaultKind::DeviceFail,
                               "permanent device failure", tag.tensor,
                               tag.trainStep, tag.sender, tag.receiver,
                               0};
        if (health) {
            ++health->deviceFailures;
            health->recordEvent(event);
        }
        if (observer)
            observer->onFault(event);
        throw DeviceFailedError(
            "device " + std::to_string(device) +
                " failed permanently during " + transferContext(tag),
            tag.tensor, tag.sender, tag.receiver, tag.trainStep,
            device);
    };

    if (dead.count(tag.sender))
        failDevice(tag.sender);
    if (dead.count(tag.receiver))
        failDevice(tag.receiver);

    const std::size_t payload_bytes =
        static_cast<std::size_t>(payload.numel()) * sizeof(float);
    const double t0 = observer ? observerNowUs() : 0.0;

    for (int attempt = 0; attempt < opts.maxAttempts; ++attempt) {
        const FaultKind fault =
            injector ? injector->decide(tag, attempt) : FaultKind::None;

        auto recordFault = [&](std::int64_t RuntimeHealth::*counter,
                               const char *detail) {
            const FaultEvent event{fault, detail, tag.tensor,
                                   tag.trainStep, tag.sender,
                                   tag.receiver, attempt};
            if (health) {
                ++(health->*counter);
                if (attempt + 1 < opts.maxAttempts) {
                    ++health->retries;
                    health->simulatedDelayUs +=
                        opts.backoffUs *
                        static_cast<double>(attempt + 1);
                }
                health->recordEvent(event);
            }
            if (observer)
                observer->onFault(event);
        };

        if (fault == FaultKind::DeviceFail) {
            // The fault hits whichever endpoint the schedule named;
            // default to the sender for probability-driven failures.
            failDevice(tag.sender);
        }
        if (fault == FaultKind::Drop) {
            // The message never arrives; the receiver times out.
            recordFault(&RuntimeHealth::dropsDetected,
                        "transfer timed out (dropped)");
            continue;
        }

        // Build the message: one payload copy into the receiver's
        // buffer (exactly what the transport-free path performed) plus
        // the header. The send checksum is computed inside the copy
        // pass, so the payload is read from memory once, not twice,
        // and a same-shape destination recycles its storage.
        Message msg;
        msg.seq = nextSeq;
        msg.trainStep = tag.trainStep;
        msg.phase = static_cast<int>(tag.phase);
        msg.temporalStep = tag.temporalStep;
        if (opts.checksums) {
            if (dst.shape() != payload.shape())
                dst = Tensor::uninitialized(payload.shape());
            msg.checksum = checksumCopyBytes(
                dst.data(), payload.data(), payload_bytes);
        } else {
            dst = payload;
        }

        if (fault == FaultKind::Delay) {
            // Straggler: delivery succeeds but late. Track the delay;
            // the simulator's FaultSimModel mirrors it in latency.
            const FaultEvent event{fault, "straggling transfer",
                                   tag.tensor, tag.trainStep,
                                   tag.sender, tag.receiver, attempt};
            if (health) {
                ++health->stragglers;
                health->simulatedDelayUs += 8.0 * opts.backoffUs;
                health->recordEvent(event);
            }
            if (observer)
                observer->onFault(event);
        } else if (fault == FaultKind::Corrupt) {
            // Corrupt either the payload or the header tags — the low
            // hash bit picks which, so both detection paths run.
            const bool header = (msg.seq ^ static_cast<std::uint64_t>(
                                               attempt)) & 1;
            if (header || payload_bytes == 0) {
                msg.trainStep ^= 0x40;
                msg.seq ^= 0x1000;
            } else {
                const std::int64_t victim =
                    static_cast<std::int64_t>(msg.seq) % dst.numel();
                dst.data()[victim] += 1.0f;
            }
        }

        // ---- Delivery-side verification ----
        if (opts.checksums) {
            if (msg.trainStep != tag.trainStep || msg.seq != nextSeq ||
                msg.phase != static_cast<int>(tag.phase) ||
                msg.temporalStep != tag.temporalStep) {
                recordFault(&RuntimeHealth::headerMismatches,
                            "stale or misordered message rejected");
                continue;
            }
            const std::uint64_t got =
                checksumBytes(dst.data(), payload_bytes);
            if (got != msg.checksum) {
                recordFault(&RuntimeHealth::corruptionsDetected,
                            "payload checksum mismatch");
                continue;
            }
        }

        ++nextSeq;
        if (health) {
            ++health->transfers;
            health->bytesMoved +=
                static_cast<std::int64_t>(payload_bytes);
        }
        if (observer)
            observer->onTransfer(
                tag, static_cast<std::int64_t>(payload_bytes),
                attempt + 1, observerNowUs() - t0);
        return;
    }

    throw TransientFaultError(
        "retry budget (" + std::to_string(opts.maxAttempts) +
            " attempts) exhausted for " + transferContext(tag),
        tag.tensor, tag.sender, tag.receiver, tag.trainStep);
}

} // namespace primepar
