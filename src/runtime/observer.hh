/**
 * @file
 * The unified runtime observability API.
 *
 * Before this interface existed, instrumentation was ad-hoc: the
 * simulator had its Trace, the transport updated RuntimeHealth
 * counters directly, and the executor called the NaN/Inf guard inline.
 * RuntimeObserver collapses all of it behind one set of callbacks that
 * SpmdOpExecutor, InProcessTransport and BlockTrainer invoke at their
 * instrumentation points:
 *
 *  - onSpan: per-device wall-clock execution spans (compute, ring
 *    send-recv, all-reduce, redistribution, checkpoint) — the real
 *    runtime's analogue of the simulator's Fig. 9 timeline;
 *  - onTransfer / onFault / onRollback: transport-level delivery,
 *    detection and recovery events;
 *  - onTensorProduced: every pass output at its phase boundary (the
 *    numeric-anomaly guard is an observer now, see GuardObserver);
 *  - onStepBegin / onStepEnd / onCheckpoint: training-loop milestones.
 *
 * Concrete observers: TracingObserver (fills a Trace for Chrome-trace
 * or ASCII export), MetricsObserver (metrics.hh), GuardObserver (the
 * migrated NaN/Inf/explosion scan), and ObserverChain (fan-out).
 *
 * Threading contract: onSpan and onTensorProduced may be invoked
 * concurrently from per-device worker threads; implementations must be
 * thread-safe for those. All other callbacks arrive from the
 * executor's serial sections. All hooks default to no-ops, so the
 * tracing-off cost is one null/empty check at each instrumentation
 * point (budgeted < 3% in bench_micro's observer_overhead section).
 */

#ifndef PRIMEPAR_RUNTIME_OBSERVER_HH
#define PRIMEPAR_RUNTIME_OBSERVER_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fault.hh"
#include "sim/trace.hh"
#include "tensor/tensor.hh"

namespace primepar {

/** Monotonic wall clock in microseconds (process-wide epoch). */
double observerNowUs();

/** The observability callback interface (all hooks default no-op). */
class RuntimeObserver
{
  public:
    virtual ~RuntimeObserver() = default;

    /** A training step is starting. */
    virtual void
    onStepBegin(std::int64_t step)
    {
        (void)step;
    }

    /** A training step completed in @p wall_us. */
    virtual void
    onStepEnd(std::int64_t step, double wall_us)
    {
        (void)step;
        (void)wall_us;
    }

    /**
     * One per-device execution span, in observerNowUs() time. May be
     * called concurrently from worker threads.
     */
    virtual void
    onSpan(std::int64_t device, SpanKind kind, const std::string &label,
           double start_us, double end_us)
    {
        (void)device;
        (void)kind;
        (void)label;
        (void)start_us;
        (void)end_us;
    }

    /** One successfully delivered transfer of @p bytes payload bytes
     *  — of which @p wire_bytes actually crossed the wire post-codec
     *  — after @p attempts attempts, taking @p wall_us. */
    virtual void
    onTransfer(const TransferTag &tag, std::int64_t bytes,
               std::int64_t wire_bytes, int attempts, double wall_us)
    {
        (void)tag;
        (void)bytes;
        (void)wire_bytes;
        (void)attempts;
        (void)wall_us;
    }

    /** A detected fault / retry / device failure (transport level). */
    virtual void
    onFault(const FaultEvent &event)
    {
        (void)event;
    }

    /** A temporal step was rolled back and will be re-executed. */
    virtual void
    onRollback(std::int64_t step)
    {
        (void)step;
    }

    /**
     * A pass output (activation / gradient) materialized on a device
     * at a phase boundary. May be called concurrently from worker
     * threads. This is where the numeric-anomaly guard hooks in.
     */
    virtual void
    onTensorProduced(const std::string &name, std::int64_t step,
                     const Tensor &t)
    {
        (void)name;
        (void)step;
        (void)t;
    }

    /** A checkpoint was saved (@p save) or restored in @p wall_us. */
    virtual void
    onCheckpoint(bool save, std::int64_t step, double wall_us)
    {
        (void)save;
        (void)step;
        (void)wall_us;
    }

    /** A worker process joined the job at @p generation (distributed
     *  runs; emitted by the coordinator / TcpTransport). */
    virtual void
    onWorkerUp(std::int64_t worker, std::uint64_t generation)
    {
        (void)worker;
        (void)generation;
    }

    /** A worker was declared dead at @p generation; @p reason is a
     *  short human-readable cause ("heartbeat timeout", ...). */
    virtual void
    onWorkerLost(std::int64_t worker, std::uint64_t generation,
                 const std::string &reason)
    {
        (void)worker;
        (void)generation;
        (void)reason;
    }
};

/**
 * Fan-out to several observers (not owned), in add() order. empty()
 * is the runtime's fast path: instrumentation points check it before
 * taking any timestamp.
 */
class ObserverChain : public RuntimeObserver
{
  public:
    void
    add(RuntimeObserver *o)
    {
        if (o)
            list.push_back(o);
    }

    void clear() { list.clear(); }
    bool empty() const { return list.empty(); }

    void
    onStepBegin(std::int64_t step) override
    {
        for (auto *o : list)
            o->onStepBegin(step);
    }
    void
    onStepEnd(std::int64_t step, double wall_us) override
    {
        for (auto *o : list)
            o->onStepEnd(step, wall_us);
    }
    void
    onSpan(std::int64_t device, SpanKind kind, const std::string &label,
           double start_us, double end_us) override
    {
        for (auto *o : list)
            o->onSpan(device, kind, label, start_us, end_us);
    }
    void
    onTransfer(const TransferTag &tag, std::int64_t bytes,
               std::int64_t wire_bytes, int attempts,
               double wall_us) override
    {
        for (auto *o : list)
            o->onTransfer(tag, bytes, wire_bytes, attempts, wall_us);
    }
    void
    onFault(const FaultEvent &event) override
    {
        for (auto *o : list)
            o->onFault(event);
    }
    void
    onRollback(std::int64_t step) override
    {
        for (auto *o : list)
            o->onRollback(step);
    }
    void
    onTensorProduced(const std::string &name, std::int64_t step,
                     const Tensor &t) override
    {
        for (auto *o : list)
            o->onTensorProduced(name, step, t);
    }
    void
    onCheckpoint(bool save, std::int64_t step, double wall_us) override
    {
        for (auto *o : list)
            o->onCheckpoint(save, step, wall_us);
    }
    void
    onWorkerUp(std::int64_t worker, std::uint64_t generation) override
    {
        for (auto *o : list)
            o->onWorkerUp(worker, generation);
    }
    void
    onWorkerLost(std::int64_t worker, std::uint64_t generation,
                 const std::string &reason) override
    {
        for (auto *o : list)
            o->onWorkerLost(worker, generation, reason);
    }

  private:
    std::vector<RuntimeObserver *> list;
};

/**
 * Records every span (and checkpoint event) into a Trace, normalized
 * to the observer's construction time, for Chrome-trace / ASCII
 * export. Thread-safe.
 */
class TracingObserver : public RuntimeObserver
{
  public:
    TracingObserver();

    void onSpan(std::int64_t device, SpanKind kind,
                const std::string &label, double start_us,
                double end_us) override;
    void onCheckpoint(bool save, std::int64_t step,
                      double wall_us) override;

    /** The recording (copy: the live trace may keep growing). */
    Trace snapshot() const;

    /** Ring-vs-Compute overlap of the recording so far: how much of
     *  the transfer time the async executor hid behind compute (see
     *  overlapStats() in sim/trace.hh). */
    OverlapStats overlapStats() const;

    /** Drop all recorded spans and re-anchor the time base. */
    void reset();

  private:
    mutable std::mutex mu;
    Trace trace;
    double baseUs;
};

/**
 * The numeric-anomaly guard as an observer: scans every produced
 * tensor for NaN/Inf/explosions and records findings into a
 * RuntimeHealth (not owned). This replaces the executor's former
 * inline guardTensor call; SpmdOpExecutor::setHealth installs one
 * internally for backward compatibility. Thread-safe.
 */
class GuardObserver : public RuntimeObserver
{
  public:
    GuardObserver(RuntimeHealth *health, GuardOptions opts = {})
        : health(health), opts(opts)
    {}

    void onTensorProduced(const std::string &name, std::int64_t step,
                          const Tensor &t) override;

  private:
    std::mutex mu;
    RuntimeHealth *health;
    GuardOptions opts;
};

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_OBSERVER_HH
