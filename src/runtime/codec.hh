/**
 * @file
 * Wire codecs for inter-device tensor traffic.
 *
 * Once ring shifts overlap with compute, bytes-on-wire become the
 * next lever (ATP's cost analysis, PAPERS.md): a transfer that is
 * half the size finishes in half the window the compute opens. The
 * transport therefore passes every payload through a per-channel
 * Codec before framing it:
 *
 *  - Pack: *lossless* block bit-packing of the raw fp32 words. Each
 *    128-word block stores only the bit range actually populated
 *    (derived from the OR of the block), so bf16-rounded gradients
 *    pack to ~0.53x and all-zero blocks to 2 bytes, while
 *    incompressible data costs < 2% overhead. Decoding is exact —
 *    the bit-identical numeric contract survives.
 *  - Bf16: lossy fp32 -> bfloat16 truncation with round-to-nearest-
 *    even (0.5x, ~3 decimal digits kept).
 *  - Int8: lossy per-block max-abs linear quantization (~0.26x).
 *
 * The encoded stream is what gets checksummed, corrupted by the
 * fault injector, and verified — exactly as the raw bytes would be —
 * so the detection and rollback machinery is codec-agnostic.
 *
 * Encode/decode loops are written over word-at-a-time byte-aligned
 * fast paths (widths 8/16/24/32) that GCC/Clang autovectorize, in the
 * style of tensor/gemm.cc; odd widths fall back to a 64-bit
 * accumulator bit stream.
 */

#ifndef PRIMEPAR_RUNTIME_CODEC_HH
#define PRIMEPAR_RUNTIME_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace primepar {

/** Available wire encodings. */
enum class CodecKind
{
    None, ///< raw fp32 bytes (identity)
    Pack, ///< lossless block bit-packing
    Bf16, ///< lossy fp32 -> bf16 round-to-nearest-even
    Int8, ///< lossy per-block max-abs int8 quantization
};

/** Stable lowercase name ("none", "pack", "bf16", "int8"). */
const char *codecKindName(CodecKind kind);

/** Inverse of codecKindName; throws RuntimeError on unknown names. */
CodecKind parseCodecKind(const std::string &name);

/** True when decode(encode(x)) == x bit-for-bit. */
bool codecLossless(CodecKind kind);

/**
 * Per-channel codec selection for the transport. Ring shifts and
 * accumulator migrations move *operands and partial sums* that feed
 * further compute, so they default to lossless choices; the grouped
 * all-reduce moves gradients, the classic target for lossy
 * compression. Every channel defaults to None (raw bytes).
 */
struct CodecConfig
{
    CodecKind ring = CodecKind::None;      ///< ring step shifts
    CodecKind acc = CodecKind::None;       ///< accumulator migrations
    CodecKind allreduce = CodecKind::None; ///< gradient all-reduce

    /** Selection for a transport channel name ("ring"/"acc"/
     *  "allreduce"); unknown channels get None. */
    CodecKind forChannel(const char *channel) const;

    /** True when any channel encodes. */
    bool any() const;

    /**
     * Parse a --codec string: either one kind applied to every
     * channel ("pack") or comma-separated channel=kind pairs
     * ("ring=pack,allreduce=bf16"). Throws RuntimeError on malformed
     * input.
     */
    static CodecConfig parse(const std::string &text);

    std::string toString() const;
};

/** Upper bound on codecEncode()'s output size for @p n floats. */
std::size_t codecBound(CodecKind kind, std::int64_t n);

/**
 * Encode @p n floats from @p src into @p dst (at least
 * codecBound(kind, n) bytes). Returns the encoded byte count.
 * CodecKind::None is not encodable (the transport skips the codec
 * path entirely); passing it panics.
 */
std::size_t codecEncode(CodecKind kind, const float *src,
                        std::int64_t n, std::uint8_t *dst);

/**
 * Decode exactly @p n floats from the @p bytes-long encoded stream
 * into @p dst. Every output element is written (callers hand in
 * recycled, uninitialized pool buffers). Panics on a truncated or
 * malformed stream — encoded bytes are checksum-verified by the
 * transport before decoding, so malformation here is a PrimePar bug.
 */
void codecDecode(CodecKind kind, const std::uint8_t *src,
                 std::size_t bytes, float *dst, std::int64_t n);

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_CODEC_HH
