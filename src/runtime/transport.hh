/**
 * @file
 * Pluggable transport between the SPMD executors and the tensor stores.
 *
 * Every inter-device movement of tensor values — ring shifts,
 * accumulator migrations, transition shifts, grouped all-reduce
 * gathers and broadcasts — goes through a Transport. The default
 * in-process implementation frames each transfer as a message with a
 * sequence number, the training step / phase / temporal step it
 * belongs to, and a checksum of the payload, then verifies all of them
 * on delivery. That turns silent corruption and misordering into
 * *detected* faults that are retried with (simulated) backoff; a
 * retry budget exhausted escalates to TransientFaultError, which the
 * executor answers with a step rollback, and a permanently failed
 * device raises DeviceFailedError for the runtime to degrade on.
 *
 * A FaultInjector, when attached, perturbs messages deterministically
 * (drop / corrupt payload / corrupt header / delay / kill device), so
 * every detection and recovery path is exercised by tests rather than
 * trusted.
 */

#ifndef PRIMEPAR_RUNTIME_TRANSPORT_HH
#define PRIMEPAR_RUNTIME_TRANSPORT_HH

#include <memory>
#include <set>
#include <vector>

#include "codec.hh"
#include "fault.hh"
#include "tensor/tensor.hh"

namespace primepar {

class RuntimeObserver;

/** Behavior knobs of the default transport. */
struct TransportOptions
{
    /** Verify payload checksums and header tags on delivery. */
    bool checksums = true;
    /** Transfer attempts before escalating to TransientFaultError. */
    int maxAttempts = 4;
    /** Base of the exponential retry backoff. Attempt k waits
     *  base * 2^k scaled by decorrelated jitter (see retryBackoffUs);
     *  InProcessTransport accounts the wait in health, TcpTransport
     *  really sleeps it. */
    double backoffUs = 50.0;
    /** Ceiling of one backoff wait after jitter. */
    double backoffCapUs = 5000.0;
    /** Seed of the deterministic jitter hash (so fault tests replay). */
    std::uint64_t backoffJitterSeed = 0x6a177e5ull;
    /** Per-channel wire codec (codec.hh); default raw fp32 bytes.
     *  The encoded stream is what gets checksummed and verified. */
    CodecConfig codec;
    /** Emulated per-transfer link latency in microseconds, spent as a
     *  real sleep on the delivering thread. 0 disables (default).
     *  Unlike the checksum/copy cost, in-flight wire time consumes no
     *  host CPU — it is exactly what the async executor hides under
     *  compute and what the codecs shrink. */
    double linkLatencyUs = 0.0;
    /** Emulated link bandwidth in bytes per microsecond (1000 =
     *  1 GB/s); adds wireBytes / linkBytesPerUs of in-flight time per
     *  transfer. <= 0 means an infinitely fast link (default). */
    double linkBytesPerUs = 0.0;
};

/** What one delivered transfer cost: the logical payload size and the
 *  bytes that actually crossed the (emulated) wire post-codec. */
struct TransferReceipt
{
    std::int64_t rawBytes = 0;
    std::int64_t wireBytes = 0;
};

/**
 * A contiguous range of device ranks one participant materializes.
 * The default-constructed span means "all devices" — the replicated
 * mode every single-process transport runs in. A sharded TcpTransport
 * reports the owning worker's slice of the DistWorld placement, and
 * the executors then allocate tensor data, journal snapshots and
 * BufferPool storage only for ranks inside the span (partition tuples
 * stay global: they are a few int64s per device and every transfer
 * endpoint needs them).
 */
struct DeviceSpan
{
    std::int64_t first = 0;
    /** Number of owned ranks; -1 = every device (replicated). */
    std::int64_t count = -1;

    bool all() const { return count < 0; }

    bool owns(std::int64_t device) const
    {
        return all() || (device >= first && device < first + count);
    }
};

/**
 * Exponential backoff with decorrelated jitter for retry @p attempt
 * (0-based: the wait before attempt 1 is the first backoff) of the
 * stream identified by @p streamId. The wait is
 * base * 2^attempt scaled into [0.5, 1.0) by a hash of
 * (jitter seed, streamId, attempt), capped at backoffCapUs.
 * Deterministic — the same options and stream replay the same waits —
 * but decorrelated: concurrent streams that failed together do not
 * retry in lockstep.
 */
double retryBackoffUs(const TransportOptions &opts,
                      std::uint64_t streamId, int attempt);

/** Moves tensor values between emulated devices. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Move one tensor value sender -> receiver, delivering into
     * @p dst (which must not alias @p payload; its storage is reused
     * when the shapes already match, so steady-state transfers touch
     * no allocator). Returns the raw and post-codec byte counts.
     * Throws TransientFaultError when the retry budget is exhausted
     * and DeviceFailedError when an endpoint is dead; on throw @p dst
     * is unspecified and the caller's journal rollback discards it.
     */
    virtual TransferReceipt transferInto(const TransferTag &tag,
                                         const Tensor &payload,
                                         Tensor &dst) = 0;

    /** Convenience wrapper returning the delivered copy. */
    Tensor transfer(const TransferTag &tag, const Tensor &payload)
    {
        Tensor out;
        transferInto(tag, payload, out);
        return out;
    }

    /** Advance the training-step counter stamped on every message. */
    virtual void beginStep(std::int64_t step) { (void)step; }

    /** True when faults can occur, i.e. the executor should journal
     *  temporal steps for rollback. */
    virtual bool faultTolerant() const { return false; }

    /** Attach a health sink (not owned; nullptr detaches). */
    virtual void setHealth(RuntimeHealth *h) { (void)h; }

    /** Report every delivered transfer (bytes, attempts, wall time)
     *  and detected fault to @p o (not owned; nullptr detaches). */
    virtual void setObserver(RuntimeObserver *o) { (void)o; }

    /** Device ranks this participant materializes locally. The
     *  default span owns every rank (replicated execution); a sharded
     *  transport narrows it to the local worker's placement slice and
     *  the executors skip allocating data for the rest. */
    virtual DeviceSpan ownedDevices() const { return {}; }

    /** The other participants' owned spans (empty when this transport
     *  is the only participant). Used by the executors to address
     *  all-gather traffic at one representative rank per peer. */
    virtual std::vector<DeviceSpan> peerSpans() const { return {}; }
};

/**
 * The default transport: in-process value copies framed with
 * seq/step/checksum verification, optional per-channel wire codecs,
 * optional fault injection, and retry-with-backoff. Transfers are
 * issued one at a time — from the executor's serial barrier sections,
 * or from its single comm worker while compute overlaps, with a join
 * between the two regimes — never concurrently, so no internal
 * locking is needed and the injected fault pattern is deterministic
 * at any thread count.
 */
class InProcessTransport : public Transport
{
  public:
    explicit InProcessTransport(
        TransportOptions opts = {},
        std::shared_ptr<FaultInjector> injector = nullptr,
        RuntimeHealth *health = nullptr);

    TransferReceipt transferInto(const TransferTag &tag,
                                 const Tensor &payload,
                                 Tensor &dst) override;

    void beginStep(std::int64_t step) override { trainStep = step; }

    bool faultTolerant() const override { return injector != nullptr; }

    void setHealth(RuntimeHealth *h) override { health = h; }

    void setObserver(RuntimeObserver *o) override { observer = o; }

    const std::set<std::int64_t> &deadDevices() const { return dead; }

  private:
    TransportOptions opts;
    std::shared_ptr<FaultInjector> injector;
    RuntimeHealth *health = nullptr;
    RuntimeObserver *observer = nullptr;
    std::int64_t trainStep = 0;
    std::uint64_t nextSeq = 0;
    std::set<std::int64_t> dead;
};

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_TRANSPORT_HH
