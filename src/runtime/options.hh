/**
 * @file
 * The single runtime configuration struct.
 *
 * PRs 2-3 grew knobs in three places: executor threading on the
 * SpmdGraphExecutor constructor, transport fault/retry settings in
 * TransportOptions, and checkpoint/recovery settings spread over
 * TrainerOptions. RuntimeOptions collapses them into one documented
 * struct with nested sections, consumed by SpmdGraphExecutor,
 * InProcessTransport and BlockTrainer alike:
 *
 *   RuntimeOptions rt;
 *   rt.numBits = 3;                  // 2^3 emulated devices
 *   rt.execution.numThreads = 0;     // all hardware threads
 *   rt.transport.maxAttempts = 6;    // retry budget
 *   rt.faults = FaultSpec::parse("drop=0.01");
 *   rt.guard.explosionThreshold = 1e5f;
 *   rt.checkpoint.path = "run.ppck";
 *   rt.checkpoint.every = 10;
 *
 * The pre-redesign flat TrainerOptions fields survive one release as
 * LegacyTrainerOptions (deprecated), which converts implicitly to the
 * new TrainerOptions (trainer.hh).
 */

#ifndef PRIMEPAR_RUNTIME_OPTIONS_HH
#define PRIMEPAR_RUNTIME_OPTIONS_HH

#include <string>

#include "fault.hh"
#include "transport.hh"

namespace primepar {

/** Executor threading (per-device sub-operator parallelism). */
struct ExecutionOptions
{
    /** Worker threads: 0 = all hardware threads, 1 = serial. Results
     *  are bit-identical at every setting. */
    int numThreads = 1;
    /** Overlap ring communication with compute on a dedicated comm
     *  worker (SpmdOpExecutor::setCommOverlap). Bit-identical to the
     *  synchronous path; off restores strictly step-synchronous
     *  transfers (mainly for A/B benchmarking). */
    bool overlapComm = true;
};

/** Multi-process (coordinator + workers) runtime settings. */
struct DistOptions
{
    /** Heartbeat period each worker beacons to the coordinator. */
    int heartbeatMs = 100;
    /** Consecutive missed heartbeats before a worker is declared
     *  dead and the survivors re-plan. */
    int heartbeatMissLimit = 5;
    /** Deadline of one wire transfer (send + ack) per attempt. */
    int transferDeadlineMs = 2000;
    /** Deadline of one connect / handshake. */
    int connectTimeoutMs = 2000;
    /** Re-dial attempts per peer before the peer's devices are
     *  declared failed (each waits the jittered exponential backoff,
     *  see retryBackoffUs). */
    int reconnectAttempts = 3;
};

/** Checkpointing and permanent-failure recovery. */
struct CheckpointOptions
{
    /** Checkpoint file; empty disables checkpointing. */
    std::string path;
    /** Save every N completed steps (0 = only on explicit request). */
    int every = 0;
    /** Permanent device failures survivable before giving up. */
    int maxReplans = 2;
};

/** Everything configuring the SPMD runtime (executor + transport +
 *  fault handling + checkpointing), in one place. */
struct RuntimeOptions
{
    /** Device-id bits: 2^n emulated devices. */
    int numBits = 2;
    ExecutionOptions execution;
    /** Transport framing: checksums, retry budget, backoff. */
    TransportOptions transport;
    /** Fault injection (disabled by default). */
    FaultSpec faults;
    /** Numeric-anomaly guard applied at phase boundaries. */
    GuardOptions guard;
    CheckpointOptions checkpoint;
    /** Multi-process runtime (heartbeats, deadlines, reconnects). */
    DistOptions dist;
};

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_OPTIONS_HH
