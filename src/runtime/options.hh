/**
 * @file
 * The single runtime configuration struct.
 *
 * PRs 2-3 grew knobs in three places: executor threading on the
 * SpmdGraphExecutor constructor, transport fault/retry settings in
 * TransportOptions, and checkpoint/recovery settings spread over
 * TrainerOptions. RuntimeOptions collapses them into one documented
 * struct with nested sections, consumed by SpmdGraphExecutor,
 * InProcessTransport and BlockTrainer alike:
 *
 *   RuntimeOptions rt;
 *   rt.numBits = 3;                  // 2^3 emulated devices
 *   rt.execution.numThreads = 0;     // all hardware threads
 *   rt.transport.maxAttempts = 6;    // retry budget
 *   rt.faults = FaultSpec::parse("drop=0.01");
 *   rt.guard.explosionThreshold = 1e5f;
 *   rt.checkpoint.path = "run.ppck";
 *   rt.checkpoint.every = 10;
 *
 * All knobs are construction-time: an executor built from a
 * RuntimeOptions cannot be reconfigured mid-run into a state that
 * disagrees with how its buffers and comm pipeline were laid out.
 */

#ifndef PRIMEPAR_RUNTIME_OPTIONS_HH
#define PRIMEPAR_RUNTIME_OPTIONS_HH

#include <string>

#include "fault.hh"
#include "transport.hh"

namespace primepar {

/** Executor threading (per-device sub-operator parallelism). */
struct ExecutionOptions
{
    /** Worker threads: 0 = all hardware threads, 1 = serial. Results
     *  are bit-identical at every setting. */
    int numThreads = 1;
    /** Overlap ring communication with compute on a dedicated comm
     *  worker. Construction-time only — the executors size their comm
     *  pipeline from it and expose no post-construction toggle.
     *  Bit-identical to the synchronous path; off restores strictly
     *  step-synchronous transfers (mainly for A/B benchmarking). */
    bool overlapComm = true;
    /** Device ranks this process materializes tensor data for. The
     *  default span covers every rank (replicated execution); sharded
     *  multi-process runs narrow it to the local worker's DistWorld
     *  slice. BlockTrainer fills it from Transport::ownedDevices(),
     *  so only hand-built executors set it directly. */
    DeviceSpan ownedDevices;
};

/** Multi-process (coordinator + workers) runtime settings. */
struct DistOptions
{
    /** Heartbeat period each worker beacons to the coordinator. */
    int heartbeatMs = 100;
    /** Consecutive missed heartbeats before a worker is declared
     *  dead and the survivors re-plan. */
    int heartbeatMissLimit = 5;
    /** Deadline of one wire transfer (send + ack) per attempt. */
    int transferDeadlineMs = 2000;
    /** Deadline of one connect / handshake. */
    int connectTimeoutMs = 2000;
    /** Re-dial attempts per peer before the peer's devices are
     *  declared failed (each waits the jittered exponential backoff,
     *  see retryBackoffUs). */
    int reconnectAttempts = 3;
    /** Shard executor state across workers: each process materializes
     *  tensor data / journals / pool buffers only for the device ranks
     *  it owns in the DistWorld placement, and non-local slices move
     *  over the wire on demand. Off restores full lockstep
     *  replication (every worker emulates all 2^n devices), which is
     *  bit-identical but costs W× the memory. */
    bool sharded = true;
};

/** Checkpointing and permanent-failure recovery. */
struct CheckpointOptions
{
    /** Checkpoint file; empty disables checkpointing. */
    std::string path;
    /** Save every N completed steps (0 = only on explicit request). */
    int every = 0;
    /** Permanent device failures survivable before giving up. */
    int maxReplans = 2;
    /** Additionally keep one immutable snapshot per save as
     *  "<path>.s<step>". Elastic re-join restores a late joiner from
     *  a survivor's step-tagged snapshot, so both sides must be able
     *  to name the same historical step after further saves have
     *  overwritten <path>. */
    bool keepHistory = false;
};

/** Everything configuring the SPMD runtime (executor + transport +
 *  fault handling + checkpointing), in one place. */
struct RuntimeOptions
{
    /** Device-id bits: 2^n emulated devices. */
    int numBits = 2;
    ExecutionOptions execution;
    /** Transport framing: checksums, retry budget, backoff. */
    TransportOptions transport;
    /** Fault injection (disabled by default). */
    FaultSpec faults;
    /** Numeric-anomaly guard applied at phase boundaries. */
    GuardOptions guard;
    CheckpointOptions checkpoint;
    /** Multi-process runtime (heartbeats, deadlines, reconnects). */
    DistOptions dist;
};

} // namespace primepar

#endif // PRIMEPAR_RUNTIME_OPTIONS_HH
