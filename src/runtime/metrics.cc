#include "metrics.hh"

#include <algorithm>
#include <cmath>

#include "tensor/buffer_pool.hh"

namespace primepar {

namespace {

int
bucketOf(double value)
{
    if (value <= 1.0)
        return 0;
    const int b = static_cast<int>(std::ceil(std::log2(value)));
    return std::clamp(b, 0, 63);
}

} // namespace

void
Histogram::record(double value)
{
    if (!(value >= 0.0)) // negative or NaN: clamp into bucket 0
        value = 0.0;
    ++buckets[bucketOf(value)];
    ++n;
    total += value;
    lo = (n == 1) ? value : std::min(lo, value);
    hi = std::max(hi, value);
}

double
Histogram::percentile(double p) const
{
    if (n == 0)
        return 0.0;
    const double rank =
        std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(n);
    std::int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        const std::int64_t next = seen + buckets[b];
        if (static_cast<double>(next) >= rank) {
            // Interpolate within the bucket's value range.
            const double bucket_lo = b == 0 ? 0.0 : std::exp2(b - 1);
            const double bucket_hi = std::exp2(b);
            const double frac =
                (rank - static_cast<double>(seen)) /
                static_cast<double>(buckets[b]);
            const double v =
                bucket_lo + frac * (bucket_hi - bucket_lo);
            return std::clamp(v, min(), max());
        }
        seen = next;
    }
    return hi;
}

JsonValue
Histogram::toJson() const
{
    JsonValue v = JsonValue::object();
    v.set("count", JsonValue(n));
    v.set("sum", JsonValue(total));
    v.set("min", JsonValue(min()));
    v.set("max", JsonValue(max()));
    v.set("mean", JsonValue(mean()));
    v.set("p50", JsonValue(percentile(50)));
    v.set("p90", JsonValue(percentile(90)));
    v.set("p99", JsonValue(percentile(99)));
    return v;
}

void
MetricsRegistry::add(const std::string &name, std::int64_t delta)
{
    std::lock_guard<std::mutex> lock(mu);
    counterMap[name] += delta;
}

void
MetricsRegistry::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mu);
    histogramMap[name].record(value);
}

std::int64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = counterMap.find(name);
    return it == counterMap.end() ? 0 : it->second;
}

std::map<std::string, std::int64_t>
MetricsRegistry::counters() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counterMap;
}

const Histogram *
MetricsRegistry::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = histogramMap.find(name);
    return it == histogramMap.end() ? nullptr : &it->second;
}

JsonValue
MetricsRegistry::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue("primepar-metrics-v1"));

    JsonValue counters_json = JsonValue::object();
    for (const auto &[name, value] : counterMap)
        counters_json.set(name, JsonValue(value));
    doc.set("counters", std::move(counters_json));

    JsonValue hist_json = JsonValue::object();
    for (const auto &[name, hist] : histogramMap)
        hist_json.set(name, hist.toJson());
    doc.set("histograms", std::move(hist_json));

    const BufferPoolStats ps = BufferPool::global().stats();
    JsonValue pool = JsonValue::object();
    pool.set("acquires", JsonValue(ps.acquires));
    pool.set("pool_hits", JsonValue(ps.poolHits));
    pool.set("fresh_allocs", JsonValue(ps.freshAllocs));
    pool.set("bytes_allocated", JsonValue(ps.bytesAllocated));
    pool.set("bytes_retained", JsonValue(ps.bytesRetained));
    pool.set("hit_rate",
             JsonValue(ps.acquires
                           ? static_cast<double>(ps.poolHits) /
                                 static_cast<double>(ps.acquires)
                           : 0.0));
    doc.set("buffer_pool", std::move(pool));
    return doc;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    counterMap.clear();
    histogramMap.clear();
}

void
MetricsObserver::onStepEnd(std::int64_t step, double wall_us)
{
    (void)step;
    reg->add("steps");
    reg->observe("step.latency_us", wall_us);
}

void
MetricsObserver::onSpan(std::int64_t device, SpanKind kind,
                        const std::string &label, double start_us,
                        double end_us)
{
    (void)device;
    (void)label;
    const std::string k = toString(kind);
    reg->add("spans." + k);
    reg->observe("span_us." + k, end_us - start_us);
}

void
MetricsObserver::onTransfer(const TransferTag &tag, std::int64_t bytes,
                            std::int64_t wire_bytes, int attempts,
                            double wall_us)
{
    (void)attempts;
    reg->add("transport.transfers");
    reg->add("transport.bytes", bytes);
    reg->add("transport.wire_bytes", wire_bytes);
    const std::string channel = tag.channel;
    reg->add("transport.transfers." + channel);
    reg->add("transport.bytes." + channel, bytes);
    reg->add("transport.wire_bytes." + channel, wire_bytes);
    reg->observe("transport.transfer_us." + channel, wall_us);
}

void
MetricsObserver::onFault(const FaultEvent &event)
{
    reg->add("faults.detected");
    reg->add(std::string("faults.") + faultKindName(event.kind));
}

void
MetricsObserver::onRollback(std::int64_t step)
{
    (void)step;
    reg->add("executor.rollbacks");
}

void
MetricsObserver::onTensorProduced(const std::string &name,
                                  std::int64_t step, const Tensor &t)
{
    (void)name;
    (void)step;
    (void)t;
    reg->add("anomalies.scans");
}

void
MetricsObserver::onCheckpoint(bool save, std::int64_t step,
                              double wall_us)
{
    (void)step;
    reg->add(save ? "checkpoint.saves" : "checkpoint.restores");
    reg->observe("checkpoint.wall_us", wall_us);
}

void
MetricsObserver::onWorkerUp(std::int64_t worker,
                            std::uint64_t generation)
{
    (void)worker;
    (void)generation;
    reg->add("dist.workers_up");
}

void
MetricsObserver::onWorkerLost(std::int64_t worker,
                              std::uint64_t generation,
                              const std::string &reason)
{
    (void)worker;
    (void)generation;
    (void)reason;
    reg->add("dist.workers_lost");
}

} // namespace primepar
