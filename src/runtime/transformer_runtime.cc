#include "transformer_runtime.hh"

namespace primepar {

namespace {

/** Slice one third of the fused QKV output and lay it out per head. */
EdgeTransform
qkvSplit(std::int64_t h, std::int64_t heads, std::int64_t embed,
         int third)
{
    EdgeTransform t;
    t.forward = [=](const Tensor &x) {
        const std::int64_t b = x.dim(0), m = x.dim(1);
        return x.narrow(2, third * h, h)
            .reshape({b, m, heads, embed})
            .permute({0, 2, 1, 3});
    };
    t.backward = [=](const Tensor &g) {
        const std::int64_t b = g.dim(0), m = g.dim(2);
        Tensor full(Shape{b, m, 3 * h});
        const Tensor merged =
            g.permute({0, 2, 1, 3}).reshape({b, m, h});
        full.assignSlice({0, 0, third * h}, merged);
        return full;
    };
    return t;
}

/** Merge the per-head attention context back into the hidden dim. */
EdgeTransform
headMerge(std::int64_t h, std::int64_t heads, std::int64_t embed)
{
    EdgeTransform t;
    t.forward = [=](const Tensor &x) {
        const std::int64_t b = x.dim(0), m = x.dim(2);
        return x.permute({0, 2, 1, 3}).reshape({b, m, h});
    };
    t.backward = [=](const Tensor &g) {
        const std::int64_t b = g.dim(0), m = g.dim(1);
        return g.reshape({b, m, heads, embed}).permute({0, 2, 1, 3});
    };
    return t;
}

} // namespace

void
installTransformerBlockTransforms(SpmdGraphExecutor &exec,
                                  const ModelConfig &cfg,
                                  std::int64_t batch)
{
    (void)batch;
    const std::int64_t h = cfg.hiddenSize;
    const std::int64_t heads = cfg.numHeads;
    const std::int64_t e = cfg.headEmbed();
    const TransformerBlockIndex idx;

    exec.setEdgeTransform(idx.qkv, idx.qk, 0, qkvSplit(h, heads, e, 0));
    exec.setEdgeTransform(idx.qkv, idx.qk, 1, qkvSplit(h, heads, e, 1));
    exec.setEdgeTransform(idx.qkv, idx.av, 1, qkvSplit(h, heads, e, 2));
    exec.setEdgeTransform(idx.av, idx.outProj, 0, headMerge(h, heads, e));
}

std::map<std::string, Tensor>
randomBlockParams(const CompGraph &graph, Rng &rng)
{
    std::map<std::string, Tensor> params;
    for (int n = 0; n < graph.numNodes(); ++n) {
        const OpSpec &op = graph.node(n);
        for (std::size_t t = 0; t < op.tensors.size(); ++t) {
            if (!op.tensors[t].isParameter)
                continue;
            Shape shape;
            for (int d : op.tensors[t].dims)
                shape.push_back(op.dims[d].size);
            Tensor w = Tensor::random(shape, rng);
            // Keep activations tame through the deep block.
            w.scale(0.2f);
            params[op.name + "." + op.tensors[t].name] = std::move(w);
        }
    }
    return params;
}

} // namespace primepar
