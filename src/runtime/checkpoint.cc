#include "checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "errors.hh"
#include "fault.hh"

namespace primepar {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'C', 'K', 'P', 'T', '0', '1'};
constexpr std::uint32_t kVersion = 1;

void
appendBytes(std::vector<char> &buf, const void *p, std::size_t n)
{
    const char *c = static_cast<const char *>(p);
    buf.insert(buf.end(), c, c + n);
}

template <typename T>
void
appendScalar(std::vector<char> &buf, T v)
{
    appendBytes(buf, &v, sizeof(T));
}

void
appendTensorMap(std::vector<char> &buf,
                const std::map<std::string, Tensor> &m)
{
    appendScalar<std::uint64_t>(buf, m.size());
    for (const auto &[name, t] : m) {
        appendScalar<std::uint32_t>(
            buf, static_cast<std::uint32_t>(name.size()));
        appendBytes(buf, name.data(), name.size());
        appendScalar<std::uint32_t>(
            buf, static_cast<std::uint32_t>(t.rank()));
        for (std::int64_t d : t.shape())
            appendScalar<std::int64_t>(buf, d);
        appendBytes(buf, t.data(),
                    static_cast<std::size_t>(t.numel()) * sizeof(float));
    }
}

/** Cursor over the loaded payload with bounds-checked reads. */
struct Reader
{
    const char *p;
    std::size_t left;
    const std::string &path;

    void
    read(void *out, std::size_t n)
    {
        if (n > left)
            throw CheckpointError("checkpoint '" + path +
                                  "' is truncated inside the payload");
        std::memcpy(out, p, n);
        p += n;
        left -= n;
    }

    template <typename T>
    T
    scalar()
    {
        T v;
        read(&v, sizeof(T));
        return v;
    }
};

std::map<std::string, Tensor>
readTensorMap(Reader &r)
{
    std::map<std::string, Tensor> m;
    const std::uint64_t count = r.scalar<std::uint64_t>();
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint32_t name_len = r.scalar<std::uint32_t>();
        std::string name(name_len, '\0');
        r.read(name.data(), name_len);
        const std::uint32_t rank = r.scalar<std::uint32_t>();
        Shape shape(rank);
        for (std::uint32_t d = 0; d < rank; ++d)
            shape[d] = r.scalar<std::int64_t>();
        Tensor t = Tensor::uninitialized(shape);
        r.read(t.data(),
               static_cast<std::size_t>(t.numel()) * sizeof(float));
        m.emplace(std::move(name), std::move(t));
    }
    return m;
}

} // namespace

void
saveCheckpoint(const std::string &path, const Checkpoint &ck)
{
    std::vector<char> payload;
    appendScalar<std::uint64_t>(payload, ck.step);
    appendTensorMap(payload, ck.params);
    appendTensorMap(payload, ck.optState);
    const std::uint64_t checksum =
        checksumBytes(payload.data(), payload.size());

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw CheckpointError("cannot open '" + tmp +
                                  "' for writing");
        out.write(kMagic, sizeof(kMagic));
        const std::uint32_t version = kVersion;
        out.write(reinterpret_cast<const char *>(&version),
                  sizeof(version));
        const std::uint64_t size = payload.size();
        out.write(reinterpret_cast<const char *>(&size), sizeof(size));
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        out.write(reinterpret_cast<const char *>(&checksum),
                  sizeof(checksum));
        if (!out)
            throw CheckpointError("write to '" + tmp + "' failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw CheckpointError("cannot move '" + tmp + "' to '" + path +
                              "'");
}

Checkpoint
loadCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CheckpointError("cannot open checkpoint '" + path + "'");
    std::vector<char> file(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    const std::size_t header =
        sizeof(kMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t);
    if (file.size() < header + sizeof(std::uint64_t))
        throw CheckpointError("checkpoint '" + path +
                              "' is truncated (only " +
                              std::to_string(file.size()) + " bytes)");
    if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0)
        throw CheckpointError("'" + path +
                              "' is not a PrimePar checkpoint "
                              "(bad magic)");
    std::uint32_t version;
    std::memcpy(&version, file.data() + sizeof(kMagic), sizeof(version));
    if (version != kVersion)
        throw CheckpointError(
            "checkpoint '" + path + "' has version " +
            std::to_string(version) + "; this build reads version " +
            std::to_string(kVersion));
    std::uint64_t payload_size;
    std::memcpy(&payload_size,
                file.data() + sizeof(kMagic) + sizeof(version),
                sizeof(payload_size));
    if (file.size() != header + payload_size + sizeof(std::uint64_t))
        throw CheckpointError(
            "checkpoint '" + path + "' is truncated: header promises " +
            std::to_string(payload_size) + " payload bytes, file has " +
            std::to_string(file.size() - header -
                           sizeof(std::uint64_t)));

    const char *payload = file.data() + header;
    std::uint64_t stored;
    std::memcpy(&stored, payload + payload_size, sizeof(stored));
    const std::uint64_t computed = checksumBytes(
        payload, static_cast<std::size_t>(payload_size));
    if (stored != computed)
        throw CheckpointError(
            "checkpoint '" + path + "' is corrupted: checksum " +
            "mismatch (stored " + std::to_string(stored) +
            ", computed " + std::to_string(computed) + ")");

    Reader r{payload, static_cast<std::size_t>(payload_size), path};
    Checkpoint ck;
    ck.step = r.scalar<std::uint64_t>();
    ck.params = readTensorMap(r);
    ck.optState = readTensorMap(r);
    if (r.left != 0)
        throw CheckpointError("checkpoint '" + path + "' has " +
                              std::to_string(r.left) +
                              " trailing payload bytes");
    return ck;
}

} // namespace primepar
