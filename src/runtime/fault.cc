#include "fault.hh"

#include <cmath>
#include <cstring>
#include <sstream>

#include "errors.hh"
#include "support/logging.hh"

namespace primepar {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::None:
        return "none";
    case FaultKind::Drop:
        return "drop";
    case FaultKind::Corrupt:
        return "corrupt";
    case FaultKind::Delay:
        return "delay";
    case FaultKind::DeviceFail:
        return "fail";
    case FaultKind::NetDrop:
        return "netdrop";
    case FaultKind::NetDelay:
        return "netdelay";
    case FaultKind::NetTruncate:
        return "nettrunc";
    case FaultKind::WorkerKill:
        return "kill";
    }
    return "?";
}

bool
FaultSpec::enabled() const
{
    return dropProb > 0.0 || corruptProb > 0.0 || delayProb > 0.0 ||
           netDropProb > 0.0 || netDelayProb > 0.0 ||
           netTruncateProb > 0.0 || !schedule.empty();
}

namespace {

FaultKind
faultKindByName(const std::string &name)
{
    if (name == "drop")
        return FaultKind::Drop;
    if (name == "corrupt")
        return FaultKind::Corrupt;
    if (name == "delay")
        return FaultKind::Delay;
    if (name == "fail")
        return FaultKind::DeviceFail;
    if (name == "netdrop")
        return FaultKind::NetDrop;
    if (name == "netdelay")
        return FaultKind::NetDelay;
    if (name == "nettrunc")
        return FaultKind::NetTruncate;
    if (name == "kill")
        return FaultKind::WorkerKill;
    throw InputError(
        "fault-spec: unknown fault kind '" + name +
        "' (expected drop|corrupt|delay|fail|netdrop|netdelay|"
        "nettrunc|kill)");
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    std::istringstream is(text);
    while (std::getline(is, cur, sep)) {
        if (!cur.empty())
            out.push_back(cur);
    }
    return out;
}

double
parseProb(const std::string &token, const std::string &value)
{
    char *end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0)
        throw InputError("fault-spec: '" + token +
                         "' needs a probability in [0, 1]");
    return p;
}

std::int64_t
parseInt(const std::string &token, const std::string &value)
{
    char *end = nullptr;
    const long long v = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        throw InputError("fault-spec: '" + token +
                         "' needs an integer value");
    return v;
}

/** splitmix64 finalizer — the injector's hash mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

FaultSpec
FaultSpec::parse(const std::string &text)
{
    FaultSpec spec;
    for (const std::string &token : splitOn(text, ',')) {
        const std::size_t at = token.find('@');
        if (at != std::string::npos) {
            // Scheduled fault: kind@key=value:key=value...
            ScheduledFault sf;
            sf.kind = faultKindByName(token.substr(0, at));
            for (const std::string &kv :
                 splitOn(token.substr(at + 1), ':')) {
                const std::size_t eq = kv.find('=');
                if (eq == std::string::npos)
                    throw InputError("fault-spec: malformed '" +
                                     token + "' (expected key=value)");
                const std::string key = kv.substr(0, eq);
                const std::string value = kv.substr(eq + 1);
                if (key == "step") {
                    sf.step = parseInt(token, value);
                } else if (key == "dev") {
                    sf.device = parseInt(token, value);
                } else if (key == "fires") {
                    sf.fires = static_cast<int>(parseInt(token, value));
                } else {
                    throw InputError("fault-spec: unknown key '" +
                                     key + "' in '" + token + "'");
                }
            }
            spec.schedule.push_back(sf);
            continue;
        }
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos)
            throw InputError("fault-spec: malformed token '" + token +
                             "'");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "drop") {
            spec.dropProb = parseProb(token, value);
        } else if (key == "corrupt") {
            spec.corruptProb = parseProb(token, value);
        } else if (key == "delay") {
            spec.delayProb = parseProb(token, value);
        } else if (key == "netdrop") {
            spec.netDropProb = parseProb(token, value);
        } else if (key == "netdelay") {
            spec.netDelayProb = parseProb(token, value);
        } else if (key == "nettrunc") {
            spec.netTruncateProb = parseProb(token, value);
        } else if (key == "seed") {
            spec.seed = static_cast<std::uint64_t>(
                parseInt(token, value));
        } else {
            throw InputError("fault-spec: unknown key '" + key + "'");
        }
    }
    return spec;
}

std::string
FaultSpec::toString() const
{
    std::ostringstream os;
    os << "drop=" << dropProb << ",corrupt=" << corruptProb
       << ",delay=" << delayProb;
    if (netDropProb > 0.0)
        os << ",netdrop=" << netDropProb;
    if (netDelayProb > 0.0)
        os << ",netdelay=" << netDelayProb;
    if (netTruncateProb > 0.0)
        os << ",nettrunc=" << netTruncateProb;
    os << ",seed=" << seed;
    for (const ScheduledFault &sf : schedule) {
        os << "," << faultKindName(sf.kind) << "@step=" << sf.step
           << ":dev=" << sf.device << ":fires=" << sf.fires;
    }
    return os.str();
}

namespace {

bool
isNetKind(FaultKind kind)
{
    return kind == FaultKind::NetDrop || kind == FaultKind::NetDelay ||
           kind == FaultKind::NetTruncate;
}

/** Deterministic uniform in [0, 1) from the transfer identity. */
double
transferUniform(const FaultSpec &spec, const TransferTag &tag,
                int attempt, std::uint64_t salt)
{
    std::uint64_t h = spec.seed ^ salt;
    h = mix64(h ^ static_cast<std::uint64_t>(tag.trainStep));
    h = mix64(h ^ static_cast<std::uint64_t>(
                      static_cast<int>(tag.phase) * 131 +
                      tag.temporalStep));
    h = mix64(h ^ (static_cast<std::uint64_t>(tag.sender) << 32 |
                   static_cast<std::uint64_t>(tag.receiver)));
    h = mix64(h ^ checksumBytes(tag.tensor.data(), tag.tensor.size()));
    h = mix64(h ^ checksumBytes(tag.channel, std::strlen(tag.channel)));
    h = mix64(h ^ static_cast<std::uint64_t>(attempt));
    return static_cast<double>(h >> 11) / 9007199254740992.0;
}

} // namespace

FaultKind
FaultInjector::decide(const TransferTag &tag, int attempt)
{
    // Scheduled faults first: they model targeted incidents and
    // consume their budget in deterministic transfer order. Net-level
    // kinds and worker kills live on other paths (decideNet /
    // consumeWorkerKill) so their budgets are consumed exactly once,
    // by the one process that enacts them.
    for (ScheduledFault &sf : spec_.schedule) {
        if (sf.fires <= 0 || isNetKind(sf.kind) ||
            sf.kind == FaultKind::WorkerKill)
            continue;
        if (sf.step >= 0 && sf.step != tag.trainStep)
            continue;
        if (sf.device >= 0 && sf.device != tag.sender &&
            sf.device != tag.receiver)
            continue;
        --sf.fires;
        return sf.kind;
    }

    const double total =
        spec_.dropProb + spec_.corruptProb + spec_.delayProb;
    if (total <= 0.0)
        return FaultKind::None;

    // Pure hash of the transfer identity: identical at any thread
    // count, and the `attempt` term lets retries succeed.
    const double u = transferUniform(spec_, tag, attempt, 0);
    if (u < spec_.dropProb)
        return FaultKind::Drop;
    if (u < spec_.dropProb + spec_.corruptProb)
        return FaultKind::Corrupt;
    if (u < total)
        return FaultKind::Delay;
    return FaultKind::None;
}

FaultKind
FaultInjector::decideNet(const TransferTag &tag, int attempt)
{
    for (ScheduledFault &sf : spec_.schedule) {
        if (sf.fires <= 0 || !isNetKind(sf.kind))
            continue;
        if (sf.step >= 0 && sf.step != tag.trainStep)
            continue;
        if (sf.device >= 0 && sf.device != tag.sender &&
            sf.device != tag.receiver)
            continue;
        --sf.fires;
        return sf.kind;
    }

    const double total = spec_.netDropProb + spec_.netDelayProb +
                         spec_.netTruncateProb;
    if (total <= 0.0)
        return FaultKind::None;

    // Different salt than decide(): a transfer can independently draw
    // an in-process fault and a socket fault.
    const double u =
        transferUniform(spec_, tag, attempt, 0x6e657466ull);
    if (u < spec_.netDropProb)
        return FaultKind::NetDrop;
    if (u < spec_.netDropProb + spec_.netDelayProb)
        return FaultKind::NetDelay;
    if (u < total)
        return FaultKind::NetTruncate;
    return FaultKind::None;
}

bool
FaultInjector::consumeWorkerKill(std::int64_t step, std::int64_t worker)
{
    for (ScheduledFault &sf : spec_.schedule) {
        if (sf.fires <= 0 || sf.kind != FaultKind::WorkerKill)
            continue;
        if (sf.step >= 0 && sf.step != step)
            continue;
        if (sf.device >= 0 && sf.device != worker)
            continue;
        --sf.fires;
        return true;
    }
    return false;
}

void
RuntimeHealth::recordEvent(FaultEvent event)
{
    log.push_back(std::move(event));
    while (log.size() > maxEvents)
        log.pop_front();
}

bool
RuntimeHealth::allClear() const
{
    return dropsDetected == 0 && corruptionsDetected == 0 &&
           headerMismatches == 0 && stragglers == 0 &&
           reconnects == 0 && fencedFrames == 0 &&
           stepRollbacks == 0 && deviceFailures == 0 &&
           workersLost == 0 && anomalies.total() == 0;
}

std::string
RuntimeHealth::report() const
{
    std::ostringstream os;
    os << "RuntimeHealth:\n"
       << "  transfers          " << transfers << " (" << bytesMoved
       << " bytes, " << bytesOnWire << " on wire)\n"
       << "  drops detected     " << dropsDetected << "\n"
       << "  corrupt payloads   " << corruptionsDetected << "\n"
       << "  header mismatches  " << headerMismatches << "\n"
       << "  stragglers         " << stragglers << " ("
       << simulatedDelayUs << " us simulated delay)\n"
       << "  retries            " << retries << "\n"
       << "  reconnects         " << reconnects << "\n"
       << "  fenced frames      " << fencedFrames << "\n"
       << "  step rollbacks     " << stepRollbacks << "\n"
       << "  device failures    " << deviceFailures << "\n"
       << "  workers lost       " << workersLost << "\n"
       << "  replans            " << replans << "\n"
       << "  ckpt restores      " << checkpointRestores << "\n"
       << "  anomalies          nan=" << anomalies.nan
       << " inf=" << anomalies.inf
       << " explosion=" << anomalies.explosion << "\n";
    if (!log.empty()) {
        os << "  last events (" << log.size() << "):\n";
        for (const FaultEvent &e : log) {
            os << "    step " << e.step << " "
               << faultKindName(e.kind) << " " << e.tensor;
            if (e.sender >= 0)
                os << " " << e.sender << "->" << e.receiver;
            os << " attempt " << e.attempt << ": " << e.detail << "\n";
        }
    }
    return os.str();
}

bool
guardTensor(RuntimeHealth &health, const GuardOptions &opts,
            const std::string &name, std::int64_t step, const Tensor &t)
{
    if (!opts.enabled)
        return true;
    std::int64_t nan = 0, inf = 0, explosion = 0;
    const float *p = t.data();
    const std::int64_t n = t.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        const float v = p[i];
        if (std::isnan(v)) {
            ++nan;
        } else if (std::isinf(v)) {
            ++inf;
        } else if (std::fabs(v) > opts.explosionThreshold) {
            ++explosion;
        }
    }
    if (nan == 0 && inf == 0 && explosion == 0)
        return true;
    health.anomalies.nan += nan;
    health.anomalies.inf += inf;
    health.anomalies.explosion += explosion;
    std::ostringstream detail;
    detail << "numeric anomaly in " << name << ": " << nan << " NaN, "
           << inf << " Inf, " << explosion << " >|"
           << opts.explosionThreshold << "| of " << n << " elements";
    health.recordEvent(
        {FaultKind::None, detail.str(), name, step, -1, -1, 0});
    return false;
}

namespace {

inline std::uint64_t
rotl64(std::uint64_t v, int s)
{
    return (v << s) | (v >> (64 - s));
}

/**
 * Eight independent 64-bit additive lanes, mixed through an FNV chain
 * and avalanche at the end.
 *
 * Additive lanes are deliberate: they keep the hot loop at one add per
 * word, which the compiler turns into near-memcpy-throughput vector
 * code, whereas a single FNV chain is latency-bound on its dependent
 * multiply (~5 cycles per 8 bytes) and would make checksumming — not
 * copying — the dominant cost of the fault-free transport path. Like
 * the TCP checksum this is order-insensitive within a lane; transfer
 * *ordering* is protected separately by the message header's seq /
 * step / phase tags. A corrupted word always changes its lane sum by a
 * non-zero amount, and the final per-lane mix is bijective, so any
 * single-word corruption is detected deterministically.
 *
 * When @p Copy is set the pass also stores every word to @p dst, so
 * the transport's send path reads the payload from memory only once.
 */
template <bool Copy>
std::uint64_t
checksumPass(void *dst, const void *src, std::size_t bytes)
{
    constexpr std::uint64_t prime = 1099511628211ull; // FNV-64 prime
    const unsigned char *p = static_cast<const unsigned char *>(src);
    unsigned char *q = static_cast<unsigned char *>(dst);
    std::uint64_t h0 = 0, h1 = 0, h2 = 0, h3 = 0;
    std::uint64_t h4 = 0, h5 = 0, h6 = 0, h7 = 0;
    while (bytes >= 64) {
        std::uint64_t w0, w1, w2, w3, w4, w5, w6, w7;
        std::memcpy(&w0, p, 8);
        std::memcpy(&w1, p + 8, 8);
        std::memcpy(&w2, p + 16, 8);
        std::memcpy(&w3, p + 24, 8);
        std::memcpy(&w4, p + 32, 8);
        std::memcpy(&w5, p + 40, 8);
        std::memcpy(&w6, p + 48, 8);
        std::memcpy(&w7, p + 56, 8);
        if (Copy) {
            std::memcpy(q, &w0, 8);
            std::memcpy(q + 8, &w1, 8);
            std::memcpy(q + 16, &w2, 8);
            std::memcpy(q + 24, &w3, 8);
            std::memcpy(q + 32, &w4, 8);
            std::memcpy(q + 40, &w5, 8);
            std::memcpy(q + 48, &w6, 8);
            std::memcpy(q + 56, &w7, 8);
            q += 64;
        }
        h0 += w0;
        h1 += w1;
        h2 += w2;
        h3 += w3;
        h4 += w4;
        h5 += w5;
        h6 += w6;
        h7 += w7;
        p += 64;
        bytes -= 64;
    }
    while (bytes >= 8) {
        std::uint64_t w;
        std::memcpy(&w, p, 8);
        if (Copy) {
            std::memcpy(q, &w, 8);
            q += 8;
        }
        h0 = rotl64(h0, 9) + w;
        p += 8;
        bytes -= 8;
    }
    if (bytes > 0) {
        std::uint64_t tail = 0;
        std::memcpy(&tail, p, bytes);
        if (Copy)
            std::memcpy(q, p, bytes);
        h0 = rotl64(h0, 9) + tail;
    }
    // Mix the lanes (bijective in each h_i, so a changed lane always
    // changes the result) and avalanche so single-bit payload
    // differences flip high and low result bits alike.
    std::uint64_t h = 0x243f6a8885a308d3ull;
    h = (h ^ h0) * prime;
    h = (h ^ rotl64(h1, 7)) * prime;
    h = (h ^ rotl64(h2, 14)) * prime;
    h = (h ^ rotl64(h3, 21)) * prime;
    h = (h ^ rotl64(h4, 28)) * prime;
    h = (h ^ rotl64(h5, 35)) * prime;
    h = (h ^ rotl64(h6, 42)) * prime;
    h = (h ^ rotl64(h7, 49)) * prime;
    h ^= h >> 29;
    h *= prime;
    h ^= h >> 32;
    return h;
}

} // namespace

std::uint64_t
checksumBytes(const void *data, std::size_t bytes)
{
    return checksumPass<false>(nullptr, data, bytes);
}

std::uint64_t
checksumCopyBytes(void *dst, const void *src, std::size_t bytes)
{
    return checksumPass<true>(dst, src, bytes);
}

} // namespace primepar
