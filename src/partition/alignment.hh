/**
 * @file
 * Verification of the design features of partition primitives.
 *
 * Sec. 3.3 of the paper claims three features for P_{2^k x 2^k}:
 *  1. collective-communication free,
 *  2. memory efficient (no tensor replication),
 *  3. training-compatible (phase-to-phase tensor distribution
 *     alignment without extra redistribution).
 *
 * This module checks those properties — plus the more fundamental
 * *contraction coverage* (every output block receives every contracted
 * slice exactly once, i.e. the partitioned computation is the original
 * computation) — for arbitrary sequences, from the DSI table alone.
 */

#ifndef PRIMEPAR_PARTITION_ALIGNMENT_HH
#define PRIMEPAR_PARTITION_ALIGNMENT_HH

#include <string>

#include "comm_pattern.hh"
#include "dsi.hh"
#include "op_spec.hh"
#include "partition_step.hh"

namespace primepar {

/** Result of verifying one property. */
struct VerifyResult
{
    bool ok = true;
    std::string message; ///< diagnostic when !ok

    explicit operator bool() const { return ok; }
};

/** Feature 1: no pass of the operator requires an all-reduce. */
VerifyResult verifyCollectiveFree(const OpSpec &op, const PartitionSeq &seq,
                                  const DsiTable &dsi);

/** Feature 2: no tensor is replicated in any phase at any step. */
VerifyResult verifyNoReplication(const OpSpec &op, const DsiTable &dsi);

/**
 * Feature 3: for every tensor used in multiple passes, its
 * distribution at the end of an earlier pass matches its distribution
 * at the start of the next pass using it; parameter gradients end
 * aligned with the parameter's Forward-start distribution so weight
 * updates are local. (The Backward-end -> Forward-start realignment of
 * W is performed by the in-band transition shift and is therefore
 * exempted here, as in the paper.)
 */
VerifyResult verifyPhaseAlignment(const OpSpec &op, const DsiTable &dsi);

/**
 * Semantic correctness: for every pass and every output block, the
 * (device, step) pairs accumulating into that block cover the cross
 * product of contracted-dimension slices exactly once.
 */
VerifyResult verifyContractionCoverage(const OpSpec &op,
                                       const DsiTable &dsi);

/** Run all four checks; first failure wins. */
VerifyResult verifyAll(const OpSpec &op, const PartitionSeq &seq,
                       const DsiTable &dsi);

} // namespace primepar

#endif // PRIMEPAR_PARTITION_ALIGNMENT_HH
