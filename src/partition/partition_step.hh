/**
 * @file
 * Partition primitives and partition sequences (paper Sec. 3).
 *
 * A partition strategy for an operator over 2^n devices is a *sequence*
 * of basic partitions that together consume the n device-id bits:
 *  - ByDim(X): conventional partition-by-dimension, halving dimension X
 *    across one device-id bit (Sec. 3.2, Eqs. 2-3);
 *  - PSquare(k): the novel spatial-temporal primitive P_{2^k x 2^k},
 *    consuming 2k consecutive bits and introducing 2^k temporal steps
 *    (Sec. 3.3, Eqs. 4-6).
 */

#ifndef PRIMEPAR_PARTITION_PARTITION_STEP_HH
#define PRIMEPAR_PARTITION_PARTITION_STEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "op_spec.hh"

namespace primepar {

/** One basic partition in a sequence. */
struct PartitionStep
{
    enum class Kind { ByDim, PSquare };

    Kind kind = Kind::ByDim;
    int dim = -1; ///< ByDim: dimension index partitioned
    int k = 0;    ///< PSquare: the k of P_{2^k x 2^k}

    /** Number of device-id bits this step consumes. */
    int bits() const { return kind == Kind::ByDim ? 1 : 2 * k; }

    static PartitionStep
    byDim(int dim)
    {
        PartitionStep s;
        s.kind = Kind::ByDim;
        s.dim = dim;
        return s;
    }

    static PartitionStep
    pSquare(int k)
    {
        PartitionStep s;
        s.kind = Kind::PSquare;
        s.k = k;
        return s;
    }

    auto operator<=>(const PartitionStep &) const = default;
};

/**
 * Parse the paper's sequence notation, e.g. "B,N,P2x2" (dimension
 * names of @p op, and PSxS for the spatial-temporal primitive).
 * Fatal on unknown tokens; the result is validated against @p op.
 */
class PartitionSeq;
PartitionSeq parseSequence(const OpSpec &op, const std::string &text);

/** A full partition sequence for one operator. */
class PartitionSeq
{
  public:
    PartitionSeq() = default;
    explicit PartitionSeq(std::vector<PartitionStep> steps)
        : stepsVec(std::move(steps))
    {}

    const std::vector<PartitionStep> &steps() const { return stepsVec; }

    /** Append a step. */
    void push(PartitionStep step) { stepsVec.push_back(step); }

    /** Total device-id bits consumed: must equal n for 2^n devices. */
    int numBits() const;

    /** Temporal steps 2^k of the contained PSquare, or 1 if none. */
    int temporalSteps() const;

    /** True iff the sequence contains a PSquare primitive. */
    bool hasPSquare() const;

    /** Index of the PSquare step or -1. */
    int pSquareIndex() const;

    /** Number of slices each dim is cut into under this sequence. */
    std::vector<std::int64_t> sliceCounts(const OpSpec &op) const;

    /**
     * Validate against an operator: partitioned dims must be
     * partitionable and divisible into the required slice counts, at
     * most one PSquare may appear and only on PSquare-capable ops.
     * @return empty string if valid, else a diagnostic.
     */
    std::string validate(const OpSpec &op) const;

    /** e.g. "M,P2x2,N" (paper Fig. 9 notation). */
    std::string toString(const OpSpec &op) const;

    bool operator==(const PartitionSeq &o) const = default;

  private:
    std::vector<PartitionStep> stepsVec;
};

} // namespace primepar

#endif // PRIMEPAR_PARTITION_PARTITION_STEP_HH
