#include "space.hh"

#include <algorithm>
#include <queue>

#include "support/logging.hh"

namespace primepar {

namespace {

/**
 * Structural cost proxy of one fully-assigned sequence, in "traffic
 * elements". Only used to *rank* candidates when a candidateBudget is
 * set — the survivors are re-evaluated under the real cost model — so
 * it deliberately trades fidelity for O(dims x tensors) evaluation:
 *   - reduction traffic: per pass, the per-device output slice times
 *     (1 - 1/group) over the partial-sum group implied by contracted
 *     dim splits;
 *   - temporal ring traffic: (steps - 1) re-shifts of the per-device
 *     operand slices;
 *   - a small weight on per-device resident memory, favoring balanced
 *     cuts among otherwise communication-free candidates.
 */
double
structuralScore(const OpSpec &op, const std::vector<std::int64_t> &slices,
                int psquare_k)
{
    const auto slice_numel = [&](int tensor) {
        double numel = 1.0;
        for (int d : op.tensors[tensor].dims) {
            numel *= static_cast<double>(op.dims[d].size) /
                     static_cast<double>(slices[d]);
        }
        return numel;
    };

    double comm = 0.0;
    double operand_elems = 0.0;
    for (const PassSpec &pass : op.passes) {
        double group = 1.0;
        for (int d : pass.contracted)
            group *= static_cast<double>(slices[d]);
        if (group > 1.0)
            comm += slice_numel(pass.output.tensor) * (1.0 - 1.0 / group);
        for (const TensorRef &ref : pass.operands)
            operand_elems += slice_numel(ref.tensor);
    }
    if (psquare_k > 0) {
        const double steps =
            static_cast<double>(std::int64_t{1} << psquare_k);
        comm += (steps - 1.0) * operand_elems / steps;
    }

    double mem = 0.0;
    for (std::size_t t = 0; t < op.tensors.size(); ++t)
        mem += slice_numel(static_cast<int>(t));
    return comm + 0.02 * mem;
}

struct Enumerator
{
    const OpSpec &op;
    const SpaceOptions &opts;
    std::vector<PartitionSeq> out;
    std::vector<PartitionStep> current;
    std::vector<std::int64_t> slices; // running slice counts per dim

    std::size_t totalLeaves = 0;
    int psquareK = 0; // k of the PSquare step on the current path

    /** Budget mode: (score, DFS leaf index, steps) max-heap holding
     *  the current best candidateBudget leaves. Later DFS index loses
     *  ties, so the kept set is the one a full sort would keep. */
    struct Held
    {
        double score;
        std::size_t leaf;
        std::vector<PartitionStep> steps;

        bool
        operator<(const Held &other) const
        {
            return score < other.score ||
                   (score == other.score && leaf < other.leaf);
        }
    };
    std::priority_queue<Held> heap;

    Enumerator(const OpSpec &op, const SpaceOptions &opts)
        : op(op), opts(opts), slices(op.dims.size(), 1)
    {}

    void
    emitLeaf()
    {
        const std::size_t leaf = totalLeaves++;
        if (opts.candidateBudget <= 0) {
            out.emplace_back(current);
            return;
        }
        const double score = structuralScore(op, slices, psquareK);
        const std::size_t budget =
            static_cast<std::size_t>(opts.candidateBudget);
        if (heap.size() == budget) {
            const Held &worst = heap.top();
            if (worst.score < score ||
                (worst.score == score && worst.leaf < leaf))
                return;
            heap.pop();
        }
        heap.push(Held{score, leaf, current});
    }

    bool
    dimAllowed(int d) const
    {
        if (!op.dims[d].partitionable)
            return false;
        return std::find(opts.excludedDims.begin(),
                         opts.excludedDims.end(),
                         d) == opts.excludedDims.end();
    }

    /** Can dimension @p d be cut into @p factor more slices? */
    bool
    canSplit(int d, std::int64_t factor) const
    {
        const std::int64_t target = slices[d] * factor;
        return op.dims[d].size % target == 0;
    }

    void
    recurse(int bits_left, bool used_psquare)
    {
        if (bits_left == 0) {
            emitLeaf();
            return;
        }

        for (std::size_t d = 0; d < op.dims.size(); ++d) {
            if (!dimAllowed(static_cast<int>(d)) ||
                !canSplit(static_cast<int>(d), 2))
                continue;
            current.push_back(PartitionStep::byDim(static_cast<int>(d)));
            slices[d] *= 2;
            recurse(bits_left - 1, used_psquare);
            slices[d] /= 2;
            current.pop_back();
        }

        if (opts.allowPSquare && !used_psquare && op.psquare.has_value()) {
            for (int k = 1; 2 * k <= bits_left; ++k) {
                const std::int64_t f = std::int64_t{1} << k;
                if (opts.maxTemporalSteps > 0 &&
                    f > opts.maxTemporalSteps)
                    break;
                const PSquareDims &psq = *op.psquare;
                if (!dimAllowed(psq.m) || !dimAllowed(psq.n) ||
                    !dimAllowed(psq.k))
                    break;
                if (!canSplit(psq.m, f) || !canSplit(psq.n, f) ||
                    !canSplit(psq.k, f))
                    continue;
                current.push_back(PartitionStep::pSquare(k));
                slices[psq.m] *= f;
                slices[psq.n] *= f;
                slices[psq.k] *= f;
                psquareK = k;
                recurse(bits_left - 2 * k, true);
                psquareK = 0;
                slices[psq.m] /= f;
                slices[psq.n] /= f;
                slices[psq.k] /= f;
                current.pop_back();
            }
        }
    }
};

} // namespace

std::vector<PartitionSeq>
enumerateSequences(const OpSpec &op, int num_bits, const SpaceOptions &opts,
                   EnumerationInfo *info)
{
    PRIMEPAR_ASSERT(num_bits >= 0, "negative bit count");
    Enumerator e(op, opts);
    e.recurse(num_bits, false);
    if (opts.candidateBudget > 0) {
        // Drain the heap, then restore DFS order by leaf index.
        struct Kept
        {
            std::size_t leaf;
            std::vector<PartitionStep> steps;
        };
        std::vector<Kept> kept;
        kept.reserve(e.heap.size());
        while (!e.heap.empty()) {
            kept.push_back(Kept{e.heap.top().leaf,
                                std::move(const_cast<Enumerator::Held &>(
                                              e.heap.top())
                                              .steps)});
            e.heap.pop();
        }
        std::sort(kept.begin(), kept.end(),
                  [](const Kept &a, const Kept &b) {
                      return a.leaf < b.leaf;
                  });
        e.out.reserve(kept.size());
        for (Kept &k : kept)
            e.out.emplace_back(std::move(k.steps));
    }
    if (info) {
        info->totalSequences = e.totalLeaves;
        info->truncated = e.out.size() < e.totalLeaves;
    }
    PRIMEPAR_ASSERT(!e.out.empty() || num_bits > 0,
                    "empty partition space for ", op.name);
    if (e.out.empty()) {
        PRIMEPAR_FATAL("operator ", op.name,
                       " cannot be partitioned over 2^", num_bits,
                       " devices: no dimension has enough extent");
    }
    return e.out;
}

} // namespace primepar
