#include "space.hh"

#include <algorithm>

#include "support/logging.hh"

namespace primepar {

namespace {

struct Enumerator
{
    const OpSpec &op;
    const SpaceOptions &opts;
    std::vector<PartitionSeq> out;
    std::vector<PartitionStep> current;
    std::vector<std::int64_t> slices; // running slice counts per dim

    Enumerator(const OpSpec &op, const SpaceOptions &opts)
        : op(op), opts(opts), slices(op.dims.size(), 1)
    {}

    bool
    dimAllowed(int d) const
    {
        if (!op.dims[d].partitionable)
            return false;
        return std::find(opts.excludedDims.begin(),
                         opts.excludedDims.end(),
                         d) == opts.excludedDims.end();
    }

    /** Can dimension @p d be cut into @p factor more slices? */
    bool
    canSplit(int d, std::int64_t factor) const
    {
        const std::int64_t target = slices[d] * factor;
        return op.dims[d].size % target == 0;
    }

    void
    recurse(int bits_left, bool used_psquare)
    {
        if (bits_left == 0) {
            out.emplace_back(current);
            return;
        }

        for (std::size_t d = 0; d < op.dims.size(); ++d) {
            if (!dimAllowed(static_cast<int>(d)) ||
                !canSplit(static_cast<int>(d), 2))
                continue;
            current.push_back(PartitionStep::byDim(static_cast<int>(d)));
            slices[d] *= 2;
            recurse(bits_left - 1, used_psquare);
            slices[d] /= 2;
            current.pop_back();
        }

        if (opts.allowPSquare && !used_psquare && op.psquare.has_value()) {
            for (int k = 1; 2 * k <= bits_left; ++k) {
                const std::int64_t f = std::int64_t{1} << k;
                if (opts.maxTemporalSteps > 0 &&
                    f > opts.maxTemporalSteps)
                    break;
                const PSquareDims &psq = *op.psquare;
                if (!dimAllowed(psq.m) || !dimAllowed(psq.n) ||
                    !dimAllowed(psq.k))
                    break;
                if (!canSplit(psq.m, f) || !canSplit(psq.n, f) ||
                    !canSplit(psq.k, f))
                    continue;
                current.push_back(PartitionStep::pSquare(k));
                slices[psq.m] *= f;
                slices[psq.n] *= f;
                slices[psq.k] *= f;
                recurse(bits_left - 2 * k, true);
                slices[psq.m] /= f;
                slices[psq.n] /= f;
                slices[psq.k] /= f;
                current.pop_back();
            }
        }
    }
};

} // namespace

std::vector<PartitionSeq>
enumerateSequences(const OpSpec &op, int num_bits, const SpaceOptions &opts)
{
    PRIMEPAR_ASSERT(num_bits >= 0, "negative bit count");
    Enumerator e(op, opts);
    e.recurse(num_bits, false);
    PRIMEPAR_ASSERT(!e.out.empty() || num_bits > 0,
                    "empty partition space for ", op.name);
    if (e.out.empty()) {
        PRIMEPAR_FATAL("operator ", op.name,
                       " cannot be partitioned over 2^", num_bits,
                       " devices: no dimension has enough extent");
    }
    return e.out;
}

} // namespace primepar
