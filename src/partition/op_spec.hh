/**
 * @file
 * Operator specifications for tensor partitioning.
 *
 * PrimePar reasons about operators abstractly: an operator has named
 * dimensions, tensors spanning subsets of those dimensions, and a set
 * of computation *passes* (forward, backward, gradient — paper Sec. 3.1)
 * each of which contracts some dimensions. All partitioning machinery
 * (DSI evaluation, communication derivation, cost modelling, functional
 * execution) is generic over this description.
 *
 * The canonical example is the linear operator of Eq. 1 with dimensions
 * B (batch), M (sequence), N (input hidden) and K (output hidden):
 *   Forward   O[B,M,K]  = I[B,M,N] x W[N,K]      (contracts N)
 *   Backward  dI[B,M,N] = dO[B,M,K] x W^T        (contracts K)
 *   Gradient  dW[N,K]   = I^T x dO               (contracts B, M)
 */

#ifndef PRIMEPAR_PARTITION_OP_SPEC_HH
#define PRIMEPAR_PARTITION_OP_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace primepar {

/** The three training phases of an operator (paper Sec. 3.1). */
enum class Phase { Forward, Backward, Gradient };

/** Printable phase name. */
const char *phaseName(Phase phase);

/** One named dimension of an operator. */
struct DimSpec
{
    std::string name;
    std::int64_t size = 1;
    /** Whether PrimePar may partition this dimension (e.g. the head
     *  embedding and softmax dimensions are excluded, Sec. 3.2). */
    bool partitionable = true;
};

/** One tensor of an operator, defined by the dimensions it spans. */
struct TensorSpec
{
    std::string name;
    std::vector<int> dims; ///< indices into OpSpec::dims
    bool isParameter = false;
};

/** Reference to a tensor or to the gradient of a tensor. */
struct TensorRef
{
    int tensor = -1;
    bool grad = false;

    auto operator<=>(const TensorRef &) const = default;
};

/**
 * One computation pass: output += f(operands), summing over the
 * contracted dimensions. Multiple passes may share a Phase tag (a
 * two-input matmul has two Backward passes, one per input gradient).
 */
struct PassSpec
{
    Phase phase = Phase::Forward;
    std::vector<TensorRef> operands;
    TensorRef output;
    std::vector<int> contracted; ///< dim indices summed over
    /** flops = flopFactor * prod(sizes of output dims and contracted
     *  dims). 2.0 for a multiply-accumulate contraction. */
    double flopFactor = 2.0;
};

/** Mapping of the P_{2^k x 2^k} roles onto operator dimensions. */
struct PSquareDims
{
    int m = -1; ///< dim playing role M (rows of I and O)
    int n = -1; ///< dim playing role N (contracted in forward)
    int k = -1; ///< dim playing role K (columns of W and O)
};

/** Full description of one operator. */
struct OpSpec
{
    std::string name;
    std::string kind; ///< "linear", "matmul", "softmax", ...

    std::vector<DimSpec> dims;
    std::vector<TensorSpec> tensors;
    std::vector<PassSpec> passes;

    /** Present iff the spatial-temporal primitive applies (linear-like
     *  operators with an (M, N, K) structure). */
    std::optional<PSquareDims> psquare;

    /** Primary data input / output tensor indices (graph edges attach
     *  to these). */
    int inputTensor = -1;
    int outputTensor = -1;

    /** Tensors stashed in device memory between phases (activations
     *  kept from Forward for Backward/Gradient; parameters are always
     *  resident and need not be listed). */
    std::vector<TensorRef> stashed;

    /** If >= 0: dimension normalized over (layernorm); partitioning it
     *  spatially induces an all-reduce of per-row expectations. */
    int normalizedDim = -1;

    /** Storage size of one element in bytes (fp16 by default). */
    double bytesPerElement = 2.0;

    /** Look up a dimension index by name; panics if absent. */
    int dimIndex(const std::string &dim_name) const;

    /** Total element count of tensor @p t (unpartitioned). */
    std::int64_t tensorNumel(int t) const;

    /** Total size in bytes of tensor @p t (unpartitioned). */
    double tensorBytes(int t) const;

    /** Sum over dim sizes of output+contracted dims of a pass. */
    double passFlops(const PassSpec &pass) const;

    /** Human-readable tensor name for a TensorRef, e.g. "dW". */
    std::string refName(const TensorRef &ref) const;

    /** Sum of parameter tensor bytes. */
    double parameterBytes() const;
};

/**
 * Factory: linear operator of Eq. 1.
 *
 * @param name operator name
 * @param b,m,n,k dimension sizes (batch, rows, contracted, columns)
 */
OpSpec makeLinearOp(const std::string &name, std::int64_t b, std::int64_t m,
                    std::int64_t n, std::int64_t k);

/**
 * Factory: batched activation-activation matmul (attention score or
 * context product). Dimension layout: batch dims, then (m, contracted,
 * k). Each batch dim partitions freely; dimension @p unpartitionable_dim
 * (if non-negative, an index) is excluded from partitioning (the head
 * embedding, Sec. 3.2).
 */
OpSpec makeBatchedMatmulOp(const std::string &name,
                           const std::vector<std::string> &dim_names,
                           const std::vector<std::int64_t> &dim_sizes,
                           const std::vector<int> &a_dims,
                           const std::vector<int> &b_dims,
                           const std::vector<int> &out_dims,
                           int unpartitionable_dim = -1);

/** Factory: softmax over the last of the given dims (that dim is not
 *  partitionable, Sec. 3.2). */
OpSpec makeSoftmaxOp(const std::string &name,
                     const std::vector<std::string> &dim_names,
                     const std::vector<std::int64_t> &dim_sizes);

/** Factory: layer normalization over the last dim with affine params. */
OpSpec makeLayerNormOp(const std::string &name, std::int64_t b,
                       std::int64_t m, std::int64_t h);

/** Factory: elementwise unary op (activation) over the given dims. */
OpSpec makeElementwiseOp(const std::string &name,
                         const std::vector<std::string> &dim_names,
                         const std::vector<std::int64_t> &dim_sizes,
                         double flop_factor = 4.0);

/** Factory: elementwise binary add (residual connection). */
OpSpec makeAddOp(const std::string &name,
                 const std::vector<std::string> &dim_names,
                 const std::vector<std::int64_t> &dim_sizes);

/**
 * Factory: embedding lookup, modelled as a one-hot contraction
 * O[B,M,H] = I[B,M,V] x W[V,H] (Megatron's vocab-parallel embedding
 * partitions V, inducing a forward all-reduce of O; partitioning H is
 * the hidden-sharded alternative).
 */
OpSpec makeEmbeddingOp(const std::string &name, std::int64_t b,
                       std::int64_t m, std::int64_t vocab,
                       std::int64_t h);

} // namespace primepar

#endif // PRIMEPAR_PARTITION_OP_SPEC_HH
