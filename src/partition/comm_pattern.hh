/**
 * @file
 * Communication pattern derivation.
 *
 * All communication in PrimePar follows mechanically from the DSIs:
 *
 *  - *Ring shifts*: when an operand's DSI changes between temporal
 *    steps, each device receives the slice it needs next from the
 *    (unique) peer that currently holds it. For P_{2^k x 2^k} these
 *    are exactly the neighbour rings of the paper's Table 1, but this
 *    module derives them generically from the DSI table, so composed
 *    sequences are handled uniformly.
 *  - *Accumulator shifts*: when the output block a device accumulates
 *    changes between steps (dW at the last Gradient step), the partial
 *    accumulator migrates the same way.
 *  - *Transition shifts*: parameter tensors must return to their
 *    Forward-start distribution by the end of the last phase using
 *    them (feature 3); any residual mismatch becomes a shift that is
 *    overlapped with the last step (W in Backward, Table 1).
 *  - *All-reduces*: devices that compute the same output block but
 *    different slices of a contracted dimension form grouped
 *    all-reduces (conventional partition-by-dimension, Sec. 3.2).
 */

#ifndef PRIMEPAR_PARTITION_COMM_PATTERN_HH
#define PRIMEPAR_PARTITION_COMM_PATTERN_HH

#include <optional>
#include <vector>

#include "dsi.hh"
#include "op_spec.hh"
#include "topology/groups.hh"

namespace primepar {

/** One point-to-point transfer: @p receiver pulls from @p sender. */
struct Transfer
{
    std::int64_t receiver = -1;
    std::int64_t sender = -1;
};

/** All transfers of one tensor between two consecutive steps. */
struct ShiftSet
{
    TensorRef tensor;
    /** One entry per device that receives; devices whose slice does
     *  not change are absent. */
    std::vector<Transfer> transfers;
    /** Element count of the moved slice (per transfer). */
    std::int64_t elementsPerTransfer = 0;
};

/** Grouped all-reduce of a pass output. */
struct AllReduceSpec
{
    TensorRef tensor;
    std::vector<DeviceGroup> groups;
    /** Device-id bit positions varying within each group. */
    GroupIndicator indicator;
    /** Per-device element count of the reduced slice. */
    std::int64_t elementsPerDevice = 0;
};

/** Complete communication schedule of one pass. */
struct PassComm
{
    int passIndex = -1;
    /**
     * stepShifts[t] holds the shifts executed concurrently with
     * compute step t, delivering operands for step t+1
     * (t in [0, steps-1)). Entry steps-1, when present, is the
     * phase-transition shift of parameter tensors overlapping the
     * last step.
     */
    std::vector<std::vector<ShiftSet>> stepShifts;
    /** Accumulator migrations, indexed like stepShifts. */
    std::vector<std::vector<ShiftSet>> accShifts;
    /** All-reduce at pass end if any device holds partial sums. */
    std::optional<AllReduceSpec> allReduce;
};

/**
 * Derive the communication schedule of pass @p pass_index.
 *
 * Ring senders are searched within the PSquare group of the receiver
 * (devices agreeing on all non-PSquare bits); the derivation panics if
 * a needed slice has no holder, which would indicate an invalid
 * primitive.
 */
PassComm derivePassComm(const OpSpec &op, const PartitionSeq &seq,
                        const DsiTable &dsi, int pass_index);

/**
 * Transition shift of parameter tensor @p tensor from its distribution
 * at the end of @p from_phase back to the start of @p to_phase
 * (typically Backward -> Forward for W). Empty transfers if already
 * aligned.
 */
ShiftSet deriveTransitionShift(const OpSpec &op, const PartitionSeq &seq,
                               const DsiTable &dsi, const TensorRef &tensor,
                               Phase from_phase, Phase to_phase);

/**
 * Maximum replication factor of @p tensor at (phase, t): the largest
 * number of devices holding an identical slice tuple. 1 means the
 * tensor is never replicated (feature 2).
 */
int replicationFactor(const OpSpec &op, const DsiTable &dsi,
                      const TensorRef &tensor, Phase phase, int t);

/**
 * Bits of the device id whose flip changes the DSI tuple of @p tensor
 * in @p phase at step 0 — the spatial footprint of the tensor. The
 * complement of this set is the replication indicator.
 */
GroupIndicator tensorFootprintBits(const OpSpec &op, const DsiTable &dsi,
                                   const TensorRef &tensor, Phase phase);

} // namespace primepar

#endif // PRIMEPAR_PARTITION_COMM_PATTERN_HH
