#include "dsi.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace primepar {

DsiTable::DsiTable(const OpSpec &op, const PartitionSeq &seq, int num_bits)
    : bits(num_bits), nSteps(seq.temporalSteps()),
      slices(seq.sliceCounts(op))
{
    PRIMEPAR_ASSERT(seq.numBits() == num_bits,
                    "sequence consumes ", seq.numBits(), " bits, expected ",
                    num_bits, " for op ", op.name);
    const std::string err = seq.validate(op);
    PRIMEPAR_ASSERT(err.empty(), "invalid sequence for ", op.name, ": ",
                    err);

    dimSizes.reserve(op.dims.size());
    for (const auto &d : op.dims)
        dimSizes.push_back(d.size);

    const std::int64_t devices = numDevices();
    const std::size_t dims = op.dims.size();
    table.assign(3 * devices * nSteps * dims, 0);

    constexpr Phase kPhases[] = {Phase::Forward, Phase::Backward,
                                 Phase::Gradient};

    for (std::int64_t dev = 0; dev < devices; ++dev) {
        const DeviceId id(num_bits, dev);
        for (int t = 0; t < nSteps; ++t) {
            for (Phase phase : kPhases) {
                std::vector<std::int64_t> idx(dims, 0);
                int bit_cursor = 0;
                for (const auto &step : seq.steps()) {
                    if (step.kind == PartitionStep::Kind::ByDim) {
                        // Eqs. 2-3: identical update in every phase.
                        idx[step.dim] =
                            2 * idx[step.dim] + id.bit(bit_cursor);
                        bit_cursor += 1;
                        continue;
                    }

                    // PSquare: Alg. 1 lines 8-21 / Eqs. 4-6.
                    const int k = step.k;
                    const std::int64_t side = std::int64_t{1} << k;
                    std::int64_t r = 0, c = 0;
                    for (int j = 0; j < k; ++j) {
                        r = 2 * r + id.bit(bit_cursor + 2 * j);
                        c = 2 * c + id.bit(bit_cursor + 2 * j + 1);
                    }
                    bit_cursor += 2 * k;

                    const PSquareDims &psq = *op.psquare;
                    const std::int64_t delta =
                        t == static_cast<int>(side) - 1 ? 1 : 0;
                    std::int64_t im = 0, in = 0, ik = 0;
                    switch (phase) {
                      case Phase::Forward:
                        im = positiveMod(r, side);
                        in = positiveMod(r + c + t, side);
                        ik = positiveMod(c, side);
                        break;
                      case Phase::Backward:
                        im = positiveMod(r, side);
                        in = positiveMod(r + c - 1, side);
                        ik = positiveMod(c + t, side);
                        break;
                      case Phase::Gradient:
                        im = positiveMod(r + t, side);
                        in = positiveMod(r + c - 1 + delta, side);
                        ik = positiveMod(c - 1 + delta, side);
                        break;
                    }
                    idx[psq.m] = side * idx[psq.m] + im;
                    idx[psq.n] = side * idx[psq.n] + in;
                    idx[psq.k] = side * idx[psq.k] + ik;
                }
                for (std::size_t d = 0; d < dims; ++d)
                    table[flat(phase, dev, t, static_cast<int>(d))] =
                        idx[d];
            }
        }
    }
}

std::int64_t
DsiTable::tensorSliceNumel(const OpSpec &op, int tensor) const
{
    std::int64_t n = 1;
    for (int d : op.tensors[tensor].dims)
        n *= sliceExtent(d);
    return n;
}

} // namespace primepar
