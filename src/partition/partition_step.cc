#include "partition_step.hh"

#include <cstdlib>
#include <sstream>

#include "support/bits.hh"
#include "support/logging.hh"

namespace primepar {

int
PartitionSeq::numBits() const
{
    int n = 0;
    for (const auto &s : stepsVec)
        n += s.bits();
    return n;
}

int
PartitionSeq::temporalSteps() const
{
    for (const auto &s : stepsVec) {
        if (s.kind == PartitionStep::Kind::PSquare)
            return 1 << s.k;
    }
    return 1;
}

bool
PartitionSeq::hasPSquare() const
{
    return pSquareIndex() >= 0;
}

int
PartitionSeq::pSquareIndex() const
{
    for (std::size_t i = 0; i < stepsVec.size(); ++i) {
        if (stepsVec[i].kind == PartitionStep::Kind::PSquare)
            return static_cast<int>(i);
    }
    return -1;
}

std::vector<std::int64_t>
PartitionSeq::sliceCounts(const OpSpec &op) const
{
    std::vector<std::int64_t> slices(op.dims.size(), 1);
    for (const auto &s : stepsVec) {
        if (s.kind == PartitionStep::Kind::ByDim) {
            slices[s.dim] *= 2;
        } else {
            PRIMEPAR_ASSERT(op.psquare.has_value(),
                            "PSquare on incompatible operator ", op.name);
            const std::int64_t f = std::int64_t{1} << s.k;
            slices[op.psquare->m] *= f;
            slices[op.psquare->n] *= f;
            slices[op.psquare->k] *= f;
        }
    }
    return slices;
}

std::string
PartitionSeq::validate(const OpSpec &op) const
{
    int psquares = 0;
    for (const auto &s : stepsVec) {
        if (s.kind == PartitionStep::Kind::ByDim) {
            if (s.dim < 0 || s.dim >= static_cast<int>(op.dims.size()))
                return "dimension index out of range";
            if (!op.dims[s.dim].partitionable)
                return "dimension " + op.dims[s.dim].name +
                       " is not partitionable";
        } else {
            if (!op.psquare.has_value())
                return "operator " + op.name +
                       " does not support the PSquare primitive";
            if (s.k < 1)
                return "PSquare requires k >= 1";
            ++psquares;
        }
    }
    if (psquares > 1)
        return "at most one PSquare primitive per sequence";

    const auto slices = sliceCounts(op);
    for (std::size_t d = 0; d < slices.size(); ++d) {
        if (op.dims[d].size % slices[d] != 0)
            return "dimension " + op.dims[d].name + " (" +
                   std::to_string(op.dims[d].size) +
                   ") not divisible into " + std::to_string(slices[d]) +
                   " slices";
    }
    return "";
}

PartitionSeq
parseSequence(const OpSpec &op, const std::string &text)
{
    PartitionSeq seq;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string token = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty()) {
            if (pos > text.size())
                break;
            PRIMEPAR_FATAL("empty token in sequence \"", text, "\"");
        }

        if (token.size() >= 4 && token[0] == 'P' &&
            token.find('x') != std::string::npos) {
            const std::size_t x = token.find('x');
            const std::string side_str = token.substr(1, x - 1);
            const std::int64_t side = std::atoll(side_str.c_str());
            if (!isPowerOfTwo(side) || side < 2 ||
                token.substr(x + 1) != side_str) {
                PRIMEPAR_FATAL("bad PSquare token \"", token,
                               "\" (expected e.g. P2x2, P4x4)");
            }
            int k = 0;
            for (std::int64_t s = side; s > 1; s /= 2)
                ++k;
            seq.push(PartitionStep::pSquare(k));
            continue;
        }

        int dim = -1;
        for (std::size_t d = 0; d < op.dims.size(); ++d) {
            if (op.dims[d].name == token)
                dim = static_cast<int>(d);
        }
        if (dim < 0) {
            PRIMEPAR_FATAL("operator ", op.name, " has no dimension \"",
                           token, "\"");
        }
        seq.push(PartitionStep::byDim(dim));
        if (comma == text.size())
            break;
    }

    const std::string err = seq.validate(op);
    if (!err.empty())
        PRIMEPAR_FATAL("invalid sequence \"", text, "\": ", err);
    return seq;
}

std::string
PartitionSeq::toString(const OpSpec &op) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < stepsVec.size(); ++i) {
        if (i)
            os << ',';
        const auto &s = stepsVec[i];
        if (s.kind == PartitionStep::Kind::ByDim) {
            os << op.dims[s.dim].name;
        } else {
            os << 'P' << (1 << s.k) << 'x' << (1 << s.k);
        }
    }
    return os.str();
}

} // namespace primepar
