/**
 * @file
 * Dimension Slice Index (DSI) evaluation — Algorithm 1 of the paper.
 *
 * A DSI records, for every (phase, device, temporal step, dimension),
 * which slice of that dimension the sub-operator executed there holds.
 * Every partition plan in PrimePar's space is uniquely represented by
 * its DSIs (Sec. 3.1); all downstream analyses — replication, ring
 * communication patterns, all-reduce groups, phase alignment,
 * inter-operator redistribution, and the functional executor — are
 * derived from this table.
 *
 * ByDim steps update the partitioned dimension identically in all
 * phases (Eqs. 2-3); the PSquare primitive applies Eqs. 4-6:
 *
 *   Forward:  I_M = r,      I_N = (r+c+t),            I_K = c
 *   Backward: I_M = r,      I_N = (r+c-1),            I_K = (c+t)
 *   Gradient: I_M = (r+t),  I_N = (r+c-1+delta),      I_K = (c-1+delta)
 *
 * all mod 2^k, with delta = [t == 2^k - 1].
 */

#ifndef PRIMEPAR_PARTITION_DSI_HH
#define PRIMEPAR_PARTITION_DSI_HH

#include <cstdint>
#include <vector>

#include "op_spec.hh"
#include "partition_step.hh"
#include "topology/device.hh"

namespace primepar {

/** Half-open slice of one dimension, in element units. */
struct SliceRange
{
    std::int64_t start = 0;
    std::int64_t end = 0;

    std::int64_t length() const { return end - start; }

    /** Length of the intersection with another range. */
    std::int64_t
    intersect(const SliceRange &o) const
    {
        const std::int64_t s = start > o.start ? start : o.start;
        const std::int64_t e = end < o.end ? end : o.end;
        return e > s ? e - s : 0;
    }

    auto operator<=>(const SliceRange &) const = default;
};

/** Fully evaluated DSI table for one (operator, sequence) pair. */
class DsiTable
{
  public:
    /**
     * Evaluate Algorithm 1.
     *
     * @param op operator description
     * @param seq partition sequence (must consume exactly @p num_bits)
     * @param num_bits device-id bit count n
     */
    DsiTable(const OpSpec &op, const PartitionSeq &seq, int num_bits);

    /** Device-id bit count. */
    int numBits() const { return bits; }

    /** Number of devices 2^n. */
    std::int64_t numDevices() const { return std::int64_t{1} << bits; }

    /** Temporal steps per phase (1 without a PSquare). */
    int steps() const { return nSteps; }

    /** Number of slices of dimension @p dim. */
    std::int64_t sliceCount(int dim) const { return slices[dim]; }

    /** Element length of one slice of @p dim. */
    std::int64_t
    sliceExtent(int dim) const
    {
        return dimSizes[dim] / slices[dim];
    }

    /** DSI value I_dim(phase, device, t). */
    std::int64_t
    value(Phase phase, std::int64_t device, int t, int dim) const
    {
        return table[flat(phase, device, t, dim)];
    }

    /** Element range of @p dim held by @p device at (phase, t). */
    SliceRange
    sliceRange(Phase phase, std::int64_t device, int t, int dim) const
    {
        const std::int64_t extent = sliceExtent(dim);
        const std::int64_t idx = value(phase, device, t, dim);
        return {idx * extent, (idx + 1) * extent};
    }

    /**
     * Per-device element count of a tensor slice (replication-agnostic:
     * a device always stores full-size / prod(slices of its dims)).
     */
    std::int64_t tensorSliceNumel(const OpSpec &op, int tensor) const;

    /** Number of dims. */
    int numDims() const { return static_cast<int>(slices.size()); }

  private:
    std::size_t
    flat(Phase phase, std::int64_t device, int t, int dim) const
    {
        const auto p = static_cast<std::size_t>(phase);
        return ((p * static_cast<std::size_t>(numDevices()) + device) *
                    nSteps +
                t) *
                   slices.size() +
               dim;
    }

    int bits;
    int nSteps;
    std::vector<std::int64_t> slices;
    std::vector<std::int64_t> dimSizes;
    std::vector<std::int64_t> table;
};

} // namespace primepar

#endif // PRIMEPAR_PARTITION_DSI_HH
