#include "op_spec.hh"

#include <algorithm>

#include "support/logging.hh"

namespace primepar {

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Forward:
        return "Forward";
      case Phase::Backward:
        return "Backward";
      case Phase::Gradient:
        return "Gradient";
    }
    return "?";
}

int
OpSpec::dimIndex(const std::string &dim_name) const
{
    for (std::size_t i = 0; i < dims.size(); ++i) {
        if (dims[i].name == dim_name)
            return static_cast<int>(i);
    }
    PRIMEPAR_PANIC("operator ", name, " has no dimension ", dim_name);
}

std::int64_t
OpSpec::tensorNumel(int t) const
{
    PRIMEPAR_ASSERT(t >= 0 && t < static_cast<int>(tensors.size()),
                    "tensor index out of range");
    std::int64_t n = 1;
    for (int d : tensors[t].dims)
        n *= dims[d].size;
    return n;
}

double
OpSpec::tensorBytes(int t) const
{
    return static_cast<double>(tensorNumel(t)) * bytesPerElement;
}

double
OpSpec::passFlops(const PassSpec &pass) const
{
    // flops = factor * prod(output dims) * prod(contracted dims).
    double flops = pass.flopFactor;
    for (int d : tensors[pass.output.tensor].dims)
        flops *= static_cast<double>(dims[d].size);
    for (int d : pass.contracted)
        flops *= static_cast<double>(dims[d].size);
    return flops;
}

std::string
OpSpec::refName(const TensorRef &ref) const
{
    const std::string &base = tensors[ref.tensor].name;
    return ref.grad ? "d" + base : base;
}

double
OpSpec::parameterBytes() const
{
    double total = 0.0;
    for (std::size_t t = 0; t < tensors.size(); ++t) {
        if (tensors[t].isParameter)
            total += tensorBytes(static_cast<int>(t));
    }
    return total;
}

namespace {

/** Contracted dims of output = f(a, b): dims in a or b but not out. */
std::vector<int>
contractedDims(const OpSpec &op, const std::vector<int> &a_dims,
               const std::vector<int> &b_dims,
               const std::vector<int> &out_dims)
{
    std::vector<int> contracted;
    for (std::size_t d = 0; d < op.dims.size(); ++d) {
        const int dim = static_cast<int>(d);
        const bool in_a = std::find(a_dims.begin(), a_dims.end(), dim) !=
                          a_dims.end();
        const bool in_b = std::find(b_dims.begin(), b_dims.end(), dim) !=
                          b_dims.end();
        const bool in_out = std::find(out_dims.begin(), out_dims.end(),
                                      dim) != out_dims.end();
        if ((in_a || in_b) && !in_out)
            contracted.push_back(dim);
    }
    return contracted;
}

} // namespace

OpSpec
makeLinearOp(const std::string &name, std::int64_t b, std::int64_t m,
             std::int64_t n, std::int64_t k)
{
    OpSpec op;
    op.name = name;
    op.kind = "linear";
    op.dims = {{"B", b, true}, {"M", m, true}, {"N", n, true},
               {"K", k, true}};
    op.tensors = {
        {"I", {0, 1, 2}, false}, // I[B,M,N]
        {"W", {2, 3}, true},     // W[N,K]
        {"O", {0, 1, 3}, false}, // O[B,M,K]
    };
    op.inputTensor = 0;
    op.outputTensor = 2;

    // Forward: O = I x W (contracts N).
    op.passes.push_back({Phase::Forward,
                         {{0, false}, {1, false}},
                         {2, false},
                         {2},
                         2.0});
    // Backward: dI = dO x W^T (contracts K).
    op.passes.push_back({Phase::Backward,
                         {{2, true}, {1, false}},
                         {0, true},
                         {3},
                         2.0});
    // Gradient: dW = I^T x dO (contracts B and M).
    op.passes.push_back({Phase::Gradient,
                         {{0, false}, {2, true}},
                         {1, true},
                         {0, 1},
                         2.0});

    op.psquare = PSquareDims{1, 2, 3}; // roles M, N, K
    op.stashed = {{0, false}};          // I stashed for Gradient
    return op;
}

OpSpec
makeBatchedMatmulOp(const std::string &name,
                    const std::vector<std::string> &dim_names,
                    const std::vector<std::int64_t> &dim_sizes,
                    const std::vector<int> &a_dims,
                    const std::vector<int> &b_dims,
                    const std::vector<int> &out_dims,
                    int unpartitionable_dim)
{
    PRIMEPAR_ASSERT(dim_names.size() == dim_sizes.size(),
                    "matmul dim spec mismatch");
    OpSpec op;
    op.name = name;
    op.kind = "matmul";
    for (std::size_t d = 0; d < dim_names.size(); ++d) {
        op.dims.push_back({dim_names[d], dim_sizes[d],
                           static_cast<int>(d) != unpartitionable_dim});
    }
    op.tensors = {
        {"A", a_dims, false},
        {"Bm", b_dims, false},
        {"O", out_dims, false},
    };
    op.inputTensor = 0;
    op.outputTensor = 2;

    // Forward: O = A x B.
    op.passes.push_back({Phase::Forward,
                         {{0, false}, {1, false}},
                         {2, false},
                         contractedDims(op, a_dims, b_dims, out_dims),
                         2.0});
    // Backward (dA): dA = f(dO, B).
    op.passes.push_back({Phase::Backward,
                         {{2, true}, {1, false}},
                         {0, true},
                         contractedDims(op, out_dims, b_dims, a_dims),
                         2.0});
    // Backward (dB): dB = f(dO, A).
    op.passes.push_back({Phase::Backward,
                         {{2, true}, {0, false}},
                         {1, true},
                         contractedDims(op, out_dims, a_dims, b_dims),
                         2.0});

    // Both operands are stashed from Forward for the Backward passes.
    op.stashed = {{0, false}, {1, false}};
    return op;
}

OpSpec
makeSoftmaxOp(const std::string &name,
              const std::vector<std::string> &dim_names,
              const std::vector<std::int64_t> &dim_sizes)
{
    PRIMEPAR_ASSERT(dim_names.size() == dim_sizes.size(),
                    "softmax dim spec mismatch");
    OpSpec op;
    op.name = name;
    op.kind = "softmax";
    std::vector<int> all_dims;
    for (std::size_t d = 0; d < dim_names.size(); ++d) {
        // The softmax dimension (last) is not partitionable (Sec. 3.2).
        const bool partitionable = d + 1 != dim_names.size();
        op.dims.push_back({dim_names[d], dim_sizes[d], partitionable});
        all_dims.push_back(static_cast<int>(d));
    }
    op.tensors = {
        {"I", all_dims, false},
        {"O", all_dims, false},
    };
    op.inputTensor = 0;
    op.outputTensor = 1;

    op.passes.push_back(
        {Phase::Forward, {{0, false}}, {1, false}, {}, 5.0});
    // Backward uses the stashed softmax output.
    op.passes.push_back(
        {Phase::Backward, {{1, true}, {1, false}}, {0, true}, {}, 4.0});

    op.stashed = {{1, false}}; // output stashed for backward
    return op;
}

OpSpec
makeLayerNormOp(const std::string &name, std::int64_t b, std::int64_t m,
                std::int64_t h)
{
    OpSpec op;
    op.name = name;
    op.kind = "layernorm";
    op.dims = {{"B", b, true}, {"M", m, true}, {"H", h, true}};
    op.tensors = {
        {"I", {0, 1, 2}, false},
        {"G", {2}, true}, // gamma (beta folded in: same shape/cost)
        {"O", {0, 1, 2}, false},
    };
    op.inputTensor = 0;
    op.outputTensor = 2;
    op.normalizedDim = 2;

    op.passes.push_back(
        {Phase::Forward, {{0, false}, {1, false}}, {2, false}, {}, 8.0});
    op.passes.push_back(
        {Phase::Backward, {{2, true}, {1, false}, {0, false}},
         {0, true},
         {},
         8.0});
    // Gradient of gamma/beta contracts B and M -> grouped all-reduce.
    op.passes.push_back(
        {Phase::Gradient, {{2, true}, {0, false}}, {1, true}, {0, 1}, 2.0});

    op.stashed = {{0, false}};
    return op;
}

OpSpec
makeElementwiseOp(const std::string &name,
                  const std::vector<std::string> &dim_names,
                  const std::vector<std::int64_t> &dim_sizes,
                  double flop_factor)
{
    PRIMEPAR_ASSERT(dim_names.size() == dim_sizes.size(),
                    "elementwise dim spec mismatch");
    OpSpec op;
    op.name = name;
    op.kind = "elementwise";
    std::vector<int> all_dims;
    for (std::size_t d = 0; d < dim_names.size(); ++d) {
        op.dims.push_back({dim_names[d], dim_sizes[d], true});
        all_dims.push_back(static_cast<int>(d));
    }
    op.tensors = {
        {"I", all_dims, false},
        {"O", all_dims, false},
    };
    op.inputTensor = 0;
    op.outputTensor = 1;

    op.passes.push_back(
        {Phase::Forward, {{0, false}}, {1, false}, {}, flop_factor});
    op.passes.push_back(
        {Phase::Backward, {{1, true}, {0, false}}, {0, true}, {},
         flop_factor});

    op.stashed = {{0, false}};
    return op;
}

OpSpec
makeEmbeddingOp(const std::string &name, std::int64_t b, std::int64_t m,
                std::int64_t vocab, std::int64_t h)
{
    OpSpec op;
    op.name = name;
    op.kind = "linear"; // one-hot contraction shares the linear form
    op.dims = {{"B", b, true}, {"M", m, true}, {"V", vocab, true},
               {"H", h, true}};
    op.tensors = {
        {"I", {0, 1, 2}, false}, // one-hot rows
        {"W", {2, 3}, true},     // embedding table
        {"O", {0, 1, 3}, false},
    };
    op.inputTensor = 0;
    op.outputTensor = 2;

    // Forward contracts V; no input gradient (token ids); the table
    // gradient contracts B and M.
    op.passes.push_back({Phase::Forward,
                         {{0, false}, {1, false}},
                         {2, false},
                         {2},
                         2.0});
    op.passes.push_back({Phase::Gradient,
                         {{0, false}, {2, true}},
                         {1, true},
                         {0, 1},
                         2.0});

    op.psquare = PSquareDims{1, 2, 3};
    op.stashed = {{0, false}};
    return op;
}

OpSpec
makeAddOp(const std::string &name, const std::vector<std::string> &dim_names,
          const std::vector<std::int64_t> &dim_sizes)
{
    PRIMEPAR_ASSERT(dim_names.size() == dim_sizes.size(),
                    "add dim spec mismatch");
    OpSpec op;
    op.name = name;
    op.kind = "add";
    std::vector<int> all_dims;
    for (std::size_t d = 0; d < dim_names.size(); ++d) {
        op.dims.push_back({dim_names[d], dim_sizes[d], true});
        all_dims.push_back(static_cast<int>(d));
    }
    op.tensors = {
        {"A", all_dims, false},
        {"Bt", all_dims, false},
        {"O", all_dims, false},
    };
    op.inputTensor = 0;
    op.outputTensor = 2;

    op.passes.push_back({Phase::Forward,
                         {{0, false}, {1, false}},
                         {2, false},
                         {},
                         1.0});
    // Backward of add is a pass-through split to both operands;
    // near-zero flops but the gradient tensors still flow (edge costs
    // dominate).
    op.passes.push_back(
        {Phase::Backward, {{2, true}}, {0, true}, {}, 1.0});
    op.passes.push_back(
        {Phase::Backward, {{2, true}}, {1, true}, {}, 1.0});
    return op;
}

} // namespace primepar
