/**
 * @file
 * Enumeration of the per-operator partition space.
 *
 * PrimePar's search space for one operator over 2^n devices is the set
 * of valid partition sequences consuming all n device-id bits:
 * orderings of ByDim steps over the partitionable dimensions, with at
 * most one spatial-temporal PSquare primitive inserted where the
 * operator supports it (Sec. 3). The conventional space (Megatron/Alpa)
 * is recovered by disabling the PSquare primitive.
 */

#ifndef PRIMEPAR_PARTITION_SPACE_HH
#define PRIMEPAR_PARTITION_SPACE_HH

#include <vector>

#include "op_spec.hh"
#include "partition_step.hh"

namespace primepar {

/** Knobs controlling the enumerated space. */
struct SpaceOptions
{
    /** Include the spatial-temporal primitive (PrimePar) or not
     *  (conventional spatial-only space). */
    bool allowPSquare = true;

    /** Dim indices excluded from ByDim partitioning (e.g. the batch
     *  dimension when composing with explicit data parallelism in 3D
     *  parallelism, Sec. 6.4). */
    std::vector<int> excludedDims;

    /** Upper bound on the number of temporal steps 2^k (0 = no
     *  bound). Bounds the PSquare size. */
    int maxTemporalSteps = 0;

    /**
     * Cap on the number of sequences returned (0 = the full space).
     * When the space exceeds the budget, the DFS still visits every
     * leaf but only materializes the @p candidateBudget best-looking
     * candidates under a structural communication/memory score
     * (ties broken by DFS order, so the selection is deterministic).
     * Survivors are returned in DFS order. This is the approximate
     * big-topology mode: at 512+ devices the full space has 10^5-10^8
     * sequences per operator and cannot even be materialized.
     */
    int candidateBudget = 0;
};

/** Outcome of one enumeration (for truncation reporting). */
struct EnumerationInfo
{
    /** Leaves of the full space (valid sequences), whether or not
     *  they were materialized. */
    std::size_t totalSequences = 0;
    /** True iff candidateBudget dropped at least one sequence. */
    bool truncated = false;
};

/**
 * Enumerate all valid partition sequences of @p op over 2^n devices.
 *
 * Sequences violating divisibility (a dimension cut into more slices
 * than its size supports) are excluded. With
 * SpaceOptions::candidateBudget set, at most that many sequences are
 * returned (see the field's comment); @p info (optional) reports the
 * full space size and whether truncation occurred.
 */
std::vector<PartitionSeq> enumerateSequences(const OpSpec &op,
                                             int num_bits,
                                             const SpaceOptions &opts = {},
                                             EnumerationInfo *info = nullptr);

} // namespace primepar

#endif // PRIMEPAR_PARTITION_SPACE_HH
