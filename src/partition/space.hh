/**
 * @file
 * Enumeration of the per-operator partition space.
 *
 * PrimePar's search space for one operator over 2^n devices is the set
 * of valid partition sequences consuming all n device-id bits:
 * orderings of ByDim steps over the partitionable dimensions, with at
 * most one spatial-temporal PSquare primitive inserted where the
 * operator supports it (Sec. 3). The conventional space (Megatron/Alpa)
 * is recovered by disabling the PSquare primitive.
 */

#ifndef PRIMEPAR_PARTITION_SPACE_HH
#define PRIMEPAR_PARTITION_SPACE_HH

#include <vector>

#include "op_spec.hh"
#include "partition_step.hh"

namespace primepar {

/** Knobs controlling the enumerated space. */
struct SpaceOptions
{
    /** Include the spatial-temporal primitive (PrimePar) or not
     *  (conventional spatial-only space). */
    bool allowPSquare = true;

    /** Dim indices excluded from ByDim partitioning (e.g. the batch
     *  dimension when composing with explicit data parallelism in 3D
     *  parallelism, Sec. 6.4). */
    std::vector<int> excludedDims;

    /** Upper bound on the number of temporal steps 2^k (0 = no
     *  bound). Bounds the PSquare size. */
    int maxTemporalSteps = 0;
};

/**
 * Enumerate all valid partition sequences of @p op over 2^n devices.
 *
 * Sequences violating divisibility (a dimension cut into more slices
 * than its size supports) are excluded.
 */
std::vector<PartitionSeq> enumerateSequences(const OpSpec &op,
                                             int num_bits,
                                             const SpaceOptions &opts = {});

} // namespace primepar

#endif // PRIMEPAR_PARTITION_SPACE_HH
