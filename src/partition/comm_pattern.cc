#include "comm_pattern.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace primepar {

namespace {

/** DSI tuple of a tensor's dims at (phase, device, t). */
std::vector<std::int64_t>
tensorTuple(const OpSpec &op, const DsiTable &dsi, const TensorRef &ref,
            Phase phase, std::int64_t dev, int t)
{
    std::vector<std::int64_t> tuple;
    tuple.reserve(op.tensors[ref.tensor].dims.size());
    for (int d : op.tensors[ref.tensor].dims)
        tuple.push_back(dsi.value(phase, dev, t, d));
    return tuple;
}

/** Bit positions (0-based from d_1) consumed by the PSquare step. */
GroupIndicator
pSquareBits(const PartitionSeq &seq)
{
    GroupIndicator bits;
    int cursor = 0;
    for (const auto &s : seq.steps()) {
        if (s.kind == PartitionStep::Kind::PSquare) {
            for (int b = 0; b < s.bits(); ++b)
                bits.push_back(cursor + b);
            return bits;
        }
        cursor += s.bits();
    }
    return bits;
}

/** Per-device list of ring-group peers (the PSquare group). */
std::vector<DeviceGroup>
ringPeers(const PartitionSeq &seq, int num_bits)
{
    const GroupIndicator psq_bits = pSquareBits(seq);
    const std::int64_t devices = std::int64_t{1} << num_bits;
    std::vector<DeviceGroup> peers(devices);
    if (psq_bits.empty()) {
        for (std::int64_t d = 0; d < devices; ++d)
            peers[d] = {d};
        return peers;
    }
    for (const auto &group : enumerateGroups(num_bits, psq_bits)) {
        for (std::int64_t member : group)
            peers[member] = group;
    }
    return peers;
}

/**
 * Shift of tensor @p ref needed so that each device's slice changes
 * from its tuple at (from_phase, from_t) to (to_phase, to_t). Senders
 * are searched within @p peers.
 */
ShiftSet
deriveShift(const OpSpec &op, const DsiTable &dsi, const TensorRef &ref,
            Phase from_phase, int from_t, Phase to_phase, int to_t,
            const std::vector<DeviceGroup> &peers)
{
    ShiftSet shift;
    shift.tensor = ref;
    shift.elementsPerTransfer = dsi.tensorSliceNumel(op, ref.tensor);

    for (std::int64_t dev = 0; dev < dsi.numDevices(); ++dev) {
        const auto need =
            tensorTuple(op, dsi, ref, to_phase, dev, to_t);
        const auto have =
            tensorTuple(op, dsi, ref, from_phase, dev, from_t);
        if (need == have)
            continue;

        std::int64_t sender = -1;
        for (std::int64_t peer : peers[dev]) {
            if (tensorTuple(op, dsi, ref, from_phase, peer, from_t) ==
                need) {
                PRIMEPAR_ASSERT(sender == -1,
                                "ambiguous ring sender for ",
                                op.refName(ref), " of ", op.name);
                sender = peer;
            }
        }
        PRIMEPAR_ASSERT(sender >= 0, "no holder of needed slice of ",
                        op.refName(ref), " for device ", dev, " of op ",
                        op.name);
        shift.transfers.push_back({dev, sender});
    }
    return shift;
}

/** Index of the first/last pass whose operands include @p ref. */
int
firstPassUsing(const OpSpec &op, const TensorRef &ref)
{
    for (std::size_t p = 0; p < op.passes.size(); ++p) {
        const auto &ops = op.passes[p].operands;
        if (std::find(ops.begin(), ops.end(), ref) != ops.end())
            return static_cast<int>(p);
    }
    return -1;
}

int
lastPassUsing(const OpSpec &op, const TensorRef &ref)
{
    for (int p = static_cast<int>(op.passes.size()) - 1; p >= 0; --p) {
        const auto &ops = op.passes[p].operands;
        if (std::find(ops.begin(), ops.end(), ref) != ops.end())
            return p;
    }
    return -1;
}

} // namespace

PassComm
derivePassComm(const OpSpec &op, const PartitionSeq &seq,
               const DsiTable &dsi, int pass_index)
{
    PRIMEPAR_ASSERT(pass_index >= 0 &&
                        pass_index < static_cast<int>(op.passes.size()),
                    "pass index out of range");
    const PassSpec &pass = op.passes[pass_index];
    const int steps = dsi.steps();
    const auto peers = ringPeers(seq, dsi.numBits());

    PassComm comm;
    comm.passIndex = pass_index;
    comm.stepShifts.resize(steps);
    comm.accShifts.resize(steps);

    // Operand ring shifts between consecutive temporal steps.
    for (int t = 0; t + 1 < steps; ++t) {
        for (const TensorRef &ref : pass.operands) {
            ShiftSet shift = deriveShift(op, dsi, ref, pass.phase, t,
                                         pass.phase, t + 1, peers);
            if (!shift.transfers.empty())
                comm.stepShifts[t].push_back(std::move(shift));
        }
        // Accumulator migration when the output block changes.
        ShiftSet acc = deriveShift(op, dsi, pass.output, pass.phase, t,
                                   pass.phase, t + 1, peers);
        if (!acc.transfers.empty())
            comm.accShifts[t].push_back(std::move(acc));
    }

    // Transition shift: parameter operands whose last use is this pass
    // must return to their distribution at the start of their first
    // use (W realigns for the next Forward, Table 1 Backward row 2).
    for (const TensorRef &ref : pass.operands) {
        if (ref.grad || !op.tensors[ref.tensor].isParameter)
            continue;
        if (lastPassUsing(op, ref) != pass_index)
            continue;
        const int first = firstPassUsing(op, ref);
        ShiftSet shift = deriveTransitionShift(
            op, seq, dsi, ref, pass.phase, op.passes[first].phase);
        if (!shift.transfers.empty())
            comm.stepShifts[steps - 1].push_back(std::move(shift));
    }

    // All-reduce: group devices by their output block at the final
    // step; groups larger than one hold partial sums.
    std::map<std::vector<std::int64_t>, DeviceGroup> by_block;
    for (std::int64_t dev = 0; dev < dsi.numDevices(); ++dev) {
        by_block[tensorTuple(op, dsi, pass.output, pass.phase, dev,
                             steps - 1)]
            .push_back(dev);
    }
    bool needs_reduce = false;
    for (const auto &[block, devs] : by_block) {
        if (devs.size() > 1) {
            needs_reduce = true;
            break;
        }
    }
    if (needs_reduce) {
        AllReduceSpec spec;
        spec.tensor = pass.output;
        spec.elementsPerDevice =
            dsi.tensorSliceNumel(op, pass.output.tensor);
        std::int64_t varying = 0;
        for (auto &[block, devs] : by_block) {
            for (std::int64_t member : devs)
                varying |= member ^ devs.front();
            spec.groups.push_back(std::move(devs));
        }
        const int n = dsi.numBits();
        for (int b = 0; b < n; ++b) {
            if ((varying >> (n - 1 - b)) & 1)
                spec.indicator.push_back(b);
        }
        comm.allReduce = std::move(spec);
    }
    return comm;
}

ShiftSet
deriveTransitionShift(const OpSpec &op, const PartitionSeq &seq,
                      const DsiTable &dsi, const TensorRef &tensor,
                      Phase from_phase, Phase to_phase)
{
    const auto peers = ringPeers(seq, dsi.numBits());
    return deriveShift(op, dsi, tensor, from_phase, dsi.steps() - 1,
                       to_phase, 0, peers);
}

int
replicationFactor(const OpSpec &op, const DsiTable &dsi,
                  const TensorRef &tensor, Phase phase, int t)
{
    std::map<std::vector<std::int64_t>, int> counts;
    int max_count = 0;
    for (std::int64_t dev = 0; dev < dsi.numDevices(); ++dev) {
        std::vector<std::int64_t> tuple;
        for (int d : op.tensors[tensor.tensor].dims)
            tuple.push_back(dsi.value(phase, dev, t, d));
        max_count = std::max(max_count, ++counts[tuple]);
    }
    return max_count;
}

GroupIndicator
tensorFootprintBits(const OpSpec &op, const DsiTable &dsi,
                    const TensorRef &tensor, Phase phase)
{
    const int n = dsi.numBits();
    GroupIndicator bits;
    for (int b = 0; b < n; ++b) {
        const std::int64_t mask = std::int64_t{1} << (n - 1 - b);
        bool affects = false;
        for (std::int64_t dev = 0; dev < dsi.numDevices() && !affects;
             ++dev) {
            for (int t = 0; t < dsi.steps() && !affects; ++t) {
                for (int d : op.tensors[tensor.tensor].dims) {
                    if (dsi.value(phase, dev, t, d) !=
                        dsi.value(phase, dev ^ mask, t, d)) {
                        affects = true;
                        break;
                    }
                }
            }
        }
        if (affects)
            bits.push_back(b);
    }
    return bits;
}

} // namespace primepar
