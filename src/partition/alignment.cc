#include "alignment.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "support/logging.hh"

namespace primepar {

namespace {

std::vector<std::int64_t>
tupleOf(const OpSpec &op, const DsiTable &dsi, int tensor, Phase phase,
        std::int64_t dev, int t)
{
    std::vector<std::int64_t> tuple;
    for (int d : op.tensors[tensor].dims)
        tuple.push_back(dsi.value(phase, dev, t, d));
    return tuple;
}

} // namespace

VerifyResult
verifyCollectiveFree(const OpSpec &op, const PartitionSeq &seq,
                     const DsiTable &dsi)
{
    for (std::size_t p = 0; p < op.passes.size(); ++p) {
        const PassComm comm =
            derivePassComm(op, seq, dsi, static_cast<int>(p));
        if (comm.allReduce.has_value()) {
            std::ostringstream os;
            os << "pass " << p << " (" << phaseName(op.passes[p].phase)
               << ", output " << op.refName(op.passes[p].output)
               << ") requires an all-reduce with indicator "
               << indicatorToString(comm.allReduce->indicator);
            return {false, os.str()};
        }
    }
    return {};
}

VerifyResult
verifyNoReplication(const OpSpec &op, const DsiTable &dsi)
{
    // Check every tensor in every phase in which it participates.
    for (const auto &pass : op.passes) {
        std::vector<TensorRef> refs = pass.operands;
        refs.push_back(pass.output);
        for (const TensorRef &ref : refs) {
            for (int t = 0; t < dsi.steps(); ++t) {
                const int factor =
                    replicationFactor(op, dsi, ref, pass.phase, t);
                if (factor > 1) {
                    std::ostringstream os;
                    os << "tensor " << op.refName(ref)
                       << " is replicated x" << factor << " in "
                       << phaseName(pass.phase) << " at step " << t;
                    return {false, os.str()};
                }
            }
        }
    }
    return {};
}

VerifyResult
verifyPhaseAlignment(const OpSpec &op, const DsiTable &dsi)
{
    const int last = dsi.steps() - 1;

    // For every tensor, the ordered list of passes using it as operand.
    for (std::size_t tensor = 0; tensor < op.tensors.size(); ++tensor) {
        const TensorRef ref{static_cast<int>(tensor), false};
        std::vector<int> uses;
        for (std::size_t p = 0; p < op.passes.size(); ++p) {
            const auto &ops = op.passes[p].operands;
            if (std::find(ops.begin(), ops.end(), ref) != ops.end())
                uses.push_back(static_cast<int>(p));
        }
        for (std::size_t u = 0; u + 1 < uses.size(); ++u) {
            const Phase from = op.passes[uses[u]].phase;
            const Phase to = op.passes[uses[u + 1]].phase;
            if (from == to)
                continue;
            for (std::int64_t dev = 0; dev < dsi.numDevices(); ++dev) {
                if (tupleOf(op, dsi, ref.tensor, from, dev, last) !=
                    tupleOf(op, dsi, ref.tensor, to, dev, 0)) {
                    std::ostringstream os;
                    os << "tensor " << op.tensors[tensor].name
                       << " misaligned between " << phaseName(from)
                       << " end and " << phaseName(to)
                       << " start on device " << dev;
                    return {false, os.str()};
                }
            }
        }
    }

    // Parameter gradients must end where the parameter starts so the
    // optimizer update W -= lr * dW is local.
    for (const auto &pass : op.passes) {
        if (!pass.output.grad ||
            !op.tensors[pass.output.tensor].isParameter)
            continue;
        const TensorRef param{pass.output.tensor, false};
        int first_use = -1;
        for (std::size_t p = 0; p < op.passes.size(); ++p) {
            const auto &ops = op.passes[p].operands;
            if (std::find(ops.begin(), ops.end(), param) != ops.end()) {
                first_use = static_cast<int>(p);
                break;
            }
        }
        if (first_use < 0)
            continue;
        const Phase start_phase = op.passes[first_use].phase;
        for (std::int64_t dev = 0; dev < dsi.numDevices(); ++dev) {
            if (tupleOf(op, dsi, pass.output.tensor, pass.phase, dev,
                        last) !=
                tupleOf(op, dsi, param.tensor, start_phase, dev, 0)) {
                std::ostringstream os;
                os << "gradient " << op.refName(pass.output)
                   << " ends misaligned with parameter "
                   << op.tensors[param.tensor].name << " on device "
                   << dev;
                return {false, os.str()};
            }
        }
    }
    return {};
}

VerifyResult
verifyContractionCoverage(const OpSpec &op, const DsiTable &dsi)
{
    for (std::size_t p = 0; p < op.passes.size(); ++p) {
        const PassSpec &pass = op.passes[p];

        // Expected cross product size of contracted slices.
        std::int64_t expected = 1;
        for (int d : pass.contracted)
            expected *= dsi.sliceCount(d);

        // block tuple -> multiset (as sorted vector) of contracted
        // tuples contributed by all (device, step) pairs.
        std::map<std::vector<std::int64_t>,
                 std::vector<std::vector<std::int64_t>>>
            contributions;
        for (std::int64_t dev = 0; dev < dsi.numDevices(); ++dev) {
            for (int t = 0; t < dsi.steps(); ++t) {
                auto block = tupleOf(op, dsi, pass.output.tensor,
                                     pass.phase, dev, t);
                std::vector<std::int64_t> contracted;
                for (int d : pass.contracted)
                    contracted.push_back(dsi.value(pass.phase, dev, t, d));
                contributions[block].push_back(std::move(contracted));
            }
        }

        for (auto &[block, tuples] : contributions) {
            std::sort(tuples.begin(), tuples.end());
            if (std::adjacent_find(tuples.begin(), tuples.end()) !=
                tuples.end()) {
                std::ostringstream os;
                os << "pass " << p << ": duplicate contracted slice in "
                   << "an output block of " << op.refName(pass.output);
                return {false, os.str()};
            }
            // Every output block must be covered by the full cross
            // product of contracted slices, across the devices/steps
            // that accumulate into it (summed locally or all-reduced).
            std::set<std::vector<std::int64_t>> unique(tuples.begin(),
                                                       tuples.end());
            if (static_cast<std::int64_t>(unique.size()) != expected) {
                std::ostringstream os;
                os << "pass " << p << ": output block of "
                   << op.refName(pass.output) << " covers "
                   << unique.size() << " contracted slices, expected "
                   << expected;
                return {false, os.str()};
            }
        }
    }
    return {};
}

VerifyResult
verifyAll(const OpSpec &op, const PartitionSeq &seq, const DsiTable &dsi)
{
    if (auto r = verifyContractionCoverage(op, dsi); !r)
        return r;
    if (auto r = verifyCollectiveFree(op, seq, dsi); !r)
        return r;
    if (auto r = verifyNoReplication(op, dsi); !r)
        return r;
    return verifyPhaseAlignment(op, dsi);
}

} // namespace primepar
