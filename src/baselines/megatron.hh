/**
 * @file
 * Megatron-LM baseline strategy generator.
 *
 * Reproduces the hand-designed tensor parallelism of Megatron-LM
 * (paper Sec. 2.1 / 6): column-parallel QKV and fc1 (partition K),
 * row-parallel out-proj and fc2 (partition N), head-parallel attention
 * matmuls and softmax, combined with data parallelism on the batch
 * dimension. Data-parallel bits occupy the high (inter-node) device-id
 * bits, model-parallel bits the low (intra-node) bits — "model
 * parallelism within a node and data parallelism across nodes".
 *
 * LayerNorm / residual / activation ops are sharded along the sequence
 * dimension for the model-parallel bits (Megatron-LM's sequence
 * parallelism); this is *favourable* to the baseline — it removes the
 * activation replication the paper's Fig. 2b criticizes — so PrimePar
 * speedups measured against it are conservative.
 */

#ifndef PRIMEPAR_BASELINES_MEGATRON_HH
#define PRIMEPAR_BASELINES_MEGATRON_HH

#include <optional>
#include <vector>

#include "cost/cost_model.hh"
#include "graph/graph.hh"
#include "optimizer/segmented_dp.hh"

namespace primepar {

/** A (data-parallel, model-parallel) configuration with d * m = 2^n. */
struct MegatronConfig
{
    int dataParallel = 1;
    int modelParallel = 1;
};

/**
 * Generate Megatron strategies for every node of @p graph, or nullopt
 * when the configuration is infeasible (e.g. batch smaller than d).
 */
std::optional<std::vector<PartitionSeq>>
megatronStrategies(const CompGraph &graph, const MegatronConfig &cfg);

/** All (d, m) splits of 2^n devices. */
std::vector<MegatronConfig> megatronConfigs(int num_devices);

/** The best Megatron configuration by total model cost (Eq. 10). */
struct MegatronPlan
{
    MegatronConfig config;
    std::vector<PartitionSeq> strategies;
    double cost = 0.0;
};

/**
 * Enumerate all (d, m) splits, cost each with @p cost_model, and
 * return the best — the paper's Megatron evaluation methodology.
 */
MegatronPlan bestMegatronPlan(const CompGraph &graph,
                              const CostModel &cost_model);

/**
 * Alpa-like baseline: the optimal plan in the *conventional* spatial
 * partition space (the segmented DP with the PSquare primitive
 * disabled).
 */
DpResult alpaOptimize(const CompGraph &graph, const CostModel &cost,
                      int num_layers = 1);

/**
 * Same, with full planner options (thread count, catalog cache, extra
 * space knobs); allowPSquare is forced off.
 */
DpResult alpaOptimize(const CompGraph &graph, const CostModel &cost,
                      DpOptions opts);

} // namespace primepar

#endif // PRIMEPAR_BASELINES_MEGATRON_HH
