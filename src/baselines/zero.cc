#include "zero.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace primepar {

const char *
zeroStageName(ZeroStage stage)
{
    switch (stage) {
      case ZeroStage::None:
        return "DP";
      case ZeroStage::One:
        return "ZeRO-1";
      case ZeroStage::Two:
        return "ZeRO-2";
      case ZeroStage::Three:
        return "ZeRO-3";
    }
    return "?";
}

ZeroResult
evaluateZero(const ModelConfig &model, const ClusterTopology &topo,
             std::int64_t batch, ZeroStage stage)
{
    const int devices = topo.numDevices();
    PRIMEPAR_ASSERT(batch % devices == 0,
                    "global batch must divide across the replicas");

    ZeroResult result;
    result.stage = stage;

    // Compute: simulate the transformer block under pure data
    // parallelism (B on every device-id bit) — ZeRO does not change
    // the computation, only state placement and collectives.
    const CompGraph graph =
        buildTransformerBlock(model, batch);
    std::vector<PartitionSeq> strategies;
    for (int n = 0; n < graph.numNodes(); ++n) {
        PartitionSeq seq;
        const int b_dim = graph.node(n).dimIndex("B");
        for (int b = 0; b < topo.numBits(); ++b)
            seq.push(PartitionStep::byDim(b_dim));
        PRIMEPAR_ASSERT(seq.validate(graph.node(n)).empty(),
                        "batch too small for pure data parallelism");
        strategies.push_back(std::move(seq));
    }
    const ModelSimulator sim(topo, graph, std::move(strategies));
    const ModelSimResult block = sim.simulate(model.numLayers);
    // Remove the gradient all-reduce the simulator already charged:
    // ZeRO replaces it stage-dependently below.
    result.computeUs = block.computeUs;
    const double base_latency = block.latencyUs - block.allReduceUs;

    // State bytes (whole model): fp16 weights and gradients, fp32
    // Adam moments.
    const double params = model.totalParams();
    const double w_bytes = params * 2.0;
    const double g_bytes = params * 2.0;
    const double o_bytes = params * 8.0;
    const double d = static_cast<double>(devices);

    double state = 0.0;
    switch (stage) {
      case ZeroStage::None:
        state = w_bytes + g_bytes + o_bytes;
        break;
      case ZeroStage::One:
        state = w_bytes + g_bytes + o_bytes / d;
        break;
      case ZeroStage::Two:
        state = w_bytes + (g_bytes + o_bytes) / d;
        break;
      case ZeroStage::Three:
        state = (w_bytes + g_bytes + o_bytes) / d;
        break;
    }

    // Activations: the simulator's stash already reflects the 1/d
    // batch share; its param accounting (weight+grad, possibly
    // replicated) is replaced by the ZeRO state above.
    const double activations = block.stashBytes +
                               (block.peakMemoryBytes -
                                block.paramBytes - block.stashBytes);
    result.peakMemoryBytes = state + activations;
    result.feasible = result.peakMemoryBytes <=
                      static_cast<double>(
                          topo.deviceSpec().memory_bytes);

    // Collectives over the full device group.
    DeviceGroup all;
    for (int dev = 0; dev < devices; ++dev)
        all.push_back(dev);
    double collective = 0.0;
    switch (stage) {
      case ZeroStage::None:
      case ZeroStage::One:
        collective = ringAllReduceDuration(topo, all, g_bytes);
        break;
      case ZeroStage::Two:
        collective = reduceScatterDuration(topo, all, g_bytes);
        break;
      case ZeroStage::Three:
        // Reduce-scatter of gradients plus parameter all-gathers in
        // both the forward and backward passes (all-gather = half an
        // all-reduce of the same payload).
        collective = reduceScatterDuration(topo, all, g_bytes) +
                     2.0 * reduceScatterDuration(topo, all, w_bytes);
        break;
    }
    result.collectiveUs = collective;
    result.iterationUs = base_latency + collective;
    return result;
}

} // namespace primepar
