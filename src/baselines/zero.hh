/**
 * @file
 * ZeRO-style data parallelism baseline (paper Sec. 8 related work).
 *
 * ZeRO attacks the same replication problem as PrimePar's feature 2,
 * but differently: it keeps pure data parallelism and shards the
 * redundant training state across the replicas, paying reduce-scatter
 * and all-gather collectives. This module models the three ZeRO
 * stages analytically on top of the cluster simulator so the trade-off
 * against spatial-temporal tensor partitioning can be quantified:
 * ZeRO removes memory redundancy but *adds* collective traffic, while
 * the PSquare primitive removes both.
 */

#ifndef PRIMEPAR_BASELINES_ZERO_HH
#define PRIMEPAR_BASELINES_ZERO_HH

#include "graph/transformer.hh"
#include "sim/model_sim.hh"

namespace primepar {

/** Which training state is sharded across the data-parallel group. */
enum class ZeroStage
{
    None,  ///< plain data parallelism (everything replicated)
    One,   ///< optimizer states sharded
    Two,   ///< + gradients sharded
    Three, ///< + parameters sharded (gathered on the fly)
};

/** Printable stage name. */
const char *zeroStageName(ZeroStage stage);

/** Evaluation of one ZeRO configuration. */
struct ZeroResult
{
    ZeroStage stage = ZeroStage::None;
    double iterationUs = 0.0;
    double computeUs = 0.0;
    double collectiveUs = 0.0;
    double peakMemoryBytes = 0.0;
    bool feasible = true;
};

/**
 * Evaluate ZeRO-@p stage data parallelism of @p model over the whole
 * cluster: batch split d = numDevices ways, per-iteration gradient
 * synchronization and (for stage 3) parameter gathers modelled as
 * ring collectives over the full device group.
 *
 * @param batch global batch (must be divisible by the device count)
 */
ZeroResult evaluateZero(const ModelConfig &model,
                        const ClusterTopology &topo, std::int64_t batch,
                        ZeroStage stage);

} // namespace primepar

#endif // PRIMEPAR_BASELINES_ZERO_HH
