#include "megatron.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace primepar {

namespace {

/** The dimension Megatron shards for the model-parallel bits. */
int
modelParallelDim(const OpSpec &op)
{
    if (op.kind == "linear") {
        // Column-parallel first linear of each pair, row-parallel
        // second (Megatron's f/g operator pairing).
        if (op.name == "qkv" || op.name == "fc1")
            return op.dimIndex("K");
        return op.dimIndex("N");
    }
    if (op.kind == "matmul" || op.kind == "softmax")
        return op.dimIndex("Hd");
    // layernorm / add / elementwise: sequence sharding. The gelu/relu
    // between fc1 and fc2 shards the ffn dim to stay aligned with the
    // column-parallel fc1 output.
    for (const char *ffn_dim : {"F"}) {
        for (std::size_t d = 0; d < op.dims.size(); ++d) {
            if (op.dims[d].name == ffn_dim)
                return static_cast<int>(d);
        }
    }
    return op.dimIndex("M");
}

} // namespace

std::optional<std::vector<PartitionSeq>>
megatronStrategies(const CompGraph &graph, const MegatronConfig &cfg)
{
    const int d_bits = log2Exact(cfg.dataParallel);
    const int m_bits = log2Exact(cfg.modelParallel);

    std::vector<PartitionSeq> strategies;
    for (int n = 0; n < graph.numNodes(); ++n) {
        const OpSpec &op = graph.node(n);
        PartitionSeq seq;
        const int batch = op.dimIndex("B");
        for (int b = 0; b < d_bits; ++b)
            seq.push(PartitionStep::byDim(batch));
        const int mp_dim = modelParallelDim(op);
        for (int b = 0; b < m_bits; ++b)
            seq.push(PartitionStep::byDim(mp_dim));
        if (!seq.validate(op).empty())
            return std::nullopt;
        strategies.push_back(std::move(seq));
    }
    return strategies;
}

std::vector<MegatronConfig>
megatronConfigs(int num_devices)
{
    std::vector<MegatronConfig> configs;
    for (int d = 1; d <= num_devices; d *= 2)
        configs.push_back({d, num_devices / d});
    return configs;
}

MegatronPlan
bestMegatronPlan(const CompGraph &graph, const CostModel &cost_model)
{
    const int devices = cost_model.topology().numDevices();
    MegatronPlan best;
    bool found = false;
    for (const MegatronConfig &cfg : megatronConfigs(devices)) {
        const auto strategies = megatronStrategies(graph, cfg);
        if (!strategies.has_value())
            continue;

        double total = 0.0;
        std::vector<OpPlan> plans;
        plans.reserve(graph.numNodes());
        for (int n = 0; n < graph.numNodes(); ++n) {
            plans.emplace_back(graph.node(n), (*strategies)[n],
                               cost_model.topology().numBits());
            total += cost_model.intraCost(plans.back()).weighted;
        }
        for (const GraphEdge &e : graph.edges()) {
            const OpSpec &producer = graph.node(e.src);
            const OpSpec &consumer = graph.node(e.dst);
            const auto sizes = graph.transferSizes(e);
            EdgeDimMap consumer_map;
            for (int dim : consumer.tensors[e.dstTensor].dims)
                consumer_map.push_back(dim);
            const auto have = layoutOf(
                producer, plans[e.src].dsi,
                {producer.outputTensor, false}, Phase::Forward,
                plans[e.src].dsi.steps() - 1, e.dimMap, sizes);
            const auto need = layoutOf(
                consumer, plans[e.dst].dsi, {e.dstTensor, false},
                Phase::Forward, 0, consumer_map, sizes);
            const auto have_b = layoutOf(
                consumer, plans[e.dst].dsi, {e.dstTensor, true},
                Phase::Backward, plans[e.dst].dsi.steps() - 1,
                consumer_map, sizes);
            const auto need_b = layoutOf(
                producer, plans[e.src].dsi,
                {producer.outputTensor, true}, Phase::Backward, 0,
                e.dimMap, sizes);
            const auto f = cost_model.trafficSplit(have, need);
            const auto b = cost_model.trafficSplit(have_b, need_b);
            const double bpe = consumer.bytesPerElement;
            total += cost_model.redistLatencyUs(
                static_cast<double>(f.intraNode + b.intraNode) * bpe,
                static_cast<double>(f.interNode + b.interNode) * bpe);
        }

        if (!found || total < best.cost) {
            found = true;
            best.config = cfg;
            best.strategies = *strategies;
            best.cost = total;
        }
    }
    PRIMEPAR_ASSERT(found, "no feasible Megatron configuration");
    return best;
}

DpResult
alpaOptimize(const CompGraph &graph, const CostModel &cost,
             int num_layers)
{
    DpOptions opts;
    opts.numLayers = num_layers;
    return alpaOptimize(graph, cost, std::move(opts));
}

DpResult
alpaOptimize(const CompGraph &graph, const CostModel &cost,
             DpOptions opts)
{
    opts.space.allowPSquare = false;
    return SegmentedDpOptimizer(graph, cost, std::move(opts)).optimize();
}

} // namespace primepar
