/**
 * @file
 * The plan service: request admission, single-flight coalescing, and
 * the persistent store behind the daemon.
 *
 * One PlanService instance is shared by every server connection. A
 * request flows through four layers, cheapest first:
 *
 *   1. the mmap'd persistent store snapshot ("store") — survives
 *      restarts, shared read-only by all threads, microseconds;
 *   2. the in-process CatalogCache whole-plan memo ("cache");
 *   3. single-flight coalescing ("flight") — concurrent identical
 *      requests block on the one DP already computing their key, so
 *      a thundering herd costs exactly one DP run;
 *   4. a fresh multithreaded DP run ("dp"), admitted through a
 *      bounded slot count so a burst of *distinct* requests cannot
 *      fork an unbounded number of planner thread pools.
 *
 * After a DP run the leader merges the new plan into the store image
 * and republishes it atomically (tmp + rename), then remaps — so the
 * next restart, and every other process watching the same path,
 * starts warm.
 *
 * Metrics (serve.* namespace, primepar-metrics-v1 schema):
 *   serve.requests, serve.store_hits, serve.cache_hits,
 *   serve.coalesced, serve.dp_runs, serve.errors,
 *   serve.store_writes  — counters;
 *   serve.request_us    — end-to-end service latency histogram
 *                         (p50/p90/p99 in snapshots).
 */

#ifndef PRIMEPAR_SERVE_PLAN_SERVICE_HH
#define PRIMEPAR_SERVE_PLAN_SERVICE_HH

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "optimizer/catalog_cache.hh"
#include "plan_store.hh"
#include "serve_protocol.hh"

namespace primepar {

class MetricsRegistry;

struct PlanServiceOptions
{
    /** Persistent store path; empty disables persistence (the
     *  in-process caches still work). */
    std::string storePath;
    /** Concurrent DP runs admitted; further distinct requests queue. */
    int dpSlots = 2;
    /** Planner threads per DP run; 0 = hardware concurrency. */
    int dpThreads = 0;
    /** Metrics sink; nullptr = service-owned registry. */
    MetricsRegistry *metrics = nullptr;
};

/** Thread-safe planning engine; see the file comment for the flow. */
class PlanService
{
  public:
    explicit PlanService(PlanServiceOptions opts);

    /** Serve one request. Never throws: failures come back as
     *  !ok responses with a diagnostic. */
    PlanResponse plan(const PlanRequest &req);

    /** Metrics snapshot plus store state (entries, generation). */
    JsonValue statsJson() const;

    MetricsRegistry &metricsRegistry() { return *metrics; }

    /** Resident persistent-store snapshot size (for tests). */
    std::size_t storeSize() const;

  private:
    /** One in-flight DP computation; waiters block on cv. */
    struct Flight
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        std::shared_ptr<const PlanCacheEntry> entry;
        std::string error;
    };

    std::shared_ptr<const PlanStore> storeSnapshot() const;
    void persist(const std::string &key, const PlanCacheEntry &entry);

    PlanServiceOptions opts;
    std::unique_ptr<MetricsRegistry> ownedMetrics;
    MetricsRegistry *metrics = nullptr;

    /** Shared across DP runs: catalogs, segments, whole plans. */
    std::shared_ptr<CatalogCache> cache;

    mutable std::mutex mu;
    std::condition_variable slotCv;
    int slotsInUse = 0;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights;
    std::shared_ptr<const PlanStore> store;

    /** Serializes merge-and-republish of the store file. */
    std::mutex storeMu;
};

} // namespace primepar

#endif // PRIMEPAR_SERVE_PLAN_SERVICE_HH
