/**
 * @file
 * Plan-service request/response documents.
 *
 * A plan request names everything a deterministic planning run needs:
 * the model (by evaluation-model name), the cluster size, the batch,
 * and the planner knobs. Client and daemon exchange these as JSON
 * bodies inside the distributed runtime's PPF1 Ctrl / CtrlResp frames
 * (verb "plan"), so the serving plane reuses the existing framing,
 * checksumming, and deadline machinery instead of inventing a second
 * wire format.
 *
 * Responses carry the chosen partition sequences exactly (per-step
 * kind/dim/k, not rendered text), so a client can reconstruct the
 * PartitionSeq bit-identically to what the planner produced — the
 * property the store round-trip tests pin down.
 */

#ifndef PRIMEPAR_SERVE_SERVE_PROTOCOL_HH
#define PRIMEPAR_SERVE_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "partition/partition_step.hh"
#include "support/json.hh"

namespace primepar {

/** One planning request (model spec + topology + planner knobs). */
struct PlanRequest
{
    /** Evaluation-model name (modelByName). */
    std::string model = "OPT 6.7B";
    /** Cluster size (positive power of two). */
    int devices = 8;
    /** Micro-batch size. */
    std::int64_t batch = 8;
    /** Stacked layers; 0 = the model's default depth. */
    int layers = 0;
    /** Cost-model alpha (us per MiB latency skew); 0 = default. */
    double alpha = 0.0;
    /** Include the spatial-temporal PSquare primitive. */
    bool psquare = true;
    /** Allow partitioning the batch dimension. */
    bool batchDim = true;
    /** 0 = exact; > 0 = certified-gap beam. */
    int beamWidth = 0;
    /** 0 = unbounded; else power-of-two temporal-step cap. */
    int maxTemporalSteps = 0;

    JsonValue toJson() const;
    /** Throws JsonError on malformed documents. */
    static PlanRequest fromJson(const JsonValue &doc);
    /** Throws InputError on out-of-range fields. */
    void validate() const;
    /** Short human-readable spec ("OPT 6.7B x32 b8 ..."). */
    std::string summary() const;
};

/** Answer to one plan request. */
struct PlanResponse
{
    bool ok = false;
    /** Diagnostic when !ok. */
    std::string error;
    /** Where the plan came from: "store" (persistent mmap'd store),
     *  "cache" (in-process plan memo), "flight" (coalesced onto a
     *  concurrent identical request), or "dp" (fresh DP run). */
    std::string source;
    /** Chosen partition sequence per graph node. */
    std::vector<PartitionSeq> strategies;
    /** strategies rendered against the graph ("M,P2x2,N" form). */
    std::vector<std::string> strategyText;
    double layerCostUs = 0.0;
    double totalCostUs = 0.0;
    /** Certified suboptimality bound (0 = provably optimal). */
    double gapPct = 0.0;
    bool truncated = false;
    /** Server-side service time for this request, microseconds. */
    double serverUs = 0.0;

    JsonValue toJson() const;
    static PlanResponse fromJson(const JsonValue &doc);
};

/** Exact JSON form of one partition sequence: an array of step
 *  strings, "dN" for ByDim(N) and "pK" for PSquare(k=K). */
JsonValue partitionSeqToJson(const PartitionSeq &seq);
PartitionSeq partitionSeqFromJson(const JsonValue &doc);

/** Control-plane verbs the plan daemon understands. */
inline constexpr const char *kServeVerbPlan = "plan";
inline constexpr const char *kServeVerbStats = "stats";
inline constexpr const char *kServeVerbPing = "ping";
inline constexpr const char *kServeVerbShutdown = "shutdown";

} // namespace primepar

#endif // PRIMEPAR_SERVE_SERVE_PROTOCOL_HH
