#include "plan_store.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "runtime/fault.hh"

namespace primepar {

namespace {

using plan_store_format::kHeaderBytes;
using plan_store_format::kMagic;
using plan_store_format::kVersion;

/**
 * Header layout (offsets in bytes; all fields little-endian
 * host-order — the magic doubles as an endianness check):
 *   0  u32 magic        8  u64 entryCount   24 u64 payloadBytes
 *   4  u32 version     16  u64 indexOffset  32 u64 checksum
 *  40  u64 generation  48..63 reserved (zero)
 * indexOffset and record offsets are relative to the end of the
 * header. checksum covers bytes [kHeaderBytes, fileSize).
 */
struct StoreHeader
{
    std::uint32_t magic = kMagic;
    std::uint32_t version = kVersion;
    std::uint64_t entryCount = 0;
    std::uint64_t indexOffset = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t checksum = 0;
    std::uint64_t generation = 0;
    std::uint64_t reserved0 = 0;
    std::uint64_t reserved1 = 0;
};
static_assert(sizeof(StoreHeader) == kHeaderBytes,
              "PPS1 header must be exactly 64 bytes");

/** Fixed-size head of one record; key bytes and strategies follow. */
struct RecordHead
{
    std::uint32_t keyBytes = 0;
    std::uint32_t numStrategies = 0;
    std::uint32_t truncated = 0;
    std::uint32_t reserved = 0;
    double layerCost = 0.0;
    double totalCost = 0.0;
    double lowerBoundUs = 0.0;
    double gapPct = 0.0;
    std::int64_t candidatesTotal = 0;
    std::int64_t candidatesKept = 0;
};
static_assert(sizeof(RecordHead) == 64, "record head layout drifted");

void
appendBytes(std::vector<std::uint8_t> &out, const void *p,
            std::size_t n)
{
    const std::uint8_t *b = static_cast<const std::uint8_t *>(p);
    out.insert(out.end(), b, b + n);
}

template <typename T>
void
appendPod(std::vector<std::uint8_t> &out, const T &v)
{
    appendBytes(out, &v, sizeof(v));
}

/** Bounds-checked unaligned read out of the mapped payload. */
template <typename T>
bool
readPod(const std::uint8_t *base, std::size_t size, std::size_t &off,
        T &out)
{
    if (off + sizeof(T) > size)
        return false;
    std::memcpy(&out, base + off, sizeof(T));
    off += sizeof(T);
    return true;
}

/** Per-step wire form: i32 kind, i32 dim, i32 k. */
struct StepWire
{
    std::int32_t kind = 0;
    std::int32_t dim = -1;
    std::int32_t k = 0;
};
static_assert(sizeof(StepWire) == 12, "step wire layout drifted");

bool
decodeRecord(const std::uint8_t *payload, std::size_t payloadSize,
             std::size_t off, std::string *key, PlanCacheEntry *entry)
{
    RecordHead head;
    if (!readPod(payload, payloadSize, off, head))
        return false;
    if (off + head.keyBytes > payloadSize)
        return false;
    if (key)
        key->assign(reinterpret_cast<const char *>(payload + off),
                    head.keyBytes);
    off += head.keyBytes;

    entry->layerCost = head.layerCost;
    entry->totalCost = head.totalCost;
    entry->lowerBoundUs = head.lowerBoundUs;
    entry->gapPct = head.gapPct;
    entry->candidatesTotal = head.candidatesTotal;
    entry->candidatesKept = head.candidatesKept;
    entry->truncated = head.truncated != 0;
    entry->strategies.clear();
    entry->strategies.reserve(head.numStrategies);
    for (std::uint32_t s = 0; s < head.numStrategies; ++s) {
        std::uint32_t numSteps = 0;
        if (!readPod(payload, payloadSize, off, numSteps))
            return false;
        PartitionSeq seq;
        for (std::uint32_t i = 0; i < numSteps; ++i) {
            StepWire w;
            if (!readPod(payload, payloadSize, off, w))
                return false;
            PartitionStep step;
            step.kind = w.kind == 0 ? PartitionStep::Kind::ByDim
                                    : PartitionStep::Kind::PSquare;
            step.dim = w.dim;
            step.k = w.k;
            seq.push(step);
        }
        entry->strategies.push_back(std::move(seq));
    }
    return true;
}

void
fail(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
}

} // namespace

PlanStore
PlanStore::load(const std::string &path, std::string *error)
{
    PlanStore store;
    // A store that has never been written is a normal first-boot
    // state, not corruption.
    if (::access(path.c_str(), F_OK) != 0 && errno == ENOENT) {
        store.ok = true;
        return store;
    }
    std::string mapError;
    MmapFile m = MmapFile::openReadOnly(path, &mapError);
    if (!m.valid()) {
        fail(error, mapError);
        return store;
    }
    if (m.size() == 0) { // freshly truncated / placeholder file
        store.ok = true;
        return store;
    }
    if (m.size() < kHeaderBytes) {
        fail(error, "plan store '" + path + "' is truncated (" +
                        std::to_string(m.size()) + " bytes)");
        return store;
    }
    StoreHeader hdr;
    std::memcpy(&hdr, m.data(), sizeof(hdr));
    if (hdr.magic != kMagic) {
        fail(error, "plan store '" + path +
                        "' has bad magic (not a PPS1 file, or written "
                        "on a different-endian host)");
        return store;
    }
    if (hdr.version != kVersion) {
        fail(error, "plan store '" + path + "' is format version " +
                        std::to_string(hdr.version) +
                        "; this build reads version " +
                        std::to_string(kVersion));
        return store;
    }
    const std::size_t payloadSize = m.size() - kHeaderBytes;
    if (hdr.payloadBytes != payloadSize) {
        fail(error, "plan store '" + path + "' is truncated: header "
                        "promises " +
                        std::to_string(hdr.payloadBytes) +
                        " payload bytes, file has " +
                        std::to_string(payloadSize));
        return store;
    }
    const std::uint8_t *payload = m.data() + kHeaderBytes;
    const std::uint64_t sum = checksumBytes(payload, payloadSize);
    if (sum != hdr.checksum) {
        fail(error, "plan store '" + path +
                        "' failed checksum validation (corrupted)");
        return store;
    }
    // The index section: entryCount u64 offsets at indexOffset.
    if (hdr.indexOffset > payloadSize ||
        hdr.entryCount > payloadSize / sizeof(std::uint64_t) ||
        hdr.entryCount * sizeof(std::uint64_t) !=
            payloadSize - hdr.indexOffset) {
        fail(error,
             "plan store '" + path + "' has a malformed index section");
        return store;
    }
    store.index.reserve(hdr.entryCount);
    for (std::uint64_t i = 0; i < hdr.entryCount; ++i) {
        std::uint64_t off = 0;
        std::memcpy(&off,
                    payload + hdr.indexOffset +
                        i * sizeof(std::uint64_t),
                    sizeof(off));
        std::string key;
        PlanCacheEntry entry;
        if (off >= hdr.indexOffset ||
            !decodeRecord(payload, hdr.indexOffset,
                          static_cast<std::size_t>(off), &key,
                          &entry)) {
            fail(error, "plan store '" + path + "' record " +
                            std::to_string(i) + " is malformed");
            store.index.clear();
            return store;
        }
        store.index.emplace(std::move(key), off);
    }
    store.gen = hdr.generation;
    store.map = std::move(m);
    store.ok = true;
    return store;
}

std::shared_ptr<const PlanCacheEntry>
PlanStore::find(const std::string &key) const
{
    const auto it = index.find(key);
    if (it == index.end())
        return nullptr;
    auto entry = std::make_shared<PlanCacheEntry>();
    // Records were fully validated at load; decode cannot fail here.
    decodeRecord(map.data() + plan_store_format::kHeaderBytes,
                 map.size() - plan_store_format::kHeaderBytes,
                 static_cast<std::size_t>(it->second), nullptr,
                 entry.get());
    return entry;
}

std::vector<std::pair<std::string, PlanCacheEntry>>
PlanStore::entries() const
{
    std::vector<std::pair<std::string, PlanCacheEntry>> out;
    out.reserve(index.size());
    for (const auto &[key, off] : index) {
        PlanCacheEntry entry;
        decodeRecord(map.data() + plan_store_format::kHeaderBytes,
                     map.size() - plan_store_format::kHeaderBytes,
                     static_cast<std::size_t>(off), nullptr, &entry);
        out.emplace_back(key, std::move(entry));
    }
    return out;
}

void
PlanStoreBuilder::put(const std::string &key,
                      const PlanCacheEntry &entry)
{
    plans[key] = entry;
}

std::vector<std::uint8_t>
PlanStoreBuilder::serialize(std::uint64_t generation) const
{
    std::vector<std::uint8_t> payload;
    std::vector<std::uint64_t> offsets;
    offsets.reserve(plans.size());
    for (const auto &[key, entry] : plans) {
        offsets.push_back(payload.size());
        RecordHead head;
        head.keyBytes = static_cast<std::uint32_t>(key.size());
        head.numStrategies =
            static_cast<std::uint32_t>(entry.strategies.size());
        head.truncated = entry.truncated ? 1 : 0;
        head.layerCost = entry.layerCost;
        head.totalCost = entry.totalCost;
        head.lowerBoundUs = entry.lowerBoundUs;
        head.gapPct = entry.gapPct;
        head.candidatesTotal = entry.candidatesTotal;
        head.candidatesKept = entry.candidatesKept;
        appendPod(payload, head);
        appendBytes(payload, key.data(), key.size());
        for (const PartitionSeq &seq : entry.strategies) {
            appendPod(payload, static_cast<std::uint32_t>(
                                   seq.steps().size()));
            for (const PartitionStep &step : seq.steps()) {
                StepWire w;
                w.kind =
                    step.kind == PartitionStep::Kind::ByDim ? 0 : 1;
                w.dim = step.dim;
                w.k = step.k;
                appendPod(payload, w);
            }
        }
    }
    StoreHeader hdr;
    hdr.entryCount = plans.size();
    hdr.indexOffset = payload.size();
    hdr.generation = generation;
    for (const std::uint64_t off : offsets)
        appendPod(payload, off);
    hdr.payloadBytes = payload.size();
    hdr.checksum = checksumBytes(payload.data(), payload.size());

    std::vector<std::uint8_t> out;
    out.reserve(sizeof(hdr) + payload.size());
    appendPod(out, hdr);
    appendBytes(out, payload.data(), payload.size());
    return out;
}

bool
PlanStoreBuilder::save(const std::string &path,
                       std::uint64_t generation,
                       std::string *error) const
{
    const std::vector<std::uint8_t> image = serialize(generation);
    return atomicWriteFile(path, image.data(), image.size(), error);
}

} // namespace primepar
