#include "plan_client.hh"

#include "runtime/errors.hh"
#include "runtime/fault.hh"

namespace primepar {

PlanClient::PlanClient(const std::string &host, int port,
                       int connect_deadline_ms)
{
    sock = netConnect(host, port, connect_deadline_ms);
    if (!sock.valid()) {
        throw RuntimeError("plan server at " + host + ":" +
                           std::to_string(port) +
                           " is not reachable");
    }
}

JsonValue
PlanClient::call(const char *verb, const JsonValue &body,
                 int deadline_ms)
{
    WireFrame f;
    f.type = FrameType::Ctrl;
    f.tensor = verb;
    f.seq = ++seq;
    const std::string text = body.toString(0);
    f.payload.assign(text.begin(), text.end());
    f.checksum = checksumBytes(f.payload.data(), f.payload.size());
    const IoResult wrote = writeFrame(sock, f, deadline_ms);
    if (wrote != IoResult::Ok) {
        throw RuntimeError(std::string("sending '") + verb +
                           "' request failed: " +
                           ioResultName(wrote));
    }
    WireFrame resp;
    const IoResult got = readFrame(sock, resp, deadline_ms);
    if (got != IoResult::Ok) {
        throw RuntimeError(std::string("waiting for '") + verb +
                           "' response failed: " +
                           ioResultName(got));
    }
    if (resp.type != FrameType::CtrlResp || resp.tensor != verb ||
        resp.seq != f.seq) {
        throw RuntimeError(std::string("mismatched response to '") +
                           verb + "' (got verb '" + resp.tensor +
                           "')");
    }
    if (checksumBytes(resp.payload.data(), resp.payload.size()) !=
        resp.checksum) {
        throw RuntimeError(std::string("response to '") + verb +
                           "' failed checksum validation");
    }
    return parseJson(
        std::string(resp.payload.begin(), resp.payload.end()));
}

PlanResponse
PlanClient::plan(const PlanRequest &req, int deadline_ms)
{
    return PlanResponse::fromJson(
        call(kServeVerbPlan, req.toJson(), deadline_ms));
}

JsonValue
PlanClient::stats(int deadline_ms)
{
    return call(kServeVerbStats, JsonValue::object(), deadline_ms);
}

bool
PlanClient::ping(int deadline_ms)
{
    const JsonValue doc =
        call(kServeVerbPing, JsonValue::object(), deadline_ms);
    return doc.at("ok").asBool();
}

bool
PlanClient::shutdown(int deadline_ms)
{
    const JsonValue doc =
        call(kServeVerbShutdown, JsonValue::object(), deadline_ms);
    return doc.at("ok").asBool();
}

} // namespace primepar
