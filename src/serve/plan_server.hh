/**
 * @file
 * The plan daemon's network front end.
 *
 * PlanServer accepts connections on the distributed runtime's PPF1
 * wire format and answers control frames: Ctrl("plan") with a
 * PlanRequest JSON body runs through the shared PlanService (store →
 * memo → single-flight → admitted DP) and comes back as
 * CtrlResp("plan") carrying the PlanResponse; Ctrl("stats") returns
 * the metrics snapshot; Ctrl("ping") answers liveness probes;
 * Ctrl("shutdown") acknowledges and stops the server.
 *
 * Each connection gets its own handler thread, so one client's
 * multi-second cold plan never blocks another's microsecond store
 * hit, and concurrent identical requests from different connections
 * coalesce onto one DP run inside the service.
 */

#ifndef PRIMEPAR_SERVE_PLAN_SERVER_HH
#define PRIMEPAR_SERVE_PLAN_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "plan_service.hh"
#include "runtime/net.hh"

namespace primepar {

struct PlanServerOptions
{
    /** Listen port; 0 = kernel-assigned ephemeral. */
    int port = 0;
    PlanServiceOptions service;
};

class PlanServer
{
  public:
    /** Binds, loads the store, and starts accepting. Throws
     *  RuntimeError when the port cannot be bound. */
    explicit PlanServer(PlanServerOptions opts);
    ~PlanServer();

    PlanServer(const PlanServer &) = delete;
    PlanServer &operator=(const PlanServer &) = delete;

    /** The actually bound port. */
    int port() const { return listener.port(); }

    PlanService &service() { return *svc; }

    /** Block until a shutdown verb arrives, or @p timeout_ms passes
     *  (negative = wait forever). Returns true when shutdown was
     *  requested — the daemon main loop polls this so a signal
     *  handler's flag is also honoured. */
    bool waitForShutdown(int timeout_ms = -1);

    /** Stop accepting, close connections, join all threads.
     *  Idempotent; also invoked by the destructor. */
    void stop();

  private:
    struct Connection
    {
        std::thread thread;
        std::atomic<bool> finished{false};
    };

    void acceptLoop();
    void serveConnection(NetSocket sock, Connection *slot);
    void reapFinishedLocked();

    PlanServerOptions opts;
    std::unique_ptr<PlanService> svc;
    NetListener listener;

    std::atomic<bool> stopping{false};
    std::atomic<bool> shutdownRequested{false};
    std::mutex mu;
    std::condition_variable shutdownCv;
    std::list<Connection> connections;
    std::thread acceptThread;
};

} // namespace primepar

#endif // PRIMEPAR_SERVE_PLAN_SERVER_HH
