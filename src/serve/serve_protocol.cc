#include "serve_protocol.hh"

#include <cmath>

#include "graph/transformer.hh"
#include "runtime/errors.hh"

namespace primepar {

namespace {

bool
isPow2(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

int
intField(const JsonValue &doc, const char *key, int fallback)
{
    const JsonValue *v = doc.find(key);
    return v ? static_cast<int>(v->asNumber()) : fallback;
}

bool
boolField(const JsonValue &doc, const char *key, bool fallback)
{
    const JsonValue *v = doc.find(key);
    return v ? v->asBool() : fallback;
}

double
numField(const JsonValue &doc, const char *key, double fallback)
{
    const JsonValue *v = doc.find(key);
    return v ? v->asNumber() : fallback;
}

} // namespace

JsonValue
partitionSeqToJson(const PartitionSeq &seq)
{
    JsonValue arr = JsonValue::array();
    for (const PartitionStep &s : seq.steps()) {
        if (s.kind == PartitionStep::Kind::ByDim)
            arr.push("d" + std::to_string(s.dim));
        else
            arr.push("p" + std::to_string(s.k));
    }
    return arr;
}

PartitionSeq
partitionSeqFromJson(const JsonValue &doc)
{
    PartitionSeq seq;
    for (const JsonValue &item : doc.items()) {
        const std::string &tok = item.asString();
        if (tok.size() < 2 || (tok[0] != 'd' && tok[0] != 'p'))
            throw JsonError("bad partition step token '" + tok + "'");
        const int v = std::atoi(tok.c_str() + 1);
        if (tok[0] == 'd')
            seq.push(PartitionStep::byDim(v));
        else
            seq.push(PartitionStep::pSquare(v));
    }
    return seq;
}

JsonValue
PlanRequest::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("model", model);
    doc.set("devices", devices);
    doc.set("batch", static_cast<std::int64_t>(batch));
    doc.set("layers", layers);
    doc.set("alpha", alpha);
    doc.set("psquare", psquare);
    doc.set("batch_dim", batchDim);
    doc.set("beam_width", beamWidth);
    doc.set("max_temporal_steps", maxTemporalSteps);
    return doc;
}

PlanRequest
PlanRequest::fromJson(const JsonValue &doc)
{
    PlanRequest req;
    if (const JsonValue *m = doc.find("model"))
        req.model = m->asString();
    req.devices = intField(doc, "devices", req.devices);
    req.batch = static_cast<std::int64_t>(
        numField(doc, "batch", static_cast<double>(req.batch)));
    req.layers = intField(doc, "layers", req.layers);
    req.alpha = numField(doc, "alpha", req.alpha);
    req.psquare = boolField(doc, "psquare", req.psquare);
    req.batchDim = boolField(doc, "batch_dim", req.batchDim);
    req.beamWidth = intField(doc, "beam_width", req.beamWidth);
    req.maxTemporalSteps =
        intField(doc, "max_temporal_steps", req.maxTemporalSteps);
    return req;
}

void
PlanRequest::validate() const
{
    // modelByName treats an unknown name as a fatal internal error;
    // here it is caller input, so reject it with the known names.
    bool known = false;
    std::string names;
    for (const ModelConfig &m : evaluationModels()) {
        known = known || m.name == model;
        names += (names.empty() ? "" : ", ") + m.name;
    }
    if (!known) {
        throw InputError("unknown model '" + model + "' (known: " +
                         names + ")");
    }
    if (!isPow2(devices)) {
        throw InputError("devices must be a positive power of two "
                         "(got " +
                         std::to_string(devices) + ")");
    }
    if (batch < 1) {
        throw InputError("batch must be >= 1 (got " +
                         std::to_string(batch) + ")");
    }
    if (layers < 0) {
        throw InputError("layers must be >= 0 (got " +
                         std::to_string(layers) + ")");
    }
    if (alpha < 0.0 || !std::isfinite(alpha))
        throw InputError("alpha must be finite and >= 0");
    if (beamWidth < 0) {
        throw InputError("beam_width must be >= 0 (got " +
                         std::to_string(beamWidth) + ")");
    }
    if (maxTemporalSteps < 0 ||
        (maxTemporalSteps != 0 && !isPow2(maxTemporalSteps))) {
        throw InputError("max_temporal_steps must be 0 or a power of "
                         "two (got " +
                         std::to_string(maxTemporalSteps) + ")");
    }
}

std::string
PlanRequest::summary() const
{
    std::string s = model + " x" + std::to_string(devices) + " b" +
                    std::to_string(batch);
    if (layers > 0)
        s += " L" + std::to_string(layers);
    if (beamWidth > 0)
        s += " beam" + std::to_string(beamWidth);
    if (!psquare)
        s += " no-psquare";
    return s;
}

JsonValue
PlanResponse::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("ok", ok);
    if (!ok) {
        doc.set("error", error);
        return doc;
    }
    doc.set("source", source);
    JsonValue strat = JsonValue::array();
    for (const PartitionSeq &seq : strategies)
        strat.push(partitionSeqToJson(seq));
    doc.set("strategies", std::move(strat));
    JsonValue text = JsonValue::array();
    for (const std::string &t : strategyText)
        text.push(t);
    doc.set("strategy_text", std::move(text));
    doc.set("layer_cost_us", layerCostUs);
    doc.set("total_cost_us", totalCostUs);
    doc.set("gap_pct", gapPct);
    doc.set("truncated", truncated);
    doc.set("server_us", serverUs);
    return doc;
}

PlanResponse
PlanResponse::fromJson(const JsonValue &doc)
{
    PlanResponse resp;
    resp.ok = doc.at("ok").asBool();
    if (!resp.ok) {
        if (const JsonValue *e = doc.find("error"))
            resp.error = e->asString();
        return resp;
    }
    resp.source = doc.at("source").asString();
    for (const JsonValue &seq : doc.at("strategies").items())
        resp.strategies.push_back(partitionSeqFromJson(seq));
    if (const JsonValue *text = doc.find("strategy_text"))
        for (const JsonValue &t : text->items())
            resp.strategyText.push_back(t.asString());
    resp.layerCostUs = numField(doc, "layer_cost_us", 0.0);
    resp.totalCostUs = numField(doc, "total_cost_us", 0.0);
    resp.gapPct = numField(doc, "gap_pct", 0.0);
    resp.truncated = boolField(doc, "truncated", false);
    resp.serverUs = numField(doc, "server_us", 0.0);
    return resp;
}

} // namespace primepar
