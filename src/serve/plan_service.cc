#include "plan_service.hh"

#include <chrono>
#include <utility>

#include "cost/cost_model.hh"
#include "cost/profiler.hh"
#include "graph/graph.hh"
#include "graph/transformer.hh"
#include "optimizer/segmented_dp.hh"
#include "runtime/errors.hh"
#include "runtime/metrics.hh"
#include "topology/cluster.hh"

namespace primepar {

namespace {

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Everything plan() derives from one request. */
struct RequestContext
{
    ModelConfig model;
    ClusterTopology topo;
    CostModel cost;
    CompGraph graph;
    DpOptions dp;
    std::string key;

    static ModelConfig
    makeModel(const PlanRequest &req)
    {
        ModelConfig m = modelByName(req.model);
        if (req.layers > 0)
            m.numLayers = req.layers;
        return m;
    }

    RequestContext(const PlanRequest &req, int dp_threads,
                   std::shared_ptr<CatalogCache> shared_cache)
        : model(makeModel(req)),
          topo(ClusterTopology::paperCluster(req.devices)),
          cost(topo, profileModels(topo), req.alpha),
          graph(buildTransformerBlock(model, req.batch))
    {
        dp.numLayers = model.numLayers;
        dp.numThreads = dp_threads;
        dp.space.allowPSquare = req.psquare;
        if (!req.batchDim)
            dp.space.excludedDims = {0};
        dp.beamWidth = req.beamWidth;
        if (req.maxTemporalSteps > 0)
            dp.space.maxTemporalSteps = req.maxTemporalSteps;
        dp.catalogCache = std::move(shared_cache);
        key = planCacheKey(graph, cost, dp);
    }
};

/** Render a stored entry into a full response. */
void
fillResponse(PlanResponse &resp, const PlanCacheEntry &entry,
             const CompGraph &graph)
{
    resp.ok = true;
    resp.strategies = entry.strategies;
    resp.strategyText.reserve(entry.strategies.size());
    for (int n = 0; n < graph.numNodes(); ++n)
        resp.strategyText.push_back(
            entry.strategies[n].toString(graph.node(n)));
    resp.layerCostUs = entry.layerCost;
    resp.totalCostUs = entry.totalCost;
    resp.gapPct = entry.gapPct;
    resp.truncated = entry.truncated;
}

PlanCacheEntry
entryFromResult(const DpResult &result)
{
    PlanCacheEntry entry;
    entry.strategies = result.strategies;
    entry.layerCost = result.layerCost;
    entry.totalCost = result.totalCost;
    entry.candidatesTotal = result.candidatesTotal;
    entry.candidatesKept = result.candidatesKept;
    entry.truncated = result.truncated;
    entry.lowerBoundUs = result.lowerBoundUs;
    entry.gapPct = result.gapPct;
    return entry;
}

} // namespace

PlanService::PlanService(PlanServiceOptions options)
    : opts(std::move(options)),
      cache(std::make_shared<CatalogCache>())
{
    if (opts.metrics) {
        metrics = opts.metrics;
    } else {
        ownedMetrics = std::make_unique<MetricsRegistry>();
        metrics = ownedMetrics.get();
    }
    if (opts.dpSlots < 1)
        opts.dpSlots = 1;
    cache->setMetrics(metrics);

    auto snapshot = std::make_shared<PlanStore>();
    if (!opts.storePath.empty()) {
        std::string error;
        *snapshot = PlanStore::load(opts.storePath, &error);
        if (!snapshot->valid()) {
            // A corrupted store must not take the service down — plans
            // are recomputable. Start cold and overwrite on the next
            // publish.
            metrics->add("serve.store_load_failures");
            *snapshot = PlanStore();
        }
    }
    store = std::move(snapshot);
}

std::shared_ptr<const PlanStore>
PlanService::storeSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return store;
}

std::size_t
PlanService::storeSize() const
{
    return storeSnapshot()->size();
}

void
PlanService::persist(const std::string &key,
                     const PlanCacheEntry &entry)
{
    if (opts.storePath.empty())
        return;
    // One publisher at a time: merge the latest published image with
    // the new plan and republish. Concurrent leaders for *different*
    // keys serialize here, so no plan is ever lost to a racing write.
    std::lock_guard<std::mutex> publish(storeMu);
    const std::shared_ptr<const PlanStore> snapshot = storeSnapshot();
    PlanStoreBuilder builder;
    for (auto &[k, e] : snapshot->entries())
        builder.put(k, e);
    builder.put(key, entry);
    std::string error;
    if (!builder.save(opts.storePath, snapshot->generation() + 1,
                      &error)) {
        metrics->add("serve.store_write_failures");
        return;
    }
    metrics->add("serve.store_writes");
    auto reloaded = std::make_shared<PlanStore>(
        PlanStore::load(opts.storePath, &error));
    if (reloaded->valid()) {
        std::lock_guard<std::mutex> lock(mu);
        store = std::move(reloaded);
    }
}

PlanResponse
PlanService::plan(const PlanRequest &req)
{
    const double start = nowUs();
    metrics->add("serve.requests");
    PlanResponse resp;
    try {
        req.validate();
        RequestContext ctx(req, opts.dpThreads, cache);

        // Layer 1: the persistent store snapshot.
        if (auto entry = storeSnapshot()->find(ctx.key)) {
            metrics->add("serve.store_hits");
            fillResponse(resp, *entry, ctx.graph);
            resp.source = "store";
        }
        // Layer 2: the in-process whole-plan memo.
        else if (auto memo = cache->findPlan(ctx.key)) {
            metrics->add("serve.cache_hits");
            fillResponse(resp, *memo, ctx.graph);
            resp.source = "cache";
        } else {
            // Layer 3/4: single-flight, then an admitted DP run.
            std::shared_ptr<Flight> flight;
            bool leader = false;
            {
                std::lock_guard<std::mutex> lock(mu);
                auto it = flights.find(ctx.key);
                if (it != flights.end()) {
                    flight = it->second;
                } else {
                    flight = std::make_shared<Flight>();
                    flights.emplace(ctx.key, flight);
                    leader = true;
                }
            }
            if (!leader) {
                metrics->add("serve.coalesced");
                std::unique_lock<std::mutex> wait(flight->mu);
                flight->cv.wait(wait, [&] { return flight->done; });
                if (!flight->entry)
                    throw RuntimeError(flight->error);
                fillResponse(resp, *flight->entry, ctx.graph);
                resp.source = "flight";
            } else {
                std::shared_ptr<const PlanCacheEntry> produced;
                std::string failure;
                try {
                    // Admission: at most dpSlots concurrent DP runs.
                    {
                        std::unique_lock<std::mutex> lock(mu);
                        slotCv.wait(lock, [&] {
                            return slotsInUse < opts.dpSlots;
                        });
                        ++slotsInUse;
                    }
                    metrics->add("serve.dp_runs");
                    DpResult result;
                    try {
                        ctx.dp.metrics = metrics;
                        result = SegmentedDpOptimizer(ctx.graph,
                                                      ctx.cost, ctx.dp)
                                     .optimize();
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(mu);
                        --slotsInUse;
                        slotCv.notify_one();
                        throw;
                    }
                    {
                        std::lock_guard<std::mutex> lock(mu);
                        --slotsInUse;
                        slotCv.notify_one();
                    }
                    produced = std::make_shared<PlanCacheEntry>(
                        entryFromResult(result));
                    persist(ctx.key, *produced);
                } catch (const std::exception &e) {
                    failure = e.what();
                }
                // Publish to waiters and retire the flight — even on
                // failure, or waiters would block forever.
                {
                    std::lock_guard<std::mutex> lock(mu);
                    flights.erase(ctx.key);
                }
                {
                    std::lock_guard<std::mutex> publish(flight->mu);
                    flight->done = true;
                    flight->entry = produced;
                    flight->error = failure;
                }
                flight->cv.notify_all();
                if (!produced)
                    throw RuntimeError(failure);
                fillResponse(resp, *produced, ctx.graph);
                resp.source = "dp";
            }
        }
    } catch (const std::exception &e) {
        metrics->add("serve.errors");
        resp = PlanResponse();
        resp.ok = false;
        resp.error = e.what();
    }
    resp.serverUs = nowUs() - start;
    metrics->observe("serve.request_us", resp.serverUs);
    return resp;
}

JsonValue
PlanService::statsJson() const
{
    JsonValue doc = metrics->snapshotJson();
    const std::shared_ptr<const PlanStore> snapshot = storeSnapshot();
    JsonValue st = JsonValue::object();
    st.set("path", opts.storePath);
    st.set("entries", static_cast<std::int64_t>(snapshot->size()));
    st.set("generation",
           static_cast<std::int64_t>(snapshot->generation()));
    doc.set("plan_store", std::move(st));
    return doc;
}

} // namespace primepar
