#include "plan_server.hh"

#include <chrono>

#include "runtime/errors.hh"
#include "runtime/fault.hh"
#include "runtime/metrics.hh"
#include "support/logging.hh"

namespace primepar {

namespace {

/** Poll granularity of the accept / read loops: how quickly stop()
 *  is noticed, not a protocol deadline. */
constexpr int kPollMs = 200;

WireFrame
ctrlResp(const WireFrame &req, const JsonValue &body)
{
    WireFrame f;
    f.type = FrameType::CtrlResp;
    f.tensor = req.tensor;
    f.seq = req.seq;
    f.generation = req.generation;
    const std::string text = body.toString(0);
    f.payload.assign(text.begin(), text.end());
    f.checksum = checksumBytes(f.payload.data(), f.payload.size());
    return f;
}

} // namespace

PlanServer::PlanServer(PlanServerOptions options)
    : opts(std::move(options)),
      svc(std::make_unique<PlanService>(opts.service))
{
    listener.open(opts.port);
    acceptThread = std::thread([this] { acceptLoop(); });
}

PlanServer::~PlanServer()
{
    stop();
}

bool
PlanServer::waitForShutdown(int timeout_ms)
{
    std::unique_lock<std::mutex> lock(mu);
    if (timeout_ms < 0) {
        shutdownCv.wait(lock,
                        [&] { return shutdownRequested.load(); });
        return true;
    }
    return shutdownCv.wait_for(
        lock, std::chrono::milliseconds(timeout_ms),
        [&] { return shutdownRequested.load(); });
}

void
PlanServer::stop()
{
    if (stopping.exchange(true))
        return;
    shutdownRequested = true;
    shutdownCv.notify_all();
    if (acceptThread.joinable())
        acceptThread.join();
    std::lock_guard<std::mutex> lock(mu);
    for (Connection &c : connections)
        if (c.thread.joinable())
            c.thread.join();
    connections.clear();
}

void
PlanServer::reapFinishedLocked()
{
    for (auto it = connections.begin(); it != connections.end();) {
        if (it->finished.load()) {
            if (it->thread.joinable())
                it->thread.join();
            it = connections.erase(it);
        } else {
            ++it;
        }
    }
}

void
PlanServer::acceptLoop()
{
    while (!stopping.load()) {
        NetSocket conn = listener.accept(kPollMs);
        std::lock_guard<std::mutex> lock(mu);
        reapFinishedLocked();
        if (!conn.valid())
            continue;
        connections.emplace_back();
        Connection *slot = &connections.back();
        slot->thread =
            std::thread([this, slot, sock = std::move(conn)]() mutable {
                serveConnection(std::move(sock), slot);
            });
    }
}

void
PlanServer::serveConnection(NetSocket sock, Connection *slot)
{
    while (!stopping.load()) {
        WireFrame req;
        const IoResult r = readFrame(sock, req, kPollMs);
        if (r == IoResult::Timeout)
            continue; // idle connection; re-check the stop flag
        if (r != IoResult::Ok)
            break; // closed or unusable stream
        if (req.type != FrameType::Ctrl)
            continue; // not ours; ignore rather than kill the link
        const std::uint64_t sum =
            checksumBytes(req.payload.data(), req.payload.size());
        JsonValue body;
        if (sum != req.checksum) {
            body = JsonValue::object();
            body.set("ok", false);
            body.set("error", "request payload failed checksum");
            writeFrame(sock, ctrlResp(req, body));
            continue;
        }
        if (req.tensor == kServeVerbPing) {
            body = JsonValue::object();
            body.set("ok", true);
        } else if (req.tensor == kServeVerbStats) {
            body = svc->statsJson();
        } else if (req.tensor == kServeVerbShutdown) {
            body = JsonValue::object();
            body.set("ok", true);
            writeFrame(sock, ctrlResp(req, body));
            shutdownRequested = true;
            shutdownCv.notify_all();
            break;
        } else if (req.tensor == kServeVerbPlan) {
            PlanRequest planReq;
            try {
                planReq = PlanRequest::fromJson(parseJson(std::string(
                    req.payload.begin(), req.payload.end())));
                body = svc->plan(planReq).toJson();
            } catch (const std::exception &e) {
                body = JsonValue::object();
                body.set("ok", false);
                body.set("error", e.what());
            }
        } else {
            body = JsonValue::object();
            body.set("ok", false);
            body.set("error",
                     "unknown verb '" + req.tensor + "'");
        }
        if (writeFrame(sock, ctrlResp(req, body)) != IoResult::Ok)
            break;
    }
    slot->finished = true;
}

} // namespace primepar
