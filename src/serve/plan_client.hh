/**
 * @file
 * Client library for the plan daemon.
 *
 * Speaks the same PPF1 Ctrl / CtrlResp frames as the server; every
 * call is one request frame and one matched (verb, seq) response
 * frame within a caller-supplied deadline. Transport failures —
 * connect refusal, timeout, a closed or corrupted stream — surface
 * as RuntimeError; a server-side planning failure comes back as a
 * normal PlanResponse with ok == false.
 */

#ifndef PRIMEPAR_SERVE_PLAN_CLIENT_HH
#define PRIMEPAR_SERVE_PLAN_CLIENT_HH

#include <cstdint>
#include <string>

#include "runtime/net.hh"
#include "serve_protocol.hh"

namespace primepar {

class PlanClient
{
  public:
    /** Connect to a running daemon; throws RuntimeError on failure. */
    PlanClient(const std::string &host, int port,
               int connect_deadline_ms = 5000);

    /** Plan one request. Cold plans run a DP on the server, so the
     *  default deadline is generous. */
    PlanResponse plan(const PlanRequest &req,
                      int deadline_ms = 600000);

    /** Metrics + store snapshot (primepar-metrics-v1 + plan_store). */
    JsonValue stats(int deadline_ms = 5000);

    /** Liveness probe. */
    bool ping(int deadline_ms = 5000);

    /** Ask the daemon to exit; true when it acknowledged. */
    bool shutdown(int deadline_ms = 5000);

  private:
    JsonValue call(const char *verb, const JsonValue &body,
                   int deadline_ms);

    NetSocket sock;
    std::uint64_t seq = 0;
};

} // namespace primepar

#endif // PRIMEPAR_SERVE_PLAN_CLIENT_HH
