/**
 * @file
 * Persistent, versioned, checksummed plan store ("PPS1").
 *
 * The plan daemon memoizes finished DP plans on disk so that a
 * restarted server — or a fleet of servers sharing a filesystem —
 * answers repeat requests in microseconds instead of re-running a
 * multi-second dynamic program. The store is one immutable file:
 *
 *   [64-byte header]  magic "PPS1", format version, entry count,
 *                     index offset, payload byte count, checksum
 *                     over everything after the header, and a
 *                     monotonically increasing generation number.
 *   [records]         per plan: fixed-size record head (key length,
 *                     strategy count, truncated flag, costs, search
 *                     statistics), then the cache-key bytes, then
 *                     each strategy as a step count + (kind, dim, k)
 *                     triples.
 *   [index]           entryCount x u64 record offsets, enabling O(1)
 *                     record addressing without a load-time scan.
 *
 * Writers build a complete new image in memory and publish it with
 * atomicWriteFile (tmp + fsync + rename), so a reader or a kill -9
 * at any instant sees either the previous or the new complete store.
 * Readers keep the file mmap'd read-only and decode records on
 * lookup; the validated index is built once at load. Keys are the
 * planner's own cache keys (structural graph signature + search-space
 * options + CostModel fingerprint), so a store can never serve a
 * plan computed under different assumptions.
 */

#ifndef PRIMEPAR_SERVE_PLAN_STORE_HH
#define PRIMEPAR_SERVE_PLAN_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "optimizer/dp_core.hh"
#include "support/mmap_file.hh"

namespace primepar {

/** On-disk format constants (also used by tests and DESIGN.md). */
namespace plan_store_format {

/** 'P','P','S','1' little-endian. */
inline constexpr std::uint32_t kMagic = 0x31535050u;
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 64;

} // namespace plan_store_format

/**
 * An immutable snapshot of one published store file. Loading
 * validates the magic, version, section bounds, and the whole-file
 * checksum before anything is trusted; find() then decodes a record
 * into a fresh PlanCacheEntry. Thread-safe for concurrent find()
 * calls (the mapping is read-only and the index is never mutated
 * after load).
 */
class PlanStore
{
  public:
    PlanStore() = default;

    /**
     * Map and validate @p path. A missing file yields an empty valid
     * store (first boot); a malformed or corrupted file yields an
     * invalid store with a diagnostic in @p error.
     */
    static PlanStore load(const std::string &path,
                          std::string *error = nullptr);

    bool valid() const { return ok; }
    std::size_t size() const { return index.size(); }
    std::uint64_t generation() const { return gen; }

    /** Look up @p key; nullptr on miss. */
    std::shared_ptr<const PlanCacheEntry>
    find(const std::string &key) const;

    /** All (key, entry) pairs — the merge-rewrite path. */
    std::vector<std::pair<std::string, PlanCacheEntry>>
    entries() const;

  private:
    MmapFile map;
    /** key -> payload-relative record offset. */
    std::unordered_map<std::string, std::uint64_t> index;
    std::uint64_t gen = 0;
    bool ok = false;
};

/**
 * Accumulates plans and serializes a complete store image. Keys are
 * kept sorted so identical contents always produce byte-identical
 * files (diffable, checksummable across hosts).
 */
class PlanStoreBuilder
{
  public:
    void put(const std::string &key, const PlanCacheEntry &entry);
    std::size_t size() const { return plans.size(); }

    /** Serialize to bytes (header + records + index). */
    std::vector<std::uint8_t>
    serialize(std::uint64_t generation) const;

    /** serialize() + atomicWriteFile(). */
    bool save(const std::string &path, std::uint64_t generation,
              std::string *error = nullptr) const;

  private:
    std::map<std::string, PlanCacheEntry> plans;
};

} // namespace primepar

#endif // PRIMEPAR_SERVE_PLAN_STORE_HH
