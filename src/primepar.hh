/**
 * @file
 * Umbrella header: the whole PrimePar public API.
 *
 * Layering (each header can also be included individually):
 *
 *  - partition/: the paper's core — operator specs, the ByDim and
 *    P_{2^k x 2^k} primitives, DSI evaluation (Alg. 1), derived
 *    communication patterns (Table 1), feature verification, space
 *    enumeration.
 *  - comm/: inter-operator redistribution planning (Eqs. 8-9).
 *  - topology/ + sim/: the cluster model and the event simulator the
 *    evaluation runs on (the GPU-cluster substitution, DESIGN.md).
 *  - cost/: profiled linear latency models and the Eq. 7 / Eq. 10
 *    cost model.
 *  - graph/: computation-graph IR, the Fig. 6 transformer block and
 *    the model zoo.
 *  - optimizer/: the segmented dynamic programming search (Sec. 5).
 *  - baselines/: Megatron-LM, Alpa-like and ZeRO baselines.
 *  - pipeline/: 3D parallelism composition (Sec. 6.4).
 *  - runtime/: the functional SPMD executor proving semantic
 *    equivalence with single-device training, its fault-tolerance
 *    stack (transport, checkpoints, trainer), and the observability
 *    layer (RuntimeObserver, metrics, tracing) that feeds cost-model
 *    calibration (cost/calibration.hh).
 */

#ifndef PRIMEPAR_PRIMEPAR_HH
#define PRIMEPAR_PRIMEPAR_HH

#include "baselines/megatron.hh"
#include "baselines/zero.hh"
#include "comm/redistribution.hh"
#include "cost/calibration.hh"
#include "cost/cost_model.hh"
#include "cost/profiler.hh"
#include "graph/graph.hh"
#include "graph/transformer.hh"
#include "optimizer/catalog.hh"
#include "optimizer/segmented_dp.hh"
#include "partition/alignment.hh"
#include "partition/comm_pattern.hh"
#include "partition/dsi.hh"
#include "partition/op_spec.hh"
#include "partition/partition_step.hh"
#include "partition/space.hh"
#include "pipeline/three_d.hh"
#include "runtime/checkpoint.hh"
#include "runtime/errors.hh"
#include "runtime/fault.hh"
#include "runtime/graph_executor.hh"
#include "runtime/metrics.hh"
#include "runtime/observer.hh"
#include "runtime/options.hh"
#include "runtime/spmd_executor.hh"
#include "runtime/trainer.hh"
#include "runtime/transport.hh"
#include "sim/engine.hh"
#include "sim/memory.hh"
#include "sim/model_sim.hh"
#include "sim/op_sim.hh"
#include "sim/trace.hh"
#include "support/json.hh"
#include "support/regression.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"
#include "topology/cluster.hh"
#include "topology/device.hh"
#include "topology/groups.hh"

#endif // PRIMEPAR_PRIMEPAR_HH
