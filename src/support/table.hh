/**
 * @file
 * Minimal fixed-width text table printer used by benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures;
 * this helper keeps their textual output uniform and readable.
 */

#ifndef PRIMEPAR_SUPPORT_TABLE_HH
#define PRIMEPAR_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace primepar {

/** Accumulates rows of strings and prints them with aligned columns. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render the table to a string (with a separator under the header). */
    std::string render() const;

  private:
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with @p digits fractional digits. */
std::string fmtDouble(double v, int digits = 2);

} // namespace primepar

#endif // PRIMEPAR_SUPPORT_TABLE_HH
