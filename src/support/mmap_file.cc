#include "mmap_file.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace primepar {

namespace {

void
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what + ": " + std::strerror(errno);
}

/** Directory part of @p path ("." when it has none). */
std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    return slash == 0 ? "/" : path.substr(0, slash);
}

} // namespace

void
MmapFile::reset()
{
    if (base)
        ::munmap(base, bytes);
    base = nullptr;
    bytes = 0;
    ok = false;
}

MmapFile
MmapFile::openReadOnly(const std::string &path, std::string *error)
{
    MmapFile m;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setError(error, "open('" + path + "')");
        return m;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        setError(error, "fstat('" + path + "')");
        ::close(fd);
        return m;
    }
    m.bytes = static_cast<std::size_t>(st.st_size);
    if (m.bytes > 0) {
        void *p = ::mmap(nullptr, m.bytes, PROT_READ, MAP_PRIVATE, fd,
                         0);
        if (p == MAP_FAILED) {
            setError(error, "mmap('" + path + "')");
            m.bytes = 0;
            ::close(fd);
            return m;
        }
        m.base = p;
    }
    m.ok = true;
    ::close(fd); // the mapping outlives the descriptor
    return m;
}

bool
atomicWriteFile(const std::string &path, const void *data,
                std::size_t size, std::string *error)
{
    // Same-directory temp name so the rename stays within one
    // filesystem (rename(2) is only atomic there).
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setError(error, "open('" + tmp + "')");
        return false;
    }

    const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
    std::size_t written = 0;
    while (written < size) {
        const ssize_t r = ::write(fd, p + written, size - written);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "write('" + tmp + "')");
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        written += static_cast<std::size_t>(r);
    }
    // fsync before rename: the data must be durable before the name
    // points at it, or a crash could publish a hole.
    if (::fsync(fd) != 0) {
        setError(error, "fsync('" + tmp + "')");
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        setError(error, "close('" + tmp + "')");
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "rename('" + tmp + "' -> '" + path + "')");
        ::unlink(tmp.c_str());
        return false;
    }
    // Persist the directory entry; failure here is not fatal to the
    // caller (the rename is already visible), so best-effort.
    const int dfd = ::open(dirOf(path).c_str(), O_RDONLY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

} // namespace primepar
