/**
 * @file
 * Ordinary least-squares fit of a 1-D linear latency model.
 *
 * PrimePar models communication and computation latencies as linear
 * functions of a size metric (bytes moved, flops, ...). The coefficients
 * are obtained by profiling and linear regression (paper Sec. 4.1); this
 * header provides the regression and the fitted model type.
 */

#ifndef PRIMEPAR_SUPPORT_REGRESSION_HH
#define PRIMEPAR_SUPPORT_REGRESSION_HH

#include <cstddef>
#include <vector>

namespace primepar {

/**
 * A fitted linear latency model: latency = intercept + slope * x.
 *
 * The units are whatever the profiler used (PrimePar uses microseconds
 * for latency and bytes / flops for x).
 */
struct LinearModel
{
    double intercept = 0.0;
    double slope = 0.0;

    /** Evaluate the model at @p x, clamped to be non-negative. */
    double
    operator()(double x) const
    {
        double y = intercept + slope * x;
        return y < 0.0 ? 0.0 : y;
    }
};

/**
 * Fit latency = a + b * x by ordinary least squares.
 *
 * @param xs sample sizes
 * @param ys measured latencies (same length as @p xs)
 * @return the fitted model; with fewer than two samples the fit
 *         degenerates to a constant (intercept = mean, slope = 0).
 */
LinearModel fitLinear(const std::vector<double> &xs,
                      const std::vector<double> &ys);

/** Coefficient of determination (R^2) of @p model on the samples. */
double rSquared(const LinearModel &model, const std::vector<double> &xs,
                const std::vector<double> &ys);

} // namespace primepar

#endif // PRIMEPAR_SUPPORT_REGRESSION_HH
