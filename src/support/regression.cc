#include "regression.hh"

#include "logging.hh"

namespace primepar {

LinearModel
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    PRIMEPAR_ASSERT(xs.size() == ys.size(),
                    "regression sample size mismatch");
    LinearModel model;
    const std::size_t n = xs.size();
    if (n == 0)
        return model;

    double sum_x = 0.0, sum_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum_x += xs[i];
        sum_y += ys[i];
    }
    const double mean_x = sum_x / n;
    const double mean_y = sum_y / n;

    double sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sxx += (xs[i] - mean_x) * (xs[i] - mean_x);
        sxy += (xs[i] - mean_x) * (ys[i] - mean_y);
    }

    if (sxx == 0.0) {
        model.intercept = mean_y;
        model.slope = 0.0;
    } else {
        model.slope = sxy / sxx;
        model.intercept = mean_y - model.slope * mean_x;
    }
    return model;
}

double
rSquared(const LinearModel &model, const std::vector<double> &xs,
         const std::vector<double> &ys)
{
    PRIMEPAR_ASSERT(xs.size() == ys.size(),
                    "regression sample size mismatch");
    const std::size_t n = xs.size();
    if (n == 0)
        return 1.0;

    double mean_y = 0.0;
    for (double y : ys)
        mean_y += y;
    mean_y /= n;

    double ss_res = 0.0, ss_tot = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double e = ys[i] - model(xs[i]);
        ss_res += e * e;
        ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
    }
    if (ss_tot == 0.0)
        return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

} // namespace primepar
