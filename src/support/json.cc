#include "json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>

namespace primepar {

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        throw JsonError("JSON value is not a bool");
    return boolVal;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        throw JsonError("JSON value is not a number");
    return numVal;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        throw JsonError("JSON value is not a string");
    return strVal;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        throw JsonError("JSON value is not an array");
    return arr;
}

void
JsonValue::push(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        throw JsonError("push on a non-array JSON value");
    arr.push_back(std::move(v));
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        throw JsonError("JSON value is not an object");
    return obj;
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        throw JsonError("set on a non-object JSON value");
    for (auto &[k, val] : obj) {
        if (k == key) {
            val = std::move(v);
            return;
        }
    }
    obj.emplace_back(key, std::move(v));
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        throw JsonError("member lookup on a non-object JSON value");
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw JsonError("missing JSON member '" + key + "'");
    return *v;
}

namespace {

void
writeEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
writeNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null"; // JSON has no NaN/Inf; absence is detectable.
        return;
    }
    // std::to_chars, not snprintf: printf-family number formatting is
    // locale-sensitive, and a de_DE-style locale (',' decimal
    // separator) would silently corrupt every written document.
    // to_chars is locale-independent and emits the shortest string
    // that round-trips the double exactly.
    char buf[40];
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        const auto r = std::to_chars(buf, buf + sizeof buf,
                                     static_cast<long long>(v));
        out.append(buf, r.ptr);
        return;
    }
    const auto r = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, r.ptr);
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

} // namespace

void
JsonValue::write(std::string &out, int indent, int depth) const
{
    switch (kind_) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += boolVal ? "true" : "false"; return;
    case Kind::Number: writeNumber(out, numVal); return;
    case Kind::String: writeEscaped(out, strVal); return;
    case Kind::Array: {
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            arr[i].write(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += ']';
        return;
    }
    case Kind::Object: {
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            writeEscaped(out, obj[i].first);
            out += indent > 0 ? ": " : ":";
            obj[i].second.write(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += '}';
        return;
    }
    }
}

std::string
JsonValue::toString(int indent) const
{
    std::string out;
    write(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos != s.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw JsonError("JSON parse error at offset " +
                        std::to_string(pos) + ": " + msg);
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::string(lit).size();
        if (s.compare(pos, n, lit) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= s.size())
                fail("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos >= s.size())
                    fail("unterminated escape");
                char e = s[pos++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos + 4 > s.size())
                        fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code += static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad \\u escape digit");
                    }
                    // Our schemas are ASCII; encode BMP as UTF-8.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out +=
                            static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out +=
                            static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos;
        if (pos < s.size() && (s[pos] == '-' || s[pos] == '+'))
            ++pos;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos < s.size() && std::isdigit(
                                         static_cast<unsigned char>(
                                             s[pos]))) {
                ++pos;
                digits = true;
            }
        };
        eatDigits();
        if (pos < s.size() && s[pos] == '.') {
            ++pos;
            eatDigits();
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '-' || s[pos] == '+'))
                ++pos;
            eatDigits();
        }
        if (!digits)
            fail("malformed number");
        // std::from_chars, not std::stod: stod honors the C locale,
        // so under a ',' decimal-separator locale it would stop at
        // the '.' and silently truncate "1.5" to 1.0.
        double v = 0.0;
        const char *first = s.data() + start;
        const char *last = s.data() + pos;
        if (first != last && *first == '+')
            ++first; // from_chars rejects an explicit leading '+'
        const auto r = std::from_chars(first, last, v);
        if (r.ec != std::errc() || r.ptr != last)
            fail("malformed number");
        return JsonValue(v);
    }

    JsonValue
    value()
    {
        switch (peek()) {
        case '{': {
            ++pos;
            JsonValue v = JsonValue::object();
            if (peek() == '}') {
                ++pos;
                return v;
            }
            while (true) {
                skipWs();
                std::string key = parseString();
                expect(':');
                v.set(key, value());
                char c = peek();
                ++pos;
                if (c == '}')
                    return v;
                if (c != ',')
                    fail("expected ',' or '}' in object");
            }
        }
        case '[': {
            ++pos;
            JsonValue v = JsonValue::array();
            if (peek() == ']') {
                ++pos;
                return v;
            }
            while (true) {
                v.push(value());
                char c = peek();
                ++pos;
                if (c == ']')
                    return v;
                if (c != ',')
                    fail("expected ',' or ']' in array");
            }
        }
        case '"': return JsonValue(parseString());
        case 't':
            if (consumeLiteral("true"))
                return JsonValue(true);
            fail("bad literal");
        case 'f':
            if (consumeLiteral("false"))
                return JsonValue(false);
            fail("bad literal");
        case 'n':
            if (consumeLiteral("null"))
                return JsonValue();
            fail("bad literal");
        default: return parseNumber();
        }
    }

    const std::string &s;
    std::size_t pos = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

JsonValue
loadJsonFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw JsonError("cannot open '" + path + "' for reading");
    std::ostringstream os;
    os << f.rdbuf();
    return parseJson(os.str());
}

void
saveJsonFile(const std::string &path, const JsonValue &v)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        throw JsonError("cannot open '" + path + "' for writing");
    f << v.toString();
    if (!f)
        throw JsonError("failed writing '" + path + "'");
}

} // namespace primepar
